(* Command-line front end for the temporal_fairness library.

   Subcommands:
     generate    sample an instance and write it as CSV
     simulate    run one policy on an instance and print flow statistics
     compare     run several policies on an instance, one table row each
     certify     build the dual-fitting certificate for RR on an instance
     lowerbound  certified LP lower bound on the optimal lk norm
     crossover   bracket search for the minimal competitive RR speed
     experiments run the full evaluation suite (DESIGN.md T1-T8/F1-F3)

   Parallelism: --jobs N (or the RR_JOBS environment variable) runs the
   embarrassingly parallel subcommands on a Temporal_fairness.Pool of N
   domains; results are bit-identical to a sequential run.               *)

open Cmdliner
module Pool = Temporal_fairness.Pool
module Run = Temporal_fairness.Run

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let machines_arg =
  Arg.(value & opt int 1 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Number of identical machines.")

let speed_arg =
  Arg.(value & opt float 1. & info [ "s"; "speed" ] ~docv:"S" ~doc:"Resource-augmentation speed.")

let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Norm index k of the lk objective.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Number of jobs to generate.")

let load_arg =
  Arg.(value & opt float 0.9 & info [ "load" ] ~docv:"RHO" ~doc:"Offered load for generated instances.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Instance CSV (header 'arrival,size'); generated when omitted.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 0 -> Ok j
    | _ -> Error (`Msg "JOBS must be a non-negative integer (0 = all recommended cores)")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~env:(Cmd.Env.info "RR_JOBS" ~doc:"Default worker-domain count for $(b,--jobs).")
        ~doc:
          "Worker domains to run independent simulations on (0 means all recommended cores; \
           values above the CPU count are clamped and the effective backend is printed). \
           Results are bit-identical to a sequential run.")

(* --jobs routes through the executor layer's CPU clamp: a pool wider
   than the machine only adds contention (on a 1-CPU box a 4-domain pool
   loses to the plain sequential loop), so the effective width is
   min(jobs, cpus) and a width of 1 degrades to the caller-only pool —
   sequential semantics, no worker domains.  The chosen backend prints
   to stderr whenever parallelism was requested, so scripted runs can
   see what actually executed. *)
let with_jobs jobs f =
  let cpus = Pool.recommended_domains () in
  let requested = if jobs = 0 then cpus else jobs in
  let domains = Int.max 1 (Int.min requested cpus) in
  if requested > 1 then
    Printf.eprintf "rr_cli: --jobs %d -> %s%s\n%!" requested
      (Run.backend_name (if domains <= 1 then `Sequential else `Domains domains))
      (if domains < requested then Printf.sprintf " (clamped: %d CPU(s))" cpus else "");
  Pool.with_pool ~domains f

let chunk_conv =
  let parse s =
    if String.equal s "auto" then Ok `Auto
    else
      match int_of_string_opt s with
      | Some c when c >= 1 -> Ok (`Fixed c)
      | _ -> Error (`Msg "CHUNK must be 'auto' or a positive integer")
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Fixed c -> Format.pp_print_int ppf c
  in
  Arg.conv (parse, print)

let chunk_arg =
  Arg.(
    value
    & opt chunk_conv `Auto
    & info [ "chunk" ] ~docv:"CHUNK"
        ~doc:
          "Tasks per steal unit on the $(b,--jobs) pool: $(b,auto) groups tasks into ~1 ms \
           chunks by estimated cost, an integer fixes the group size.  Chunking never \
           changes results, only scheduling granularity.")

let engine_conv =
  let parse s =
    match Run.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown engine %S; expected one of: %s" s
               (String.concat ", " Run.engine_strings)))
  in
  let print ppf e = Format.pp_print_string ppf (Run.engine_to_string e) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv `Auto
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "Engine selection: %s.  $(b,auto) (the default) dispatches every policy \
              that declares a class to its specialised kernel (RR's equal-share cascade, \
              the SRPT/SJF/FCFS/HDF priority index, the SETF group cascade, the \
              LAPS/MLFQ/quantum/WRR dense kernels, the starvation-hybrid and \
              migration-budget kernels — each agrees with the general loop to ~1e-9 \
              relative flow time but is several times faster) and runs unclassified \
              policies on the general event loop; $(b,general) forces the general loop \
              everywhere (reproduces archived general-loop numbers bit-exactly); \
              $(b,indexed) / $(b,equal-share) insist on a specialised kernel and fail on \
              policies outside its reach; $(b,live) routes classified policies through \
              the incremental submit-while-running core that $(b,rr_cli serve) uses."
             (String.concat " | " (List.map (Printf.sprintf "$(b,%s)") Run.engine_strings))))

let no_fast_path_arg =
  Arg.(
    value
    & flag
    & info [ "no-fast-path" ]
        ~doc:
          "Deprecated alias for $(b,--engine general).  An explicit $(b,--engine) wins \
           over this flag.")

(* [Run.config]'s boolean shim is gone; the flag survives here purely as
   CLI spelling: an explicit --engine wins, the bare flag means the
   general loop. *)
let resolve_engine engine no_fast_path =
  match (engine, no_fast_path) with `Auto, true -> `General | e, _ -> e

let print_cache_stats () =
  let st = Temporal_fairness.Cache.stats () in
  Format.printf
    "cache: %d hits (%d coalesced in flight) / %d misses, %d evictions, %d/%d entries across \
     %d shards@."
    st.hits st.coalesced st.misses st.evictions st.size st.capacity (Array.length st.shards)

let cache_stats_arg =
  Arg.(
    value
    & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print the result cache's counters on exit: hits (including lookups coalesced \
           into another domain's in-flight computation), misses (= simulations actually \
           run), evictions, occupancy and shard count.")

let no_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-cache" ]
        ~doc:"Do not memoise simulation measurements in the process-wide result cache.")

let dist_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "exp"; m ] -> (
        match float_of_string_opt m with
        | Some mean when mean > 0. -> Ok (Rr_workload.Distribution.Exponential { mean })
        | _ -> Error (`Msg "exp:<mean> needs a positive float"))
    | [ "det"; p ] -> (
        match float_of_string_opt p with
        | Some v when v > 0. -> Ok (Rr_workload.Distribution.Deterministic v)
        | _ -> Error (`Msg "det:<size> needs a positive float"))
    | [ "uniform"; lo; hi ] -> (
        match (float_of_string_opt lo, float_of_string_opt hi) with
        | Some lo, Some hi when 0. < lo && lo <= hi ->
            Ok (Rr_workload.Distribution.Uniform { lo; hi })
        | _ -> Error (`Msg "uniform:<lo>:<hi> needs 0 < lo <= hi"))
    | [ "bpareto"; a; lo; hi ] -> (
        match (float_of_string_opt a, float_of_string_opt lo, float_of_string_opt hi) with
        | Some alpha, Some x_min, Some x_max when alpha > 0. && 0. < x_min && x_min < x_max ->
            Ok (Rr_workload.Distribution.Bounded_pareto { alpha; x_min; x_max })
        | _ -> Error (`Msg "bpareto:<alpha>:<min>:<max> malformed"))
    | _ -> Error (`Msg (Printf.sprintf "unknown size distribution %S" s))
  in
  let print ppf d = Format.pp_print_string ppf (Rr_workload.Distribution.name d) in
  Arg.conv (parse, print)

let sizes_arg =
  Arg.(
    value
    & opt dist_conv (Rr_workload.Distribution.Exponential { mean = 1. })
    & info [ "sizes" ] ~docv:"DIST"
        ~doc:"Size distribution: exp:<mean>, det:<size>, uniform:<lo>:<hi>, bpareto:<a>:<min>:<max>.")

(* The typed registry parses the policy syntax and reports exactly what
   was malformed; the valid forms are enumerated from the registry so the
   help text cannot drift. *)
let policy_conv =
  let parse s =
    match Rr_policies.Registry.spec_of_string s with
    | Ok spec -> Ok (Rr_policies.Registry.make spec)
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (p : Rr_engine.Policy.t) = Format.pp_print_string ppf p.name in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt policy_conv Rr_policies.Round_robin.policy
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf "Scheduling policy, one of: %s."
             (String.concat ", " (Rr_policies.Registry.names ()))))

let load_instance ~file ~seed ~sizes ~load ~machines ~n =
  match file with
  | Some path -> Rr_workload.Trace_io.load ~path
  | None ->
      let rng = Rr_util.Prng.create ~seed in
      Rr_workload.Instance.generate_load ~rng ~sizes ~load ~machines ~n ()

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run seed sizes load machines n out =
    let rng = Rr_util.Prng.create ~seed in
    let inst = Rr_workload.Instance.generate_load ~rng ~sizes ~load ~machines ~n () in
    match out with
    | Some path ->
        Rr_workload.Trace_io.save ~path inst;
        Printf.printf "wrote %d jobs to %s\n" (Rr_workload.Instance.n inst) path
    | None -> print_string (Rr_workload.Trace_io.to_string inst)
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Sample a Poisson instance at a target load and print/write it as CSV.")
    Term.(const run $ seed_arg $ sizes_arg $ load_arg $ machines_arg $ n_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

(* Peak resident set from the kernel's accounting, when the platform
   exposes it (Linux). *)
let vmhwm_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception _ -> None
  | txt ->
      List.find_map
        (fun line ->
          match String.split_on_char ':' line with
          | [ "VmHWM"; rest ] -> (
              match String.split_on_char ' ' (String.trim rest) with
              | kb :: _ -> int_of_string_opt kb
              | [] -> None)
          | _ -> None)
        (String.split_on_char '\n' txt)

let simulate_streamed ~policy ~machines ~speed ~k ~seed ~sizes ~load ~n ~engine =
  let stream = Rr_workload.Instance.Stream.generate_load ~seed ~sizes ~load ~machines ~n () in
  let cfg = Run.config ~machines ~speed ~k ~engine () in
  let agg = Rr_metrics.Sink.pair (Rr_metrics.Flow_stats.sink ()) (Rr_metrics.Sink.lk ~k ()) in
  let bytes_before = Gc.allocated_bytes () in
  let summary = Run.simulate_stream cfg policy stream ~sink:(Rr_metrics.Sink.feed agg) in
  let allocated_words = (Gc.allocated_bytes () -. bytes_before) /. 8. in
  Format.printf "stream %s (never materialized)@." (Rr_workload.Instance.Stream.label stream);
  Format.printf
    "policy %s [engine %s] at speed %g on %d machine(s): %d jobs, %d events, makespan %g, \
     peak alive %d@."
    policy.Rr_engine.Policy.name (Run.engine_name cfg policy) speed machines
    summary.Rr_engine.Simulator.n summary.Rr_engine.Simulator.events
    summary.Rr_engine.Simulator.makespan summary.Rr_engine.Simulator.max_alive;
  if summary.Rr_engine.Simulator.n > 0 then begin
    let stats, norm = Rr_metrics.Sink.value agg in
    Format.printf "%a  (p50/p90/p99 are P-squared sketch estimates)@." Rr_metrics.Flow_stats.pp
      stats;
    Format.printf "l%d norm: %g@." k norm
  end;
  let heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
  Format.printf "memory: %.3g words allocated (%.1f words/job), top heap %d words%s@."
    allocated_words
    (if n = 0 then 0. else allocated_words /. Float.of_int n)
    heap_words
    (match vmhwm_kb () with
    | Some kb -> Printf.sprintf ", peak RSS %d kB" kb
    | None -> "")

let simulate_cmd =
  let run policy machines speed k file seed sizes load n engine no_fast_path stream =
    let engine = resolve_engine engine no_fast_path in
    if stream then begin
      if Option.is_some file then begin
        prerr_endline
          "rr_cli: --stream generates its workload lazily; it cannot be combined with --file";
        exit 2
      end;
      simulate_streamed ~policy ~machines ~speed ~k ~seed ~sizes ~load ~n ~engine
    end
    else begin
      let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
      let cfg = Run.config ~machines ~speed ~k ~record_trace:true ~engine () in
      let res = Run.simulate cfg policy inst in
      let flows = Rr_engine.Simulator.flows res in
      let stats = Rr_metrics.Flow_stats.of_flows flows in
      Format.printf "%a@." Rr_workload.Instance.pp inst;
      Format.printf "policy %s [engine %s] at speed %g on %d machine(s): %d events@."
        policy.Rr_engine.Policy.name (Run.engine_name cfg policy) speed machines res.events;
      Format.printf "%a@." Rr_metrics.Flow_stats.pp stats;
      Format.printf "l%d norm: %g  | time-weighted Jain index: %g@." k
        (Rr_metrics.Norms.lk ~k flows)
        (Rr_metrics.Fairness.time_weighted_jain res.trace)
    end
  in
  let stream_arg =
    Arg.(
      value
      & flag
      & info [ "stream" ]
          ~doc:
            "Generate the workload lazily and measure through the O(alive)-memory streaming \
             pipeline: no job list or flow vector is ever materialized, so -n 10000000 runs \
             in a near-constant heap.  Percentiles become P-squared sketch estimates; a \
             words-allocated / peak-heap / peak-RSS report is appended.  Incompatible with \
             $(b,--file).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one policy on an instance and print its flow-time statistics.")
    Term.(
      const run $ policy_arg $ machines_arg $ speed_arg $ k_arg $ file_arg $ seed_arg $ sizes_arg
      $ load_arg $ n_arg $ engine_arg $ no_fast_path_arg $ stream_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run machines speed file seed sizes load n jobs chunk engine no_fast_path no_cache
      cache_stats =
    let engine = resolve_engine engine no_fast_path in
    let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
    let table =
      Rr_util.Table.create
        ~title:(Printf.sprintf "policies at speed %g, m = %d" speed machines)
        ~columns:[ "policy"; "engine"; "mean"; "max"; "l1"; "l2"; "jain" ]
    in
    (* k = 2 so the cached measurement's norm is the l2 column; the Jain
       index needs the full trace, which measurements never keep, so one
       traced re-simulation per row on top of the (cacheable) measure. *)
    let cfg = Run.config ~machines ~speed ~k:2 ~engine ~cache:(not no_cache) () in
    let traced = { cfg with Run.record_trace = true } in
    let rows =
      with_jobs jobs (fun pool ->
          Pool.map ~chunk pool
            (fun (policy : Rr_engine.Policy.t) ->
              let r = Run.measure cfg policy inst in
              let res = Run.simulate traced policy inst in
              [
                policy.name;
                Run.engine_name cfg policy;
                Rr_util.Table.fcell r.Run.mean_flow;
                Rr_util.Table.fcell r.Run.max_flow;
                Rr_util.Table.fcell (r.Run.mean_flow *. Float.of_int r.Run.n);
                Rr_util.Table.fcell r.Run.norm;
                Rr_util.Table.fcell (Rr_metrics.Fairness.time_weighted_jain res.trace);
              ])
            (Rr_policies.Registry.all ()))
    in
    List.iter (Rr_util.Table.add_row table) rows;
    Rr_util.Table.print table;
    if cache_stats then print_cache_stats ()
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every built-in policy on one instance and tabulate the outcomes.")
    Term.(
      const run $ machines_arg $ speed_arg $ file_arg $ seed_arg $ sizes_arg $ load_arg $ n_arg
      $ jobs_arg $ chunk_arg $ engine_arg $ no_fast_path_arg $ no_cache_arg $ cache_stats_arg)

(* ------------------------------------------------------------------ *)
(* certify                                                             *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  let run machines k eps file seed sizes load n engine no_fast_path =
    let engine = resolve_engine engine no_fast_path in
    let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
    let speed = Rr_dualfit.Certificate.theorem_speed ~k ~eps in
    let res =
      Run.simulate
        (Run.config ~machines ~speed ~k ~record_trace:true ~engine ())
        Rr_policies.Round_robin.policy inst
    in
    let cert = Rr_dualfit.Certificate.certify ~eps ~k res in
    Format.printf "%a@.%a@." Rr_workload.Instance.pp inst Rr_dualfit.Certificate.pp cert;
    if Rr_dualfit.Certificate.is_sound cert then
      Format.printf "certificate SOUND: RR^%d <= %g x OPT^%d on this instance@." k
        (2. *. cert.gamma /. cert.certified_ratio)
        k
    else Format.printf "certificate NOT sound on this instance@."
  in
  let eps_arg =
    Arg.(value & opt float 0.1 & info [ "eps" ] ~docv:"EPS" ~doc:"Analysis parameter in (0, 1/10].")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Run RR at the Theorem-1 speed and verify the paper's dual-fitting certificate.")
    Term.(
      const run $ machines_arg $ k_arg $ eps_arg $ file_arg $ seed_arg $ sizes_arg $ load_arg
      $ n_arg $ engine_arg $ no_fast_path_arg)

(* ------------------------------------------------------------------ *)
(* lowerbound                                                          *)
(* ------------------------------------------------------------------ *)

let lowerbound_cmd =
  let run machines k delta tol file seed sizes load n =
    let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
    let bound = Rr_lp.Lp_bound.opt_norm_lower_bound ~k ~machines ~delta inst in
    let itv = Rr_lp.Lp_bound.value_interval ~tol ~k ~machines inst in
    Format.printf "%a@.certified lower bound on the optimal l%d norm: %g (delta %g)@."
      Rr_workload.Instance.pp inst k bound delta;
    let gap =
      if itv.Rr_lp.Lp_bound.lo > 0. then
        (itv.Rr_lp.Lp_bound.hi -. itv.Rr_lp.Lp_bound.lo) /. itv.Rr_lp.Lp_bound.lo
      else 0.
    in
    Format.printf
      "certified LP value interval: [%g, %g] (rel gap %.2g%%, converged at delta %g, %d \
       solves)@."
      itv.Rr_lp.Lp_bound.lo itv.Rr_lp.Lp_bound.hi (100. *. gap) itv.Rr_lp.Lp_bound.delta
      itv.Rr_lp.Lp_bound.solves;
    Format.printf "interval-certified norm bound: %g@."
      ((itv.Rr_lp.Lp_bound.lo /. 2.) ** (1. /. Float.of_int k))
  in
  let delta_arg =
    Arg.(
      value
      & opt float Rr_lp.Lp_bound.default_delta
      & info [ "delta" ] ~docv:"D" ~doc:"Time-slot width for the point-bound LP discretisation.")
  in
  let tol_arg =
    Arg.(
      value
      & opt float Rr_lp.Lp_bound.default_tol
      & info [ "tol" ] ~docv:"TOL"
          ~doc:
            "Relative width at which the adaptive [Slot_start, Slot_end] interval stops \
             refining; the reported bracket certifies the continuous LP value to this \
             tolerance.")
  in
  Cmd.v
    (Cmd.info "lowerbound"
       ~doc:
         "Certified LP lower bound on the optimal lk norm of flow time, with an \
          interval-certified bracket refined adaptively to --tol.")
    Term.(
      const run $ machines_arg $ k_arg $ delta_arg $ tol_arg $ file_arg $ seed_arg $ sizes_arg
      $ load_arg $ n_arg)

(* ------------------------------------------------------------------ *)
(* crossover                                                           *)
(* ------------------------------------------------------------------ *)

let crossover_cmd =
  let run policy machines k theta lo hi iters file seed sizes load n jobs engine no_fast_path
      no_cache cache_stats =
    let engine = resolve_engine engine no_fast_path in
    let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
    let f speed =
      Temporal_fairness.Ratio.vs_baseline
        (Run.config ~machines ~k ~speed ~engine ~cache:(not no_cache) ())
        policy inst
    in
    let result =
      with_jobs jobs (fun pool -> Temporal_fairness.Sweep.min_speed_for ~pool ~f ~threshold:theta ~lo ~hi ~iters ())
    in
    Format.printf "%a@." Rr_workload.Instance.pp inst;
    if cache_stats then print_cache_stats ();
    let name = policy.Rr_engine.Policy.name in
    match result with
    | Ok s ->
        Format.printf "minimal %s speed with l%d norm <= %g x SRPT@1: %g@." name k theta s
    | Error `Above_hi ->
        Format.printf "no crossover at or below speed %g (%s's l%d ratio stays above %g)@." hi
          name k theta
    | Error (`Bad_bracket msg) ->
        Format.eprintf "invalid bracket: %s@." msg;
        exit 2
  in
  let theta_arg =
    Arg.(value & opt float 1.0 & info [ "theta" ] ~docv:"T" ~doc:"Target ratio against SRPT@1.")
  in
  let lo_arg = Arg.(value & opt float 1.0 & info [ "lo" ] ~docv:"LO" ~doc:"Bracket lower end.") in
  let hi_arg = Arg.(value & opt float 8.0 & info [ "hi" ] ~docv:"HI" ~doc:"Bracket upper end.") in
  let iters_arg =
    Arg.(value & opt int 12 & info [ "iters" ] ~docv:"I" ~doc:"Bracket-narrowing rounds.")
  in
  Cmd.v
    (Cmd.info "crossover"
       ~doc:
         "Bracket search for the smallest speed at which --policy's lk norm is within theta \
          of SRPT@1 (default policy rr; probes within a round run on the --jobs pool).")
    Term.(
      const run $ policy_arg $ machines_arg $ k_arg $ theta_arg $ lo_arg $ hi_arg $ iters_arg
      $ file_arg $ seed_arg $ sizes_arg $ load_arg $ n_arg $ jobs_arg $ engine_arg
      $ no_fast_path_arg $ no_cache_arg $ cache_stats_arg)

(* ------------------------------------------------------------------ *)
(* gantt                                                               *)
(* ------------------------------------------------------------------ *)

let gantt_cmd =
  let run policy machines speed file seed sizes load n width engine no_fast_path =
    let engine = resolve_engine engine no_fast_path in
    let inst = load_instance ~file ~seed ~sizes ~load ~machines ~n in
    let res =
      Run.simulate (Run.config ~machines ~speed ~record_trace:true ~engine ()) policy inst
    in
    let pieces = Rr_engine.Assignment.of_trace ~machines res.trace in
    (match Rr_engine.Assignment.validate ~machines pieces with
    | Ok () -> ()
    | Error e -> prerr_endline ("internal error: infeasible assignment: " ^ e));
    Format.printf "%a — %s at speed %g@." Rr_workload.Instance.pp inst
      policy.Rr_engine.Policy.name speed;
    print_string (Rr_engine.Assignment.render_gantt ~width ~machines pieces)
  in
  let width_arg =
    Arg.(value & opt int 100 & info [ "width" ] ~docv:"COLS" ~doc:"Chart width in characters.")
  in
  Cmd.v
    (Cmd.info "gantt"
       ~doc:
         "Render a policy's schedule as an ASCII Gantt chart (rate shares realised by \
          McNaughton's wrap-around rule).")
    Term.(
      const run $ policy_arg $ machines_arg $ speed_arg $ file_arg $ seed_arg $ sizes_arg
      $ load_arg $ n_arg $ width_arg $ engine_arg $ no_fast_path_arg)

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let run quick jobs engine no_fast_path =
    let engine = resolve_engine engine no_fast_path in
    let scale =
      if quick then Temporal_fairness.Experiments.Quick else Temporal_fairness.Experiments.Full
    in
    with_jobs jobs (fun pool ->
        List.iter Rr_util.Table.print (Temporal_fairness.Experiments.all ~engine ~pool scale))
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced instance sizes.") in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the full evaluation suite (tables T1-T8, figures F1-F3).")
    Term.(const run $ quick_arg $ jobs_arg $ engine_arg $ no_fast_path_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* A long-running incremental simulation behind the serving layer
   (lib/serve): stdio keeps the original line protocol; a Unix socket
   gets the multiplexed event loop speaking either the binary framed
   protocol (PROTOCOL.md, the default) or the line protocol behind
   --proto text. *)
module Live = Rr_engine.Live

let proto_conv =
  let parse = function
    | "binary" -> Ok Rr_serve.Server.Binary
    | "text" -> Ok Rr_serve.Server.Text
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S; expected binary or text" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with Rr_serve.Server.Binary -> "binary" | Rr_serve.Server.Text -> "text")
  in
  Arg.conv (parse, print)

let proto_arg =
  Arg.(
    value
    & opt proto_conv Rr_serve.Server.Binary
    & info [ "proto" ] ~docv:"PROTO"
        ~doc:
          "Socket wire protocol: $(b,binary) (the default; the length-prefixed framed \
           protocol of PROTOCOL.md — batched submits, many concurrent clients) or \
           $(b,text) (the human-debuggable line protocol: one client at a time, extra \
           connections answered $(b,ERR busy)).  The stdio mode always speaks text.")

let serve_cmd =
  let run spec machines speed k max_events socket proto =
    let engine = ref (Live.create ~machines ~speed ~k ~max_events spec) in
    match socket with
    | None -> ignore (Rr_serve.Session.run_channels engine stdin stdout : bool)
    | Some path -> Rr_serve.Server.run ~proto ~engine ~path ()
  in
  let spec_conv =
    let parse s =
      match Live.spec_of_string s with
      | Some spec -> Ok spec
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown live policy %S; expected one of: %s" s
                 (String.concat ", " Live.spec_names)))
    in
    let print ppf s = Format.pp_print_string ppf (Live.spec_name s) in
    Arg.conv (parse, print)
  in
  let spec_arg =
    Arg.(
      value
      & opt spec_conv Live.Equal_share
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:
            (Printf.sprintf
               "Policy driving the live engine, one of: %s (the policies with an \
                incremental closed-form core)."
               (String.concat ", " Live.spec_names)))
  in
  let max_events_arg =
    Arg.(
      value
      & opt int Run.default_max_events
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Event budget; an ADVANCE that would exceed it answers ERR instead of \
             livelocking the daemon.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of stdin/stdout.  The multiplexed \
             event loop serves many concurrent binary clients (or, under \
             $(b,--proto text), one line-protocol client at a time); the engine keeps \
             its state across client disconnects and the daemon exits on SHUTDOWN \
             (binary) / QUIT (text).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Run one incremental (submit-while-running) simulation as a long-lived process.  \
         On stdin/stdout it speaks the human-debuggable line protocol below; with \
         $(b,--socket) it runs a single-threaded multiplexed event loop that by default \
         speaks the length-prefixed binary framed protocol specified byte-by-byte in \
         $(b,PROTOCOL.md) at the repository root (versioned handshake, batched submits, \
         many concurrent clients, write backpressure).  $(b,--proto text) keeps the line \
         protocol on the socket instead.  In every mode a faulting request (bad \
         arguments, exhausted event budget, unreadable snapshot) answers ERR and leaves \
         the session running; only protocol corruption closes a connection.";
      `S "TEXT PROTOCOL";
      `P
        "One request per line, one reply per line; replies start with OK or ERR.  \
         Trailing carriage returns are stripped, so telnet/netcat clients work as-is.";
      `I ("SUBMIT <arrival> <size>", "Queue one job; replies $(b,OK <id>) (dense ids 0, 1, 2, ... in submission order).  Arrivals must be non-decreasing and not in the simulated past.");
      `I ("ADVANCE <time>", "Process every completion/admission at or before <time> and move the clock exactly there; replies $(b,OK now=... completed=... alive=...).  $(b,ADVANCE inf) drains.");
      `I ("DRAIN", "Run until no job is alive or pending; replies $(b,OK now=... completed=...).");
      `I ("STATS", "One-line snapshot of the live metrics: jobs submitted/completed/alive/pending, clock, events, makespan, peak alive, mean/max flow, the Lk power sum and norm, and P-squared p50/p90/p99 estimates.");
      `I ("SNAPSHOT <path>", "Serialize the whole engine (clock, alive and pending jobs, metric accumulators) to <path>; replies $(b,OK).");
      `I ("RESTORE <path>", "Replace the engine with the one serialized at <path> (same build only); replies $(b,OK).");
      `I ("QUIT", "Reply $(b,OK bye) and exit the daemon.");
      `S "BINARY PROTOCOL";
      `P
        "The default on $(b,--socket).  Frames are an 8-byte header (opcode + \
         little-endian payload length) plus payload; a BATCH frame carries up to 65536 \
         submits in one syscall, and STATS replies are bit-exact IEEE-754 floats, so a \
         socket-fed run reproduces an in-process run byte for byte.  See \
         $(b,PROTOCOL.md) for the full frame layout, the handshake, and error \
         semantics, and $(b,rr_cli loadgen) for a ready-made client.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~man
       ~doc:
         "Drive an incremental simulation as a daemon (line protocol on stdin/stdout; \
          binary framed or line protocol on a Unix socket).")
    Term.(
      const run $ spec_arg $ machines_arg $ speed_arg $ k_arg $ max_events_arg $ socket_arg
      $ proto_arg)

(* ------------------------------------------------------------------- *)
(* loadgen                                                             *)
(* ------------------------------------------------------------------- *)

let loadgen_cmd =
  let run socket proto clients batch n rate machines seed sizes load shutdown =
    let proto_tag =
      match proto with Rr_serve.Server.Binary -> `Binary | Rr_serve.Server.Text -> `Text
    in
    match
      Rr_serve.Loadgen.run ~path:socket ~proto:proto_tag ~clients ~batch ?rate ~machines
        ~seed ~sizes ~load ~shutdown ~n ()
    with
    | r ->
        let s = r.Rr_serve.Loadgen.final_stats in
        Printf.printf
          "proto=%s clients=%d batch=%d jobs=%d ops=%d replies=%d wall_s=%.3f\n" r.proto
          r.clients r.batch r.jobs r.ops r.replies r.wall_s;
        Printf.printf "achieved %.0f events/s\n" r.events_per_s;
        Printf.printf "latency_us p50=%.1f p90=%.1f p99=%.1f\n" r.lat_p50_us r.lat_p90_us
          r.lat_p99_us;
        Printf.printf
          "server submitted=%d completed=%d now=%.17g norm=%.17g mean_flow=%.17g\n"
          s.Rr_engine.Live.submitted s.completed s.now s.norm s.mean_flow
    | exception Rr_serve.Client.Server_error msg ->
        Printf.eprintf "rr_cli loadgen: server error: %s\n" msg;
        exit 1
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of the running $(b,rr_cli serve).")
  in
  let clients_arg =
    Arg.(
      value
      & opt int 1
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Connections to open (binary only): 1 feeder submitting jobs plus N-1 \
             concurrent STATS observers.  (Submissions stay on one connection because \
             arrivals must be globally non-decreasing.)")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 512
      & info [ "batch" ] ~docv:"B"
          ~doc:"Jobs per BATCH frame (binary) or per ADVANCE round (text).")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"EV_PER_S"
          ~doc:"Cap offered load at this many wire events per second (default: unthrottled).")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Stop the server when done (SHUTDOWN frame / QUIT line) instead of \
                leaving it running.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replay a seed-replayable generated workload (same generator as $(b,rr_cli \
         generate)) against a running $(b,rr_cli serve --socket) daemon and report the \
         achieved wire throughput plus P-squared round-trip latency percentiles.  The \
         binary path ships jobs in BATCH frames; $(b,--proto text) drives the line \
         protocol one SUBMIT per line for comparison.";
    ]
  in
  Cmd.v
    (Cmd.info "loadgen" ~man
       ~doc:"Benchmark a running serve daemon: replay a generated workload over its socket.")
    Term.(
      const run $ socket_arg $ proto_arg $ clients_arg $ batch_arg $ n_arg $ rate_arg
      $ machines_arg $ seed_arg $ sizes_arg $ load_arg $ shutdown_arg)

let () =
  let man =
    [
      `S "EXIT CODES";
      `P "Beyond cmdliner's defaults (0 success, 124 CLI parse error):";
      `I ("3", "simulation event budget exhausted — the instance may be degenerate or the policy livelocked.");
      `I ("4", "a policy produced an invalid allocation (broken policy implementation).");
      `I ("125", "internal error.");
    ]
  in
  let info =
    Cmd.info "rr_cli" ~version:"1.0.0" ~man
      ~doc:"Round Robin temporal fairness: simulation, LP bounds and dual-fitting certificates."
  in
  let group =
    Cmd.group info
      [
        generate_cmd;
        simulate_cmd;
        compare_cmd;
        certify_cmd;
        lowerbound_cmd;
        crossover_cmd;
        gantt_cmd;
        experiments_cmd;
        serve_cmd;
        loadgen_cmd;
      ]
  in
  (* Distinguish the two simulator failure modes from generic crashes:
     an exhausted event budget (exit 3) usually means a degenerate
     instance or a livelocked policy, an invalid allocation (exit 4) a
     broken policy implementation. *)
  let code =
    try Cmd.eval ~catch:false group with
    | Rr_engine.Simulator.Event_limit_exceeded { limit; now } ->
        Printf.eprintf
          "rr_cli: event budget exhausted: %d events processed by t = %g; the instance may \
           be degenerate or the policy livelocked\n"
          limit now;
        3
    | Rr_engine.Simulator.Invalid_allocation msg ->
        Printf.eprintf "rr_cli: policy produced an invalid allocation: %s\n" msg;
        4
    | Invalid_argument msg ->
        (* e.g. --engine equal-share with a non-RR policy: a usage error,
           not an internal one. *)
        Printf.eprintf "rr_cli: %s\n" msg;
        2
    | e ->
        Printf.eprintf "rr_cli: internal error: %s\n" (Printexc.to_string e);
        125
  in
  exit code
