(* Starvation scenario: one long batch job competes with a steady stream of
   short interactive requests.  Size-based policies freeze the long job for
   as long as shorts keep arriving; Round Robin guarantees it a 1/n_t share
   at every instant — the "instantaneous fairness" the paper formalises.

   Run with: dune exec examples/starvation.exe *)

let () =
  let instance =
    Rr_workload.Adversary.long_vs_stream ~long_size:25. ~n_short:400 ~short_size:1.
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp instance;

  let table =
    Rr_util.Table.create ~title:"fate of the long job (id 0) under each policy"
      ~columns:
        [ "policy"; "long-job flow"; "served share of its lifetime"; "stream p99 flow" ]
  in
  List.iter
    (fun policy ->
      let res = Temporal_fairness.Run.simulate (Temporal_fairness.Run.config ~record_trace:true ()) policy instance in
      let flows = Rr_engine.Simulator.flows res in
      let stream_flows = Array.sub flows 1 (Array.length flows - 1) in
      Rr_util.Table.add_row table
        [
          policy.Rr_engine.Policy.name;
          Rr_util.Table.fcell flows.(0);
          Rr_util.Table.fcell (Rr_metrics.Fairness.share_of_job ~job:0 res.trace);
          Rr_util.Table.fcell (Rr_util.Stats.percentile stream_flows ~p:99.);
        ])
    [
      Rr_policies.Round_robin.policy;
      Rr_policies.Srpt.policy;
      Rr_policies.Sjf.policy;
      Rr_policies.Setf.policy;
    ];
  Rr_util.Table.print table;

  (* A fairness time series: sample Jain's index of the allocation while the
     long job is alive under RR vs SJF. *)
  let series policy =
    let res = Temporal_fairness.Run.simulate (Temporal_fairness.Run.config ~record_trace:true ()) policy instance in
    Rr_metrics.Fairness.jain_series ~sample_every:40. res.trace
  in
  let rr_series = series Rr_policies.Round_robin.policy in
  let sjf_series = series Rr_policies.Sjf.policy in
  print_endline "Jain fairness index over time (sampled every 40 time units):";
  print_endline "   t      RR     SJF";
  List.iter2
    (fun (t, j_rr) (_, j_sjf) -> Printf.printf "%6.0f  %5.3f  %5.3f\n" t j_rr j_sjf)
    rr_series
    (List.filteri (fun i _ -> i < List.length rr_series) sjf_series);

  print_endline
    "\nUnder SRPT/SJF the long job receives no service while any short is in the\n\
     system (served share near the idle gaps only); under RR it always advances.\n\
     The price is a modest increase in the stream's flow times — exactly the\n\
     latency/fairness balance the l2 norm captures."
