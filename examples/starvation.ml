(* Starvation, and the theta dial that prices it.

   One long batch job competes with a steady stream of short interactive
   requests.  SRPT minimises total (l1) flow by construction — and does
   it by freezing the long job for as long as shorts keep arriving.
   FCFS never starves anyone but makes every short queue behind whatever
   arrived first.  Kuo's starvation-mitigation hybrid
   (`Rr_policies.Hybrid`, registry spec `hybrid:<theta>`) interpolates:
   serve SRPT, but grant absolute FCFS priority to any job whose
   flow/size stretch reaches theta.  theta -> infinity is SRPT,
   theta -> 0 is FCFS, and sweeping theta traces the l1-vs-l2 tradeoff
   the paper's lk-norm objective arbitrates.

   Run with: dune exec examples/starvation.exe *)

let thetas = [ 32.; 8.; 3.; 1. ]

let sweep ~measure =
  measure "srpt (theta -> inf)" Rr_policies.Srpt.policy;
  List.iter
    (fun theta ->
      measure (Printf.sprintf "hybrid theta=%g" theta) (Rr_policies.Hybrid.policy ~theta ()))
    thetas;
  measure "fcfs (theta -> 0)" Rr_policies.Fcfs.policy

let () =
  let cfg = Temporal_fairness.Run.config () in

  (* Act 1 — the adversary's view: one long job against a stream of
     shorts.  The dial moves the long job's fate from "starved for the
     whole horizon" to "served on arrival while everyone queues". *)
  let instance =
    Rr_workload.Adversary.long_vs_stream ~long_size:25. ~n_short:400 ~short_size:1.
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp instance;
  let table =
    Rr_util.Table.create ~title:"the theta dial: long job (id 0) vs the stream"
      ~columns:[ "policy"; "long-job flow"; "l1 (total flow)"; "l2 norm"; "stream p99" ]
  in
  let measure label policy =
    let flows = Temporal_fairness.Run.flows cfg policy instance in
    let s = Rr_metrics.Flow_stats.of_flows flows in
    let stream_flows = Array.sub flows 1 (Array.length flows - 1) in
    Rr_util.Table.add_row table
      [
        label;
        Rr_util.Table.fcell flows.(0);
        Rr_util.Table.fcell s.l1;
        Rr_util.Table.fcell s.l2;
        Rr_util.Table.fcell (Rr_util.Stats.percentile stream_flows ~p:99.);
      ]
  in
  sweep ~measure;
  measure "rr (reference)" Rr_policies.Round_robin.policy;
  Rr_util.Table.print table;
  print_endline
    "\nUnder SRPT the long job runs only in the idle gaps — its flow spans\n\
     the whole horizon.  Tightening theta promotes it to the starved class\n\
     sooner, shrinking its flow toward its own size at a growing l1 cost\n\
     as more of the stream queues behind it.  With a single starved job\n\
     against 400 shorts the l2 norm still sides with SRPT: one trimmed\n\
     tail cannot pay for 400 delayed jobs.  RR needs no threshold — its\n\
     1/n_t share bounds every job's stretch by design — but serves the\n\
     stream slowest of all.\n";

  (* Act 2 — the population view: a heavy-tailed workload, where the
     starved tail is a whole class of jobs and trimming it is exactly
     what a squared norm rewards.  Ratios vs SRPT on the same instance:
     l1 descends to 1 as theta loosens while the max-flow tail grows
     back to SRPT's; in between, l2 dips below 1 — the hybrid beats the
     l1-optimal policy on the l2 norm.  (`f6_hybrid_tradeoff` in the
     experiments suite sweeps this curve at full scale; the `rr_classes`
     test pins its shape.) *)
  let rng = Rr_util.Prng.create ~seed:83 in
  let heavy =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:
        (Rr_workload.Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 50. })
      ~load:0.9 ~machines:1 ~n:400 ()
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp heavy;
  let srpt = Temporal_fairness.Run.measure cfg Rr_policies.Srpt.policy heavy in
  let table =
    Rr_util.Table.create ~title:"heavy-tailed population: ratios vs SRPT (k = 2)"
      ~columns:[ "policy"; "l1 vs SRPT"; "l2 vs SRPT"; "max flow vs SRPT" ]
  in
  let measure label policy =
    let r = Temporal_fairness.Run.measure cfg policy heavy in
    Rr_util.Table.add_row table
      [
        label;
        Rr_util.Table.fcell (r.Temporal_fairness.Run.mean_flow /. srpt.Temporal_fairness.Run.mean_flow);
        Rr_util.Table.fcell (r.Temporal_fairness.Run.norm /. srpt.Temporal_fairness.Run.norm);
        Rr_util.Table.fcell (r.Temporal_fairness.Run.max_flow /. srpt.Temporal_fairness.Run.max_flow);
      ]
  in
  sweep ~measure;
  Rr_util.Table.print table;
  print_endline
    "\nHere the dial earns its keep: at moderate theta the hybrid beats\n\
     SRPT on l2 (ratio < 1) because capping the starved jobs' stretch\n\
     removes exactly the tail mass a squared norm weighs most, while the\n\
     l1 premium stays small.  l2 is minimised strictly between the\n\
     l1-optimal and tail-friendly endpoints — the reason the paper\n\
     measures flow in lk norms rather than l1 alone."
