(* Interactive-system scenario after the Silberschatz quote in the paper's
   introduction: "a system with reasonable and PREDICTABLE response time
   may be considered more desirable than a system that is faster on the
   average, but is highly variable."

   Bursty interactive sessions (MMPP arrivals) with near-deterministic
   request sizes: we measure, per policy, both the average response time
   and its variability, and show the l2 norm ranking the policies the way
   an interactive user would. *)

let () =
  let rng = Rr_util.Prng.create ~seed:99 in
  let arrivals = Rr_workload.Arrivals.Bursty { rate_low = 0.3; rate_high = 1.7; mean_dwell = 25. } in
  let sizes = Rr_workload.Distribution.Uniform { lo = 0.5; hi = 1.0 } in
  let instance =
    Rr_workload.Instance.generate ~rng ~arrivals ~sizes ~n:2000 ()
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp instance;

  let table =
    Rr_util.Table.create
      ~title:"interactive workload: bursty arrivals, near-uniform request sizes"
      ~columns:[ "policy"; "mean"; "stddev"; "CV"; "p99/p50"; "l2" ]
  in
  List.iter
    (fun policy ->
      let flows = Temporal_fairness.Run.flows Temporal_fairness.Run.default policy instance in
      let s = Rr_metrics.Flow_stats.of_flows flows in
      Rr_util.Table.add_row table
        [
          policy.Rr_engine.Policy.name;
          Rr_util.Table.fcell s.mean;
          Rr_util.Table.fcell s.stddev;
          Rr_util.Table.fcell (Rr_util.Stats.coefficient_of_variation flows);
          Rr_util.Table.fcell (s.p99 /. s.p50);
          Rr_util.Table.fcell s.l2;
        ])
    [
      Rr_policies.Round_robin.policy;
      Rr_policies.Srpt.policy;
      Rr_policies.Setf.policy;
      Rr_policies.Fcfs.policy;
      Rr_policies.Laps.policy ~beta:0.5;
    ];
  Rr_util.Table.print table;

  print_endline
    "With near-equal job sizes the clairvoyant advantage of SRPT shrinks, while\n\
     RR keeps the p99/p50 spread (predictability) tight during bursts; minimizing\n\
     the l2 norm of flow time is the formal version of preferring this profile."
