(* Theorem 1, end to end on a concrete instance:

   1. sample an online instance;
   2. run Round Robin at the theorem speed eta = 2k(1 + 10 eps);
   3. construct the dual-fitting certificate of Sections 3.2-3.4 from the
      trace and machine-check Lemma 1, Lemma 2 and dual feasibility;
   4. solve the paper's LP relaxation exactly for an independent
      cross-check (weak duality) and a certified competitive-ratio bound.

   Run with: dune exec examples/theorem_certificate.exe *)

let () =
  let k = 2 and eps = 0.1 and machines = 2 in
  let rng = Rr_util.Prng.create ~seed:7 in
  let instance =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines ~n:80 ()
  in
  Format.printf "%a@." Rr_workload.Instance.pp instance;

  let speed = Rr_dualfit.Certificate.theorem_speed ~k ~eps in
  Printf.printf "running RR at the Theorem-1 speed eta = 2k(1+10eps) = %g\n" speed;
  let res =
    Temporal_fairness.Run.simulate
      (Temporal_fairness.Run.config ~machines ~speed ~record_trace:true ())
      Rr_policies.Round_robin.policy instance
  in
  let cert = Rr_dualfit.Certificate.certify ~eps ~k res in
  Format.printf "%a@." Rr_dualfit.Certificate.pp cert;

  Printf.printf "Lemma 1 (sum alpha >= (1/2 - eps) RR^k): %b\n" cert.lemma1_ok;
  Printf.printf "Lemma 2 (m int beta <= (1/2 - 2eps) RR^k): %b\n" cert.lemma2_ok;
  Printf.printf "dual constraints: worst violation ratio %.2e (feasible iff <= 1)\n"
    cert.violation_ratio;
  Printf.printf "certified dual objective / RR^k = %.4f (the paper proves Omega(eps))\n"
    cert.certified_ratio;

  (* Independent cross-check: the dual objective can never exceed the LP
     optimum (weak duality); the LP is solved exactly by min-cost flow. *)
  let lp_hi =
    Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_end ~gamma:cert.gamma ~k ~machines
      ~delta:0.25 instance
  in
  let scaled_dual = cert.dual_objective /. Float.max 1. cert.violation_ratio in
  Printf.printf "weak duality: dual %.4g <= LP %.4g: %b\n" scaled_dual lp_hi
    (scaled_dual <= lp_hi *. (1. +. 1e-9));

  (* What the chain of inequalities certifies about THIS run. *)
  Printf.printf
    "conclusion: on this instance RR's sum of squared flow times is provably within\n\
     a factor %.0f of optimal (Theorem 1's guarantee is the same statement with an\n\
     instance-independent constant).\n"
    (2. *. cert.gamma /. cert.certified_ratio)
