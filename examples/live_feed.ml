(* Feeding a live engine incrementally: the submit-while-running API.

   A closed simulation (Run.simulate) needs the whole arrival sequence up
   front.  Engine.Live instead accepts jobs while the clock moves — the
   shape of a real server.  This example drives Round Robin through one
   busy day: a Poisson trickle with a lunchtime burst, submitted in
   real-time order with the clock advanced to each arrival as it happens,
   and the O(1)-memory live metrics sampled every simulated "hour".

   Nothing is ever materialized: live memory is O(alive + pending), so the
   same loop handles a million-job feed in a constant-size heap (bench B6
   holds it above a million events per second).

   Run with: dune exec examples/live_feed.exe *)

module Live = Rr_engine.Live

let () =
  let live = Live.create ~machines:2 ~k:2 Live.Equal_share in
  let rng = Rr_util.Prng.create ~seed:42 in
  (* Poisson arrivals at load 0.85 on two machines; mean size 1. *)
  let rate t = if t >= 30. && t < 34. then 6.8 else 1.7 (* lunch burst: 4x *) in
  let next_arrival t =
    t +. (-.Float.log (1. -. Rr_util.Prng.float rng) /. rate t)
  in
  let horizon = 72. in
  let report t =
    let s = Live.query live in
    Printf.printf
      "t=%5.1f  alive=%3d  done=%5d  mean flow=%6.3f  p99=%7.3f  l2 norm=%8.3f\n" t
      s.Live.alive s.Live.completed s.Live.mean_flow s.Live.p99 s.Live.norm
  in
  let rec feed t next_report =
    if t < horizon then begin
      (* Catch up on reports that fall before this arrival, then admit it:
         exactly the SUBMIT/ADVANCE alternation of rr_cli serve. *)
      let next_report = ref next_report in
      while !next_report <= t do
        Live.advance live !next_report;
        report !next_report;
        next_report := !next_report +. 6.
      done;
      let size = -.Float.log (1. -. Rr_util.Prng.float rng) in
      ignore (Live.submit live ~arrival:t ~size:(Float.max 1e-3 size));
      Live.advance live t;
      feed (next_arrival t) !next_report
    end
  in
  feed (next_arrival 0.) 6.;
  (* Close the day: run the backlog dry and print the final account. *)
  Live.drain live;
  let s = Live.query live in
  Printf.printf
    "final: %d jobs in %d events, makespan %.2f, peak alive %d, mean flow %.3f, l2 norm %.3f\n"
    s.Live.completed s.Live.events s.Live.makespan s.Live.max_alive s.Live.mean_flow
    s.Live.norm
