(* Server farm scenario: eight identical servers, heavy-tailed request
   sizes (mice and elephants), Poisson arrivals at 90% load — the classic
   setting where the tension between average latency and fairness shows.

   Run with: dune exec examples/server_farm.exe *)

let () =
  let rng = Rr_util.Prng.create ~seed:2024 in
  let machines = 8 in
  let instance =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Bounded_pareto { alpha = 1.3; x_min = 0.2; x_max = 200. })
      ~load:0.9 ~machines ~n:3000 ()
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp instance;

  let table =
    Rr_util.Table.create ~title:"server farm: 8 machines, bounded-Pareto sizes, rho = 0.9"
      ~columns:[ "policy"; "mean"; "p99"; "max"; "l2"; "max slowdown"; "jain" ]
  in
  let sizes =
    Array.of_list
      (List.map (fun (j : Rr_engine.Job.t) -> j.size) (Rr_workload.Instance.jobs instance))
  in
  List.iter
    (fun policy ->
      let res =
        Temporal_fairness.Run.simulate (Temporal_fairness.Run.config ~machines ~record_trace:true ()) policy instance
      in
      let flows = Rr_engine.Simulator.flows res in
      let s = Rr_metrics.Flow_stats.of_flows flows in
      Rr_util.Table.add_row table
        [
          policy.Rr_engine.Policy.name;
          Rr_util.Table.fcell s.mean;
          Rr_util.Table.fcell s.p99;
          Rr_util.Table.fcell s.max;
          Rr_util.Table.fcell s.l2;
          Rr_util.Table.fcell (Rr_metrics.Flow_stats.max_slowdown ~sizes ~flows);
          Rr_util.Table.fcell (Rr_metrics.Fairness.time_weighted_jain res.trace);
        ])
    [
      Rr_policies.Round_robin.policy;
      Rr_policies.Srpt.policy;
      Rr_policies.Sjf.policy;
      Rr_policies.Setf.policy;
      Rr_policies.Fcfs.policy;
    ];
  Rr_util.Table.print table;

  print_endline
    "Reading the table: SRPT/SJF win on mean latency but are instantaneously unfair\n\
     (Jain index well below 1) and can stretch individual requests badly; RR has a\n\
     Jain index of exactly 1 — every in-flight request always holds an equal share —\n\
     while staying competitive on the variance-sensitive l2 norm, which is the\n\
     trade-off the paper quantifies."
