(* From the textbook scheduler to the paper's idealisation.

   Operating systems implement Round Robin with a ready queue and a time
   quantum; the paper analyses the fluid limit in which all n_t alive jobs
   run simultaneously at rate min(1, m/n_t).  This example shrinks the
   quantum and watches the time-sliced schedule converge to the fluid one,
   then places MLFQ — the practical cousin of SETF — next to both.

   Run with: dune exec examples/textbook_to_theory.exe *)

let () =
  let rng = Rr_util.Prng.create ~seed:12 in
  let instance =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n:400 ()
  in
  Format.printf "%a@.@." Rr_workload.Instance.pp instance;

  let fluid_flows = Temporal_fairness.Run.flows Temporal_fairness.Run.default Rr_policies.Round_robin.policy instance in
  let fluid_l2 = Rr_metrics.Norms.lk ~k:2 fluid_flows in

  let table =
    Rr_util.Table.create ~title:"quantum RR converging to the fluid RR of the paper"
      ~columns:[ "policy"; "l2 norm"; "l2 / fluid-RR l2"; "mean |completion diff|" ]
  in
  let fluid_res = Temporal_fairness.Run.simulate Temporal_fairness.Run.default Rr_policies.Round_robin.policy instance in
  let add_row name policy =
    let res = Temporal_fairness.Run.simulate Temporal_fairness.Run.default policy instance in
    let flows = Rr_engine.Simulator.flows res in
    let diff =
      Rr_util.Kahan.sum
        (Array.map2 (fun a b -> Float.abs (a -. b)) res.completions fluid_res.completions)
      /. Float.of_int (Array.length flows)
    in
    Rr_util.Table.add_row table
      [
        name;
        Rr_util.Table.fcell (Rr_metrics.Norms.lk ~k:2 flows);
        Rr_util.Table.fcell (Rr_metrics.Norms.lk ~k:2 flows /. fluid_l2);
        Rr_util.Table.fcell diff;
      ]
  in
  List.iter
    (fun q -> add_row (Printf.sprintf "quantum-rr q=%g" q) (Rr_policies.Quantum_rr.policy ~quantum:q ()))
    [ 4.0; 1.0; 0.25; 0.05 ];
  add_row "fluid rr (paper)" Rr_policies.Round_robin.policy;
  add_row "mlfq" (Rr_policies.Mlfq.policy ());
  add_row "setf" Rr_policies.Setf.policy;
  Rr_util.Table.print table;

  print_endline
    "The quantum rows approach the fluid row as q shrinks: Theorem 1's guarantees for\n\
     the idealised RR transfer to real time-sliced schedulers with small quanta.\n\
     MLFQ tracks SETF, its own idealisation — and on this memoryless workload both\n\
     pay roughly twice RR's l2, showing the equal-share rule is no accident."
