(* Quickstart: simulate Round Robin and SRPT on a tiny hand-built instance
   and compare their flow-time norms.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Three jobs: (release time, size). *)
  let instance = Rr_workload.Instance.of_jobs [ (0., 4.); (1., 1.); (2., 2.) ] in

  (* Simulate each policy on a single machine at speed 1. *)
  let rr_flows = Temporal_fairness.Run.flows Temporal_fairness.Run.default Rr_policies.Round_robin.policy instance in
  let srpt_flows = Temporal_fairness.Run.flows Temporal_fairness.Run.default Rr_policies.Srpt.policy instance in

  Printf.printf "job   RR flow   SRPT flow\n";
  Array.iteri
    (fun i f -> Printf.printf "%3d   %7.3f   %9.3f\n" i f srpt_flows.(i))
    rr_flows;

  (* The lk-norms of flow time: k = 1 is average latency, k = 2 the
     fairness-sensitive objective of the paper. *)
  List.iter
    (fun k ->
      Printf.printf "l%d norm:  RR = %7.3f   SRPT = %7.3f\n" k
        (Rr_metrics.Norms.lk ~k rr_flows)
        (Rr_metrics.Norms.lk ~k srpt_flows))
    [ 1; 2; 3 ];

  (* A certified lower bound on what ANY scheduler could achieve, from the
     paper's LP relaxation. *)
  let bound = Rr_lp.Lp_bound.opt_norm_lower_bound ~k:2 ~machines:1 ~delta:0.25 instance in
  Printf.printf "certified optimal-l2 lower bound: %7.3f\n\n" bound;

  (* RR's equal shares turned into a concrete single-machine schedule by
     McNaughton's wrap-around rule (Section 2 of the paper). *)
  let res =
    Temporal_fairness.Run.simulate (Temporal_fairness.Run.config ~record_trace:true ())
      Rr_policies.Round_robin.policy instance
  in
  let pieces = Rr_engine.Assignment.of_trace ~machines:1 res.trace in
  print_endline "Round Robin as an actual machine schedule (A = job 0, B = job 1, C = job 2):";
  print_string (Rr_engine.Assignment.render_gantt ~width:70 ~machines:1 pieces)
