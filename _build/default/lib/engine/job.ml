type t = { id : int; arrival : float; size : float }

let make ~id ~arrival ~size =
  if id < 0 then invalid_arg "Job.make: negative id";
  if not (Rr_util.Floatx.is_finite_nonneg arrival) then
    invalid_arg "Job.make: arrival must be a finite non-negative float";
  if not (Float.is_finite size && size > 0.) then
    invalid_arg "Job.make: size must be finite and positive";
  { id; arrival; size }

let compare_release a b =
  match Float.compare a.arrival b.arrival with 0 -> Int.compare a.id b.id | c -> c

let pp ppf j = Format.fprintf ppf "job#%d(r=%g, p=%g)" j.id j.arrival j.size
