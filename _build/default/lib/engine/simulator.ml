exception Invalid_allocation of string

type live = { job : Job.t; mutable remaining : float; mutable attained : float }

type result = {
  jobs : Job.t array;
  completions : float array;
  trace : Trace.t;
  machines : int;
  speed : float;
  events : int;
}

let validate_jobs jobs =
  let n = List.length jobs in
  let seen = Array.make n false in
  List.iter
    (fun (j : Job.t) ->
      if j.id >= n || seen.(j.id) then
        invalid_arg "Simulator.run: job ids must be exactly 0 .. n-1, without duplicates";
      seen.(j.id) <- true)
    jobs;
  n

(* A job counts as complete when its residual work is negligible relative to
   its size; the threshold absorbs the rounding of the analytic advance. *)
let done_threshold (l : live) = 1e-9 *. (1. +. l.job.size)

let validate_decision ~machines ~now ~n_alive (d : Policy.decision) =
  if Array.length d.rates <> n_alive then
    raise (Invalid_allocation "rate vector length differs from the number of alive jobs");
  let sum = ref 0. in
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) then raise (Invalid_allocation "non-finite rate");
      if r < -1e-9 || r > 1. +. 1e-9 then
        raise (Invalid_allocation (Printf.sprintf "rate %g outside [0, 1]" r));
      d.rates.(i) <- Rr_util.Floatx.clamp ~lo:0. ~hi:1. r;
      sum := !sum +. d.rates.(i))
    d.rates;
  if !sum > Float.of_int machines +. 1e-6 then
    raise
      (Invalid_allocation
         (Printf.sprintf "rates sum to %g > %d machines" !sum machines));
  match d.horizon with
  | Some h when not (h > now) ->
      raise (Invalid_allocation (Printf.sprintf "horizon %g not after now = %g" h now))
  | _ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ~machines
    ~(policy : Policy.t) jobs =
  if machines < 1 then invalid_arg "Simulator.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Simulator.run: speed must be finite and positive";
  let n = validate_jobs jobs in
  let jobs_by_id = Array.make n None in
  List.iter (fun (j : Job.t) -> jobs_by_id.(j.id) <- Some j) jobs;
  let jobs_arr =
    Array.map (function Some j -> j | None -> assert false) jobs_by_id
  in
  let order = Array.of_list jobs in
  Array.sort Job.compare_release order;
  let completions = Array.make n Float.nan in
  let pending = ref 0 in
  (* Alive jobs in a swap-remove vector; policy views follow this order. *)
  let alive : live array ref = ref [||] in
  let n_alive = ref 0 in
  let push_alive (j : Job.t) =
    let l = { job = j; remaining = j.size; attained = 0. } in
    let cap = Array.length !alive in
    if !n_alive = cap then begin
      let na = Array.make (Int.max 8 (2 * cap)) l in
      Array.blit !alive 0 na 0 !n_alive;
      alive := na
    end;
    !alive.(!n_alive) <- l;
    incr n_alive
  in
  let remove_alive i =
    decr n_alive;
    !alive.(i) <- !alive.(!n_alive)
  in
  let admit_upto now =
    while !pending < n && order.(!pending).arrival <= now do
      push_alive order.(!pending);
      incr pending
    done
  in
  let view_of (l : live) : Policy.view =
    {
      id = l.job.id;
      arrival = l.job.arrival;
      attained = l.attained;
      size = (if policy.clairvoyant then Some l.job.size else None);
      remaining = (if policy.clairvoyant then Some l.remaining else None);
    }
  in
  let trace_rev = ref [] in
  let events = ref 0 in
  let now = ref (if n > 0 then order.(0).arrival else 0.) in
  admit_upto !now;
  while !n_alive > 0 || !pending < n do
    incr events;
    if !events > max_events then
      raise (Invalid_allocation (Printf.sprintf "exceeded max_events = %d" max_events));
    if !n_alive = 0 then begin
      (* Idle period: jump straight to the next arrival. *)
      now := order.(!pending).arrival;
      admit_upto !now
    end
    else begin
      let views = Array.init !n_alive (fun i -> view_of !alive.(i)) in
      let decision = policy.allocate ~now:!now ~machines ~speed views in
      validate_decision ~machines ~now:!now ~n_alive:!n_alive decision;
      let rates = decision.rates in
      let next_arrival = if !pending < n then Some order.(!pending).arrival else None in
      (* Earliest analytic completion under the current constant rates. *)
      let completion_at = Array.make !n_alive Float.infinity in
      for i = 0 to !n_alive - 1 do
        let l = !alive.(i) in
        let v = rates.(i) *. speed in
        if v > 0. then completion_at.(i) <- !now +. (l.remaining /. v)
      done;
      let t_next = ref Float.infinity in
      Array.iter (fun t -> if t < !t_next then t_next := t) completion_at;
      (match next_arrival with Some a when a < !t_next -> t_next := a | _ -> ());
      (match decision.horizon with Some h when h < !t_next -> t_next := h | _ -> ());
      if not (Float.is_finite !t_next) then
        raise
          (Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then begin
        let entries =
          Array.init !n_alive (fun i ->
              let l = !alive.(i) in
              { Trace.job = l.job.id; arrival = l.job.arrival; rate = rates.(i) })
        in
        trace_rev := { Trace.t0 = !now; t1 = !t_next; alive = entries } :: !trace_rev
      end;
      for i = 0 to !n_alive - 1 do
        let l = !alive.(i) in
        let delta = rates.(i) *. speed *. dt in
        l.remaining <- l.remaining -. delta;
        l.attained <- l.attained +. delta
      done;
      now := !t_next;
      (* Retire finished jobs; iterate downwards because of swap-remove. *)
      for i = !n_alive - 1 downto 0 do
        let l = !alive.(i) in
        if l.remaining <= done_threshold l then begin
          completions.(l.job.id) <- !now;
          remove_alive i
        end
      done;
      admit_upto !now
    end
  done;
  {
    jobs = jobs_arr;
    completions;
    trace = List.rev !trace_rev;
    machines;
    speed;
    events = !events;
  }

let flows r = Array.mapi (fun i c -> c -. r.jobs.(i).Job.arrival) r.completions

let total_flow r = Rr_util.Kahan.sum (flows r)
