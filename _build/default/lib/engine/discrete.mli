(** Fixed-step reference simulator.

    A deliberately naive discretisation of the scheduling model: time
    advances in fixed steps of [dt], the policy is re-consulted at every
    step, and completions are detected at step boundaries.  Its only
    purpose is to cross-validate the exact event-driven {!Simulator}: for
    every policy the two must agree on all completion times up to
    [O(dt)] (a property test in the suite), which guards the event
    simulator's analytic clock-advance logic against algebra bugs.

    Do not use this for experiments — it is both slower and less exact. *)

val run :
  dt:float ->
  ?speed:float ->
  ?max_steps:int ->
  machines:int ->
  policy:Policy.t ->
  Job.t list ->
  float array
(** [run ~dt ~machines ~policy jobs] returns completion times indexed by
    job id.  Completion is reported at the end of the step in which the
    remaining work reaches zero, so reported times over-estimate the exact
    ones by at most [dt] (plus accumulated allocation drift for policies
    with continuous priorities).

    @param max_steps safety bound, default [10_000_000].
    @raise Invalid_argument on [dt <= 0.] or the same conditions as
      {!Simulator.run}.
    @raise Simulator.Invalid_allocation as the exact simulator would. *)
