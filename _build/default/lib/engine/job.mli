(** Jobs of the online scheduling model of Section 2 of the paper.

    A job [j] has a release (arrival) time [r_j], the first instant the
    online scheduler learns of its existence, and a processing requirement
    (size) [p_j].  Identifiers are dense non-negative integers and double
    as array indices throughout the repository. *)

type t = private { id : int; arrival : float; size : float }

val make : id:int -> arrival:float -> size:float -> t
(** @raise Invalid_argument when [id < 0], [arrival] is not a finite
    non-negative float, or [size] is not finite and strictly positive. *)

val compare_release : t -> t -> int
(** Order by [(arrival, id)].  This is the tie-broken arrival order used by
    the paper's rank [|A(t, r_j)|]: the job with the smaller identifier is
    deemed to have arrived first among simultaneous arrivals. *)

val pp : Format.formatter -> t -> unit
