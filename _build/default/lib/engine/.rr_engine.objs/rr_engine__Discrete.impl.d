lib/engine/discrete.ml: Array Float Job List Policy Printf Rr_util Simulator
