lib/engine/job.mli: Format
