lib/engine/assignment.ml: Array Buffer Bytes Char Float Int List Printf Rr_util Trace
