lib/engine/policy.ml:
