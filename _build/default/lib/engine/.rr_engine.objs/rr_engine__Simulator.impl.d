lib/engine/simulator.ml: Array Float Int Job List Policy Printf Rr_util Trace
