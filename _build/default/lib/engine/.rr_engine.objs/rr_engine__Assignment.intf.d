lib/engine/assignment.mli: Trace
