lib/engine/job.ml: Float Format Int Rr_util
