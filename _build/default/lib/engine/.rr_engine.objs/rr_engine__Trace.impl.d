lib/engine/trace.ml: Array List Rr_util
