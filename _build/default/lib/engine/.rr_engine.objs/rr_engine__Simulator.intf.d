lib/engine/simulator.mli: Job Policy Trace
