lib/engine/policy.mli:
