lib/engine/discrete.mli: Job Policy
