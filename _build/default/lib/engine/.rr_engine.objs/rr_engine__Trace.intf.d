lib/engine/trace.mli:
