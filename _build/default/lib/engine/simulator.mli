(** Exact event-driven simulation of rate-based schedules.

    The simulator advances continuous time from event to event: job
    arrivals, job completions, and policy-requested horizons.  Because all
    supported policies keep their allocation constant between events, the
    evolution of every job's remaining work is linear within a segment and
    the clock can be advanced analytically — completion times are exact up
    to floating-point rounding, with no time-step discretisation error.

    Speed augmentation: a policy rate [m_j(t) in \[0,1\]] results in
    processing at rate [speed * m_j(t)], matching the [s]-speed analysis of
    the paper (RR is given [eta = 2k(1 + 10 eps)] speed in Theorem 1). *)

exception Invalid_allocation of string
(** Raised when a policy emits rates outside [\[0, 1\]], rates summing to
    more than the machine count, a horizon not in the future, or an
    allocation under which alive jobs can never make progress again. *)

type result = {
  jobs : Job.t array;  (** All jobs, indexed by job id. *)
  completions : float array;  (** Completion time [C_j], indexed by job id. *)
  trace : Trace.t;  (** Piecewise-constant trace; [\[\]] unless recorded. *)
  machines : int;
  speed : float;
  events : int;  (** Number of simulation events processed. *)
}

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  policy:Policy.t ->
  Job.t list ->
  result
(** [run ~machines ~policy jobs] simulates [policy] on [jobs] until every
    job completes.

    @param record_trace keep the full segment trace (default [false]; the
      dual-fitting verifier and fairness time series need it).
    @param speed resource augmentation factor, default [1.].
    @param max_events safety bound on the number of events (default
      [10_000_000]); exceeding it raises [Invalid_allocation].
    @raise Invalid_argument when job ids are not exactly [0 .. n-1], when
      [machines < 1], or when [speed] is not finite and positive. *)

val flows : result -> float array
(** Flow times [F_j = C_j - r_j], indexed by job id. *)

val total_flow : result -> float
(** Compensated sum of all flow times (the l1 objective, unrooted). *)
