(** From rate schedules to concrete machine schedules.

    Section 2 of the paper notes that any rate profile [{m_j(t)}] with
    [m_j(t) in \[0,1\]] and [sum_j m_j(t) <= m] "can be easily translated
    into a feasible schedule" in which each machine runs at most one job at
    a time and no job runs on two machines simultaneously.  This module
    {e implements} that claim: within every trace segment the jobs' work
    quanta [m_j * duration] are laid out across the [m] machines by
    McNaughton's wrap-around rule.  A job whose quantum wraps from the end
    of one machine to the start of the next never overlaps itself because
    its quantum is at most the segment length ([m_j <= 1]) — the classical
    argument, executable and checked by {!validate} in the test suite. *)

type piece = {
  job : int;
  machine : int;  (** 0-based machine index. *)
  t0 : float;
  t1 : float;  (** Execution interval, [t0 < t1]. *)
}

val of_trace : machines:int -> Trace.t -> piece list
(** Concrete machine schedule realising the traced rate profile,
    chronological within each machine.
    @raise Invalid_argument when [machines < 1] or a segment over-allocates
    (which a {!Simulator} trace never does). *)

val validate : machines:int -> piece list -> (unit, string) result
(** Feasibility check: pieces lie on valid machines, no two pieces overlap
    on one machine, and no job occupies two machines at once. *)

val work_of_job : job:int -> piece list -> float
(** Total executed time of a job across all pieces (equals its size divided
    by the speed for completed traces — a conservation test). *)

val render_gantt : ?width:int -> machines:int -> piece list -> string
(** ASCII Gantt chart, one row per machine, jobs shown as repeating
    single-character labels ('A' for job 0, ...), '.' for idle.  [width]
    is the number of character columns (default 72).  Intended for small
    demonstration instances. *)
