(** Piecewise-constant execution traces.

    Between consecutive simulator events every policy in this repository
    keeps its rate allocation constant, so a run decomposes exactly into
    segments [\[t0, t1)] carrying the alive set and its rates.  The
    dual-fitting verifier ({!Rr_dualfit}) and the fairness time series of
    {!Rr_metrics} consume this representation; all integrals over the trace
    are closed-form per segment. *)

type entry = {
  job : int;  (** Job identifier. *)
  arrival : float;  (** Release time of the job (denormalises {!Rr_engine.Job.t}). *)
  rate : float;  (** Machine share in [\[0,1\]], {e excluding} the speed factor. *)
}

type segment = {
  t0 : float;
  t1 : float;  (** [t0 < t1]. *)
  alive : entry array;  (** Every alive job, including those allocated rate 0. *)
}

type t = segment list
(** Chronological, gap-free over the busy periods of the schedule. *)

val duration : segment -> float

val num_alive : segment -> int

val is_overloaded : machines:int -> segment -> bool
(** The paper's overloaded times [T_o = {t : |A(t)| >= m}]; the complement
    is the underloaded set [T_u]. *)

val total_work : speed:float -> t -> float
(** Work processed over the whole trace: [speed * sum rate * duration].
    Equals the total size of completed jobs (work conservation). *)

val fold : ('acc -> segment -> 'acc) -> 'acc -> t -> 'acc

val end_time : t -> float
(** [t1] of the last segment; 0. for the empty trace. *)
