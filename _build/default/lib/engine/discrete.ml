let run ~dt ?(speed = 1.) ?(max_steps = 10_000_000) ~machines ~(policy : Policy.t) jobs =
  if dt <= 0. then invalid_arg "Discrete.run: dt must be positive";
  if machines < 1 then invalid_arg "Discrete.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Discrete.run: speed must be finite and positive";
  let order = Array.of_list jobs in
  let n = Array.length order in
  let seen = Array.make n false in
  Array.iter
    (fun (j : Job.t) ->
      if j.id >= n || seen.(j.id) then
        invalid_arg "Discrete.run: job ids must be exactly 0 .. n-1, without duplicates";
      seen.(j.id) <- true)
    order;
  Array.sort Job.compare_release order;
  let completions = Array.make n Float.nan in
  let remaining = Array.make n 0. in
  let attained = Array.make n 0. in
  Array.iter (fun (j : Job.t) -> remaining.(j.id) <- j.size) order;
  let alive : Job.t list ref = ref [] in
  let pending = ref 0 in
  let t = ref (if n > 0 then order.(0).arrival else 0.) in
  let done_count = ref 0 in
  let steps = ref 0 in
  while !done_count < n do
    incr steps;
    if !steps > max_steps then
      raise (Simulator.Invalid_allocation (Printf.sprintf "exceeded max_steps = %d" max_steps));
    while !pending < n && order.(!pending).arrival <= !t do
      alive := order.(!pending) :: !alive;
      incr pending
    done;
    match !alive with
    | [] ->
        (* Idle: jump to the next arrival (grid-aligned stepping is not
           needed while nothing is running). *)
        if !pending < n then t := order.(!pending).arrival
        else assert false (* done_count < n implies alive or pending jobs *)
    | alive_jobs ->
        let views =
          Array.of_list
            (List.map
               (fun (j : Job.t) ->
                 {
                   Policy.id = j.id;
                   arrival = j.arrival;
                   attained = attained.(j.id);
                   size = (if policy.clairvoyant then Some j.size else None);
                   remaining = (if policy.clairvoyant then Some remaining.(j.id) else None);
                 })
               alive_jobs)
        in
        let decision = policy.allocate ~now:!t ~machines ~speed views in
        if Array.length decision.Policy.rates <> Array.length views then
          raise (Simulator.Invalid_allocation "rate vector length mismatch");
        t := !t +. dt;
        Array.iteri
          (fun i (v : Policy.view) ->
            let r = Rr_util.Floatx.clamp ~lo:0. ~hi:1. decision.Policy.rates.(i) in
            let delta = r *. speed *. dt in
            remaining.(v.id) <- remaining.(v.id) -. delta;
            attained.(v.id) <- attained.(v.id) +. delta)
          views;
        alive :=
          List.filter
            (fun (j : Job.t) ->
              if remaining.(j.id) <= 1e-9 *. (1. +. j.size) then begin
                completions.(j.id) <- !t;
                incr done_count;
                false
              end
              else true)
            !alive
  done;
  completions
