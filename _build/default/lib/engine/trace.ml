type entry = { job : int; arrival : float; rate : float }

type segment = { t0 : float; t1 : float; alive : entry array }

type t = segment list

let duration s = s.t1 -. s.t0

let num_alive s = Array.length s.alive

let is_overloaded ~machines s = num_alive s >= machines

let total_work ~speed trace =
  let acc = Rr_util.Kahan.create () in
  List.iter
    (fun s ->
      Array.iter (fun e -> Rr_util.Kahan.add acc (e.rate *. speed *. duration s)) s.alive)
    trace;
  Rr_util.Kahan.total acc

let fold f init trace = List.fold_left f init trace

let end_time trace =
  match List.rev trace with [] -> 0. | last :: _ -> last.t1
