type piece = { job : int; machine : int; t0 : float; t1 : float }

(* Quanta shorter than this (relative to the segment) are dropped: they are
   float dust and would create degenerate zero-length pieces. *)
let quantum_eps = 1e-12

let of_trace ~machines trace =
  if machines < 1 then invalid_arg "Assignment.of_trace: machines must be >= 1";
  let pieces = ref [] in
  List.iter
    (fun (s : Trace.segment) ->
      let dur = Trace.duration s in
      let total =
        Array.fold_left (fun acc (e : Trace.entry) -> acc +. (e.rate *. dur)) 0. s.alive
      in
      if total > (Float.of_int machines *. dur) +. 1e-6 then
        invalid_arg "Assignment.of_trace: segment over-allocates the machines";
      (* McNaughton wrap-around: fill machine 0 from the segment start, and
         wrap the overflow of each quantum onto the next machine. *)
      let machine = ref 0 in
      let offset = ref 0. in
      Array.iter
        (fun (e : Trace.entry) ->
          let quantum = ref (e.rate *. dur) in
          while !quantum > dur *. quantum_eps do
            let room = dur -. !offset in
            let take = Float.min room !quantum in
            if take > dur *. quantum_eps then
              pieces :=
                {
                  job = e.job;
                  machine = !machine;
                  t0 = s.t0 +. !offset;
                  t1 = s.t0 +. !offset +. take;
                }
                :: !pieces;
            quantum := !quantum -. take;
            offset := !offset +. take;
            if !offset >= dur -. (dur *. quantum_eps) then begin
              offset := 0.;
              incr machine
            end
          done)
        s.alive)
    trace;
  List.rev !pieces

let overlap a_lo a_hi b_lo b_hi = Float.min a_hi b_hi -. Float.max a_lo b_lo > 1e-9

let validate ~machines pieces =
  let rec check_pairs = function
    | [] -> Ok ()
    | p :: rest ->
        if p.machine < 0 || p.machine >= machines then
          Error (Printf.sprintf "piece of job %d on invalid machine %d" p.job p.machine)
        else if not (p.t0 < p.t1) then
          Error (Printf.sprintf "empty or inverted piece for job %d" p.job)
        else begin
          let conflict =
            List.find_opt
              (fun q ->
                overlap p.t0 p.t1 q.t0 q.t1 && (q.machine = p.machine || q.job = p.job))
              rest
          in
          match conflict with
          | Some q when q.machine = p.machine ->
              Error
                (Printf.sprintf "machine %d runs jobs %d and %d simultaneously" p.machine
                   p.job q.job)
          | Some q ->
              Error
                (Printf.sprintf "job %d runs on machines %d and %d simultaneously" p.job
                   p.machine q.machine)
          | None -> check_pairs rest
        end
  in
  check_pairs pieces

let work_of_job ~job pieces =
  let acc = Rr_util.Kahan.create () in
  List.iter (fun p -> if p.job = job then Rr_util.Kahan.add acc (p.t1 -. p.t0)) pieces;
  Rr_util.Kahan.total acc

let render_gantt ?(width = 72) ~machines pieces =
  match pieces with
  | [] -> "(empty schedule)\n"
  | first :: _ ->
      let t_min, t_max =
        List.fold_left
          (fun (lo, hi) p -> (Float.min lo p.t0, Float.max hi p.t1))
          (first.t0, first.t1) pieces
      in
      let span = Float.max 1e-9 (t_max -. t_min) in
      let rows = Array.init machines (fun _ -> Bytes.make width '.') in
      let label job = Char.chr (Char.code 'A' + (job mod 26)) in
      List.iter
        (fun p ->
          let c0 = int_of_float (Float.of_int width *. (p.t0 -. t_min) /. span) in
          let c1 = int_of_float (Float.of_int width *. (p.t1 -. t_min) /. span) in
          for c = Int.max 0 c0 to Int.min (width - 1) (Int.max c0 (c1 - 1)) do
            Bytes.set rows.(p.machine) c (label p.job)
          done)
        pieces;
      let buf = Buffer.create (machines * (width + 16)) in
      Buffer.add_string buf (Printf.sprintf "time %g .. %g\n" t_min t_max);
      Array.iteri
        (fun i row -> Buffer.add_string buf (Printf.sprintf "m%-2d |%s|\n" i (Bytes.to_string row)))
        rows;
      Buffer.contents buf
