open Rr_engine

let of_trace ~speed ~sizes trace =
  if speed <= 0. then invalid_arg "Fractional.of_trace: speed must be positive";
  let n = Array.length sizes in
  let remaining = Hashtbl.create 64 in
  let get_remaining job =
    match Hashtbl.find_opt remaining job with
    | Some r -> r
    | None ->
        if job < 0 || job >= n then
          invalid_arg (Printf.sprintf "Fractional.of_trace: no size for job %d" job);
        sizes.(job)
  in
  let acc = Rr_util.Kahan.create () in
  List.iter
    (fun (s : Trace.segment) ->
      let dur = Trace.duration s in
      Array.iter
        (fun (e : Trace.entry) ->
          let rem0 = get_remaining e.job in
          let rem1 = Float.max 0. (rem0 -. (e.rate *. speed *. dur)) in
          (* Linear decline: the exact integral is the trapezoid. *)
          Rr_util.Kahan.add acc (dur *. (rem0 +. rem1) /. (2. *. sizes.(e.job)));
          Hashtbl.replace remaining e.job rem1)
        s.alive)
    trace;
  Rr_util.Kahan.total acc

let of_result (res : Simulator.result) =
  if res.trace = [] && Array.length res.jobs > 0 then
    invalid_arg "Fractional.of_result: result carries no trace";
  let sizes = Array.map (fun (j : Job.t) -> j.size) res.jobs in
  of_trace ~speed:res.speed ~sizes res.trace
