(** Fractional flow time.

    The fractional flow of job [j] is [int (remaining_j(t) / p_j) dt] from
    release to completion: the job counts only by its unfinished fraction.
    It lower-bounds the (integral) flow time and is the natural objective
    of LP relaxations like the paper's LP_primal; comparing the two
    quantifies how much of a schedule's flow time is spent on
    nearly-finished jobs — large gaps are the signature of equal-share
    policies like RR, which keep many almost-done jobs alive. *)

val of_trace : speed:float -> sizes:float array -> Rr_engine.Trace.t -> float
(** Total fractional flow time of the traced schedule.  [sizes] is indexed
    by job id; [speed] must match the simulation.  Remaining work declines
    linearly within a segment, so each segment contributes its exact
    trapezoid.
    @raise Invalid_argument when a traced job id has no size or
    [speed <= 0.]. *)

val of_result : Rr_engine.Simulator.result -> float
(** Convenience wrapper reading sizes and speed from a simulation result
    (which must carry a trace). *)
