(** Instantaneous fairness measures over execution traces.

    The paper distinguishes instantaneous fairness — equal machine shares
    at every moment, the property RR has by construction — from temporal
    fairness measured by lk-norms.  This module quantifies the former:
    Jain's index of the rate allocation over time.  RR scores exactly 1.0
    whenever at least as many jobs as machines are alive; priority policies
    like SRPT score near [m / n_t]. *)

val segment_jain : Rr_engine.Trace.segment -> float
(** Jain index of the rate vector of one segment (1.0 when at most one job
    is alive). *)

val time_weighted_jain : ?min_alive:int -> Rr_engine.Trace.t -> float
(** Duration-weighted average of {!segment_jain} over all segments with at
    least [min_alive] alive jobs (default 2; with a single alive job every
    policy is trivially fair).  Returns 1.0 when no segment qualifies. *)

val jain_series :
  sample_every:float -> Rr_engine.Trace.t -> (float * float) list
(** Sampled time series [(t, jain_t)] for plotting; samples falling into
    gaps between segments are skipped.
    @raise Invalid_argument when [sample_every <= 0.]. *)

val share_of_job : job:int -> Rr_engine.Trace.t -> float
(** Fraction of the job's alive time during which it received a non-zero
    rate; 1.0 for RR (never starves anyone), potentially ~0 for the long
    job under SRPT in the starvation scenario.  Returns 1.0 for a job
    absent from the trace. *)
