open Rr_engine

let segment_jain (s : Trace.segment) =
  if Array.length s.alive <= 1 then 1.
  else Rr_util.Stats.jain_index (Array.map (fun (e : Trace.entry) -> e.rate) s.alive)

let time_weighted_jain ?(min_alive = 2) trace =
  let num = Rr_util.Kahan.create () and den = Rr_util.Kahan.create () in
  List.iter
    (fun (s : Trace.segment) ->
      if Trace.num_alive s >= min_alive then begin
        let d = Trace.duration s in
        Rr_util.Kahan.add num (d *. segment_jain s);
        Rr_util.Kahan.add den d
      end)
    trace;
  let d = Rr_util.Kahan.total den in
  if d <= 0. then 1. else Rr_util.Kahan.total num /. d

let jain_series ~sample_every trace =
  if sample_every <= 0. then invalid_arg "Fairness.jain_series: sample_every must be positive";
  let t_end = Trace.end_time trace in
  let rec walk segs t acc =
    if t > t_end then List.rev acc
    else
      match segs with
      | [] -> List.rev acc
      | (s : Trace.segment) :: rest ->
          if t < s.t0 then walk segs (t +. sample_every) acc
          else if t >= s.t1 then walk rest t acc
          else walk segs (t +. sample_every) ((t, segment_jain s) :: acc)
  in
  walk trace 0. []

let share_of_job ~job trace =
  let served = Rr_util.Kahan.create () and alive = Rr_util.Kahan.create () in
  List.iter
    (fun (s : Trace.segment) ->
      Array.iter
        (fun (e : Trace.entry) ->
          if e.job = job then begin
            let d = Trace.duration s in
            Rr_util.Kahan.add alive d;
            if e.rate > 0. then Rr_util.Kahan.add served d
          end)
        s.alive)
    trace;
  let a = Rr_util.Kahan.total alive in
  if a <= 0. then 1. else Rr_util.Kahan.total served /. a
