let power_sum ~k flows =
  if k < 1 then invalid_arg "Norms.power_sum: k must be >= 1";
  let acc = Rr_util.Kahan.create () in
  Array.iter
    (fun f ->
      if f < 0. then invalid_arg "Norms.power_sum: negative flow time";
      Rr_util.Kahan.add acc (Rr_util.Floatx.powi f k))
    flows;
  Rr_util.Kahan.total acc

let lk ~k flows =
  if Array.length flows = 0 then 0.
  else power_sum ~k flows ** (1. /. Float.of_int k)

let linf flows = if Array.length flows = 0 then 0. else Rr_util.Floatx.max_arr flows

let normalized_lk ~k flows =
  let n = Array.length flows in
  if n = 0 then 0. else (power_sum ~k flows /. Float.of_int n) ** (1. /. Float.of_int k)

let weighted_power_sum ~k ~weights flows =
  if k < 1 then invalid_arg "Norms.weighted_power_sum: k must be >= 1";
  if Array.length weights <> Array.length flows then
    invalid_arg "Norms.weighted_power_sum: length mismatch";
  let acc = Rr_util.Kahan.create () in
  Array.iteri
    (fun i f ->
      if f < 0. then invalid_arg "Norms.weighted_power_sum: negative flow time";
      if weights.(i) < 0. then invalid_arg "Norms.weighted_power_sum: negative weight";
      Rr_util.Kahan.add acc (weights.(i) *. Rr_util.Floatx.powi f k))
    flows;
  Rr_util.Kahan.total acc

let weighted_lk ~k ~weights flows =
  if Array.length flows = 0 then 0.
  else weighted_power_sum ~k ~weights flows ** (1. /. Float.of_int k)
