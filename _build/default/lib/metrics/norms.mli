(** lk-norms of flow time — the paper's objective family.

    For flow times [F_1 .. F_n] the lk-norm is [(sum_j F_j^k)^(1/k)];
    [k = 1] is total (average) flow time, [k = 2] the variance-sensitive
    norm Theorem 1 highlights, and [k = infinity] the maximum flow time.
    The paper's analysis works with the unrooted k-th power sum, exposed
    separately because competitive ratios for it differ from norm ratios
    by the k-th root. *)

val power_sum : k:int -> float array -> float
(** [power_sum ~k flows = sum_j flows.(j)^k], compensated summation.
    @raise Invalid_argument when [k < 1] or any flow is negative. *)

val lk : k:int -> float array -> float
(** [lk ~k flows = (power_sum ~k flows)^(1/k)]; 0. on the empty array. *)

val linf : float array -> float
(** Maximum flow time; 0. on the empty array. *)

val normalized_lk : k:int -> float array -> float
(** [(power_sum / n)^(1/k)], the per-job (mean-like) lk norm; 0. on the
    empty array.  Non-decreasing in [k] by the power-mean inequality —
    a property-test invariant. *)

val weighted_power_sum : k:int -> weights:float array -> float array -> float
(** [sum_j w_j F_j^k] — the weighted flow-time objective of the
    dual-fitting literature the paper builds on.
    @raise Invalid_argument on mismatched lengths, [k < 1], negative
    weights, or negative flows. *)

val weighted_lk : k:int -> weights:float array -> float array -> float
(** k-th root of {!weighted_power_sum}; 0. on empty input. *)
