(** System-occupancy view of a trace.

    The number of alive jobs [n(t)] is the derivative of the total-flow
    objective: integrating the alive count over time gives exactly the sum
    of flow times (every alive job accrues flow at rate 1).  This identity
    is used both as a cross-check of the simulator (property test) and for
    occupancy statistics: RR's behaviour is governed by [n_t] through its
    share [min(1, m/n_t)]. *)

val alive_integral : Rr_engine.Trace.t -> float
(** [int n(t) dt] over the trace — equals the total flow time of the
    schedule up to float rounding (jobs are alive exactly from release to
    completion). *)

val peak_alive : Rr_engine.Trace.t -> int
(** Maximum number of simultaneously alive jobs; 0 for the empty trace. *)

val mean_alive : Rr_engine.Trace.t -> float
(** Time-average alive count over the busy periods covered by the trace;
    0. for the empty trace. *)

val alive_series : sample_every:float -> Rr_engine.Trace.t -> (float * int) list
(** Sampled [(t, n(t))] series; samples in idle gaps are skipped.
    @raise Invalid_argument when [sample_every <= 0.]. *)
