lib/metrics/timeline.mli: Rr_engine
