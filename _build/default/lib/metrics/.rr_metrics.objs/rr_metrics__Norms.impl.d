lib/metrics/norms.ml: Array Float Rr_util
