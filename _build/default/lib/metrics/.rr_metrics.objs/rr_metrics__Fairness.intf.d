lib/metrics/fairness.mli: Rr_engine
