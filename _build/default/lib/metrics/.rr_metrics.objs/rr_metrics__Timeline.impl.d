lib/metrics/timeline.ml: Float Int List Rr_engine Rr_util Trace
