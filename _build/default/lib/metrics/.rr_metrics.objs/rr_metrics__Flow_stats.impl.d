lib/metrics/flow_stats.ml: Array Format Norms Rr_util
