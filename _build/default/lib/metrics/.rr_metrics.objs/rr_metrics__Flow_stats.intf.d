lib/metrics/flow_stats.mli: Format
