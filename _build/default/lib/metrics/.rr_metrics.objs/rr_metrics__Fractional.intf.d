lib/metrics/fractional.mli: Rr_engine
