lib/metrics/norms.mli:
