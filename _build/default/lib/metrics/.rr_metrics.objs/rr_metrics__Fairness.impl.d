lib/metrics/fairness.ml: Array List Rr_engine Rr_util Trace
