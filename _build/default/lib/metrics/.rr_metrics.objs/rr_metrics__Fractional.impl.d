lib/metrics/fractional.ml: Array Float Hashtbl Job List Printf Rr_engine Rr_util Simulator Trace
