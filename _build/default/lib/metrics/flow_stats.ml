type t = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  l1 : float;
  l2 : float;
  l3 : float;
}

let of_flows flows =
  if Array.length flows = 0 then invalid_arg "Flow_stats.of_flows: empty array";
  let w = Rr_util.Welford.of_array flows in
  {
    n = Array.length flows;
    mean = Rr_util.Welford.mean w;
    variance = Rr_util.Welford.variance w;
    stddev = Rr_util.Welford.stddev w;
    min = Rr_util.Welford.min w;
    max = Rr_util.Welford.max w;
    p50 = Rr_util.Stats.percentile flows ~p:50.;
    p90 = Rr_util.Stats.percentile flows ~p:90.;
    p99 = Rr_util.Stats.percentile flows ~p:99.;
    l1 = Norms.power_sum ~k:1 flows;
    l2 = Norms.lk ~k:2 flows;
    l3 = Norms.lk ~k:3 flows;
  }

let slowdowns ~sizes ~flows =
  if Array.length sizes <> Array.length flows then
    invalid_arg "Flow_stats.slowdowns: length mismatch";
  Array.map2
    (fun p f ->
      if p <= 0. then invalid_arg "Flow_stats.slowdowns: non-positive size";
      f /. p)
    sizes flows

let max_slowdown ~sizes ~flows =
  let s = slowdowns ~sizes ~flows in
  if Array.length s = 0 then 0. else Rr_util.Floatx.max_arr s

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4f sd=%.4f max=%.4f p50=%.4f p99=%.4f l1=%.4f l2=%.4f l3=%.4f" t.n t.mean
    t.stddev t.max t.p50 t.p99 t.l1 t.l2 t.l3
