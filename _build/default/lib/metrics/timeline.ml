open Rr_engine

let alive_integral trace =
  let acc = Rr_util.Kahan.create () in
  List.iter
    (fun (s : Trace.segment) ->
      Rr_util.Kahan.add acc (Float.of_int (Trace.num_alive s) *. Trace.duration s))
    trace;
  Rr_util.Kahan.total acc

let peak_alive trace =
  List.fold_left (fun acc (s : Trace.segment) -> Int.max acc (Trace.num_alive s)) 0 trace

let mean_alive trace =
  let busy = Rr_util.Kahan.create () in
  List.iter (fun (s : Trace.segment) -> Rr_util.Kahan.add busy (Trace.duration s)) trace;
  let d = Rr_util.Kahan.total busy in
  if d <= 0. then 0. else alive_integral trace /. d

let alive_series ~sample_every trace =
  if sample_every <= 0. then invalid_arg "Timeline.alive_series: sample_every must be positive";
  let t_end = Trace.end_time trace in
  let rec walk segs t acc =
    if t > t_end then List.rev acc
    else
      match segs with
      | [] -> List.rev acc
      | (s : Trace.segment) :: rest ->
          if t < s.t0 then walk segs (t +. sample_every) acc
          else if t >= s.t1 then walk rest t acc
          else walk segs (t +. sample_every) ((t, Trace.num_alive s) :: acc)
  in
  walk trace 0. []
