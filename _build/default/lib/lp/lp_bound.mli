(** The paper's LP relaxation (Section 3.1), solved exactly.

    LP_primal:
    {v
      min   sum_j sum_{t >= r_j} gamma * (x_jt / p_j) * ((t - r_j)^k + p_j^k)
      s.t.  sum_t x_jt >= p_j          for every job j
            sum_j x_jt <= m            for every time t
            x_jt >= 0
    v}

    After discretising time into slots of width [delta] this is a
    transportation problem between jobs and slots, solved exactly by the
    min-cost-flow substrate {!Rr_flow.Mcmf}.  The per-unit-work cost of a
    job inside a slot can be evaluated at the earliest instant the job may
    run in that slot ([`Slot_start], which only lowers the objective, so
    the discrete value {e lower-bounds} the continuous LP) or at the slot
    end ([`Slot_end], which upper-bounds the continuous LP).  The paper
    shows LP <= 2 gamma OPT^k, so with [gamma = 1]
    [`Slot_start]-value / 2 is a certified lower bound on OPT's sum of
    k-th powers of flow time — the quantity competitive ratios in the
    benchmark suite are measured against. *)

type mode = Slot_start | Slot_end

val value :
  ?mode:mode ->
  ?gamma:float ->
  k:int ->
  machines:int ->
  delta:float ->
  Rr_workload.Instance.t ->
  float
(** LP optimum under the given discretisation (default [mode = Slot_start],
    [gamma = 1.]).  The slot horizon is chosen large enough that the
    transportation problem is always feasible.
    @raise Invalid_argument when [k < 1], [machines < 1], [delta <= 0.],
    or the discretisation would need more than 200_000 slots.
    @raise Failure if the solver cannot route all work (horizon bug — this
    indicates an internal error, not bad input). *)

val opt_power_lower_bound :
  k:int -> machines:int -> delta:float -> Rr_workload.Instance.t -> float
(** [value ~mode:Slot_start ~gamma:1.] divided by 2: a certified lower
    bound on [min_schedules sum_j (C_j - r_j)^k].  Returns 0. for the
    empty instance. *)

val opt_norm_lower_bound :
  k:int -> machines:int -> delta:float -> Rr_workload.Instance.t -> float
(** k-th root of {!opt_power_lower_bound}: a lower bound on the optimal
    lk-norm of flow time. *)

type solution = {
  value : float;  (** LP objective, as from {!value}. *)
  delta : float;  (** Slot width the solution is expressed in. *)
  allocation : (float * float) list array;
      (** Per job id: [(slot_start, work)] pairs with positive work,
          chronological. *)
}

val solve :
  ?mode:mode ->
  ?gamma:float ->
  k:int ->
  machines:int ->
  delta:float ->
  Rr_workload.Instance.t ->
  solution
(** Like {!value} but also extracts the optimal fractional schedule from
    the flow network — how the LP chooses to spread each job's work over
    time.  The test suite checks the LP-feasibility invariants on it
    (release times respected, all work scheduled, slot capacity obeyed). *)

val completion_profile : solution -> job:int -> float
(** The fractional completion time of a job in the LP solution: the end of
    the last slot carrying any of its work.  Lower-bounds nothing by
    itself but shows where the relaxation finishes each job. *)
