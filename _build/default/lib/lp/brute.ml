let optimal_power_sum ~k ~machines jobs =
  if k < 1 then invalid_arg "Brute.optimal_power_sum: k must be >= 1";
  if machines < 1 then invalid_arg "Brute.optimal_power_sum: machines must be >= 1";
  List.iter
    (fun (r, p) ->
      if r < 0 || p <= 0 then
        invalid_arg "Brute.optimal_power_sum: need arrival >= 0 and size > 0")
    jobs;
  let n = List.length jobs in
  let total = List.fold_left (fun acc (_, p) -> acc + p) 0 jobs in
  if n > 8 || total > 64 then invalid_arg "Brute.optimal_power_sum: instance too large";
  if n = 0 then 0.
  else begin
    let arrival = Array.of_list (List.map fst jobs) in
    let size = Array.of_list (List.map snd jobs) in
    let max_arrival = Array.fold_left Int.max 0 arrival in
    let horizon = max_arrival + total in
    let memo : (int * int list, float) Hashtbl.t = Hashtbl.create 4096 in
    (* Enumerate subsets of [candidates] of exactly [want] elements. *)
    let rec subsets want = function
      | [] -> if want = 0 then [ [] ] else []
      | x :: rest ->
          let without = subsets want rest in
          if want = 0 then without
          else List.map (fun s -> x :: s) (subsets (want - 1) rest) @ without
    in
    let rec best t remaining =
      if Array.for_all (fun r -> r = 0) remaining then 0.
      else begin
        assert (t < horizon);
        let key = (t, Array.to_list remaining) in
        match Hashtbl.find_opt memo key with
        | Some v -> v
        | None ->
            let alive =
              List.filter
                (fun i -> remaining.(i) > 0 && arrival.(i) <= t)
                (List.init n Fun.id)
            in
            let v =
              if alive = [] then best (t + 1) remaining
              else begin
                let want = Int.min machines (List.length alive) in
                let choices = subsets want alive in
                List.fold_left
                  (fun acc chosen ->
                    let rem' = Array.copy remaining in
                    let finished_cost = ref 0. in
                    List.iter
                      (fun i ->
                        rem'.(i) <- rem'.(i) - 1;
                        if rem'.(i) = 0 then
                          finished_cost :=
                            !finished_cost
                            +. Rr_util.Floatx.powi (Float.of_int (t + 1 - arrival.(i))) k)
                      chosen;
                    Float.min acc (!finished_cost +. best (t + 1) rem'))
                  Float.infinity choices
              end
            in
            Hashtbl.add memo key v;
            v
      end
    in
    best 0 (Array.copy size)
  end
