(** Dense two-phase primal simplex for small linear programs.

    Solves [min c . x] subject to linear constraints and [x >= 0] using a
    tableau with Bland's anti-cycling rule.  This solver is deliberately
    simple and is used to cross-check the min-cost-flow formulation of the
    paper's LP relaxation on small instances (experiment T8) and in unit
    tests; the flow solver remains the production path. *)

type kind = Le | Ge | Eq

type problem = {
  objective : float array;  (** Cost vector [c]. *)
  rows : (float array * kind * float) list;
      (** Each row [(a, kind, b)] encodes [a . x kind b]; all [a] must have
          the same length as [objective]. *)
}

type answer =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : problem -> answer
(** @raise Invalid_argument on ragged rows or an empty objective. *)
