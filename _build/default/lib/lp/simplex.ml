type kind = Le | Ge | Eq

type problem = { objective : float array; rows : (float array * kind * float) list }

type answer = Optimal of { x : float array; objective : float } | Infeasible | Unbounded

let eps = 1e-9

(* Tableau layout: [m] constraint rows over columns
   [original | slack/surplus | artificial | rhs], followed by the objective
   row under elimination.  Basis.(r) is the variable basic in row r. *)
type tableau = {
  a : float array array; (* m x (cols + 1), last column is the rhs *)
  basis : int array;
  cols : int;
}

let pivot tab ~row ~col =
  let m = Array.length tab.a in
  let piv = tab.a.(row).(col) in
  let arow = tab.a.(row) in
  for j = 0 to tab.cols do
    arow.(j) <- arow.(j) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tab.a.(i).(col) in
      if Float.abs f > 0. then
        for j = 0 to tab.cols do
          tab.a.(i).(j) <- tab.a.(i).(j) -. (f *. arow.(j))
        done
    end
  done;
  tab.basis.(row) <- col

(* Minimise [obj . x] over the tableau rows (Bland's rule); [obj] is given
   as a full row over the tableau columns and reduced in place.  Returns
   [None] if unbounded. *)
let optimize tab obj ~allowed =
  (* Reduce the objective row against the current basis. *)
  let m = Array.length tab.a in
  for r = 0 to m - 1 do
    let f = obj.(tab.basis.(r)) in
    if Float.abs f > 0. then
      for j = 0 to tab.cols do
        obj.(j) <- obj.(j) -. (f *. tab.a.(r).(j))
      done
  done;
  let rec iterate () =
    (* Bland: entering variable is the lowest-index column with a negative
       reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to tab.cols - 1 do
         if allowed j && obj.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Some ()
    else begin
      let col = !entering in
      (* Ratio test, ties broken by the lowest basis index (Bland). *)
      let row = ref (-1) in
      let best = ref Float.infinity in
      for i = 0 to m - 1 do
        if tab.a.(i).(col) > eps then begin
          let ratio = tab.a.(i).(tab.cols) /. tab.a.(i).(col) in
          if
            ratio < !best -. eps
            || (Float.abs (ratio -. !best) <= eps
               && (!row < 0 || tab.basis.(i) < tab.basis.(!row)))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then None
      else begin
        pivot tab ~row:!row ~col;
        (* Keep the objective row reduced. *)
        let f = obj.(col) in
        if Float.abs f > 0. then
          for j = 0 to tab.cols do
            obj.(j) <- obj.(j) -. (f *. tab.a.(!row).(j))
          done;
        iterate ()
      end
    end
  in
  iterate ()

let phase2 tab n n_slack objective =
  let cols = tab.cols in
  (* Artificials may never re-enter the basis. *)
  let allowed j = j < n + n_slack in
  (* Drive any residual artificial basic variables out where possible. *)
  Array.iteri
    (fun r b ->
      if b >= n + n_slack then begin
        let col = ref (-1) in
        (try
           for j = 0 to (n + n_slack) - 1 do
             if Float.abs tab.a.(r).(j) > eps then begin
               col := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !col >= 0 then pivot tab ~row:r ~col:!col
      end)
    tab.basis;
  let obj = Array.make (cols + 1) 0. in
  Array.blit objective 0 obj 0 n;
  match optimize tab obj ~allowed with
  | None -> Unbounded
  | Some () ->
      let x = Array.make n 0. in
      Array.iteri (fun r b -> if b < n then x.(b) <- tab.a.(r).(cols)) tab.basis;
      (* The reduced objective row carries -(optimal value) in the rhs. *)
      Optimal { x; objective = -.obj.(cols) }


let solve { objective; rows } =
  let n = Array.length objective in
  if n = 0 then invalid_arg "Simplex.solve: empty objective";
  List.iter
    (fun (a, _, _) ->
      if Array.length a <> n then invalid_arg "Simplex.solve: ragged constraint row")
    rows;
  (* Normalise to b >= 0. *)
  let rows =
    List.map
      (fun (a, kind, b) ->
        if b < 0. then
          ( Array.map (fun x -> -.x) a,
            (match kind with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (a, kind, b))
      rows
  in
  let m = List.length rows in
  let n_slack = List.length (List.filter (fun (_, k, _) -> k <> Eq) rows) in
  let n_art =
    List.length (List.filter (fun (_, k, _) -> match k with Ge | Eq -> true | Le -> false) rows)
  in
  let cols = n + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make (cols + 1) 0.) in
  let basis = Array.make m (-1) in
  let slack_at = ref n and art_at = ref (n + n_slack) in
  List.iteri
    (fun i (row, kind, b) ->
      Array.blit row 0 a.(i) 0 n;
      a.(i).(cols) <- b;
      (match kind with
      | Le ->
          a.(i).(!slack_at) <- 1.;
          basis.(i) <- !slack_at;
          incr slack_at
      | Ge ->
          a.(i).(!slack_at) <- -1.;
          incr slack_at;
          a.(i).(!art_at) <- 1.;
          basis.(i) <- !art_at;
          incr art_at
      | Eq ->
          a.(i).(!art_at) <- 1.;
          basis.(i) <- !art_at;
          incr art_at))
    rows;
  let tab = { a; basis; cols } in
  (* Phase 1: minimise the sum of artificial variables. *)
  if n_art > 0 then begin
    let phase1 = Array.make (cols + 1) 0. in
    for j = n + n_slack to cols - 1 do
      phase1.(j) <- 1.
    done;
    match optimize tab phase1 ~allowed:(fun _ -> true) with
    | None -> Infeasible (* cannot happen: phase-1 objective is bounded below by 0 *)
    | Some () ->
        if phase1.(cols) < -.eps *. 100. then Infeasible else phase2 tab n n_slack objective
  end
  else phase2 tab n n_slack objective
