type mode = Slot_start | Slot_end

type solution = {
  value : float;
  delta : float;
  allocation : (float * float) list array;
}

(* Build the transportation network for LP_primal and solve it; returns the
   objective together with the per-(job, slot) arc handles so the optimal
   fractional schedule can be read back. *)
let solve_network ~mode ~gamma ~k ~machines ~delta inst =
  if k < 1 then invalid_arg "Lp_bound.value: k must be >= 1";
  if machines < 1 then invalid_arg "Lp_bound.value: machines must be >= 1";
  if delta <= 0. then invalid_arg "Lp_bound.value: delta must be positive";
  let jobs = Array.of_list (Rr_workload.Instance.jobs inst) in
  let n = Array.length jobs in
  if n = 0 then (0., None, [])
  else begin
    let total_work = Rr_workload.Instance.total_work inst in
    let max_arrival =
      Array.fold_left (fun acc (j : Rr_engine.Job.t) -> Float.max acc j.arrival) 0. jobs
    in
    (* Slots cover [0, horizon); capacity after the last arrival suffices to
       absorb all remaining work, so the transportation problem is feasible. *)
    let horizon = max_arrival +. (total_work /. Float.of_int machines) +. (2. *. delta) in
    let n_slots = int_of_float (Float.ceil (horizon /. delta)) in
    if n_slots > 200_000 then
      invalid_arg
        (Printf.sprintf "Lp_bound.value: %d slots needed; coarsen delta" n_slots);
    (* Nodes: 0 = source, 1..n = jobs, n+1..n+n_slots = slots, last = sink. *)
    let source = 0 in
    let sink = n + n_slots + 1 in
    let net = Rr_flow.Mcmf.create ~n_nodes:(sink + 1) in
    let m_cap = Float.of_int machines *. delta in
    Array.iteri
      (fun ji (j : Rr_engine.Job.t) ->
        ignore (Rr_flow.Mcmf.add_edge net ~src:source ~dst:(1 + ji) ~capacity:j.size ~cost:0.))
      jobs;
    for s = 0 to n_slots - 1 do
      ignore
        (Rr_flow.Mcmf.add_edge net ~src:(n + 1 + s) ~dst:sink ~capacity:m_cap ~cost:0.)
    done;
    let arcs = ref [] in
    Array.iteri
      (fun ji (j : Rr_engine.Job.t) ->
        let pk = Rr_util.Floatx.powi j.size k in
        for s = 0 to n_slots - 1 do
          let slot_start = Float.of_int s *. delta in
          let slot_end = slot_start +. delta in
          if slot_end > j.arrival then begin
            (* Work of job ji routed into slot s runs inside
               [max(r_j, slot_start), slot_end). *)
            let window_start = Float.max j.arrival slot_start in
            let cap = Float.of_int machines *. (slot_end -. window_start) in
            let t_eval = match mode with Slot_start -> window_start | Slot_end -> slot_end in
            let age = t_eval -. j.arrival in
            let cost = gamma /. j.size *. (Rr_util.Floatx.powi age k +. pk) in
            let e = Rr_flow.Mcmf.add_edge net ~src:(1 + ji) ~dst:(n + 1 + s) ~capacity:cap ~cost in
            arcs := (ji, slot_start, e) :: !arcs
          end
        done)
      jobs;
    let { Rr_flow.Mcmf.flow; cost } = Rr_flow.Mcmf.solve net ~source ~sink in
    if flow < total_work *. (1. -. 1e-6) then
      failwith
        (Printf.sprintf "Lp_bound.value: routed only %g of %g work (internal horizon bug)"
           flow total_work);
    (cost, Some net, List.rev !arcs)
  end

let value ?(mode = Slot_start) ?(gamma = 1.) ~k ~machines ~delta inst =
  let v, _, _ = solve_network ~mode ~gamma ~k ~machines ~delta inst in
  v

let solve ?(mode = Slot_start) ?(gamma = 1.) ~k ~machines ~delta inst =
  let v, net, arcs = solve_network ~mode ~gamma ~k ~machines ~delta inst in
  let allocation = Array.make (Rr_workload.Instance.n inst) [] in
  (match net with
  | None -> ()
  | Some net ->
      List.iter
        (fun (ji, slot_start, e) ->
          let f = Rr_flow.Mcmf.flow_on net e in
          if f > 1e-12 then allocation.(ji) <- (slot_start, f) :: allocation.(ji))
        arcs;
      Array.iteri (fun i l -> allocation.(i) <- List.rev l) allocation);
  { value = v; delta; allocation }

let completion_profile sol ~job =
  if job < 0 || job >= Array.length sol.allocation then
    invalid_arg "Lp_bound.completion_profile: unknown job";
  match List.rev sol.allocation.(job) with
  | [] -> Float.nan
  | (slot_start, _) :: _ -> slot_start +. sol.delta

let opt_power_lower_bound ~k ~machines ~delta inst =
  value ~mode:Slot_start ~gamma:1. ~k ~machines ~delta inst /. 2.

let opt_norm_lower_bound ~k ~machines ~delta inst =
  opt_power_lower_bound ~k ~machines ~delta inst ** (1. /. Float.of_int k)
