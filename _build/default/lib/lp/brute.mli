(** Exhaustive optimal preemptive schedules on an integer time grid.

    For instances with integer release times and sizes, enumerates every
    migratory preemptive schedule that processes [min(machines, alive)]
    distinct alive jobs in each unit slot, with memoisation on
    [(slot, remaining-work vector)].  Work-conserving schedules dominate
    for flow-time objectives, so the result is the true optimum over
    integer-aligned schedules; it upper-bounds the continuous OPT and is
    used to sandwich the LP relaxation in tests and experiment T8.

    Complexity is exponential; intended for instances of at most ~6 jobs
    and ~20 total work. *)

val optimal_power_sum : k:int -> machines:int -> (int * int) list -> float
(** [optimal_power_sum ~k ~machines jobs] with [jobs] a list of
    [(arrival, size)] pairs returns the minimum of [sum_j (C_j - r_j)^k]
    over integral preemptive schedules.
    @raise Invalid_argument on negative arrivals, non-positive sizes,
    [k < 1], [machines < 1], or instances large enough to be intractable
    (more than 8 jobs or more than 64 total work). *)
