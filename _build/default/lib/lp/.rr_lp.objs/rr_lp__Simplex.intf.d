lib/lp/simplex.mli:
