lib/lp/lp_bound.mli: Rr_workload
