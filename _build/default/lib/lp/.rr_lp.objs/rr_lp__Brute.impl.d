lib/lp/brute.ml: Array Float Fun Hashtbl Int List Rr_util
