lib/lp/lp_bound.ml: Array Float List Printf Rr_engine Rr_flow Rr_util Rr_workload
