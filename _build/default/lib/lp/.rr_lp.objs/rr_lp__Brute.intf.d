lib/lp/brute.mli:
