(** Executable dual-fitting certificates (Sections 3.2-3.4 of the paper).

    The paper proves Theorem 1 by exhibiting, for every instance, a
    feasible solution of the dual of LP_primal whose objective is at least
    [Omega(eps)] times RR's k-th power of flow time.  This module
    {e constructs} that dual solution from a concrete simulated RR trace
    and {e verifies} it numerically, turning the proof into a per-instance
    machine-checked certificate:

    - [alpha_j] is assembled exactly as in Section 3.2: over overloaded
      alive time job [j] carries the rank-normalised age terms
      [k (t - r_j')^(k-1) / |A(t, r_j')|] of {e every} alive job [j']
      released no later than itself (the amortisation whose pairing
      argument proves Lemma 1 — each term is then counted once per
      later-arriving alive job), plus its own full age term over
      underloaded time, minus [eps F_j^k] (the global correction the
      authors highlight as the departure from earlier work);
    - [beta_t] spreads [(1/2 - 3 eps) F_j^(k-1) / m] over the extended
      window [r_j, C_j + delta F_j] with [delta = eps] — the "ghost"
      contribution after completion that the paper needs to compare jobs;
    - Lemma 1 ([sum alpha >= (1/2 - eps) RR^k]), Lemma 2
      ([m int beta <= (1/2 - 2 eps) RR^k]) and the dual constraints
      [alpha_j / p_j - beta_t <= (gamma / p_j)((t - r_j)^k + p_j^k)]
      are all checked, the last at every breakpoint of [beta] (between
      breakpoints [beta] is constant and the right-hand side increases, so
      breakpoints are the worst case).

    Because scaling a dual solution by [1 / rho] preserves feasibility, a
    measured violation ratio [rho > 1] still yields the valid certificate
    [dual / rho]; [certified_ratio] is the resulting provable lower bound
    on [dual objective / RR^k].  A positive certified ratio on an instance
    certifies that on that instance RR's k-th power of flow time is at most
    [2 gamma / certified_ratio] times OPT's. *)

type t = {
  k : int;
  eps : float;
  speed : float;  (** The speed RR ran at (Theorem 1 uses [2k(1 + 10 eps)]). *)
  gamma : float;  (** The LP objective constant [k (k / eps)^k]. *)
  machines : int;
  n_jobs : int;
  rr_power : float;  (** RR's realised [sum_j F_j^k]. *)
  alphas : float array;  (** Constructed [alpha_j], clipped at 0, by job id. *)
  sum_alpha : float;
  beta_integral_m : float;  (** [m * int beta_t dt]. *)
  dual_objective : float;  (** [sum_alpha - beta_integral_m]. *)
  violation_ratio : float;
      (** Max over jobs and checkpoints of (alpha_j / p_j) / (rhs); at most
          1 means the construction is feasible exactly as built. *)
  certified_ratio : float;
      (** [dual_objective / max(1, violation_ratio) / rr_power]; positive
          values certify competitiveness on this instance. *)
  lemma1_ok : bool;
  lemma2_ok : bool;
}

val theorem_speed : k:int -> eps:float -> float
(** The speed [eta = 2k(1 + 10 eps)] Theorem 1 grants RR. *)

val gamma : k:int -> eps:float -> float
(** The LP constant [k (k / eps)^k]. *)

val certify : ?eps:float -> k:int -> Rr_engine.Simulator.result -> t
(** Build and check the certificate from a simulation result; the result
    must carry a trace and should come from Round Robin (the construction
    is meaningful for equal-share schedules).

    @param eps the analysis parameter, default [0.1] (the largest value
      Theorem 1 allows).
    @raise Invalid_argument when [k < 1], [eps] is outside (0, 1/10], the
      result has no trace, or the result has no jobs. *)

val is_sound : t -> bool
(** Lemmas 1 and 2 hold and the certified ratio is positive: the paper's
    accounting went through on this instance. *)

val pp : Format.formatter -> t -> unit
