open Rr_engine

type t = {
  k : int;
  eps : float;
  speed : float;
  gamma : float;
  machines : int;
  n_jobs : int;
  rr_power : float;
  alphas : float array;
  sum_alpha : float;
  beta_integral_m : float;
  dual_objective : float;
  violation_ratio : float;
  certified_ratio : float;
  lemma1_ok : bool;
  lemma2_ok : bool;
}

let theorem_speed ~k ~eps = 2. *. Float.of_int k *. (1. +. (10. *. eps))

let gamma ~k ~eps = Float.of_int k *. Rr_util.Floatx.powi (Float.of_int k /. eps) k

(* Step evaluator for beta: sum over jobs of F_j^(k-1) weights active on the
   closed window [r_j, C_j + delta F_j], divided by m.  Starts and ends are
   kept in sorted arrays with prefix sums so a query costs O(log n). *)
module Beta = struct
  type s = {
    start_times : float array; (* sorted *)
    start_prefix : float array; (* start_prefix.(i) = sum of weights of the first i starts *)
    end_times : float array; (* sorted *)
    end_prefix : float array;
    inv_m : float;
    coeff : float; (* 1/2 - 3 eps *)
  }

  let build ~machines ~eps ~k jobs flows completions =
    let n = Array.length jobs in
    let delta = eps in
    let weight j = Rr_util.Floatx.powi flows.(j) (k - 1) in
    let starts = Array.init n (fun j -> ((jobs.(j) : Job.t).arrival, weight j)) in
    let ends = Array.init n (fun j -> (completions.(j) +. (delta *. flows.(j)), weight j)) in
    let by_time (t1, _) (t2, _) = Float.compare t1 t2 in
    Array.sort by_time starts;
    Array.sort by_time ends;
    let prefix a =
      let p = Array.make (Array.length a + 1) 0. in
      let acc = Rr_util.Kahan.create () in
      Array.iteri
        (fun i (_, w) ->
          Rr_util.Kahan.add acc w;
          p.(i + 1) <- Rr_util.Kahan.total acc)
        a;
      p
    in
    {
      start_times = Array.map fst starts;
      start_prefix = prefix starts;
      end_times = Array.map fst ends;
      end_prefix = prefix ends;
      inv_m = 1. /. Float.of_int machines;
      coeff = 0.5 -. (3. *. eps);
    }

  (* Number of entries of [times] that satisfy [pred]: binary search for the
     boundary of a monotone predicate. *)
  let count_while times pred =
    let lo = ref 0 and hi = ref (Array.length times) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pred times.(mid) then lo := mid + 1 else hi := mid
    done;
    !lo

  (* beta(t) with closed windows: starts with r <= t count, ends with
     e < t have expired. *)
  let at s t =
    let started = count_while s.start_times (fun x -> x <= t) in
    let expired = count_while s.end_times (fun x -> x < t) in
    s.coeff *. s.inv_m *. (s.start_prefix.(started) -. s.end_prefix.(expired))
end

let certify ?(eps = 0.1) ~k (res : Simulator.result) =
  if k < 1 then invalid_arg "Certificate.certify: k must be >= 1";
  if not (eps > 0. && eps <= 0.1) then
    invalid_arg "Certificate.certify: eps must be in (0, 1/10]";
  if res.trace = [] then invalid_arg "Certificate.certify: result carries no trace";
  let n = Array.length res.jobs in
  if n = 0 then invalid_arg "Certificate.certify: empty instance";
  let m = res.machines in
  let delta = eps in
  let flows = Simulator.flows res in
  let rr_power =
    Rr_util.Kahan.sum (Array.map (fun f -> Rr_util.Floatx.powi f k) flows)
  in
  (* ---- alpha construction (Section 3.2) ----

     At overloaded times job j is responsible for the rank-normalised age
     terms of EVERY alive job released no later than itself:

       alpha_j += sum over j' in A(t, r_j) of
                    k (t - r_j')^(k-1) / |A(t, r_j')|

     (so each term k(t - r_j')^(k-1) / rank_j' ends up counted once per
     alive job arriving no earlier than j', which is the amortisation the
     paper's Lemma 1 pairs up).  At underloaded times a job carries only
     its own full age term.  Alive sets are constant per trace segment, so
     the time integrals are closed-form per segment. *)
  let alphas_raw = Array.make n 0. in
  List.iter
    (fun (s : Trace.segment) ->
      let overloaded = Trace.is_overloaded ~machines:m s in
      if overloaded then begin
        (* Rank of each alive job in (arrival, id) order: |A(t, r_j)|. *)
        let sorted = Array.copy s.alive in
        Array.sort
          (fun (a : Trace.entry) (b : Trace.entry) ->
            match Float.compare a.arrival b.arrival with
            | 0 -> Int.compare a.job b.job
            | c -> c)
          sorted;
        (* prefix.(i) = sum over the i oldest alive jobs of their
           rank-normalised segment integrals. *)
        let prefix = ref 0. in
        Array.iteri
          (fun rank0 (e : Trace.entry) ->
            let rank = Float.of_int (rank0 + 1) in
            let own =
              (Rr_util.Floatx.powi (s.t1 -. e.arrival) k
              -. Rr_util.Floatx.powi (s.t0 -. e.arrival) k)
              /. rank
            in
            prefix := !prefix +. own;
            alphas_raw.(e.job) <- alphas_raw.(e.job) +. !prefix)
          sorted
      end
      else
        Array.iter
          (fun (e : Trace.entry) ->
            let contribution =
              Rr_util.Floatx.powi (s.t1 -. e.arrival) k
              -. Rr_util.Floatx.powi (s.t0 -. e.arrival) k
            in
            alphas_raw.(e.job) <- alphas_raw.(e.job) +. contribution)
          s.alive)
    res.trace;
  for j = 0 to n - 1 do
    alphas_raw.(j) <- alphas_raw.(j) -. (eps *. Rr_util.Floatx.powi flows.(j) k)
  done;
  (* Dual variables must be non-negative; clipping at 0 preserves
     feasibility and only raises the objective. *)
  let alphas = Array.map (fun a -> Float.max 0. a) alphas_raw in
  let sum_alpha = Rr_util.Kahan.sum alphas in
  let sum_alpha_raw = Rr_util.Kahan.sum alphas_raw in
  (* ---- beta construction and its exact integral ---- *)
  let beta = Beta.build ~machines:m ~eps ~k res.jobs flows res.completions in
  let beta_integral_m =
    (* m * int beta dt = (1/2 - 3 eps) * sum_j (1 + delta) F_j * F_j^(k-1). *)
    let acc = Rr_util.Kahan.create () in
    Array.iter
      (fun f -> Rr_util.Kahan.add acc ((1. +. delta) *. Rr_util.Floatx.powi f k))
      flows;
    (0.5 -. (3. *. eps)) *. Rr_util.Kahan.total acc
  in
  let dual_objective = sum_alpha -. beta_integral_m in
  (* ---- Lemmas 1 and 2 (on the raw, unclipped construction) ---- *)
  let tol = 1e-7 *. (1. +. rr_power) in
  let lemma1_ok = sum_alpha_raw >= ((0.5 -. eps) *. rr_power) -. tol in
  let lemma2_ok = beta_integral_m <= ((0.5 -. (2. *. eps)) *. rr_power) +. tol in
  (* ---- dual feasibility at every beta breakpoint ---- *)
  let g = gamma ~k ~eps in
  let breakpoints =
    let pts = Array.make (2 * n) 0. in
    Array.iteri (fun j (job : Job.t) -> pts.(j) <- job.arrival) res.jobs;
    Array.iteri
      (fun j c -> pts.(n + j) <- c +. (delta *. flows.(j)))
      res.completions;
    Array.sort Float.compare pts;
    pts
  in
  let violation = ref 0. in
  let check_point j (job : Job.t) t =
    if t >= job.arrival then begin
      let lhs = alphas.(j) /. job.size in
      let age = t -. job.arrival in
      let rhs =
        (g /. job.size *. (Rr_util.Floatx.powi age k +. Rr_util.Floatx.powi job.size k))
        +. Beta.at beta t
      in
      let ratio = lhs /. rhs in
      if ratio > !violation then violation := ratio
    end
  in
  Array.iteri
    (fun j (job : Job.t) ->
      check_point j job job.arrival;
      Array.iter
        (fun bp ->
          check_point j job bp;
          (* Just after the breakpoint, where an expiring window has
             dropped out of beta. *)
          check_point j job (bp +. (1e-9 *. (1. +. Float.abs bp))))
        breakpoints)
    res.jobs;
  let violation_ratio = !violation in
  let certified_ratio =
    dual_objective /. Float.max 1. violation_ratio /. rr_power
  in
  {
    k;
    eps;
    speed = res.speed;
    gamma = g;
    machines = m;
    n_jobs = n;
    rr_power;
    alphas;
    sum_alpha;
    beta_integral_m;
    dual_objective;
    violation_ratio;
    certified_ratio;
    lemma1_ok;
    lemma2_ok;
  }

let is_sound t = t.lemma1_ok && t.lemma2_ok && t.certified_ratio > 0.

let pp ppf t =
  Format.fprintf ppf
    "certificate k=%d eps=%.3f speed=%.3f m=%d n=%d: RR^k=%.4g dual=%.4g viol=%.4f \
     certified=%.4f lemma1=%b lemma2=%b"
    t.k t.eps t.speed t.machines t.n_jobs t.rr_power t.dual_objective t.violation_ratio
    t.certified_ratio t.lemma1_ok t.lemma2_ok
