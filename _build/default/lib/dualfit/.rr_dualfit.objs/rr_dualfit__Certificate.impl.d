lib/dualfit/certificate.ml: Array Float Format Int Job List Rr_engine Rr_util Simulator Trace
