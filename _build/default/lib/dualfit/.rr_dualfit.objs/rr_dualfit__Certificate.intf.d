lib/dualfit/certificate.mli: Format Rr_engine
