(** Minimum-cost maximum-flow on networks with real capacities and
    non-negative real costs.

    This is the exact solver behind the paper's LP relaxation
    ({!Rr_lp.Lp_bound}): after time discretisation, LP_primal is a
    transportation problem, which is solved here by successive shortest
    augmenting paths with Johnson potentials (Dijkstra on reduced costs).
    With non-negative costs the algorithm returns an exact optimum for the
    amount of flow it pushes; capacities within a relative [1e-9] of zero
    are treated as saturated to keep the augmentation count finite in
    floating point. *)

type t

val create : n_nodes:int -> t
(** Network with nodes [0 .. n_nodes-1] and no edges.
    @raise Invalid_argument when [n_nodes < 1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> cost:float -> int
(** Add a directed edge and its implicit residual reverse edge; returns an
    edge handle usable with {!flow_on}.
    @raise Invalid_argument on out-of-range endpoints, negative or
    non-finite capacity, or negative or non-finite cost. *)

type outcome = {
  flow : float;  (** Total flow pushed from source to sink. *)
  cost : float;  (** Total cost of that flow (compensated summation). *)
}

val solve : ?max_flow:float -> t -> source:int -> sink:int -> outcome
(** [solve t ~source ~sink] computes a minimum-cost flow of value
    [min(max_flow, max-flow value)] (default: the maximum flow).  The
    network is consumed: capacities are mutated to the residual state.
    @raise Invalid_argument when [source = sink] or either is out of
    range. *)

val flow_on : t -> int -> float
(** Flow routed over the edge with the given handle after {!solve}. *)

val no_negative_cycle : t -> bool
(** Optimality self-certificate: after {!solve}, the current flow is a
    minimum-cost flow of its value iff the residual network contains no
    negative-cost cycle.  Runs Bellman-Ford over the residual edges; the
    test suite asserts this on every solved network, turning the solver
    into a self-checking oracle. *)
