lib/flow/mcmf.mli:
