lib/flow/mcmf.ml: Array Float List Rr_util
