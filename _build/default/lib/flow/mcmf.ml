type t = {
  n : int;
  (* Edge-array representation: edge 2i is a forward edge, 2i+1 its
     residual twin.  [head.(e)] is the target of edge [e]. *)
  mutable head : int array;
  mutable cap : float array;
  mutable cost : float array;
  mutable n_edges : int;
  adj : int list array; (* outgoing edge indices per node, reversed order *)
  mutable max_cap_seen : float;
}

type outcome = { flow : float; cost : float }

let create ~n_nodes =
  if n_nodes < 1 then invalid_arg "Mcmf.create: need at least one node";
  {
    n = n_nodes;
    head = Array.make 16 0;
    cap = Array.make 16 0.;
    cost = Array.make 16 0.;
    n_edges = 0;
    adj = Array.make n_nodes [];
    max_cap_seen = 0.;
  }

let ensure_capacity t =
  let cap = Array.length t.head in
  if t.n_edges + 2 > cap then begin
    let ncap = 2 * cap in
    let grow a fill =
      let na = Array.make ncap fill in
      Array.blit a 0 na 0 t.n_edges;
      na
    in
    t.head <- grow t.head 0;
    t.cap <- grow t.cap 0.;
    t.cost <- grow t.cost 0.
  end

let add_edge t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: endpoint out of range";
  if not (Float.is_finite capacity && capacity >= 0.) then
    invalid_arg "Mcmf.add_edge: capacity must be finite and non-negative";
  if not (Float.is_finite cost && cost >= 0.) then
    invalid_arg "Mcmf.add_edge: cost must be finite and non-negative";
  ensure_capacity t;
  let e = t.n_edges in
  t.head.(e) <- dst;
  t.cap.(e) <- capacity;
  t.cost.(e) <- cost;
  t.head.(e + 1) <- src;
  t.cap.(e + 1) <- 0.;
  t.cost.(e + 1) <- -.cost;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst);
  t.n_edges <- t.n_edges + 2;
  if capacity > t.max_cap_seen then t.max_cap_seen <- capacity;
  e

let solve ?(max_flow = Float.infinity) t ~source ~sink =
  if source = sink then invalid_arg "Mcmf.solve: source equals sink";
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.solve: node out of range";
  (* Residual capacities below this threshold count as saturated, which
     bounds the number of augmentations in floating point. *)
  let eps = 1e-12 *. Float.max 1. t.max_cap_seen in
  let pot = Array.make t.n 0. in
  let dist = Array.make t.n Float.infinity in
  let prev_edge = Array.make t.n (-1) in
  let total_flow = ref 0. in
  let total_cost = Rr_util.Kahan.create () in
  let continue = ref true in
  while !continue && !total_flow < max_flow do
    Array.fill dist 0 t.n Float.infinity;
    Array.fill prev_edge 0 t.n (-1);
    dist.(source) <- 0.;
    let heap = Rr_util.Heap.create ~cmp:(fun (d1, _) (d2, _) -> Float.compare d1 d2) () in
    Rr_util.Heap.add heap (0., source);
    let rec dijkstra () =
      match Rr_util.Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
          if d <= dist.(u) then begin
            List.iter
              (fun e ->
                if t.cap.(e) > eps then begin
                  let v = t.head.(e) in
                  (* Reduced cost is non-negative by the potential invariant;
                     clamp tiny negative rounding noise. *)
                  let rc = Float.max 0. (t.cost.(e) +. pot.(u) -. pot.(v)) in
                  let nd = d +. rc in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    prev_edge.(v) <- e;
                    Rr_util.Heap.add heap (nd, v)
                  end
                end)
              t.adj.(u);
            dijkstra ()
          end
          else dijkstra ()
    in
    dijkstra ();
    if not (Float.is_finite dist.(sink)) then continue := false
    else begin
      for v = 0 to t.n - 1 do
        if Float.is_finite dist.(v) then pot.(v) <- pot.(v) +. dist.(v)
      done;
      (* Bottleneck along the augmenting path. *)
      let bottleneck = ref (max_flow -. !total_flow) in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        if t.cap.(e) < !bottleneck then bottleneck := t.cap.(e);
        v := t.head.(e lxor 1)
      done;
      let b = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        t.cap.(e) <- t.cap.(e) -. b;
        t.cap.(e lxor 1) <- t.cap.(e lxor 1) +. b;
        Rr_util.Kahan.add total_cost (b *. t.cost.(e));
        v := t.head.(e lxor 1)
      done;
      total_flow := !total_flow +. b
    end
  done;
  { flow = !total_flow; cost = Rr_util.Kahan.total total_cost }

let flow_on t e =
  if e < 0 || e >= t.n_edges || e land 1 = 1 then invalid_arg "Mcmf.flow_on: bad edge handle";
  (* Flow on a forward edge equals the residual capacity of its twin. *)
  t.cap.(e + 1)

let no_negative_cycle t =
  let eps = 1e-12 *. Float.max 1. t.max_cap_seen in
  let cost_eps = 1e-7 in
  (* Bellman-Ford with all distances 0 detects any reachable negative
     cycle among residual edges. *)
  let dist = Array.make t.n 0. in
  let relax_once () =
    let changed = ref false in
    for e = 0 to t.n_edges - 1 do
      if t.cap.(e) > eps then begin
        let u = t.head.(e lxor 1) and v = t.head.(e) in
        if dist.(u) +. t.cost.(e) < dist.(v) -. cost_eps then begin
          dist.(v) <- dist.(u) +. t.cost.(e);
          changed := true
        end
      end
    done;
    !changed
  in
  let rec loop i = if i = 0 then true else if relax_once () then loop (i - 1) else true in
  if loop t.n then not (relax_once ()) else false
