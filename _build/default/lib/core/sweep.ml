let speeds ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Sweep.speeds: need at least two steps";
  if lo >= hi then invalid_arg "Sweep.speeds: need lo < hi";
  List.init steps (fun i ->
      lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int (steps - 1)))

let min_speed_for ~f ~threshold ~lo ~hi ~iters =
  if f hi > threshold then None
  else begin
    (* Invariant: f hi' <= threshold; lo' is either below the crossover or
       equal to the initial lo. *)
    let lo' = ref lo and hi' = ref hi in
    for _ = 1 to iters do
      let mid = (!lo' +. !hi') /. 2. in
      if f mid <= threshold then hi' := mid else lo' := mid
    done;
    Some !hi'
  end
