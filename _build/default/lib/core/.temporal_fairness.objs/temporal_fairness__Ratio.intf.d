lib/core/ratio.mli: Rr_engine Rr_workload
