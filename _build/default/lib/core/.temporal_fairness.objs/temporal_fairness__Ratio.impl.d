lib/core/ratio.ml: Float Rr_lp Rr_policies Run
