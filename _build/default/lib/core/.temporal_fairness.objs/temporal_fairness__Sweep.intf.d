lib/core/sweep.mli:
