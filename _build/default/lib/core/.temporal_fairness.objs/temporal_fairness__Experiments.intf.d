lib/core/experiments.mli: Rr_util
