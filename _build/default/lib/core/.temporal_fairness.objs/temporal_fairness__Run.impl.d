lib/core/run.ml: Rr_engine Rr_metrics Rr_workload
