lib/core/experiments.ml: Array Float Int Kahan List Prng Ratio Rr_broadcast Rr_dualfit Rr_engine Rr_lp Rr_metrics Rr_policies Rr_queueing Rr_speedup Rr_util Rr_workload Run Sweep Table
