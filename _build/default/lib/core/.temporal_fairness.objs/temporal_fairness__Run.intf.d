lib/core/run.mli: Rr_engine Rr_workload
