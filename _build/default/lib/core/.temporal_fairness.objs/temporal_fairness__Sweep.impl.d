lib/core/sweep.ml: Float List
