(** Empirical competitive ratios.

    An online algorithm is [c]-competitive for the lk-norm when its norm is
    at most [c] times the optimal scheduler's on every instance; with
    [s]-speed augmentation the algorithm runs at speed [s] while the
    optimum keeps speed 1.  True OPT being unavailable, ratios are measured
    against two proxies:

    - a baseline policy at speed 1 (usually SRPT, a strong practical
      stand-in): an {e estimate} of the ratio;
    - the paper's LP relaxation ({!Rr_lp.Lp_bound}): a certified {e upper
      bound} on the true ratio, since the LP certifiably lower-bounds OPT. *)

val vs_baseline :
  ?baseline:Rr_engine.Policy.t ->
  ?baseline_speed:float ->
  k:int ->
  machines:int ->
  speed:float ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float
(** lk-norm of the policy at [speed] divided by the lk-norm of [baseline]
    (default SRPT) at [baseline_speed] (default 1).  Returns [nan] when
    the baseline norm is 0 (empty instance). *)

val vs_lp_bound :
  k:int ->
  machines:int ->
  delta:float ->
  speed:float ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float
(** lk-norm of the policy at [speed] divided by the certified LP lower
    bound on the optimal lk-norm: an upper bound on the policy's true
    competitive ratio on this instance. *)
