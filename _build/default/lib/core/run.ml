let simulate ?(speed = 1.) ?(record_trace = false) ~machines policy inst =
  Rr_engine.Simulator.run ~record_trace ~speed ~machines ~policy
    (Rr_workload.Instance.jobs inst)

let flows ?speed ~machines policy inst =
  Rr_engine.Simulator.flows (simulate ?speed ~machines policy inst)

let norm ?speed ~k ~machines policy inst =
  Rr_metrics.Norms.lk ~k (flows ?speed ~machines policy inst)

let power_sum ?speed ~k ~machines policy inst =
  Rr_metrics.Norms.power_sum ~k (flows ?speed ~machines policy inst)
