let vs_baseline ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.) ~k ~machines
    ~speed policy inst =
  let num = Run.norm ~speed ~k ~machines policy inst in
  let den = Run.norm ~speed:baseline_speed ~k ~machines baseline inst in
  if den <= 0. then Float.nan else num /. den

let vs_lp_bound ~k ~machines ~delta ~speed policy inst =
  let num = Run.norm ~speed ~k ~machines policy inst in
  let den = Rr_lp.Lp_bound.opt_norm_lower_bound ~k ~machines ~delta inst in
  if den <= 0. then Float.nan else num /. den
