(** Convenience entry points tying instances, policies and the simulator
    together.  This is the facade most users of the library need. *)

val simulate :
  ?speed:float ->
  ?record_trace:bool ->
  machines:int ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  Rr_engine.Simulator.result
(** Run a policy on an instance (speed defaults to 1, no trace). *)

val flows :
  ?speed:float ->
  machines:int ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float array
(** Flow times by job id. *)

val norm :
  ?speed:float ->
  k:int ->
  machines:int ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float
(** The lk-norm of flow time achieved by the policy. *)

val power_sum :
  ?speed:float ->
  k:int ->
  machines:int ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float
(** The unrooted [sum_j F_j^k] achieved by the policy. *)
