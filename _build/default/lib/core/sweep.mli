(** Parameter sweeps and crossover search. *)

val speeds : lo:float -> hi:float -> steps:int -> float list
(** [steps] evenly spaced speeds from [lo] to [hi] inclusive.
    @raise Invalid_argument when [steps < 2] or [lo >= hi]. *)

val min_speed_for :
  f:(float -> float) ->
  threshold:float ->
  lo:float ->
  hi:float ->
  iters:int ->
  float option
(** Bisection for the smallest speed [s] in [\[lo, hi\]] with
    [f s <= threshold], assuming [f] is non-increasing in speed (more speed
    never hurts RR's ratio on a fixed instance).  [None] when even
    [f hi > threshold].  [iters] bisection steps (the answer is bracketed
    to [2^-iters * (hi - lo)]). *)
