let all () =
  [
    Round_robin.policy;
    Srpt.policy;
    Sjf.policy;
    Setf.policy;
    Fcfs.policy;
    Laps.policy ~beta:0.5;
    Wrr_age.policy ~k:2 ();
    Quantum_rr.policy ();
    Mlfq.policy ();
  ]

let find name =
  match String.split_on_char ':' name with
  | [ "rr" ] -> Some Round_robin.policy
  | [ "srpt" ] -> Some Srpt.policy
  | [ "sjf" ] -> Some Sjf.policy
  | [ "setf" ] -> Some Setf.policy
  | [ "fcfs" ] -> Some Fcfs.policy
  | [ "laps" ] -> Some (Laps.policy ~beta:0.5)
  | [ "laps"; b ] -> (
      match float_of_string_opt b with
      | Some beta when beta > 0. && beta <= 1. -> Some (Laps.policy ~beta)
      | _ -> None)
  | [ "quantum-rr" ] -> Some (Quantum_rr.policy ())
  | [ "quantum-rr"; q ] -> (
      match float_of_string_opt q with
      | Some quantum when quantum > 0. -> Some (Quantum_rr.policy ~quantum ())
      | _ -> None)
  | [ "mlfq" ] -> Some (Mlfq.policy ())
  | [ "mlfq"; q ] -> (
      match float_of_string_opt q with
      | Some base_quantum when base_quantum > 0. -> Some (Mlfq.policy ~base_quantum ())
      | _ -> None)
  | [ "wrr-age" ] -> Some (Wrr_age.policy ~k:2 ())
  | [ "wrr-age"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Some (Wrr_age.policy ~k ())
      | _ -> None)
  | _ -> None

let names () = [ "rr"; "srpt"; "sjf"; "setf"; "fcfs"; "laps[:beta]"; "wrr-age[:k]"; "quantum-rr[:q]"; "mlfq[:q]" ]
