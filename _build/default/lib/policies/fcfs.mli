(** First-Come First-Served.

    The [m] earliest-arrived alive jobs each occupy one machine.  Because
    priorities never change after arrival this coincides with
    non-preemptive FCFS.  Non-clairvoyant; included as the classic
    variance-friendly but latency-poor baseline of the operating-systems
    motivation in Section 1. *)

val policy : Rr_engine.Policy.t
