(** Fluid Multi-Level Feedback Queue.

    The classic operating-systems approximation of SETF: jobs start in the
    highest-priority level and are demoted after consuming geometrically
    growing amounts of service ([base_quantum], [base_quantum * factor],
    ...).  Machines go to the lowest-index non-empty level; jobs within a
    level share equally, Round-Robin style.  Like SETF, each level change
    is reported as a policy horizon, so the event-driven simulation stays
    exact; as [base_quantum -> 0] the policy converges to SETF, and with a
    single huge quantum it degenerates to FCFS-within-RR.

    Non-clairvoyant: levels depend only on attained service. *)

val policy : ?base_quantum:float -> ?factor:float -> ?levels:int -> unit -> Rr_engine.Policy.t
(** [policy ()] with defaults [base_quantum = 0.5], [factor = 2.],
    [levels = 24] (jobs past the last threshold stay in the final level).
    @raise Invalid_argument when [base_quantum <= 0.], [factor < 1.] or
    [levels < 1]. *)

val level_of_attained : base_quantum:float -> factor:float -> levels:int -> float -> int
(** The level a job with the given attained service occupies; exposed for
    testing. *)
