(** Name-indexed registry of the built-in policies, for the CLI and the
    experiment harness. *)

val all : unit -> Rr_engine.Policy.t list
(** Every built-in policy with its default parameters:
    rr, srpt, sjf, setf, fcfs, laps (beta = 0.5), wrr-age (k = 2),
    quantum-rr (q = 1), mlfq (q = 0.5, f = 2). *)

val find : string -> Rr_engine.Policy.t option
(** Look a policy up by name, e.g. ["rr"], ["srpt"], ["sjf"], ["setf"],
    ["fcfs"], ["laps"], ["wrr-age"] or ["wrr-age:3"] (age-weighted RR for
    the l3 norm), ["laps:0.25"] (explicit beta), ["quantum-rr:0.5"]
    (time-sliced RR with an explicit quantum), ["mlfq:0.25"] (multi-level
    feedback queue with an explicit base quantum). *)

val names : unit -> string list
(** Accepted names for {!find}, for help messages. *)
