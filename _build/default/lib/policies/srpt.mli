(** Shortest Remaining Processing Time first.

    The [m] alive jobs with the least remaining work each occupy one
    machine (ties broken by job id).  SRPT is clairvoyant, optimal for
    total flow time on a single machine, and the standard strong baseline
    the paper compares against; we use SRPT at speed 1 as the practical
    stand-in for OPT in ratio experiments. *)

val policy : Rr_engine.Policy.t

val top_m_by :
  (Rr_engine.Policy.view -> float) ->
  machines:int ->
  Rr_engine.Policy.view array ->
  Rr_engine.Policy.decision
(** [top_m_by key ~machines views] gives one full machine to each of the
    [machines] views ranked smallest by [key] (ties by job id) and rate 0
    to the rest.  Shared by the fixed-priority policies SRPT, SJF and
    FCFS, which differ only in the key. *)
