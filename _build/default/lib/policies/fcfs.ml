let allocate ~now:_ ~machines ~speed:_ views =
  Srpt.top_m_by (fun (v : Rr_engine.Policy.view) -> v.arrival) ~machines views

let policy = { Rr_engine.Policy.name = "fcfs"; clairvoyant = false; allocate }
