(** Round Robin on identical machines — the algorithm analysed by the paper.

    At any time with [n_t] alive jobs on [m] machines, every alive job is
    processed at rate [min{1, m / n_t}] (Section 2): when there are more
    jobs than machines the machines are split equally; otherwise each job
    runs on a machine of its own.  RR is non-clairvoyant and
    instantaneously fair: all alive jobs always receive identical shares. *)

val policy : Rr_engine.Policy.t
