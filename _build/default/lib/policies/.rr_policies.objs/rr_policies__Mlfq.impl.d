lib/policies/mlfq.ml: Array Float Fun Int Policy Printf Rr_engine
