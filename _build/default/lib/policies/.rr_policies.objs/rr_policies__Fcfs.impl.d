lib/policies/fcfs.ml: Rr_engine Srpt
