lib/policies/setf.mli: Rr_engine
