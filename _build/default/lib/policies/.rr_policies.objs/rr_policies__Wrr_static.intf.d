lib/policies/wrr_static.mli: Rr_engine
