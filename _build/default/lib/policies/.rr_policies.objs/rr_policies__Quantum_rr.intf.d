lib/policies/quantum_rr.mli: Rr_engine
