lib/policies/setf.ml: Array Float Fun Int List Policy Rr_engine
