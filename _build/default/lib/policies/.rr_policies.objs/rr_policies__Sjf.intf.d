lib/policies/sjf.mli: Rr_engine
