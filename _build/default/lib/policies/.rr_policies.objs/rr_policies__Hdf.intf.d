lib/policies/hdf.mli: Rr_engine
