lib/policies/wrr_static.ml: Array Float Policy Printf Rr_engine Wrr_age
