lib/policies/wrr_age.ml: Array Float Fun Policy Printf Rr_engine Rr_util
