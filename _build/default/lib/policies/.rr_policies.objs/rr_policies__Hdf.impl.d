lib/policies/hdf.ml: Float Policy Printf Rr_engine Srpt
