lib/policies/quantum_rr.ml: Array Float Hashtbl Int List Policy Printf Queue Rr_engine
