lib/policies/wrr_age.mli: Rr_engine
