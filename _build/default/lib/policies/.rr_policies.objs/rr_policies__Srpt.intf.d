lib/policies/srpt.mli: Rr_engine
