lib/policies/fcfs.mli: Rr_engine
