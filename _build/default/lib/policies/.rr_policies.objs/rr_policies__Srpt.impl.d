lib/policies/srpt.ml: Array Float Fun Int Policy Rr_engine
