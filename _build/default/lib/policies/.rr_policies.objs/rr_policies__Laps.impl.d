lib/policies/laps.ml: Array Float Fun Int Policy Printf Rr_engine
