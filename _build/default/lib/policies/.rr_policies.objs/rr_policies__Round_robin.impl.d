lib/policies/round_robin.ml: Array Float Int Rr_engine
