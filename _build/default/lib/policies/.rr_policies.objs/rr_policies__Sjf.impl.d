lib/policies/sjf.ml: Rr_engine Srpt
