lib/policies/mlfq.mli: Rr_engine
