lib/policies/registry.ml: Fcfs Laps Mlfq Quantum_rr Round_robin Setf Sjf Srpt String Wrr_age
