lib/policies/laps.mli: Rr_engine
