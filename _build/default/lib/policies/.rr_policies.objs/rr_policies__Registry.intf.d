lib/policies/registry.mli: Rr_engine
