lib/policies/round_robin.mli: Rr_engine
