(** (Preemptive) Shortest Job First.

    The [m] alive jobs with the smallest {e original} size each occupy one
    machine.  Clairvoyant; one of the algorithms Bansal and Pruhs showed
    scalable for lk-norms of flow time, cited throughout Section 1. *)

val policy : Rr_engine.Policy.t
