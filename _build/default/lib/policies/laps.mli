(** Latest Arrival Processor Sharing, LAPS(beta).

    The ceil(beta * n_t) most recently arrived alive jobs share the
    machines Round-Robin style; older jobs wait.  LAPS is the scalable
    non-clairvoyant algorithm of Edmonds and Pruhs for total flow time and
    serves as an ablation point between RR (beta = 1) and recency-biased
    sharing. *)

val policy : beta:float -> Rr_engine.Policy.t
(** @raise Invalid_argument unless [0 < beta <= 1]. *)
