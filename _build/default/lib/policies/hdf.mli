(** Highest Density First — the clairvoyant baseline for weighted flow.

    Serves the [m] alive jobs with the largest density [w_j / p_j]
    (weight over original size), the weighted analogue of SJF used
    throughout the weighted flow-time literature the paper builds on.
    With unit weights it coincides with SJF. *)

val policy : weight_of:(int -> float) -> unit -> Rr_engine.Policy.t
(** [policy ~weight_of ()] reads each job's weight from its id; weights
    must be positive and finite ([Invalid_argument] at allocation time
    otherwise). *)
