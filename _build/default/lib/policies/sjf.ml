let allocate ~now:_ ~machines ~speed:_ views =
  Srpt.top_m_by Rr_engine.Policy.size_exn ~machines views

let policy = { Rr_engine.Policy.name = "sjf"; clairvoyant = true; allocate }
