open Rr_engine

let policy ~weight_of () =
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    (* Negated density so the shared smallest-first helper serves the
       densest jobs. *)
    let key (v : Policy.view) =
      let w = weight_of v.Policy.id in
      if not (Float.is_finite w && w > 0.) then
        invalid_arg (Printf.sprintf "Hdf: weight of job %d must be positive" v.id);
      -.(w /. Policy.size_exn v)
    in
    Srpt.top_m_by key ~machines views
  in
  { Policy.name = "hdf"; clairvoyant = true; allocate }
