open Rr_engine

let policy ~weight_of () =
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    let weights =
      Array.map
        (fun (v : Policy.view) ->
          let w = weight_of v.Policy.id in
          if not (Float.is_finite w && w > 0.) then
            invalid_arg (Printf.sprintf "Wrr_static: weight of job %d must be positive" v.id);
          w)
        views
    in
    { Policy.rates = Wrr_age.proportional_rates ~machines weights; horizon = None }
  in
  { Policy.name = "wrr-static"; clairvoyant = false; allocate }
