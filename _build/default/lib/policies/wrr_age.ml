open Rr_engine

let proportional_rates ~machines weights =
  let n = Array.length weights in
  let m = Float.of_int machines in
  if n <= machines then Array.make n 1.
  else begin
    (* Sort indices by decreasing weight; the [c] heaviest jobs are capped
       at rate 1, the rest share the remaining machines proportionally.
       [c] is the smallest count for which no uncapped job exceeds rate 1. *)
    let idx = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) idx;
    let suffix = Array.make (n + 1) 0. in
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) +. weights.(idx.(i))
    done;
    let rec find_cap c =
      if c >= machines then machines
      else
        let theta = (m -. Float.of_int c) /. suffix.(c) in
        if weights.(idx.(c)) *. theta > 1. then find_cap (c + 1) else c
    in
    let c = find_cap 0 in
    let theta = if c = machines then 0. else (m -. Float.of_int c) /. suffix.(c) in
    let rates = Array.make n 0. in
    for i = 0 to n - 1 do
      rates.(idx.(i)) <- (if i < c then 1. else Float.min 1. (weights.(idx.(i)) *. theta))
    done;
    rates
  end

let policy ?(refresh = 0.25) ?(offset = 0.1) ~k () =
  if k < 1 then invalid_arg "Wrr_age.policy: k must be >= 1";
  if refresh <= 0. then invalid_arg "Wrr_age.policy: refresh must be positive";
  if offset <= 0. then invalid_arg "Wrr_age.policy: offset must be positive";
  let allocate ~now ~machines ~speed:_ (views : Policy.view array) =
    let weights =
      Array.map
        (fun v -> Rr_util.Floatx.powi (Policy.age ~now v +. offset) (k - 1))
        views
    in
    let rates = proportional_rates ~machines weights in
    (* Ages drift, so refresh after a fraction of the youngest age; the
       youngest job's weight is the fastest-changing one in relative terms. *)
    let youngest =
      Array.fold_left (fun acc v -> Float.min acc (Policy.age ~now v)) Float.infinity views
    in
    let horizon =
      if k = 1 || Array.length views = 0 then None
      else Some (now +. Float.max 1e-6 (refresh *. (youngest +. offset)))
    in
    { Policy.rates; horizon }
  in
  { Policy.name = Printf.sprintf "wrr-age(k=%d)" k; clairvoyant = false; allocate }
