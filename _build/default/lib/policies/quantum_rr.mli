(** Time-sliced Round Robin — the operating-systems textbook scheduler.

    The paper analyses the idealised fluid Round Robin in which all [n_t]
    alive jobs are processed simultaneously at rate [min(1, m/n_t)].  Real
    schedulers approximate this with a cyclic ready queue and a time
    quantum [q]: each of the [m] machines runs the job at the head of the
    queue exclusively for up to [q] time units (or until completion), then
    requeues it at the tail.  As [q -> 0] the time-sliced schedule
    converges to the fluid one; the ablation experiment T9 measures the
    convergence rate of the resulting flow-time norms.

    The policy is stateful (the closure owns the ready queue), so create a
    fresh instance per simulation run. *)

val policy : ?quantum:float -> unit -> Rr_engine.Policy.t
(** [policy ~quantum ()] with the time slice in simulated time units
    (default [1.0]).
    @raise Invalid_argument when [quantum <= 0.]. *)
