(** Order statistics and simple descriptive statistics on float arrays. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics (the common "type 7" estimator).  The input is not
    modified.  @raise Invalid_argument on an empty array or [p] outside
    the range. *)

val median : float array -> float
(** [median a = percentile a ~p:50.]. *)

val jain_index : float array -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] of a non-negative
    allocation vector: 1.0 for perfectly equal shares, approaching [1/n]
    when one element receives everything.  Returns 1.0 for empty or
    all-zero input (an empty system is trivially fair). *)

val coefficient_of_variation : float array -> float
(** Standard deviation divided by mean; 0. when the mean is 0. *)
