(** Array-backed binary min-heap, parameterised by an explicit comparator.

    Used by the event loop of the simulator (pending arrivals) and by the
    Dijkstra inner loop of the min-cost-flow solver. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify an array in O(n). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val drain : 'a t -> 'a list
(** Pop everything, smallest first. *)
