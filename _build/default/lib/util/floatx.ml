let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let rec powi x k =
  assert (k >= 0);
  if k = 0 then 1.
  else if k land 1 = 1 then x *. powi x (k - 1)
  else
    let h = powi x (k / 2) in
    h *. h

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let is_finite_nonneg x = Float.is_finite x && x >= 0.

let min_arr a =
  if Array.length a = 0 then invalid_arg "Floatx.min_arr: empty array";
  Array.fold_left Float.min a.(0) a

let max_arr a =
  if Array.length a = 0 then invalid_arg "Floatx.max_arr: empty array";
  Array.fold_left Float.max a.(0) a
