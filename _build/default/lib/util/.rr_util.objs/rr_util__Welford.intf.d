lib/util/welford.mli:
