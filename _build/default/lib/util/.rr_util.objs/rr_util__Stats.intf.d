lib/util/stats.mli:
