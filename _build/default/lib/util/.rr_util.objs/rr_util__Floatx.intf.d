lib/util/floatx.mli:
