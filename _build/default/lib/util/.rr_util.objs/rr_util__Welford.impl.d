lib/util/welford.ml: Array Float
