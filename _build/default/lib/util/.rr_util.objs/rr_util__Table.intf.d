lib/util/table.mli:
