lib/util/prng.mli:
