lib/util/heap.mli:
