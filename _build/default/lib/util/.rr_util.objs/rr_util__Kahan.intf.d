lib/util/kahan.mli:
