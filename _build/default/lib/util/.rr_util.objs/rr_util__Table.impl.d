lib/util/table.ml: Array Buffer Float Int List Printf String
