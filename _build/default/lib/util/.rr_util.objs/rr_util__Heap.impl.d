lib/util/heap.ml: Array Int List
