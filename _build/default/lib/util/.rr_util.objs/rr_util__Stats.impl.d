lib/util/stats.ml: Array Float Kahan Welford
