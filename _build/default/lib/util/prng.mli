(** Deterministic, splittable pseudo-random number generation.

    The generator is Xoshiro256++ seeded through SplitMix64, following the
    reference implementations of Blackman and Vigna.  Every experiment in the
    repository threads an explicit generator state so that runs are exactly
    reproducible from a single integer seed, independently of the OCaml
    standard-library [Random] state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t].  Streams obtained by successive splits are statistically
    independent for simulation purposes. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)] with 53 bits of precision. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given [rate] (mean [1. /. rate]).
    Requires [rate > 0]. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto variate with shape [alpha] and scale [x_min].
    Requires [alpha > 0] and [x_min > 0]. *)

val bounded_pareto : t -> alpha:float -> x_min:float -> x_max:float -> float
(** Bounded Pareto on [\[x_min, x_max\]] via inverse-transform sampling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
