(** Aligned plain-text tables for experiment output.

    Every benchmark table and figure series in the repository is rendered
    through this module so that the output of [bench/main.exe] is uniform
    and diffable. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title row and the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have as many cells as there are columns.
    @raise Invalid_argument otherwise. *)

val add_rowf : t -> ('a -> string) -> 'a list -> unit
(** [add_rowf t f cells] appends [List.map f cells]. *)

val fcell : float -> string
(** Standard numeric cell formatting: fixed point with four significant
    decimals for moderate magnitudes, scientific notation otherwise. *)

val render : t -> string
(** Render with column alignment, a title line and a separator. *)

val print : t -> unit
(** [print t] writes [render t] to standard output followed by a blank
    line. *)
