let percentile a ~p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. Float.of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. Float.of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = percentile a ~p:50.

let jain_index a =
  let n = Array.length a in
  if n = 0 then 1.
  else
    let s = Kahan.sum a in
    let s2 = Kahan.sum_by (fun x -> x *. x) a in
    if s2 <= 0. then 1. else s *. s /. (Float.of_int n *. s2)

let coefficient_of_variation a =
  let w = Welford.of_array a in
  let m = Welford.mean w in
  if m = 0. then 0. else Welford.stddev w /. m
