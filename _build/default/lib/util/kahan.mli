(** Compensated (Kahan-Babuska-Neumaier) floating-point summation.

    Flow-time objectives raise job flow times to the [k]-th power, which
    produces summands spanning many orders of magnitude; naive accumulation
    loses enough precision to perturb competitive-ratio estimates.  All
    objective values in the repository are accumulated through this module. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh accumulator holding 0. *)

val add : t -> float -> unit
(** Accumulate one summand. *)

val total : t -> float
(** Current compensated total. *)

val sum : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float
(** One-shot compensated sum of a list. *)

val sum_by : ('a -> float) -> 'a array -> float
(** [sum_by f a] is the compensated sum of [f a.(i)] over all [i]. *)
