type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (List.length t.columns)
         (List.length row));
  t.rows <- row :: t.rows

let add_rowf t f cells = add_row t (List.map f cells)

let fcell x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 0.01 && Float.abs x < 1e6 then Printf.sprintf "%.4f" x
  else Printf.sprintf "%.3e" x

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
