type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand the seed into the Xoshiro state and
   to derive split streams. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let s = ref seed64 in
  let s0 = splitmix64 s in
  let s1 = splitmix64 s in
  let s2 = splitmix64 s in
  let s3 = splitmix64 s in
  { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let float t =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let mask =
    let rec widen m = if Int64.unsigned_compare m b >= 0 then m else widen Int64.(add (shift_left m 1) 1L) in
    widen 1L
  in
  let rec draw () =
    let x = Int64.logand (bits64 t) mask in
    if Int64.unsigned_compare x b < 0 then Int64.to_int x else draw ()
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~rate =
  assert (rate > 0.);
  let u = 1. -. float t in
  -.log u /. rate

let pareto t ~alpha ~x_min =
  assert (alpha > 0. && x_min > 0.);
  let u = 1. -. float t in
  x_min /. (u ** (1. /. alpha))

let bounded_pareto t ~alpha ~x_min ~x_max =
  assert (alpha > 0. && 0. < x_min && x_min < x_max);
  let u = float t in
  let l = x_min ** alpha and h = x_max ** alpha in
  (* Inverse CDF of the bounded Pareto distribution. *)
  ((-.(u *. h) +. (u *. l) +. h) /. (h *. l)) ** (-1. /. alpha)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
