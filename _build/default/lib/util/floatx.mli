(** Small floating-point helpers shared across the simulator and solvers. *)

val approx_equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_equal a b] holds when [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val powi : float -> int -> float
(** [powi x k] is [x] raised to the non-negative integer power [k] by
    repeated squaring; exact for [k = 0] ([= 1.]) and faster and better
    conditioned than [( ** )] for the small [k] used in lk-norms. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [\[lo, hi\]]. *)

val is_finite_nonneg : float -> bool
(** True for finite values [>= 0.]; used for instance validation. *)

val min_arr : float array -> float
(** Minimum of a non-empty array. @raise Invalid_argument on empty input. *)

val max_arr : float array -> float
(** Maximum of a non-empty array. @raise Invalid_argument on empty input. *)
