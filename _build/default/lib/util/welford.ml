type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. Float.of_int t.n

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then invalid_arg "Welford.min: empty" else t.min

let max t = if t.n = 0 then invalid_arg "Welford.max: empty" else t.max

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t
