let batch_plus_stream ~batch ~stream_load ~horizon_factor =
  if batch < 1 then invalid_arg "Adversary.batch_plus_stream: batch must be >= 1";
  if stream_load <= 0. then invalid_arg "Adversary.batch_plus_stream: stream_load must be positive";
  if horizon_factor <= 0. then
    invalid_arg "Adversary.batch_plus_stream: horizon_factor must be positive";
  let horizon = horizon_factor *. Float.of_int (batch * batch) in
  let interval = 1. /. stream_load in
  let n_stream = int_of_float (horizon /. interval) in
  let batch_jobs = List.init batch (fun _ -> (0., 1.)) in
  let stream_jobs =
    List.init n_stream (fun i -> (Float.of_int (i + 1) *. interval, 1.))
  in
  Instance.of_jobs
    ~label:(Printf.sprintf "batch+stream(B=%d,rho=%.2f)" batch stream_load)
    (batch_jobs @ stream_jobs)

let long_vs_stream ~long_size ~n_short ~short_size =
  if long_size <= 0. || short_size <= 0. then
    invalid_arg "Adversary.long_vs_stream: sizes must be positive";
  if n_short < 1 then invalid_arg "Adversary.long_vs_stream: n_short must be >= 1";
  let shorts =
    List.init n_short (fun i -> (Float.of_int i *. short_size, short_size))
  in
  Instance.of_jobs
    ~label:(Printf.sprintf "long+stream(P=%g,n=%d,s=%g)" long_size n_short short_size)
    ((0., long_size) :: shorts)

let geometric_batch ~levels ~k =
  if levels < 1 then invalid_arg "Adversary.geometric_batch: levels must be >= 1";
  if k < 1 then invalid_arg "Adversary.geometric_batch: k must be >= 1";
  let count l = int_of_float (Float.of_int 2 ** Float.of_int (k * l)) in
  let total = List.fold_left (fun acc l -> acc + count l) 0 (List.init levels Fun.id) in
  if total > 1_000_000 then invalid_arg "Adversary.geometric_batch: too many jobs";
  let jobs =
    List.concat_map
      (fun l ->
        let size = Rr_util.Floatx.powi 0.5 l in
        List.init (count l) (fun _ -> (0., size)))
      (List.init levels Fun.id)
  in
  Instance.of_jobs ~label:(Printf.sprintf "geometric(L=%d,k=%d)" levels k) jobs
