(** Plain-text persistence of instances, one job per line.

    Format: a header line [arrival,size] followed by comma-separated
    records.  Identifiers are assigned on load in arrival order, so a
    round-trip through disk preserves the instance up to relabelling. *)

exception Parse_error of { line : int; message : string }

val save : path:string -> Instance.t -> unit
(** Write the instance to [path], overwriting. *)

val load : path:string -> Instance.t
(** Read an instance back.
    @raise Parse_error on malformed content (with a 1-based line number).
    @raise Sys_error when the file cannot be read. *)

val to_string : Instance.t -> string

val of_string : ?label:string -> string -> Instance.t
(** @raise Parse_error on malformed content. *)
