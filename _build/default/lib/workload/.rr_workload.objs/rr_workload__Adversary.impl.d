lib/workload/adversary.ml: Float Fun Instance List Printf Rr_util
