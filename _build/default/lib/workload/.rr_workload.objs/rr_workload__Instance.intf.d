lib/workload/instance.mli: Arrivals Distribution Format Rr_engine Rr_util
