lib/workload/arrivals.mli: Rr_util
