lib/workload/distribution.ml: Float Printf Rr_util
