lib/workload/trace_io.ml: Buffer Filename Fun Instance List Printf Rr_engine String
