lib/workload/adversary.mli: Instance
