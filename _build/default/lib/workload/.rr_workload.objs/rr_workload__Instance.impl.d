lib/workload/instance.ml: Array Arrivals Distribution Float Format List Printf Rr_engine Rr_util
