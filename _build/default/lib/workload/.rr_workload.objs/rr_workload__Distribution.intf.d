lib/workload/distribution.mli: Rr_util
