lib/workload/arrivals.ml: Array Float Printf Rr_util
