(** Adversarial instance families for Round Robin.

    Section 1.1 of the paper recalls that RR is [Omega(n^{2 eps_p})]-
    competitive for the l2 norm when given only [(1 + eps)] speed — in
    particular not O(1)-competitive with speed below 3/2 — while Theorem 1
    gives O(1)-competitiveness at speed [4 + eps].  The families below
    stress exactly the mechanism behind those bounds: RR's obliviousness to
    remaining work makes backlogs of equal-share jobs linger, inflating the
    flow of everything that arrives while the backlog drains.

    The [batch_plus_stream] family is the growth probe used by figure F1:
    at speed 1 the backlog of [batch] jobs never drains against a load-1
    stream and the measured l2 ratio grows with the instance size; at
    speeds past the theorem threshold the ratio stays flat.  (The
    asymptotic separation for every fixed speed in (1, 3/2) needs fully
    adaptive adversaries; this fixed family is an empirical probe, see
    EXPERIMENTS.md.) *)

val batch_plus_stream :
  batch:int -> stream_load:float -> horizon_factor:float -> Instance.t
(** [batch_plus_stream ~batch ~stream_load ~horizon_factor]: [batch] unit
    jobs released at time 0, followed by a periodic stream of unit jobs at
    rate [stream_load] lasting [horizon_factor * batch^2] time units.
    Offered load tends to [stream_load]; the initial batch is the transient
    RR cannot clear without speed.
    @raise Invalid_argument when [batch < 1], [stream_load <= 0.] or
    [horizon_factor <= 0.]. *)

val long_vs_stream :
  long_size:float -> n_short:int -> short_size:float -> Instance.t
(** One long job released at time 0 into a full-load periodic stream of
    short jobs.  Under clairvoyant policies the long job starves (worst
    max-flow) while RR guarantees it a [1/n_t] share throughout — the
    instantaneous-fairness demonstration, and the family used for the
    crossover experiment T7. *)

val geometric_batch : levels:int -> k:int -> Instance.t
(** Batch release of [2^(k l)] jobs of size [2^(-l)] for each level
    [l = 0 .. levels-1], so that every size scale contributes equally to
    the lk objective of an optimal schedule.  Exercises RR's
    smallest-first completion order on batches.
    @raise Invalid_argument when [levels < 1], [k < 1], or the level
    counts would exceed a million jobs. *)
