exception Parse_error of { line : int; message : string }

let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "arrival,size\n";
  List.iter
    (fun (j : Rr_engine.Job.t) -> Buffer.add_string buf (Printf.sprintf "%.17g,%.17g\n" j.arrival j.size))
    (Instance.jobs inst);
  Buffer.contents buf

let of_string ?(label = "loaded") s =
  let lines = String.split_on_char '\n' s in
  let parse_line lineno l =
    match String.split_on_char ',' (String.trim l) with
    | [ a; p ] -> (
        match (float_of_string_opt a, float_of_string_opt p) with
        | Some arrival, Some size -> (arrival, size)
        | _ -> raise (Parse_error { line = lineno; message = "expected two floats: " ^ l }))
    | _ -> raise (Parse_error { line = lineno; message = "expected 'arrival,size': " ^ l })
  in
  let rec collect lineno acc = function
    | [] -> List.rev acc
    | l :: rest when String.trim l = "" -> collect (lineno + 1) acc rest
    | l :: rest -> collect (lineno + 1) (parse_line lineno l :: acc) rest
  in
  match lines with
  | header :: rest when String.trim header = "arrival,size" ->
      let pairs = collect 2 [] rest in
      (try Instance.of_jobs ~label pairs
       with Invalid_argument m -> raise (Parse_error { line = 0; message = m }))
  | _ -> raise (Parse_error { line = 1; message = "missing 'arrival,size' header" })

let save ~path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string ~label:(Filename.basename path) s)
