(** Job-size distributions.

    The paper's motivation spans operating systems and data networks, whose
    service-time distributions range from near-deterministic to heavy
    tailed; the evaluation suite uses the standard spread below.  All
    sampling is inverse-transform over the repository PRNG, so instances
    are reproducible from a seed. *)

type t =
  | Deterministic of float  (** Every job has exactly this size. *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { alpha : float; x_min : float }
      (** Unbounded Pareto; infinite variance when [alpha <= 2]. *)
  | Bounded_pareto of { alpha : float; x_min : float; x_max : float }
      (** The classic heavy-tail model for computing workloads. *)
  | Bimodal of { small : float; large : float; prob_large : float }
      (** Mice-and-elephants mix. *)

val validate : t -> (unit, string) result
(** Check parameter sanity (positivity, ordering, probability range). *)

val sample : Rr_util.Prng.t -> t -> float
(** Draw one size.  @raise Invalid_argument on invalid parameters. *)

val mean : t -> float
(** Analytic mean; [infinity] for [Pareto] with [alpha <= 1]. *)

val name : t -> string
(** Short label for tables, e.g. ["exp(1)"], ["bpareto(1.5)"]. *)
