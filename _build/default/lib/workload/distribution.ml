type t =
  | Deterministic of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { alpha : float; x_min : float }
  | Bounded_pareto of { alpha : float; x_min : float; x_max : float }
  | Bimodal of { small : float; large : float; prob_large : float }

let validate = function
  | Deterministic p when p > 0. -> Ok ()
  | Deterministic _ -> Error "Deterministic: size must be positive"
  | Uniform { lo; hi } when 0. < lo && lo <= hi -> Ok ()
  | Uniform _ -> Error "Uniform: need 0 < lo <= hi"
  | Exponential { mean } when mean > 0. -> Ok ()
  | Exponential _ -> Error "Exponential: mean must be positive"
  | Pareto { alpha; x_min } when alpha > 0. && x_min > 0. -> Ok ()
  | Pareto _ -> Error "Pareto: alpha and x_min must be positive"
  | Bounded_pareto { alpha; x_min; x_max } when alpha > 0. && 0. < x_min && x_min < x_max ->
      Ok ()
  | Bounded_pareto _ -> Error "Bounded_pareto: need alpha > 0 and 0 < x_min < x_max"
  | Bimodal { small; large; prob_large }
    when 0. < small && small <= large && 0. <= prob_large && prob_large <= 1. ->
      Ok ()
  | Bimodal _ -> Error "Bimodal: need 0 < small <= large and prob_large in [0,1]"

let check d = match validate d with Ok () -> () | Error msg -> invalid_arg ("Distribution: " ^ msg)

let sample rng d =
  check d;
  match d with
  | Deterministic p -> p
  | Uniform { lo; hi } -> Rr_util.Prng.float_range rng ~lo ~hi
  | Exponential { mean } -> Rr_util.Prng.exponential rng ~rate:(1. /. mean)
  | Pareto { alpha; x_min } -> Rr_util.Prng.pareto rng ~alpha ~x_min
  | Bounded_pareto { alpha; x_min; x_max } ->
      Rr_util.Prng.bounded_pareto rng ~alpha ~x_min ~x_max
  | Bimodal { small; large; prob_large } ->
      if Rr_util.Prng.float rng < prob_large then large else small

let mean = function
  | Deterministic p -> p
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Exponential { mean } -> mean
  | Pareto { alpha; x_min } ->
      if alpha <= 1. then Float.infinity else alpha *. x_min /. (alpha -. 1.)
  | Bounded_pareto { alpha; x_min; x_max } ->
      if Rr_util.Floatx.approx_equal alpha 1. then
        (* alpha = 1 limit of the general formula. *)
        log (x_max /. x_min) /. ((1. /. x_min) -. (1. /. x_max))
      else
        let l = x_min and h = x_max in
        let la = l ** alpha in
        la /. (1. -. ((l /. h) ** alpha))
        *. (alpha /. (alpha -. 1.))
        *. ((1. /. (l ** (alpha -. 1.))) -. (1. /. (h ** (alpha -. 1.))))
  | Bimodal { small; large; prob_large } ->
      (prob_large *. large) +. ((1. -. prob_large) *. small)

let name = function
  | Deterministic p -> Printf.sprintf "det(%g)" p
  | Uniform { lo; hi } -> Printf.sprintf "unif(%g,%g)" lo hi
  | Exponential { mean } -> Printf.sprintf "exp(%g)" mean
  | Pareto { alpha; x_min } -> Printf.sprintf "pareto(%g,%g)" alpha x_min
  | Bounded_pareto { alpha; x_min; x_max } ->
      Printf.sprintf "bpareto(%g,%g,%g)" alpha x_min x_max
  | Bimodal { small; large; prob_large } ->
      Printf.sprintf "bimodal(%g,%g,p=%g)" small large prob_large
