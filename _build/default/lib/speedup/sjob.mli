(** Jobs with arbitrary speed-up curves (the Edmonds model of §1.3).

    The paper contrasts its result with the {e arbitrary speed-up curves}
    setting, where "each job can be sped up by being assigned more
    machines, and can have a different degree of parallelizability", and
    where RR (there called EQUI) is O(1)-speed O(1)-competitive for the l1
    norm but {e provably not} for the l2 norm [15].  This library models
    that setting so the contrast can be demonstrated (experiment F4).

    A job is a sequence of {e phases}; a phase processed with [x] machines
    progresses at rate [clamp(x, lo, hi)]:

    - fully parallelizable phase: [lo = 0, hi = infinity] (rate [x]);
    - bounded-parallel phase: [lo = 0, hi = c] (cannot use more than [c]
      machines);
    - sequential phase: [lo = hi = 1] (progresses at unit rate no matter
      what is allocated — allocating machines to it is pure waste, the
      trap EQUI falls into). *)

type phase = { work : float; lo : float; hi : float }

type t = { id : int; arrival : float; phases : phase list }

val phase : ?lo:float -> ?hi:float -> work:float -> unit -> phase
(** Build a phase (defaults [lo = 0.], [hi = infinity] — fully
    parallelizable).
    @raise Invalid_argument unless [work > 0.] and [0. <= lo <= hi]. *)

val parallel : work:float -> phase
(** Fully parallelizable phase. *)

val sequential : work:float -> phase
(** Sequential phase ([lo = hi = 1]). *)

val make : id:int -> arrival:float -> phases:phase list -> t
(** @raise Invalid_argument on a negative id, non-finite or negative
    arrival, or an empty phase list. *)

val rate : phase -> machines:float -> float
(** Progress rate of the phase under an allocation of [machines]
    (fractional allowed): [clamp(machines, lo, hi)]. *)

val total_work : t -> float
