lib/speedup/equi_sim.ml: Array Float Fun Int List Printf Sjob
