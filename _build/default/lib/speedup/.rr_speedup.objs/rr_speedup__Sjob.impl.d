lib/speedup/sjob.ml: Float List Rr_util
