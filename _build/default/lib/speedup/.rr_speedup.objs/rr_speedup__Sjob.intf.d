lib/speedup/sjob.mli:
