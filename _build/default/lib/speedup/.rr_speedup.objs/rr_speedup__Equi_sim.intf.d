lib/speedup/equi_sim.mli: Sjob
