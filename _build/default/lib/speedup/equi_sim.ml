type view = { id : int; arrival : float; phase_lo : float option; phase_hi : float option }

type policy = {
  name : string;
  sees_phases : bool;
  allocate : machines:int -> view array -> float array;
}

exception Invalid_allocation of string

type result = { completions : float array; flows : float array; events : int }

let equi =
  {
    name = "equi";
    sees_phases = false;
    allocate =
      (fun ~machines views ->
        let n = Array.length views in
        Array.make n (Float.of_int machines /. Float.of_int (Int.max n 1)));
  }

(* Max-min shares with per-job caps: fill the smallest caps first, then
   split what remains equally among the uncapped. *)
let max_min_with_caps ~budget caps =
  let n = Array.length caps in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare caps.(a) caps.(b)) idx;
  let shares = Array.make n 0. in
  let remaining = ref budget in
  Array.iteri
    (fun pos i ->
      let left = n - pos in
      let fair = !remaining /. Float.of_int left in
      let s = Float.min caps.(i) fair in
      shares.(i) <- s;
      remaining := !remaining -. s)
    idx;
  shares

let cap_equi =
  {
    name = "cap-equi";
    sees_phases = true;
    allocate =
      (fun ~machines views ->
        let caps =
          Array.map
            (fun v ->
              match (v.phase_lo, v.phase_hi) with
              | Some lo, Some hi ->
                  (* Machines only help between lo and hi; a phase with
                     lo = hi advances on its own, so giving it anything is
                     waste. *)
                  if hi <= lo then 0. else hi
              | _ -> invalid_arg "cap_equi: phase information hidden")
            views
        in
        max_min_with_caps ~budget:(Float.of_int machines) caps);
  }

type live = {
  job : Sjob.t;
  mutable phases_left : Sjob.phase list;  (* head = current phase *)
  mutable phase_remaining : float;
}

let run ?(speed = 1.) ?(max_events = 1_000_000) ~machines ~policy jobs =
  if machines < 1 then invalid_arg "Equi_sim.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Equi_sim.run: speed must be finite and positive";
  let n = List.length jobs in
  let seen = Array.make (Int.max n 1) false in
  List.iter
    (fun (j : Sjob.t) ->
      if j.id >= n || seen.(j.id) then
        invalid_arg "Equi_sim.run: job ids must be exactly 0 .. n-1, without duplicates";
      seen.(j.id) <- true)
    jobs;
  let order = Array.of_list jobs in
  Array.sort
    (fun (a : Sjob.t) (b : Sjob.t) ->
      match Float.compare a.arrival b.arrival with 0 -> Int.compare a.id b.id | c -> c)
    order;
  let completions = Array.make n Float.nan in
  let arrivals = Array.make n 0. in
  Array.iter (fun (j : Sjob.t) -> arrivals.(j.id) <- j.arrival) order;
  let pending = ref 0 in
  let alive : live list ref = ref [] in
  let now = ref (if n > 0 then order.(0).arrival else 0.) in
  let admit () =
    while !pending < n && order.(!pending).arrival <= !now do
      let j = order.(!pending) in
      (match j.phases with
      | first :: rest ->
          alive := { job = j; phases_left = first :: rest; phase_remaining = first.work } :: !alive
      | [] -> assert false);
      incr pending
    done
  in
  admit ();
  let events = ref 0 in
  while !alive <> [] || !pending < n do
    incr events;
    if !events > max_events then
      raise (Invalid_allocation (Printf.sprintf "exceeded max_events = %d" max_events));
    if !alive = [] then begin
      now := order.(!pending).arrival;
      admit ()
    end
    else begin
      let live_arr = Array.of_list !alive in
      let views =
        Array.map
          (fun l ->
            let p = List.hd l.phases_left in
            {
              id = l.job.id;
              arrival = l.job.arrival;
              phase_lo = (if policy.sees_phases then Some p.Sjob.lo else None);
              phase_hi = (if policy.sees_phases then Some p.Sjob.hi else None);
            })
          live_arr
      in
      let shares = policy.allocate ~machines views in
      if Array.length shares <> Array.length live_arr then
        raise (Invalid_allocation "share vector length mismatch");
      let sum = Array.fold_left ( +. ) 0. shares in
      if sum > Float.of_int machines +. 1e-6 then
        raise (Invalid_allocation (Printf.sprintf "shares sum to %g > %d machines" sum machines));
      Array.iter
        (fun s ->
          if not (Float.is_finite s) || s < -1e-9 then
            raise (Invalid_allocation "non-finite or negative share"))
        shares;
      (* Time to the next phase boundary under the current constant rates. *)
      let t_next = ref Float.infinity in
      let rates = Array.make (Array.length live_arr) 0. in
      Array.iteri
        (fun i l ->
          let p = List.hd l.phases_left in
          let r = Sjob.rate p ~machines:(Float.max 0. shares.(i)) *. speed in
          rates.(i) <- r;
          if r > 0. then begin
            let t = !now +. (l.phase_remaining /. r) in
            if t < !t_next then t_next := t
          end)
        live_arr;
      if !pending < n && order.(!pending).arrival < !t_next then
        t_next := order.(!pending).arrival;
      if not (Float.is_finite !t_next) then
        raise (Invalid_allocation "no job makes progress and no arrival is pending");
      let dt = !t_next -. !now in
      Array.iteri
        (fun i l -> l.phase_remaining <- l.phase_remaining -. (rates.(i) *. dt))
        live_arr;
      now := !t_next;
      (* Cross phase boundaries; completing the last phase retires the job. *)
      alive :=
        List.filter
          (fun l ->
            if l.phase_remaining <= 1e-9 *. (1. +. Sjob.total_work l.job) then begin
              match l.phases_left with
              | _ :: (next :: _ as rest) ->
                  l.phases_left <- rest;
                  l.phase_remaining <- next.Sjob.work;
                  true
              | [ _ ] | [] ->
                  completions.(l.job.id) <- !now;
                  false
            end
            else true)
          !alive;
      admit ()
    end
  done;
  let flows = Array.mapi (fun i c -> c -. arrivals.(i)) completions in
  { completions; flows; events = !events }
