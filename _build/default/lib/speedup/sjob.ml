type phase = { work : float; lo : float; hi : float }

type t = { id : int; arrival : float; phases : phase list }

let phase ?(lo = 0.) ?(hi = Float.infinity) ~work () =
  if not (Float.is_finite work && work > 0.) then
    invalid_arg "Sjob.phase: work must be finite and positive";
  if not (0. <= lo && lo <= hi) then invalid_arg "Sjob.phase: need 0 <= lo <= hi";
  { work; lo; hi }

let parallel ~work = phase ~work ()

let sequential ~work = phase ~lo:1. ~hi:1. ~work ()

let make ~id ~arrival ~phases =
  if id < 0 then invalid_arg "Sjob.make: negative id";
  if not (Rr_util.Floatx.is_finite_nonneg arrival) then
    invalid_arg "Sjob.make: arrival must be a finite non-negative float";
  if phases = [] then invalid_arg "Sjob.make: a job needs at least one phase";
  { id; arrival; phases }

let rate p ~machines = Rr_util.Floatx.clamp ~lo:p.lo ~hi:p.hi machines

let total_work t = Rr_util.Kahan.sum_list (List.map (fun p -> p.work) t.phases)
