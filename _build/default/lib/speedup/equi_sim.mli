(** Event-driven simulator and allocation policies for the speed-up curves
    setting.

    Allocations here assign a {e fractional number of machines} [x_j >= 0]
    with [sum x_j <= m] (a job may use several machines, unlike the
    standard setting); a phase progresses at [Sjob.rate phase x * speed].
    Between arrivals and phase boundaries allocations are constant, so the
    simulation is exact, mirroring {!Rr_engine.Simulator}. *)

type view = {
  id : int;
  arrival : float;
  phase_lo : float option;  (** Current phase's [lo]; [None] when hidden. *)
  phase_hi : float option;  (** Current phase's [hi]; [None] when hidden. *)
}

type policy = {
  name : string;
  sees_phases : bool;
      (** Clairvoyance about the current phase's speed-up curve; EQUI is
          oblivious and receives [None] fields. *)
  allocate : machines:int -> view array -> float array;
}

val equi : policy
(** EQUI = Round Robin in this setting: every alive job receives an equal
    [m / n_t] share of the machines, oblivious to parallelizability. *)

val cap_equi : policy
(** Parallelizability-aware EQUI: jobs whose current phase cannot benefit
    from machines ([lo = hi], e.g. sequential phases) receive nothing, and
    the machines are split max-min among the rest, capped at each phase's
    [hi].  The comparison point showing what EQUI wastes. *)

val max_min_with_caps : budget:float -> float array -> float array
(** Max-min fair shares of [budget] under per-entry caps (the allocation
    rule of {!cap_equi}); exposed for testing. *)

exception Invalid_allocation of string

type result = {
  completions : float array;  (** By job id. *)
  flows : float array;
  events : int;
}

val run :
  ?speed:float -> ?max_events:int -> machines:int -> policy:policy -> Sjob.t list -> result
(** Simulate to completion of all jobs.
    @raise Invalid_argument on invalid parameters or non-dense job ids.
    @raise Invalid_allocation when the policy over-allocates or the system
    cannot make progress. *)
