let zipf_weights ~n_pages ~exponent =
  if n_pages < 1 then invalid_arg "Workgen.zipf_weights: n_pages must be >= 1";
  if exponent < 0. then invalid_arg "Workgen.zipf_weights: exponent must be non-negative";
  let raw = Array.init n_pages (fun i -> 1. /. (Float.of_int (i + 1) ** exponent)) in
  let total = Rr_util.Kahan.sum raw in
  Array.map (fun w -> w /. total) raw

let sample_page rng cumulative =
  let u = Rr_util.Prng.float rng in
  let n = Array.length cumulative in
  (* First index whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let requests ~rng ~n_pages ~exponent ~rate ~n () =
  if rate <= 0. then invalid_arg "Workgen.requests: rate must be positive";
  if n < 0 then invalid_arg "Workgen.requests: n must be non-negative";
  let weights = zipf_weights ~n_pages ~exponent in
  let cumulative = Array.make n_pages 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n_pages - 1) <- 1.;
  let t = ref 0. in
  List.init n (fun id ->
      t := !t +. Rr_util.Prng.exponential rng ~rate;
      Request.make ~id ~arrival:!t ~page:(sample_page rng cumulative))

let uniform_sizes ~rng ~n_pages ~lo ~hi =
  if not (0. < lo && lo <= hi) then invalid_arg "Workgen.uniform_sizes: need 0 < lo <= hi";
  Array.init n_pages (fun _ -> Rr_util.Prng.float_range rng ~lo ~hi)
