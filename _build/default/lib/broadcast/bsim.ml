type page_view = {
  page : int;
  outstanding : int;
  oldest_arrival : float;
  total_wait : float;
}

type decision = { rates : float array; horizon : float option }

type policy = { name : string; allocate : now:float -> page_view array -> decision }

exception Invalid_allocation of string

type result = { completions : float array; flows : float array; events : int }

let broadcast_rr =
  {
    name = "b-rr";
    allocate =
      (fun ~now:_ views ->
        let n = Array.length views in
        { rates = Array.make n (1. /. Float.of_int (Int.max n 1)); horizon = None });
  }

let fifo =
  {
    name = "b-fifo";
    allocate =
      (fun ~now:_ views ->
        let rates = Array.make (Array.length views) 0. in
        let best = ref 0 in
        Array.iteri
          (fun i v -> if v.oldest_arrival < views.(!best).oldest_arrival then best := i)
          views;
        rates.(!best) <- 1.;
        { rates; horizon = None });
  }

let lwf =
  {
    name = "lwf";
    allocate =
      (fun ~now views ->
        let rates = Array.make (Array.length views) 0. in
        let best = ref 0 in
        Array.iteri
          (fun i v ->
            if
              v.total_wait > views.(!best).total_wait +. 1e-12
              || (Rr_util.Floatx.approx_equal v.total_wait views.(!best).total_wait
                 && v.page < views.(!best).page)
            then best := i)
          views;
        rates.(!best) <- 1.;
        (* Waiting times grow linearly at slope [outstanding]; report the
           first instant a challenger overtakes the current leader. *)
        let leader = views.(!best) in
        let horizon = ref None in
        Array.iter
          (fun v ->
            if v.page <> leader.page && v.outstanding > leader.outstanding then begin
              let gap = Float.max 0. (leader.total_wait -. v.total_wait) in
              let slope = Float.of_int (v.outstanding - leader.outstanding) in
              (* A floor on the crossover step keeps ties from generating a
                 zero-length horizon loop; the approximation is 1e-6 time
                 units per lead change. *)
              let delta = Float.max (gap /. slope) 1e-6 in
              let t = now +. delta in
              match !horizon with
              | Some h when h <= t -> ()
              | _ -> horizon := Some t
            end)
          views;
        { rates; horizon = !horizon });
  }

type live = { req : Request.t; mutable deficit : float }

let run ?(speed = 1.) ?(max_events = 1_000_000) ~sizes ~policy requests =
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Bsim.run: speed must be finite and positive";
  (match Request.validate_pages ~sizes requests with
  | Ok () -> ()
  | Error e -> invalid_arg ("Bsim.run: " ^ e));
  let n = List.length requests in
  let seen = Array.make (Int.max n 1) false in
  List.iter
    (fun (r : Request.t) ->
      if r.id >= n || seen.(r.id) then
        invalid_arg "Bsim.run: request ids must be exactly 0 .. n-1, without duplicates";
      seen.(r.id) <- true)
    requests;
  let order = Array.of_list requests in
  Array.sort
    (fun (a : Request.t) (b : Request.t) ->
      match Float.compare a.arrival b.arrival with 0 -> Int.compare a.id b.id | c -> c)
    order;
  let arrivals = Array.make n 0. in
  Array.iter (fun (r : Request.t) -> arrivals.(r.id) <- r.arrival) order;
  let completions = Array.make n Float.nan in
  let pending = ref 0 in
  let alive : live list ref = ref [] in
  let now = ref (if n > 0 then order.(0).arrival else 0.) in
  let admit () =
    while !pending < n && order.(!pending).arrival <= !now do
      alive := { req = order.(!pending); deficit = sizes.(order.(!pending).page) } :: !alive;
      incr pending
    done
  in
  admit ();
  let events = ref 0 in
  while !alive <> [] || !pending < n do
    incr events;
    if !events > max_events then
      raise (Invalid_allocation (Printf.sprintf "exceeded max_events = %d" max_events));
    if !alive = [] then begin
      now := order.(!pending).arrival;
      admit ()
    end
    else begin
      (* Group outstanding requests per page. *)
      let by_page = Hashtbl.create 16 in
      List.iter
        (fun l ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_page l.req.Request.page) in
          Hashtbl.replace by_page l.req.Request.page (l :: prev))
        !alive;
      let views =
        Hashtbl.fold
          (fun page group acc ->
            let outstanding = List.length group in
            let oldest =
              List.fold_left (fun m l -> Float.min m l.req.Request.arrival) Float.infinity group
            in
            let wait =
              List.fold_left (fun acc l -> acc +. (!now -. l.req.Request.arrival)) 0. group
            in
            { page; outstanding; oldest_arrival = oldest; total_wait = wait } :: acc)
          by_page []
        |> List.sort (fun a b -> Int.compare a.page b.page)
        |> Array.of_list
      in
      let decision = policy.allocate ~now:!now views in
      if Array.length decision.rates <> Array.length views then
        raise (Invalid_allocation "rate vector length mismatch");
      let sum = ref 0. in
      Array.iter
        (fun r ->
          if not (Float.is_finite r) || r < -1e-9 || r > 1. +. 1e-9 then
            raise (Invalid_allocation "rate outside [0, 1]");
          sum := !sum +. r)
        decision.rates;
      if !sum > 1. +. 1e-6 then raise (Invalid_allocation "rates exceed the channel");
      (match decision.horizon with
      | Some h when not (h > !now) -> raise (Invalid_allocation "horizon not in the future")
      | _ -> ());
      let page_rate = Hashtbl.create 16 in
      Array.iteri
        (fun i v -> Hashtbl.replace page_rate v.page (Rr_util.Floatx.clamp ~lo:0. ~hi:1. decision.rates.(i)))
        views;
      (* Earliest completion: per page, the request with the least deficit. *)
      let t_next = ref Float.infinity in
      List.iter
        (fun l ->
          let r = Hashtbl.find page_rate l.req.Request.page *. speed in
          if r > 0. then begin
            let t = !now +. (l.deficit /. r) in
            if t < !t_next then t_next := t
          end)
        !alive;
      if !pending < n && order.(!pending).arrival < !t_next then
        t_next := order.(!pending).arrival;
      (match decision.horizon with Some h when h < !t_next -> t_next := h | _ -> ());
      if not (Float.is_finite !t_next) then
        raise (Invalid_allocation "no outstanding page is broadcast and nothing is pending");
      let dt = !t_next -. !now in
      List.iter
        (fun l ->
          let r = Hashtbl.find page_rate l.req.Request.page *. speed in
          l.deficit <- l.deficit -. (r *. dt))
        !alive;
      now := !t_next;
      alive :=
        List.filter
          (fun l ->
            if l.deficit <= 1e-9 *. (1. +. sizes.(l.req.Request.page)) then begin
              completions.(l.req.Request.id) <- !now;
              false
            end
            else true)
          !alive;
      admit ()
    end
  done;
  let flows = Array.mapi (fun i c -> c -. arrivals.(i)) completions in
  { completions; flows; events = !events }
