(** Event-driven broadcast-scheduling simulator and policies.

    The server has one broadcast channel of the given [speed]; a policy
    splits it fractionally over the pages with outstanding requests.  A
    request accumulates every unit of its page's broadcast from its arrival
    and completes when it has accumulated the page size.  Between events
    (arrivals, request completions, policy horizons) rates are constant,
    so the simulation is exact. *)

type page_view = {
  page : int;
  outstanding : int;  (** Number of unsatisfied requests for the page. *)
  oldest_arrival : float;  (** Earliest arrival among them. *)
  total_wait : float;  (** Sum over outstanding requests of (now - r). *)
}

type decision = {
  rates : float array;  (** Per page-view channel share in [\[0, 1\]], sum <= 1. *)
  horizon : float option;  (** As in {!Rr_engine.Policy}. *)
}

type policy = { name : string; allocate : now:float -> page_view array -> decision }

val broadcast_rr : policy
(** Round Robin over outstanding pages: every page with at least one
    outstanding request receives an equal channel share — the algorithm
    whose broadcast l1 guarantee (but not l2) the paper cites. *)

val fifo : policy
(** Full channel to the page with the oldest outstanding request. *)

val lwf : policy
(** Longest Wait First (Chekuri-Im-Moseley): full channel to the page with
    the largest accumulated waiting time [total_wait].  Waiting times grow
    linearly between events, so the next lead change among pages is
    computed exactly and reported as the policy horizon. *)

exception Invalid_allocation of string

type result = {
  completions : float array;  (** By request id. *)
  flows : float array;
  events : int;
}

val run :
  ?speed:float ->
  ?max_events:int ->
  sizes:float array ->
  policy:policy ->
  Request.t list ->
  result
(** Simulate until every request is satisfied.
    @raise Invalid_argument on invalid pages/sizes or non-dense request
    ids.
    @raise Invalid_allocation on infeasible policy output or starvation. *)
