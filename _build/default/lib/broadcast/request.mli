(** Broadcast scheduling (the second §1.3 setting).

    A server holds [pages] with transmission lengths; clients issue
    {e requests} for pages over time.  Broadcasting a page serves {e all}
    outstanding requests for it simultaneously — the aggregation that makes
    the setting different from standard scheduling, and in which the paper
    notes RR is O(1)-speed O(1)-competitive for the l1 norm but {e not for
    the l2 norm} [15].

    We use the standard fractional (cyclic-transmission) relaxation of the
    literature: a request issued at [r] for page [p] completes once
    [int_r^C rate_p(t) dt = size_p]; all requests of a page accumulate from
    the same broadcast simultaneously, preserving the aggregation benefit. *)

type t = { id : int; arrival : float; page : int }

val make : id:int -> arrival:float -> page:int -> t
(** @raise Invalid_argument on a negative id or page, or a non-finite or
    negative arrival. *)

val validate_pages : sizes:float array -> t list -> (unit, string) result
(** Check that every request's page exists in [sizes] and every page size
    is finite and positive. *)
