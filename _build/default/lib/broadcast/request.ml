type t = { id : int; arrival : float; page : int }

let make ~id ~arrival ~page =
  if id < 0 then invalid_arg "Request.make: negative id";
  if page < 0 then invalid_arg "Request.make: negative page";
  if not (Rr_util.Floatx.is_finite_nonneg arrival) then
    invalid_arg "Request.make: arrival must be a finite non-negative float";
  { id; arrival; page }

let validate_pages ~sizes requests =
  let bad_size =
    Array.exists (fun s -> not (Float.is_finite s && s > 0.)) sizes
  in
  if bad_size then Error "every page size must be finite and positive"
  else
    match
      List.find_opt (fun r -> r.page >= Array.length sizes) requests
    with
    | Some r -> Error (Printf.sprintf "request %d asks for unknown page %d" r.id r.page)
    | None -> Ok ()
