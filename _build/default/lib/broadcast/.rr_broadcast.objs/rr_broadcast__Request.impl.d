lib/broadcast/request.ml: Array Float List Printf Rr_util
