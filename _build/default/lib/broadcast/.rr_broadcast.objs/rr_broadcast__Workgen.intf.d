lib/broadcast/workgen.mli: Request Rr_util
