lib/broadcast/bsim.mli: Request
