lib/broadcast/workgen.ml: Array Float List Request Rr_util
