lib/broadcast/bsim.ml: Array Float Hashtbl Int List Option Printf Request Rr_util
