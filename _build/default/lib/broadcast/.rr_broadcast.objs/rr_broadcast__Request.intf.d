lib/broadcast/request.mli:
