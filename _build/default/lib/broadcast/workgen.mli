(** Broadcast workload generation: Zipf-popular pages, Poisson requests. *)

val zipf_weights : n_pages:int -> exponent:float -> float array
(** Normalised Zipf popularity: page of rank [i] (0-based) has probability
    proportional to [1 / (i+1)^exponent].
    @raise Invalid_argument when [n_pages < 1] or [exponent < 0.]. *)

val requests :
  rng:Rr_util.Prng.t ->
  n_pages:int ->
  exponent:float ->
  rate:float ->
  n:int ->
  unit ->
  Request.t list
(** [n] requests with Poisson arrivals at [rate], pages sampled from the
    Zipf distribution; ids are dense in arrival order. *)

val uniform_sizes : rng:Rr_util.Prng.t -> n_pages:int -> lo:float -> hi:float -> float array
(** Independent uniform page sizes.
    @raise Invalid_argument unless [0 < lo <= hi]. *)
