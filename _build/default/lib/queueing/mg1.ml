let check_stable ~lambda ~es =
  if not (lambda > 0. && es > 0.) then invalid_arg "Mg1: need lambda > 0 and es > 0";
  let rho = lambda *. es in
  if rho >= 1. then invalid_arg "Mg1: unstable queue (rho >= 1)";
  rho

let mean_wait_fcfs ~lambda ~es ~es2 =
  let rho = check_stable ~lambda ~es in
  if es2 < es *. es then invalid_arg "Mg1.mean_wait_fcfs: es2 below es^2";
  lambda *. es2 /. (2. *. (1. -. rho))

let mean_flow_fcfs ~lambda ~es ~es2 = mean_wait_fcfs ~lambda ~es ~es2 +. es

let mean_flow_ps ~lambda ~es =
  let rho = check_stable ~lambda ~es in
  es /. (1. -. rho)

let conditional_flow_ps ~lambda ~es ~size =
  let rho = check_stable ~lambda ~es in
  if size <= 0. then invalid_arg "Mg1.conditional_flow_ps: size must be positive";
  size /. (1. -. rho)

let second_moment (d : Rr_workload.Distribution.t) =
  (match Rr_workload.Distribution.validate d with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mg1.second_moment: " ^ m));
  match d with
  | Deterministic p -> p *. p
  | Uniform { lo; hi } ->
      if hi = lo then lo *. lo else ((hi ** 3.) -. (lo ** 3.)) /. (3. *. (hi -. lo))
  | Exponential { mean } -> 2. *. mean *. mean
  | Pareto { alpha; x_min } ->
      if alpha <= 2. then Float.infinity
      else alpha *. x_min *. x_min /. (alpha -. 2.)
  | Bounded_pareto { alpha; x_min; x_max } ->
      (* E[X^2] of the bounded Pareto; the alpha = 2 case is the log limit. *)
      let l = x_min and h = x_max in
      let la = l ** alpha in
      let norm = la /. (1. -. ((l /. h) ** alpha)) in
      if Rr_util.Floatx.approx_equal alpha 2. then norm *. 2. *. log (h /. l)
      else
        norm *. alpha /. (2. -. alpha) *. ((h ** (2. -. alpha)) -. (l ** (2. -. alpha)))
  | Bimodal { small; large; prob_large } ->
      ((1. -. prob_large) *. small *. small) +. (prob_large *. large *. large)
