(** Closed-form results for the M/M/1 queue.

    Poisson arrivals at rate [lambda], exponential service with mean
    [1/mu], single server, [rho = lambda/mu < 1].  These formulas calibrate
    the simulator: a long simulated Poisson/exponential instance must match
    them within sampling error (see test_queueing and experiment T10).

    All functions
    @raise Invalid_argument unless [lambda > 0], [mu > 0] and
    [lambda < mu]. *)

val utilization : lambda:float -> mu:float -> float
(** [rho = lambda / mu]. *)

val mean_jobs_in_system : lambda:float -> mu:float -> float
(** [L = rho / (1 - rho)] (identical under FCFS and PS). *)

val mean_flow_fcfs : lambda:float -> mu:float -> float
(** Mean response time under FCFS: [1 / (mu - lambda)]. *)

val variance_flow_fcfs : lambda:float -> mu:float -> float
(** The M/M/1-FCFS response time is exponential with rate [mu - lambda],
    so the variance is [1 / (mu - lambda)^2]. *)

val mean_flow_ps : lambda:float -> mu:float -> float
(** Mean response time under processor sharing; equals the FCFS value
    [1 / (mu - lambda)] for exponential service. *)

val mean_slowdown_ps : lambda:float -> mu:float -> size:float -> float
(** Conditional mean response time of a size-[size] job under PS is
    [size / (1 - rho)]; the mean slowdown is therefore [1 / (1 - rho)],
    independent of the size — the "fair stretch" property of PS/RR. *)
