let validate ~lambda ~mu =
  if not (lambda > 0. && mu > 0. && lambda < mu) then
    invalid_arg "Mm1: need 0 < lambda < mu"

let utilization ~lambda ~mu =
  validate ~lambda ~mu;
  lambda /. mu

let mean_jobs_in_system ~lambda ~mu =
  let rho = utilization ~lambda ~mu in
  rho /. (1. -. rho)

let mean_flow_fcfs ~lambda ~mu =
  validate ~lambda ~mu;
  1. /. (mu -. lambda)

let variance_flow_fcfs ~lambda ~mu =
  validate ~lambda ~mu;
  1. /. ((mu -. lambda) ** 2.)

let mean_flow_ps = mean_flow_fcfs

let mean_slowdown_ps ~lambda ~mu ~size =
  validate ~lambda ~mu;
  if size <= 0. then invalid_arg "Mm1.mean_slowdown_ps: size must be positive";
  let rho = lambda /. mu in
  ignore size;
  1. /. (1. -. rho)
