lib/queueing/mg1.ml: Float Rr_util Rr_workload
