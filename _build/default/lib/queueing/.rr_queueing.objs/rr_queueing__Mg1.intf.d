lib/queueing/mg1.mli: Rr_workload
