(** Closed-form results for the M/G/1 queue.

    Poisson arrivals at rate [lambda]; i.i.d. service times from a general
    distribution with mean [es] and second moment [es2]; single server;
    [rho = lambda * es < 1].

    The FCFS waiting time follows the Pollaczek-Khinchine formula; the
    processor-sharing (= idealised Round Robin) response time depends on
    the service distribution only through its mean — the classical
    insensitivity property, which the simulator must and does reproduce
    (experiment T10 compares exponential against bounded-Pareto sizes with
    equal means). *)

val mean_wait_fcfs : lambda:float -> es:float -> es2:float -> float
(** Pollaczek-Khinchine mean waiting time
    [W = lambda * es2 / (2 (1 - rho))].
    @raise Invalid_argument unless [lambda > 0], [es > 0], [es2 >= es^2]
    and [rho < 1]. *)

val mean_flow_fcfs : lambda:float -> es:float -> es2:float -> float
(** [W + es]. *)

val mean_flow_ps : lambda:float -> es:float -> float
(** Insensitive PS mean response time [es / (1 - rho)].
    @raise Invalid_argument unless [lambda > 0], [es > 0] and [rho < 1]. *)

val conditional_flow_ps : lambda:float -> es:float -> size:float -> float
(** Mean response time of a job of exactly [size] under PS:
    [size / (1 - rho)] — linear in the size, i.e. a constant expected
    slowdown for every job size. *)

val second_moment : Rr_workload.Distribution.t -> float
(** Analytic second moment of a size distribution, for feeding
    {!mean_wait_fcfs}.  Defined for Deterministic, Uniform, Exponential,
    Bounded_pareto and Bimodal; [infinity] for heavy-tailed unbounded
    Pareto with [alpha <= 2].
    @raise Invalid_argument on invalid distribution parameters. *)
