(* Tests for the broadcast scheduling substrate. *)

open Rr_broadcast

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b
let req ~id ~arrival ~page = Request.make ~id ~arrival ~page

(* ------------------------------------------------------------------ *)
(* Requests and validation                                             *)
(* ------------------------------------------------------------------ *)

let test_request_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected request validation failure")
    [
      (fun () -> ignore (req ~id:(-1) ~arrival:0. ~page:0));
      (fun () -> ignore (req ~id:0 ~arrival:(-1.) ~page:0));
      (fun () -> ignore (req ~id:0 ~arrival:0. ~page:(-1)));
    ]

let test_validate_pages () =
  (match Request.validate_pages ~sizes:[| 1.; 2. |] [ req ~id:0 ~arrival:0. ~page:1 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Request.validate_pages ~sizes:[| 1. |] [ req ~id:0 ~arrival:0. ~page:3 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown page accepted");
  match Request.validate_pages ~sizes:[| 0. |] [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero page size accepted"

(* ------------------------------------------------------------------ *)
(* The aggregation benefit                                             *)
(* ------------------------------------------------------------------ *)

(* Two simultaneous requests for one page of size 2 are served by a single
   transmission: both complete at t = 2 (standard scheduling would need 4
   units of work). *)
let test_broadcast_aggregates () =
  let requests = [ req ~id:0 ~arrival:0. ~page:0; req ~id:1 ~arrival:0. ~page:0 ] in
  let r = Bsim.run ~sizes:[| 2. |] ~policy:Bsim.broadcast_rr requests in
  check_close "first" 2. r.completions.(0);
  check_close "second rides along" 2. r.completions.(1)

(* A late joiner accumulates only from its own arrival. *)
let test_late_joiner () =
  let requests = [ req ~id:0 ~arrival:0. ~page:0; req ~id:1 ~arrival:1. ~page:0 ] in
  let r = Bsim.run ~sizes:[| 2. |] ~policy:Bsim.broadcast_rr requests in
  check_close "early" 2. r.completions.(0);
  check_close "late joiner needs a full cycle" 3. r.completions.(1)

let test_rr_splits_channel () =
  let requests = [ req ~id:0 ~arrival:0. ~page:0; req ~id:1 ~arrival:0. ~page:1 ] in
  let r = Bsim.run ~sizes:[| 1.; 1. |] ~policy:Bsim.broadcast_rr requests in
  check_close "page 0 at half rate" 2. r.completions.(0);
  check_close "page 1 at half rate" 2. r.completions.(1)

let test_fifo_serves_oldest () =
  let requests = [ req ~id:0 ~arrival:0. ~page:0; req ~id:1 ~arrival:0.5 ~page:1 ] in
  let r = Bsim.run ~sizes:[| 1.; 1. |] ~policy:Bsim.fifo requests in
  check_close "oldest page first" 1. r.completions.(0);
  check_close "then the next" 2. r.completions.(1)

(* LWF lead-change, hand computed: page 0 has one request from t = 0, page 1
   gets two requests at t = 4 (sizes 10 each).  Waits tie at t = 8 and page
   1 then grows faster, so LWF switches: page 1 completes both requests at
   t = 18, page 0 at t = 20. *)
let test_lwf_lead_change () =
  let requests =
    [ req ~id:0 ~arrival:0. ~page:0; req ~id:1 ~arrival:4. ~page:1; req ~id:2 ~arrival:4. ~page:1 ]
  in
  let r = Bsim.run ~sizes:[| 10.; 10. |] ~policy:Bsim.lwf requests in
  check_close ~tol:1e-3 "page 1 pair" 18. r.completions.(1);
  check_close ~tol:1e-3 "page 1 pair'" 18. r.completions.(2);
  check_close ~tol:1e-3 "page 0 preempted" 20. r.completions.(0)

let test_speed_scales () =
  let requests = [ req ~id:0 ~arrival:0. ~page:0 ] in
  let r = Bsim.run ~speed:2. ~sizes:[| 3. |] ~policy:Bsim.broadcast_rr requests in
  check_close "double speed" 1.5 r.completions.(0)

let test_run_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected run validation failure")
    [
      (fun () -> ignore (Bsim.run ~speed:0. ~sizes:[| 1. |] ~policy:Bsim.broadcast_rr []));
      (fun () ->
        ignore (Bsim.run ~sizes:[| 1. |] ~policy:Bsim.broadcast_rr [ req ~id:7 ~arrival:0. ~page:0 ]));
      (fun () ->
        ignore (Bsim.run ~sizes:[| 1. |] ~policy:Bsim.broadcast_rr [ req ~id:0 ~arrival:0. ~page:5 ]));
    ]

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_zipf_weights () =
  let w = Workgen.zipf_weights ~n_pages:3 ~exponent:1. in
  check_close ~tol:1e-12 "normalised" 1. (Rr_util.Kahan.sum w);
  Alcotest.(check bool) "rank order" true (w.(0) > w.(1) && w.(1) > w.(2));
  check_close ~tol:1e-12 "ratio" 2. (w.(0) /. w.(1))

let test_zipf_uniform_case () =
  let w = Workgen.zipf_weights ~n_pages:4 ~exponent:0. in
  Array.iter (fun x -> check_close "uniform at exponent 0" 0.25 x) w

let test_requests_shape () =
  let rng = Rr_util.Prng.create ~seed:5 in
  let reqs = Workgen.requests ~rng ~n_pages:10 ~exponent:1.2 ~rate:2. ~n:500 () in
  Alcotest.(check int) "count" 500 (List.length reqs);
  let sorted = List.for_all2 (fun (a : Request.t) id -> a.id = id) reqs (List.init 500 Fun.id) in
  Alcotest.(check bool) "dense ids" true sorted;
  List.iter
    (fun (r : Request.t) ->
      if r.page < 0 || r.page >= 10 then Alcotest.failf "page out of range: %d" r.page)
    reqs

let test_zipf_popularity_empirical () =
  let rng = Rr_util.Prng.create ~seed:6 in
  let reqs = Workgen.requests ~rng ~n_pages:5 ~exponent:1. ~rate:1. ~n:50_000 () in
  let counts = Array.make 5 0 in
  List.iter (fun (r : Request.t) -> counts.(r.page) <- counts.(r.page) + 1) reqs;
  let w = Workgen.zipf_weights ~n_pages:5 ~exponent:1. in
  Array.iteri
    (fun i c ->
      let emp = Float.of_int c /. 50_000. in
      if Float.abs (emp -. w.(i)) > 0.02 then
        Alcotest.failf "page %d: empirical %g vs zipf %g" i emp w.(i))
    counts

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let random_broadcast_gen =
  QCheck2.Gen.(
    let* n_pages = int_range 1 6 in
    let* n = int_range 1 40 in
    let* seed = int_range 0 10_000 in
    return (n_pages, n, seed))

let build (n_pages, n, seed) =
  let rng = Rr_util.Prng.create ~seed in
  let sizes = Workgen.uniform_sizes ~rng ~n_pages ~lo:0.5 ~hi:3. in
  let reqs = Workgen.requests ~rng ~n_pages ~exponent:1. ~rate:1. ~n () in
  (sizes, reqs)

let prop_all_requests_complete policy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "every request completes (%s)" policy.Bsim.name)
    ~count:80 random_broadcast_gen
    (fun params ->
      let sizes, reqs = build params in
      let r = Bsim.run ~sizes ~policy reqs in
      Array.for_all Float.is_finite r.completions
      && List.for_all
           (fun (q : Request.t) -> r.flows.(q.id) >= sizes.(q.page) -. 1e-6)
           reqs)

let prop_aggregation_beats_unicast =
  (* Serving requests as a broadcast never takes longer than the same
     requests under standard single-machine RR where each request is an
     independent job (aggregation only helps). *)
  QCheck2.Test.make ~name:"broadcast RR total flow <= unicast RR total flow" ~count:60
    random_broadcast_gen
    (fun params ->
      let sizes, reqs = build params in
      let b = Bsim.run ~sizes ~policy:Bsim.broadcast_rr reqs in
      let jobs =
        List.map
          (fun (q : Request.t) ->
            Rr_engine.Job.make ~id:q.id ~arrival:q.arrival ~size:sizes.(q.page))
          reqs
      in
      let u =
        Rr_engine.Simulator.run ~machines:1 ~policy:Rr_policies.Round_robin.policy jobs
      in
      Rr_util.Kahan.sum b.flows <= Rr_engine.Simulator.total_flow u +. 1e-6)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_all_requests_complete Bsim.broadcast_rr;
      prop_all_requests_complete Bsim.fifo;
      prop_all_requests_complete Bsim.lwf;
      prop_aggregation_beats_unicast;
    ]

let () =
  Alcotest.run "rr_broadcast"
    [
      ( "requests",
        [
          Alcotest.test_case "validation" `Quick test_request_validation;
          Alcotest.test_case "page validation" `Quick test_validate_pages;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "aggregation" `Quick test_broadcast_aggregates;
          Alcotest.test_case "late joiner" `Quick test_late_joiner;
          Alcotest.test_case "rr splits" `Quick test_rr_splits_channel;
          Alcotest.test_case "fifo oldest" `Quick test_fifo_serves_oldest;
          Alcotest.test_case "lwf lead change" `Quick test_lwf_lead_change;
          Alcotest.test_case "speed" `Quick test_speed_scales;
          Alcotest.test_case "validation" `Quick test_run_validation;
        ] );
      ( "workgen",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform_case;
          Alcotest.test_case "requests" `Quick test_requests_shape;
          Alcotest.test_case "zipf empirical" `Quick test_zipf_popularity_empirical;
        ] );
      ("properties", qsuite);
    ]
