test/test_speedup.ml: Alcotest Array Equi_sim Float List Printf QCheck2 QCheck_alcotest Rr_speedup Rr_util Sjob
