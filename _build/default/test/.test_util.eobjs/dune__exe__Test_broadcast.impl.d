test/test_broadcast.ml: Alcotest Array Bsim Float Fun List Printf QCheck2 QCheck_alcotest Request Rr_broadcast Rr_engine Rr_policies Rr_util Workgen
