test/test_queueing.ml: Alcotest Array Float List Rr_policies Rr_queueing Rr_util Rr_workload Temporal_fairness
