test/test_flow.ml: Alcotest Array Float List Mcmf QCheck2 QCheck_alcotest Rr_flow Rr_lp
