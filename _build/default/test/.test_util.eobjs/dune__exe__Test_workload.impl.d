test/test_workload.ml: Adversary Alcotest Array Arrivals Distribution Filename Float Fun Instance List QCheck2 QCheck_alcotest Rr_engine Rr_util Rr_workload Sys Trace_io
