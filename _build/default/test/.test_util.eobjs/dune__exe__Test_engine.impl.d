test/test_engine.ml: Alcotest Array Assignment Discrete Float Fun Job List Policy Printf QCheck2 QCheck_alcotest Rr_engine Rr_metrics Rr_policies Rr_util Simulator String Trace
