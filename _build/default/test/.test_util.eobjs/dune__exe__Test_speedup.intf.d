test/test_speedup.mli:
