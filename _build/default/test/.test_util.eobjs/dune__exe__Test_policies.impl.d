test/test_policies.ml: Alcotest Array Float Job List Policy QCheck2 QCheck_alcotest Rr_engine Rr_lp Rr_policies Simulator
