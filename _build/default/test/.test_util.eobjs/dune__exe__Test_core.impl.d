test/test_core.ml: Alcotest Array Experiments Float List Ratio Rr_lp Rr_policies Rr_util Rr_workload Run String Sweep Temporal_fairness
