test/test_dualfit.mli:
