test/test_util.ml: Alcotest Array Float Floatx Fun Heap Int Int64 Kahan List Printf Prng QCheck2 QCheck_alcotest Rr_util Stats String Table Welford
