test/test_dualfit.ml: Alcotest Array Float Job List QCheck2 QCheck_alcotest Rr_dualfit Rr_engine Rr_lp Rr_policies Rr_util Rr_workload Simulator
