test/test_metrics.ml: Alcotest Array Fairness Float Flow_stats Fractional List Norms QCheck2 QCheck_alcotest Rr_engine Rr_metrics Rr_policies
