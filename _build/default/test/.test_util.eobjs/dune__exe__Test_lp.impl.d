test/test_lp.ml: Alcotest Array Brute Float Hashtbl List Lp_bound Option QCheck2 QCheck_alcotest Rr_engine Rr_lp Rr_policies Rr_workload Simplex Temporal_fairness
