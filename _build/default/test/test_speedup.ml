(* Tests for the speed-up curves substrate (the §1.3 setting). *)

open Rr_speedup

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* Phases and jobs                                                     *)
(* ------------------------------------------------------------------ *)

let test_phase_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected phase validation failure")
    [
      (fun () -> ignore (Sjob.phase ~work:0. ()));
      (fun () -> ignore (Sjob.phase ~lo:(-1.) ~work:1. ()));
      (fun () -> ignore (Sjob.phase ~lo:2. ~hi:1. ~work:1. ()));
      (fun () -> ignore (Sjob.make ~id:0 ~arrival:0. ~phases:[]));
      (fun () -> ignore (Sjob.make ~id:(-1) ~arrival:0. ~phases:[ Sjob.parallel ~work:1. ]));
    ]

let test_rate_clamp () =
  let par = Sjob.parallel ~work:1. in
  check_close "parallel uses all machines" 3.5 (Sjob.rate par ~machines:3.5);
  let seq = Sjob.sequential ~work:1. in
  check_close "sequential at zero machines" 1. (Sjob.rate seq ~machines:0.);
  check_close "sequential at many machines" 1. (Sjob.rate seq ~machines:8.);
  let capped = Sjob.phase ~hi:2. ~work:1. () in
  check_close "capped" 2. (Sjob.rate capped ~machines:5.)

let test_total_work () =
  let j =
    Sjob.make ~id:0 ~arrival:0.
      ~phases:[ Sjob.parallel ~work:2.; Sjob.sequential ~work:3. ]
  in
  check_close "sum of phase works" 5. (Sjob.total_work j)

(* ------------------------------------------------------------------ *)
(* Max-min with caps                                                   *)
(* ------------------------------------------------------------------ *)

let test_max_min_uncapped () =
  let s = Equi_sim.max_min_with_caps ~budget:4. [| Float.infinity; Float.infinity |] in
  Alcotest.(check (array (float 1e-9))) "even split" [| 2.; 2. |] s

let test_max_min_small_cap_redistributes () =
  let s = Equi_sim.max_min_with_caps ~budget:4. [| 0.5; Float.infinity |] in
  Alcotest.(check (array (float 1e-9))) "cap then rest" [| 0.5; 3.5 |] s

let test_max_min_zero_caps () =
  let s = Equi_sim.max_min_with_caps ~budget:4. [| 0.; 0.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "zeros excluded" [| 0.; 0.; 1. |] s

let prop_max_min_feasible =
  QCheck2.Test.make ~name:"max-min shares respect caps and budget" ~count:300
    QCheck2.Gen.(
      pair (float_range 0.5 10.) (list_size (int_range 1 12) (float_range 0. 5.)))
    (fun (budget, caps) ->
      let caps = Array.of_list caps in
      let s = Equi_sim.max_min_with_caps ~budget caps in
      let sum = Array.fold_left ( +. ) 0. s in
      sum <= budget +. 1e-9
      && Array.for_all2 (fun x c -> x <= c +. 1e-9 && x >= -1e-12) s caps)

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let test_single_parallel_job_uses_all_machines () =
  let jobs = [ Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.parallel ~work:8. ] ] in
  let r = Equi_sim.run ~machines:4 ~policy:Equi_sim.equi jobs in
  check_close "rate m" 2. r.completions.(0)

let test_sequential_job_ignores_machines () =
  let jobs = [ Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.sequential ~work:3. ] ] in
  let r = Equi_sim.run ~machines:8 ~policy:Equi_sim.equi jobs in
  check_close "unit rate" 3. r.completions.(0)

let test_phase_transition () =
  (* parallel 4 then sequential 1, alone on 2 machines: 2 + 1 = 3. *)
  let jobs =
    [
      Sjob.make ~id:0 ~arrival:0.
        ~phases:[ Sjob.parallel ~work:4.; Sjob.sequential ~work:1. ];
    ]
  in
  let r = Equi_sim.run ~machines:2 ~policy:Equi_sim.equi jobs in
  check_close "two phases" 3. r.completions.(0)

(* Sequential + parallel job on 2 machines: EQUI gives each 1 machine, so
   the parallel job runs at rate 1 until the sequential one leaves at t = 2
   and at rate 2 afterwards: 2 + 2/2 = 3.  CAP-EQUI gives the sequential
   job nothing and the parallel one both machines from the start: done at
   2.  The sequential job finishes at 2 either way. *)
let test_equi_wastes_cap_equi_does_not () =
  let jobs =
    [
      Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.sequential ~work:2. ];
      Sjob.make ~id:1 ~arrival:0. ~phases:[ Sjob.parallel ~work:4. ];
    ]
  in
  let equi = Equi_sim.run ~machines:2 ~policy:Equi_sim.equi jobs in
  check_close "equi sequential" 2. equi.completions.(0);
  check_close "equi parallel wasted" 3. equi.completions.(1);
  let cap = Equi_sim.run ~machines:2 ~policy:Equi_sim.cap_equi jobs in
  check_close "cap sequential" 2. cap.completions.(0);
  check_close "cap parallel" 2. cap.completions.(1)

let test_speed_scales_parallel () =
  let jobs = [ Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.parallel ~work:4. ] ] in
  let r = Equi_sim.run ~speed:2. ~machines:2 ~policy:Equi_sim.equi jobs in
  check_close "speed doubles rate" 1. r.completions.(0)

let test_arrival_staggering () =
  let jobs =
    [
      Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.parallel ~work:2. ];
      Sjob.make ~id:1 ~arrival:10. ~phases:[ Sjob.parallel ~work:2. ];
    ]
  in
  let r = Equi_sim.run ~machines:1 ~policy:Equi_sim.equi jobs in
  check_close "idle gap respected" 12. r.completions.(1);
  check_close "flow of second" 2. r.flows.(1)

let test_run_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected run validation failure")
    [
      (fun () ->
        ignore (Equi_sim.run ~machines:0 ~policy:Equi_sim.equi []));
      (fun () ->
        ignore
          (Equi_sim.run ~machines:1 ~policy:Equi_sim.equi
             [ Sjob.make ~id:5 ~arrival:0. ~phases:[ Sjob.parallel ~work:1. ] ]));
      (fun () ->
        ignore
          (Equi_sim.run ~speed:0. ~machines:1 ~policy:Equi_sim.equi
             [ Sjob.make ~id:0 ~arrival:0. ~phases:[ Sjob.parallel ~work:1. ] ]));
    ]

let random_sjobs_gen =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let phase_gen =
      let* kind = int_range 0 2 in
      let* work = float_range 0.2 3. in
      return
        (match kind with
        | 0 -> Sjob.parallel ~work
        | 1 -> Sjob.sequential ~work
        | _ -> Sjob.phase ~hi:2. ~work ())
    in
    let* specs = list_repeat n (pair (float_range 0. 10.) (list_size (int_range 1 3) phase_gen)) in
    return
      (List.mapi (fun id (arrival, phases) -> Sjob.make ~id ~arrival ~phases) specs))

let prop_all_complete policy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "every speedup job completes (%s)" policy.Equi_sim.name)
    ~count:100 random_sjobs_gen
    (fun jobs ->
      let r = Equi_sim.run ~machines:3 ~policy jobs in
      Array.for_all Float.is_finite r.completions
      && Array.for_all (fun f -> f >= -1e-9) r.flows)

let prop_cap_equi_dominates_on_l1 =
  (* Redirecting shares wasted on sequential phases can only help the
     total flow time on these single-run workloads (not a theorem in
     general, but holds on this generator and guards the allocator). *)
  QCheck2.Test.make ~name:"cap-equi total flow <= equi total flow" ~count:100
    random_sjobs_gen
    (fun jobs ->
      let e = Equi_sim.run ~machines:3 ~policy:Equi_sim.equi jobs in
      let c = Equi_sim.run ~machines:3 ~policy:Equi_sim.cap_equi jobs in
      Rr_util.Kahan.sum c.flows <= Rr_util.Kahan.sum e.flows +. 1e-6)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_max_min_feasible;
      prop_all_complete Equi_sim.equi;
      prop_all_complete Equi_sim.cap_equi;
      prop_cap_equi_dominates_on_l1;
    ]

let () =
  Alcotest.run "rr_speedup"
    [
      ( "phases",
        [
          Alcotest.test_case "validation" `Quick test_phase_validation;
          Alcotest.test_case "rate clamp" `Quick test_rate_clamp;
          Alcotest.test_case "total work" `Quick test_total_work;
        ] );
      ( "max-min",
        [
          Alcotest.test_case "uncapped" `Quick test_max_min_uncapped;
          Alcotest.test_case "redistribution" `Quick test_max_min_small_cap_redistributes;
          Alcotest.test_case "zero caps" `Quick test_max_min_zero_caps;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "single parallel" `Quick test_single_parallel_job_uses_all_machines;
          Alcotest.test_case "sequential" `Quick test_sequential_job_ignores_machines;
          Alcotest.test_case "phase transition" `Quick test_phase_transition;
          Alcotest.test_case "equi waste" `Quick test_equi_wastes_cap_equi_does_not;
          Alcotest.test_case "speed" `Quick test_speed_scales_parallel;
          Alcotest.test_case "staggering" `Quick test_arrival_staggering;
          Alcotest.test_case "validation" `Quick test_run_validation;
        ] );
      ("properties", qsuite);
    ]
