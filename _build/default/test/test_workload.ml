(* Tests for workload generation: distributions, arrival processes,
   instances, adversaries and persistence. *)

open Rr_workload

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

let rng () = Rr_util.Prng.create ~seed:99

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)
(* ------------------------------------------------------------------ *)

let all_valid_dists =
  [
    Distribution.Deterministic 2.;
    Distribution.Uniform { lo = 1.; hi = 3. };
    Distribution.Exponential { mean = 1.5 };
    Distribution.Pareto { alpha = 2.5; x_min = 1. };
    Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 50. };
    Distribution.Bimodal { small = 1.; large = 10.; prob_large = 0.1 };
  ]

let test_distribution_validate () =
  List.iter
    (fun d ->
      match Distribution.validate d with
      | Ok () -> ()
      | Error e -> Alcotest.failf "unexpected rejection: %s" e)
    all_valid_dists;
  List.iter
    (fun d ->
      match Distribution.validate d with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "expected rejection of %s" (Distribution.name d))
    [
      Distribution.Deterministic 0.;
      Distribution.Uniform { lo = 3.; hi = 1. };
      Distribution.Exponential { mean = -1. };
      Distribution.Pareto { alpha = 0.; x_min = 1. };
      Distribution.Bounded_pareto { alpha = 1.; x_min = 5.; x_max = 2. };
      Distribution.Bimodal { small = 1.; large = 10.; prob_large = 1.5 };
    ]

let test_distribution_sample_positive () =
  let r = rng () in
  List.iter
    (fun d ->
      for _ = 1 to 1000 do
        let x = Distribution.sample r d in
        if not (x > 0. && Float.is_finite x) then
          Alcotest.failf "%s produced %g" (Distribution.name d) x
      done)
    all_valid_dists

let test_distribution_means_empirical () =
  let r = rng () in
  List.iter
    (fun d ->
      let mu = Distribution.mean d in
      let n = 200_000 in
      let acc = Rr_util.Kahan.create () in
      for _ = 1 to n do
        Rr_util.Kahan.add acc (Distribution.sample r d)
      done;
      let emp = Rr_util.Kahan.total acc /. Float.of_int n in
      if Float.abs (emp -. mu) > 0.05 *. mu then
        Alcotest.failf "%s: analytic mean %g vs empirical %g" (Distribution.name d) mu emp)
    [
      Distribution.Deterministic 2.;
      Distribution.Uniform { lo = 1.; hi = 3. };
      Distribution.Exponential { mean = 1.5 };
      Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 50. };
      Distribution.Bimodal { small = 1.; large = 10.; prob_large = 0.1 };
    ]

let test_pareto_infinite_mean () =
  check_close "alpha <= 1 has infinite mean" Float.infinity
    (Distribution.mean (Distribution.Pareto { alpha = 0.9; x_min = 1. }))

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let test_arrivals_sorted_nonneg () =
  let r = rng () in
  List.iter
    (fun p ->
      let times = Arrivals.generate r p ~n:500 in
      Alcotest.(check int) "count" 500 (Array.length times);
      let prev = ref (-1.) in
      Array.iter
        (fun t ->
          if t < !prev then Alcotest.failf "%s not sorted" (Arrivals.name p);
          if t < 0. then Alcotest.failf "%s negative time" (Arrivals.name p);
          prev := t)
        times)
    [
      Arrivals.Poisson { rate = 2. };
      Arrivals.Periodic { interval = 0.5 };
      Arrivals.Batched { batch = 10; interval = 5. };
      Arrivals.Bursty { rate_low = 1.; rate_high = 10.; mean_dwell = 3. };
      Arrivals.Diurnal { base_rate = 2.; amplitude = 0.8; period = 20. };
    ]

let test_poisson_rate () =
  let r = rng () in
  let n = 100_000 in
  let times = Arrivals.generate r (Arrivals.Poisson { rate = 2. }) ~n in
  let emp_rate = Float.of_int n /. times.(n - 1) in
  check_close ~tol:0.05 "poisson empirical rate" 2. emp_rate

let test_periodic_exact () =
  let r = rng () in
  let times = Arrivals.generate r (Arrivals.Periodic { interval = 2. }) ~n:4 in
  Alcotest.(check (array (float 1e-12))) "exact grid" [| 0.; 2.; 4.; 6. |] times

let test_batched_shape () =
  let r = rng () in
  let times = Arrivals.generate r (Arrivals.Batched { batch = 2; interval = 3. }) ~n:5 in
  Alcotest.(check (array (float 1e-12))) "batches" [| 0.; 0.; 3.; 3.; 6. |] times

let test_arrivals_validate () =
  List.iter
    (fun p ->
      match Arrivals.validate p with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "expected arrival process rejection")
    [
      Arrivals.Poisson { rate = 0. };
      Arrivals.Periodic { interval = -1. };
      Arrivals.Batched { batch = 0; interval = 1. };
      Arrivals.Bursty { rate_low = 5.; rate_high = 1.; mean_dwell = 1. };
      Arrivals.Diurnal { base_rate = 2.; amplitude = 1.; period = 20. };
      Arrivals.Diurnal { base_rate = 0.; amplitude = 0.5; period = 20. };
    ]

let test_diurnal_rate () =
  let r = rng () in
  let n = 60_000 in
  let times = Arrivals.generate r (Arrivals.Diurnal { base_rate = 2.; amplitude = 0.7; period = 10. }) ~n in
  (* Over many periods the average intensity is the base rate. *)
  let emp = Float.of_int n /. times.(n - 1) in
  Alcotest.(check (float 0.1)) "diurnal long-run rate" 2. emp

let test_diurnal_modulation () =
  (* With near-full amplitude, arrivals concentrate in the rate peaks: the
     first half of each period (sin > 0) must receive well over half the
     arrivals. *)
  let r = rng () in
  let period = 10. in
  let times =
    Arrivals.generate r (Arrivals.Diurnal { base_rate = 1.; amplitude = 0.95; period }) ~n:20_000
  in
  let in_peak =
    Array.fold_left
      (fun acc t -> if Float.rem t period < period /. 2. then acc + 1 else acc)
      0 times
  in
  Alcotest.(check bool) "peak-half dominates" true
    (Float.of_int in_peak > 0.6 *. Float.of_int (Array.length times))

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_sorts_and_numbers () =
  let inst = Instance.of_jobs [ (3., 1.); (1., 2.); (2., 0.5) ] in
  let jobs = Instance.jobs inst in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2 ]
    (List.map (fun (j : Rr_engine.Job.t) -> j.id) jobs);
  Alcotest.(check (list (float 1e-12))) "sorted arrivals" [ 1.; 2.; 3. ]
    (List.map (fun (j : Rr_engine.Job.t) -> j.arrival) jobs)

let test_instance_rejects_bad_jobs () =
  List.iter
    (fun pairs ->
      match Instance.of_jobs pairs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected invalid instance rejection")
    [ [ (-1., 1.) ]; [ (0., 0.) ]; [ (0., -1.) ]; [ (Float.nan, 1.) ] ]

let test_instance_measures () =
  let inst = Instance.of_jobs [ (0., 2.); (4., 3.) ] in
  Alcotest.(check int) "n" 2 (Instance.n inst);
  check_close "total work" 5. (Instance.total_work inst);
  check_close "span" 4. (Instance.span inst);
  check_close "offered load" 1.25 (Instance.offered_load ~machines:1 inst)

let test_generate_load_hits_target () =
  let r = rng () in
  let inst =
    Instance.generate_load ~rng:r
      ~sizes:(Distribution.Exponential { mean = 2. })
      ~load:0.8 ~machines:2 ~n:20_000 ()
  in
  let rho = Instance.offered_load ~machines:2 inst in
  check_close ~tol:0.05 "empirical load near target" 0.8 rho

let test_generate_load_validation () =
  let r = rng () in
  (match
     Instance.generate_load ~rng:r ~sizes:(Distribution.Exponential { mean = 1. }) ~load:0.
       ~machines:1 ~n:5 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "load must be positive");
  match
    Instance.generate_load ~rng:r
      ~sizes:(Distribution.Pareto { alpha = 0.5; x_min = 1. })
      ~load:0.9 ~machines:1 ~n:5 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinite-mean sizes must be rejected"

(* ------------------------------------------------------------------ *)
(* Adversary                                                           *)
(* ------------------------------------------------------------------ *)

let test_batch_plus_stream_shape () =
  let inst = Adversary.batch_plus_stream ~batch:5 ~stream_load:1.0 ~horizon_factor:1.0 in
  Alcotest.(check int) "job count" 30 (Instance.n inst);
  let at_zero =
    List.length
      (List.filter (fun (j : Rr_engine.Job.t) -> j.arrival = 0.) (Instance.jobs inst))
  in
  Alcotest.(check int) "batch at zero" 5 at_zero

let test_long_vs_stream_shape () =
  let inst = Adversary.long_vs_stream ~long_size:10. ~n_short:20 ~short_size:1. in
  Alcotest.(check int) "count" 21 (Instance.n inst);
  check_close "work" 30. (Instance.total_work inst)

let test_geometric_batch_shape () =
  let inst = Adversary.geometric_batch ~levels:3 ~k:2 in
  (* Levels 0,1,2 with counts 1, 4, 16 -> 21 jobs; work 1 + 2 + 4 = 7. *)
  Alcotest.(check int) "count" 21 (Instance.n inst);
  check_close "work" 7. (Instance.total_work inst)

let test_adversary_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected adversary parameter rejection")
    [
      (fun () -> Adversary.batch_plus_stream ~batch:0 ~stream_load:1. ~horizon_factor:1.);
      (fun () -> Adversary.batch_plus_stream ~batch:3 ~stream_load:0. ~horizon_factor:1.);
      (fun () -> Adversary.long_vs_stream ~long_size:0. ~n_short:3 ~short_size:1.);
      (fun () -> Adversary.geometric_batch ~levels:0 ~k:2);
      (fun () -> Adversary.geometric_batch ~levels:15 ~k:2);
    ]

(* ------------------------------------------------------------------ *)
(* Trace_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_string () =
  let inst = Instance.of_jobs [ (0., 1.5); (0.25, 2.); (7., 0.125) ] in
  let inst' = Trace_io.of_string (Trace_io.to_string inst) in
  let pairs i =
    List.map (fun (j : Rr_engine.Job.t) -> (j.arrival, j.size)) (Instance.jobs i)
  in
  Alcotest.(check (list (pair (float 1e-15) (float 1e-15))))
    "round trip" (pairs inst) (pairs inst')

let test_roundtrip_file () =
  let inst = Adversary.long_vs_stream ~long_size:3. ~n_short:5 ~short_size:1. in
  let path = Filename.temp_file "rr_inst" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~path inst;
      let inst' = Trace_io.load ~path in
      Alcotest.(check int) "count preserved" (Instance.n inst) (Instance.n inst'))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Trace_io.of_string s with
      | exception Trace_io.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    [
      "nonsense\n0,1\n";
      "arrival,size\n0\n";
      "arrival,size\nx,y\n";
      "arrival,size\n0,-1\n";
    ]

let test_parse_error_line_number () =
  match Trace_io.of_string "arrival,size\n0,1\nbroken\n" with
  | exception Trace_io.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected parse error"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"trace_io round-trips any instance" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (pair (float_range 0. 100.) (float_range 0.001 50.)))
    (fun pairs ->
      let inst = Instance.of_jobs pairs in
      let inst' = Trace_io.of_string (Trace_io.to_string inst) in
      let p i = List.map (fun (j : Rr_engine.Job.t) -> (j.arrival, j.size)) (Instance.jobs i) in
      p inst = p inst')

let prop_generate_sorted =
  QCheck2.Test.make ~name:"generated instances are sorted with dense ids" ~count:100
    QCheck2.Gen.(int_range 1 200)
    (fun n ->
      let r = Rr_util.Prng.create ~seed:n in
      let inst =
        Instance.generate ~rng:r ~arrivals:(Arrivals.Poisson { rate = 1. })
          ~sizes:(Distribution.Exponential { mean = 1. }) ~n ()
      in
      let jobs = Instance.jobs inst in
      List.for_all2
        (fun (j : Rr_engine.Job.t) id -> j.id = id)
        jobs
        (List.init (List.length jobs) Fun.id))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_generate_sorted ]

let () =
  Alcotest.run "rr_workload"
    [
      ( "distribution",
        [
          Alcotest.test_case "validate" `Quick test_distribution_validate;
          Alcotest.test_case "samples positive" `Quick test_distribution_sample_positive;
          Alcotest.test_case "empirical means" `Quick test_distribution_means_empirical;
          Alcotest.test_case "pareto infinite mean" `Quick test_pareto_infinite_mean;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "sorted nonneg" `Quick test_arrivals_sorted_nonneg;
          Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
          Alcotest.test_case "periodic" `Quick test_periodic_exact;
          Alcotest.test_case "batched" `Quick test_batched_shape;
          Alcotest.test_case "validate" `Quick test_arrivals_validate;
          Alcotest.test_case "diurnal rate" `Quick test_diurnal_rate;
          Alcotest.test_case "diurnal modulation" `Quick test_diurnal_modulation;
        ] );
      ( "instance",
        [
          Alcotest.test_case "sorts and numbers" `Quick test_instance_sorts_and_numbers;
          Alcotest.test_case "rejects bad jobs" `Quick test_instance_rejects_bad_jobs;
          Alcotest.test_case "measures" `Quick test_instance_measures;
          Alcotest.test_case "load targeting" `Quick test_generate_load_hits_target;
          Alcotest.test_case "load validation" `Quick test_generate_load_validation;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "batch+stream" `Quick test_batch_plus_stream_shape;
          Alcotest.test_case "long+stream" `Quick test_long_vs_stream_shape;
          Alcotest.test_case "geometric" `Quick test_geometric_batch_shape;
          Alcotest.test_case "validation" `Quick test_adversary_validation;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "string round-trip" `Quick test_roundtrip_string;
          Alcotest.test_case "file round-trip" `Quick test_roundtrip_file;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick test_parse_error_line_number;
        ] );
      ("properties", qsuite);
    ]
