(* Tests for the dual-fitting certificate: constants, hand-checked alpha
   construction, lemma verification, and property tests on random
   instances (the executable core of the paper's Sections 3.2-3.4). *)

open Rr_engine

let rr = Rr_policies.Round_robin.policy
let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

let job ~id ~arrival ~size = Job.make ~id ~arrival ~size

let certify_instance ?(eps = 0.1) ~k ~machines ~speed jobs =
  let res = Simulator.run ~record_trace:true ~speed ~machines ~policy:rr jobs in
  (res, Rr_dualfit.Certificate.certify ~eps ~k res)

(* ------------------------------------------------------------------ *)
(* Constants                                                           *)
(* ------------------------------------------------------------------ *)

let test_theorem_speed () =
  check_close "k=2, eps=0.1: 2k(1+10eps) = 8" 8.
    (Rr_dualfit.Certificate.theorem_speed ~k:2 ~eps:0.1);
  check_close "k=1, eps=0.05: 3" 3. (Rr_dualfit.Certificate.theorem_speed ~k:1 ~eps:0.05)

let test_gamma () =
  check_close "k=2, eps=0.1: 2 * 20^2 = 800" 800. (Rr_dualfit.Certificate.gamma ~k:2 ~eps:0.1);
  check_close "k=1, eps=0.1: 1 * 10" 10. (Rr_dualfit.Certificate.gamma ~k:1 ~eps:0.1)

(* ------------------------------------------------------------------ *)
(* Hand-checked alpha on a single job                                  *)
(* ------------------------------------------------------------------ *)

let test_alpha_single_job () =
  (* One job of size p at speed eta on one machine: the whole lifetime
     [0, p/eta] is overloaded (|A| = 1 >= m = 1) with rank 1, so
     alpha = F^k - eps F^k with F = p / eta. *)
  let eps = 0.1 and k = 2 and speed = 8. in
  let _, cert = certify_instance ~eps ~k ~machines:1 ~speed [ job ~id:0 ~arrival:0. ~size:4. ] in
  let f = 4. /. speed in
  check_close ~tol:1e-9 "alpha = (1 - eps) F^k" ((1. -. eps) *. f *. f) cert.alphas.(0);
  check_close ~tol:1e-9 "rr power" (f *. f) cert.rr_power;
  Alcotest.(check bool) "sound" true (Rr_dualfit.Certificate.is_sound cert)

let test_alpha_two_jobs_ranks () =
  (* Two identical jobs released together at speed 2, one machine; both
     share rate 1 (speed 2 * share 1/2) and finish at t = 1 with F = 1.
     Overloaded throughout.  Ranks (by arrival, then id): job0 -> 1,
     job1 -> 2 during the whole interval.  Job 0 carries only its own
     rank-normalised term (integral 1); job 1 carries job 0's term plus
     its own halved one (1 + 1/2):
       alpha_0 = 1 - eps,  alpha_1 = 3/2 - eps. *)
  let eps = 0.1 and k = 2 in
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:1. ] in
  let _, cert = certify_instance ~eps ~k ~machines:1 ~speed:2. jobs in
  check_close ~tol:1e-9 "alpha_0" 0.9 cert.alphas.(0);
  check_close ~tol:1e-9 "alpha_1" 1.4 cert.alphas.(1)

(* The regression that exposed the missing inner sum: on a batch-heavy
   adversarial instance with large alive sets, Lemma 1 fails for the
   "own term only" construction but holds for the paper's.  Feasibility
   must hold at the Theorem-1 speed and break at speed 1, where the
   analysis genuinely needs the resource augmentation. *)
let test_adversarial_batch_certificate () =
  let inst =
    Rr_workload.Adversary.batch_plus_stream ~batch:20 ~stream_load:1.0 ~horizon_factor:1.0
  in
  let certify_at speed =
    let res =
      Simulator.run ~record_trace:true ~speed ~machines:1 ~policy:rr
        (Rr_workload.Instance.jobs inst)
    in
    Rr_dualfit.Certificate.certify ~eps:0.1 ~k:2 res
  in
  let at_theorem = certify_at 8. in
  Alcotest.(check bool) "lemma 1 at theorem speed" true at_theorem.lemma1_ok;
  Alcotest.(check bool) "lemma 2 at theorem speed" true at_theorem.lemma2_ok;
  Alcotest.(check bool) "feasible at theorem speed" true
    (at_theorem.violation_ratio <= 1. +. 1e-6);
  Alcotest.(check bool) "sound" true (Rr_dualfit.Certificate.is_sound at_theorem);
  let at_one = certify_at 1. in
  Alcotest.(check bool) "lemmas are speed-independent identities" true
    (at_one.lemma1_ok && at_one.lemma2_ok);
  Alcotest.(check bool) "feasibility needs the speed" true (at_one.violation_ratio > 1.)

let test_underloaded_times_have_no_rank_divisor () =
  (* One job on two machines is underloaded (|A| = 1 < m = 2): the
     underloaded branch contributes the full F^k, minus eps F^k. *)
  let eps = 0.1 and k = 3 in
  let _, cert = certify_instance ~eps ~k ~machines:2 ~speed:6.6 [ job ~id:0 ~arrival:0. ~size:2. ] in
  let f = 2. /. 6.6 in
  check_close ~tol:1e-12 "alpha underloaded" ((1. -. eps) *. (f ** 3.)) cert.alphas.(0)

(* ------------------------------------------------------------------ *)
(* Certificate structure                                               *)
(* ------------------------------------------------------------------ *)

let test_requires_trace () =
  let res = Simulator.run ~machines:1 ~policy:rr [ job ~id:0 ~arrival:0. ~size:1. ] in
  match Rr_dualfit.Certificate.certify ~k:2 res with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected trace requirement"

let test_param_validation () =
  let res =
    Simulator.run ~record_trace:true ~machines:1 ~policy:rr [ job ~id:0 ~arrival:0. ~size:1. ]
  in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected parameter rejection")
    [
      (fun () -> ignore (Rr_dualfit.Certificate.certify ~k:0 res));
      (fun () -> ignore (Rr_dualfit.Certificate.certify ~eps:0. ~k:2 res));
      (fun () -> ignore (Rr_dualfit.Certificate.certify ~eps:0.2 ~k:2 res));
    ]

let test_dual_objective_decomposition () =
  let jobs = List.init 10 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.2) ~size:1.) in
  let _, cert = certify_instance ~k:2 ~machines:1 ~speed:8. jobs in
  check_close ~tol:1e-9 "objective = sum alpha - m int beta"
    (cert.sum_alpha -. cert.beta_integral_m)
    cert.dual_objective

let test_beta_integral_closed_form () =
  (* m * int beta = (1/2 - 3 eps)(1 + eps) sum F^k, independent of m. *)
  let eps = 0.1 and k = 2 in
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0.5 ~size:2. ] in
  let res, cert = certify_instance ~eps ~k ~machines:1 ~speed:8. jobs in
  let flows = Simulator.flows res in
  let expected =
    (0.5 -. (3. *. eps))
    *. (1. +. eps)
    *. ((flows.(0) ** 2.) +. (flows.(1) ** 2.))
  in
  check_close ~tol:1e-9 "beta integral" expected cert.beta_integral_m

(* ------------------------------------------------------------------ *)
(* Properties: the paper's analysis holds on random instances           *)
(* ------------------------------------------------------------------ *)

let random_instance_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* machines = int_range 1 3 in
    let* k = int_range 1 3 in
    let* seed = int_range 0 10_000 in
    return (n, machines, k, seed))

let build (n, machines, k, seed) =
  let rng = Rr_util.Prng.create ~seed in
  let inst =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines ~n ()
  in
  let eps = 0.1 in
  let speed = Rr_dualfit.Certificate.theorem_speed ~k ~eps in
  let res =
    Simulator.run ~record_trace:true ~speed ~machines ~policy:rr
      (Rr_workload.Instance.jobs inst)
  in
  (inst, Rr_dualfit.Certificate.certify ~eps ~k res)

let prop_lemmas_hold =
  QCheck2.Test.make ~name:"Lemmas 1 and 2 hold on random instances" ~count:60
    random_instance_gen
    (fun params ->
      let _, cert = build params in
      cert.lemma1_ok && cert.lemma2_ok)

let prop_construction_feasible =
  QCheck2.Test.make ~name:"dual construction feasible (violation <= 1)" ~count:60
    random_instance_gen
    (fun params ->
      let _, cert = build params in
      cert.violation_ratio <= 1. +. 1e-6)

let prop_certified_ratio_positive =
  QCheck2.Test.make ~name:"certified ratio at least eps" ~count:60 random_instance_gen
    (fun params ->
      let _, cert = build params in
      (* The accounting in Section 3.3 guarantees at least
         (3/2) eps + 3 eps^2 = 0.18 at eps = 0.1; require the weaker eps. *)
      cert.certified_ratio >= cert.eps)

let prop_weak_duality =
  QCheck2.Test.make ~name:"dual objective below the LP optimum" ~count:25
    QCheck2.Gen.(
      let* n = int_range 2 20 in
      let* k = int_range 1 2 in
      let* seed = int_range 0 1_000 in
      return (n, 1, k, seed))
    (fun params ->
      let inst, cert = build params in
      let lp_hi =
        Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_end ~gamma:cert.gamma ~k:cert.k
          ~machines:1 ~delta:0.25 inst
      in
      let scaled = cert.dual_objective /. Float.max 1. cert.violation_ratio in
      scaled <= lp_hi *. (1. +. 1e-6))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lemmas_hold; prop_construction_feasible; prop_certified_ratio_positive; prop_weak_duality ]

let () =
  Alcotest.run "rr_dualfit"
    [
      ( "constants",
        [
          Alcotest.test_case "theorem speed" `Quick test_theorem_speed;
          Alcotest.test_case "gamma" `Quick test_gamma;
        ] );
      ( "alpha construction",
        [
          Alcotest.test_case "single job" `Quick test_alpha_single_job;
          Alcotest.test_case "two-job ranks" `Quick test_alpha_two_jobs_ranks;
          Alcotest.test_case "adversarial batch" `Quick test_adversarial_batch_certificate;
          Alcotest.test_case "underloaded branch" `Quick test_underloaded_times_have_no_rank_divisor;
        ] );
      ( "structure",
        [
          Alcotest.test_case "requires trace" `Quick test_requires_trace;
          Alcotest.test_case "param validation" `Quick test_param_validation;
          Alcotest.test_case "objective decomposition" `Quick test_dual_objective_decomposition;
          Alcotest.test_case "beta closed form" `Quick test_beta_integral_closed_form;
        ] );
      ("properties", qsuite);
    ]
