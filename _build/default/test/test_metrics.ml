(* Tests for norms, flow statistics and fairness measures. *)

open Rr_metrics

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b
let job ~id ~arrival ~size = Rr_engine.Job.make ~id ~arrival ~size

(* ------------------------------------------------------------------ *)
(* Norms                                                               *)
(* ------------------------------------------------------------------ *)

let test_power_sum () =
  check_close "k=1" 6. (Norms.power_sum ~k:1 [| 1.; 2.; 3. |]);
  check_close "k=2" 14. (Norms.power_sum ~k:2 [| 1.; 2.; 3. |]);
  check_close "k=3" 36. (Norms.power_sum ~k:3 [| 1.; 2.; 3. |])

let test_lk () =
  check_close "l1" 6. (Norms.lk ~k:1 [| 1.; 2.; 3. |]);
  check_close "l2" (sqrt 14.) (Norms.lk ~k:2 [| 1.; 2.; 3. |]);
  check_close "empty" 0. (Norms.lk ~k:2 [||])

let test_linf () =
  check_close "max" 3. (Norms.linf [| 1.; 3.; 2. |]);
  check_close "empty" 0. (Norms.linf [||])

let test_norms_validation () =
  (match Norms.power_sum ~k:0 [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k >= 1 required");
  match Norms.power_sum ~k:2 [| -1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative flows rejected"

let prop_normalized_monotone_in_k =
  QCheck2.Test.make ~name:"normalized lk norm non-decreasing in k (power mean)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_range 0. 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let n1 = Norms.normalized_lk ~k:1 a in
      let n2 = Norms.normalized_lk ~k:2 a in
      let n3 = Norms.normalized_lk ~k:3 a in
      n1 <= n2 +. 1e-9 && n2 <= n3 +. 1e-9)

let prop_lk_below_linf_times_count =
  QCheck2.Test.make ~name:"lk norm between linf and n^(1/k) linf" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_range 0. 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let linf = Norms.linf a in
      let l2 = Norms.lk ~k:2 a in
      let n = Float.of_int (Array.length a) in
      l2 >= linf -. 1e-9 && l2 <= (sqrt n *. linf) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Flow stats                                                          *)
(* ------------------------------------------------------------------ *)

let test_flow_stats () =
  let s = Flow_stats.of_flows [| 1.; 2.; 3.; 4. |] in
  check_close "mean" 2.5 s.mean;
  check_close "variance" 1.25 s.variance;
  check_close "min" 1. s.min;
  check_close "max" 4. s.max;
  check_close "l1" 10. s.l1;
  check_close "l2" (sqrt 30.) s.l2;
  Alcotest.(check int) "n" 4 s.n

let test_flow_stats_empty () =
  match Flow_stats.of_flows [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty rejected"

let test_slowdowns () =
  let s = Flow_stats.slowdowns ~sizes:[| 1.; 2. |] ~flows:[| 3.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "stretch" [| 3.; 1.5 |] s;
  check_close "max slowdown" 3. (Flow_stats.max_slowdown ~sizes:[| 1.; 2. |] ~flows:[| 3.; 3. |])

let test_slowdowns_validation () =
  (match Flow_stats.slowdowns ~sizes:[| 1. |] ~flows:[| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch");
  match Flow_stats.slowdowns ~sizes:[| 0. |] ~flows:[| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero size"

(* ------------------------------------------------------------------ *)
(* Fairness                                                            *)
(* ------------------------------------------------------------------ *)

let run_traced policy jobs =
  Rr_engine.Simulator.run ~record_trace:true ~machines:1 ~policy jobs

let overloaded_jobs =
  List.init 6 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.25) ~size:2.)

let test_rr_perfectly_fair () =
  let res = run_traced Rr_policies.Round_robin.policy overloaded_jobs in
  check_close "jain = 1 for RR" 1. (Fairness.time_weighted_jain res.trace)

let test_srpt_unfair () =
  let res = run_traced Rr_policies.Srpt.policy overloaded_jobs in
  Alcotest.(check bool) "jain < 1 for SRPT" true (Fairness.time_weighted_jain res.trace < 0.9)

let test_jain_series_samples () =
  let res = run_traced Rr_policies.Round_robin.policy overloaded_jobs in
  let series = Fairness.jain_series ~sample_every:0.5 res.trace in
  Alcotest.(check bool) "non-empty" true (List.length series > 3);
  List.iter (fun (_, j) -> check_close "rr always 1" 1. j) series

let test_jain_series_validation () =
  match Fairness.jain_series ~sample_every:0. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sample_every must be positive"

let test_share_of_job () =
  (* Under SRPT the long job waits while shorts run: its served share of
     alive time is small.  Under RR it is always served. *)
  let jobs =
    job ~id:0 ~arrival:0. ~size:10.
    :: List.init 10 (fun i -> job ~id:(i + 1) ~arrival:(Float.of_int i) ~size:1.)
  in
  let srpt_res = run_traced Rr_policies.Srpt.policy jobs in
  let rr_res = run_traced Rr_policies.Round_robin.policy jobs in
  Alcotest.(check bool) "srpt starves the long job" true
    (Fairness.share_of_job ~job:0 srpt_res.trace < 0.6);
  check_close "rr never starves" 1. (Fairness.share_of_job ~job:0 rr_res.trace)

let test_segment_jain_single_job () =
  let seg =
    { Rr_engine.Trace.t0 = 0.; t1 = 1.; alive = [| { Rr_engine.Trace.job = 0; arrival = 0.; rate = 1. } |] }
  in
  check_close "single job trivially fair" 1. (Fairness.segment_jain seg)

(* ------------------------------------------------------------------ *)
(* Weighted norms                                                      *)
(* ------------------------------------------------------------------ *)

let test_weighted_power_sum () =
  check_close "weighted" 19.
    (Norms.weighted_power_sum ~k:2 ~weights:[| 1.; 2. |] [| 1.; 3. |]);
  check_close "unit weights match unweighted" (Norms.power_sum ~k:2 [| 1.; 3. |])
    (Norms.weighted_power_sum ~k:2 ~weights:[| 1.; 1. |] [| 1.; 3. |]);
  check_close "weighted lk" (sqrt 19.)
    (Norms.weighted_lk ~k:2 ~weights:[| 1.; 2. |] [| 1.; 3. |])

let test_weighted_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected weighted-norm rejection")
    [
      (fun () -> ignore (Norms.weighted_power_sum ~k:2 ~weights:[| 1. |] [| 1.; 2. |]));
      (fun () -> ignore (Norms.weighted_power_sum ~k:2 ~weights:[| -1.; 1. |] [| 1.; 2. |]));
      (fun () -> ignore (Norms.weighted_power_sum ~k:0 ~weights:[| 1. |] [| 1. |]));
    ]

(* ------------------------------------------------------------------ *)
(* Fractional flow                                                     *)
(* ------------------------------------------------------------------ *)

let test_fractional_single_job () =
  (* A lone job of size p served at rate 1 has remaining fraction
     (1 - t/p): integral = p/2. *)
  let res =
    Rr_engine.Simulator.run ~record_trace:true ~machines:1
      ~policy:Rr_policies.Round_robin.policy
      [ job ~id:0 ~arrival:0. ~size:4. ]
  in
  check_close ~tol:1e-9 "p/2" 2. (Fractional.of_result res)

let test_fractional_below_integral () =
  let jobs = List.init 8 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.4) ~size:1.) in
  let res =
    Rr_engine.Simulator.run ~record_trace:true ~machines:1
      ~policy:Rr_policies.Round_robin.policy jobs
  in
  let frac = Fractional.of_result res in
  let total = Rr_engine.Simulator.total_flow res in
  Alcotest.(check bool) "fractional <= integral" true (frac <= total +. 1e-9);
  Alcotest.(check bool) "positive" true (frac > 0.)

let test_fractional_requires_trace () =
  let res =
    Rr_engine.Simulator.run ~machines:1 ~policy:Rr_policies.Round_robin.policy
      [ job ~id:0 ~arrival:0. ~size:1. ]
  in
  match Fractional.of_result res with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected trace requirement"

let prop_fractional_below_integral =
  QCheck2.Test.make ~name:"fractional flow <= integral flow" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (pair (float_range 0. 10.) (float_range 0.1 4.)))
    (fun pairs ->
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pairs in
      let jobs = List.mapi (fun id (arrival, size) -> job ~id ~arrival ~size) sorted in
      let res =
        Rr_engine.Simulator.run ~record_trace:true ~speed:1.5 ~machines:2
          ~policy:Rr_policies.Setf.policy jobs
      in
      Fractional.of_result res <= Rr_engine.Simulator.total_flow res +. 1e-6)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_normalized_monotone_in_k; prop_lk_below_linf_times_count; prop_fractional_below_integral ]

let () =
  Alcotest.run "rr_metrics"
    [
      ( "norms",
        [
          Alcotest.test_case "power sum" `Quick test_power_sum;
          Alcotest.test_case "lk" `Quick test_lk;
          Alcotest.test_case "linf" `Quick test_linf;
          Alcotest.test_case "validation" `Quick test_norms_validation;
        ] );
      ( "flow stats",
        [
          Alcotest.test_case "summary" `Quick test_flow_stats;
          Alcotest.test_case "empty" `Quick test_flow_stats_empty;
          Alcotest.test_case "slowdowns" `Quick test_slowdowns;
          Alcotest.test_case "slowdown validation" `Quick test_slowdowns_validation;
        ] );
      ( "weighted norms",
        [
          Alcotest.test_case "values" `Quick test_weighted_power_sum;
          Alcotest.test_case "validation" `Quick test_weighted_validation;
        ] );
      ( "fractional flow",
        [
          Alcotest.test_case "single job" `Quick test_fractional_single_job;
          Alcotest.test_case "below integral" `Quick test_fractional_below_integral;
          Alcotest.test_case "requires trace" `Quick test_fractional_requires_trace;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "rr fair" `Quick test_rr_perfectly_fair;
          Alcotest.test_case "srpt unfair" `Quick test_srpt_unfair;
          Alcotest.test_case "series" `Quick test_jain_series_samples;
          Alcotest.test_case "series validation" `Quick test_jain_series_validation;
          Alcotest.test_case "share of job" `Quick test_share_of_job;
          Alcotest.test_case "segment single" `Quick test_segment_jain_single_job;
        ] );
      ("properties", qsuite);
    ]
