(* Unit and property tests for the rr_util substrate. *)

open Rr_util

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_copy () =
  let a = Prng.create ~seed:3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:4 in
  let b = Prng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr equal
  done;
  Alcotest.(check bool) "split stream differs" true (!equal < 4)

let test_prng_float_range () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng in
    if not (x >= 0. && x < 1.) then Alcotest.failf "float out of range: %f" x
  done

let test_prng_float_mean () =
  let rng = Prng.create ~seed:6 in
  let acc = Kahan.create () in
  let n = 100_000 in
  for _ = 1 to n do
    Kahan.add acc (Prng.float rng)
  done;
  check_close ~tol:5e-3 "uniform mean ~ 0.5" 0.5 (Kahan.total acc /. Float.of_int n)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:7 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Prng.int rng ~bound:7 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_prng_exponential_mean () =
  let rng = Prng.create ~seed:8 in
  let acc = Kahan.create () in
  let n = 100_000 in
  for _ = 1 to n do
    Kahan.add acc (Prng.exponential rng ~rate:2.)
  done;
  check_close ~tol:0.01 "exp(rate 2) mean ~ 0.5" 0.5 (Kahan.total acc /. Float.of_int n)

let test_prng_bounded_pareto_support () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let x = Prng.bounded_pareto rng ~alpha:1.5 ~x_min:1. ~x_max:10. in
    if not (x >= 1. -. 1e-9 && x <= 10. +. 1e-9) then
      Alcotest.failf "bounded pareto out of support: %f" x
  done

let test_prng_shuffle_is_permutation () =
  let rng = Prng.create ~seed:10 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Kahan                                                               *)
(* ------------------------------------------------------------------ *)

let test_kahan_pathological () =
  (* 1 + 1e16 - 1e16 loses the 1 under naive summation order. *)
  let xs = [| 1.; 1e16; 1.; -1e16 |] in
  check_float "compensated" 2. (Kahan.sum xs)

let test_kahan_matches_naive_on_small () =
  let xs = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  check_float "sum 1..100" 5050. (Kahan.sum xs)

let test_kahan_sum_by () =
  let xs = [| 1.; 2.; 3. |] in
  check_float "sum of squares" 14. (Kahan.sum_by (fun x -> x *. x) xs)

let test_kahan_list () = check_float "list" 6. (Kahan.sum_list [ 1.; 2.; 3. ])

(* ------------------------------------------------------------------ *)
(* Floatx                                                              *)
(* ------------------------------------------------------------------ *)

let test_powi_matches_pow () =
  List.iter
    (fun (x, k) ->
      check_close ~tol:1e-9 (Printf.sprintf "%g^%d" x k) (x ** Float.of_int k)
        (Floatx.powi x k))
    [ (2., 0); (2., 1); (2., 5); (1.5, 3); (0.3, 7); (10., 2) ]

let test_clamp () =
  check_float "below" 0. (Floatx.clamp ~lo:0. ~hi:1. (-5.));
  check_float "above" 1. (Floatx.clamp ~lo:0. ~hi:1. 5.);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0. ~hi:1. 0.5)

let test_approx_equal () =
  Alcotest.(check bool) "close" true (Floatx.approx_equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx_equal 1. 1.1)

let test_min_max_arr () =
  check_float "min" (-2.) (Floatx.min_arr [| 3.; -2.; 7. |]);
  check_float "max" 7. (Floatx.max_arr [| 3.; -2.; 7. |]);
  Alcotest.check_raises "empty min" (Invalid_argument "Floatx.min_arr: empty array") (fun () ->
      ignore (Floatx.min_arr [||]))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.add h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check (list int)) "drains sorted" [ 1; 2; 3; 4; 5 ] (Heap.drain h)

let test_heap_of_array () =
  let h = Heap.of_array ~cmp:Int.compare [| 9; 7; 8; 1 |] in
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length" 4 (Heap.length h)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.add h) xs;
      Heap.drain h = List.sort Int.compare xs)

let prop_heap_of_array_sorts =
  QCheck2.Test.make ~name:"heapify drains sorted" ~count:200
    QCheck2.Gen.(array int)
    (fun xs ->
      let h = Heap.of_array ~cmp:Int.compare xs in
      Heap.drain h = List.sort Int.compare (Array.to_list xs))

(* ------------------------------------------------------------------ *)
(* Welford / Stats                                                     *)
(* ------------------------------------------------------------------ *)

let test_welford_moments () =
  let w = Welford.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Welford.mean w);
  check_float "variance" 4. (Welford.variance w);
  check_float "stddev" 2. (Welford.stddev w);
  check_float "min" 2. (Welford.min w);
  check_float "max" 9. (Welford.max w);
  Alcotest.(check int) "count" 8 (Welford.count w)

let test_welford_empty () =
  let w = Welford.create () in
  check_float "mean of empty" 0. (Welford.mean w);
  check_float "variance of empty" 0. (Welford.variance w)

let prop_welford_matches_direct =
  QCheck2.Test.make ~name:"welford matches two-pass variance" ~count:200
    QCheck2.Gen.(list_size (int_range 2 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let a = Array.of_list xs in
      let w = Welford.of_array a in
      let n = Float.of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0. a /. n in
      let var = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a /. n in
      Float.abs (Welford.variance w -. var) <= 1e-6 *. (1. +. var))

let test_percentile () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "p0" 1. (Stats.percentile a ~p:0.);
  check_float "p100" 4. (Stats.percentile a ~p:100.);
  check_float "p50 interpolates" 2.5 (Stats.percentile a ~p:50.);
  check_float "median" 2.5 (Stats.median a)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] ~p:50.));
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile [| 1. |] ~p:101.))

let test_jain () =
  check_float "equal is 1" 1. (Stats.jain_index [| 2.; 2.; 2. |]);
  check_float "single winner is 1/n" 0.25 (Stats.jain_index [| 1.; 0.; 0.; 0. |]);
  check_float "empty is 1" 1. (Stats.jain_index [||]);
  check_float "all zero is 1" 1. (Stats.jain_index [| 0.; 0. |])

let prop_jain_bounds =
  QCheck2.Test.make ~name:"jain index lies in [1/n, 1]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 30) (float_range 0.0001 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let j = Stats.jain_index a in
      let n = Float.of_int (Array.length a) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let test_cv () =
  check_float "constant data" 0. (Stats.coefficient_of_variation [| 3.; 3.; 3. |])

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 3 = "== ");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "x  y "))

let test_table_arity_check () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only one" ])

let test_fcell () =
  Alcotest.(check string) "integer" "3" (Table.fcell 3.);
  Alcotest.(check string) "fractional" "3.1400" (Table.fcell 3.14);
  Alcotest.(check string) "tiny" "1.000e-09" (Table.fcell 1e-9)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_heap_sorts; prop_heap_of_array_sorts; prop_welford_matches_direct; prop_jain_bounds ]

let () =
  Alcotest.run "rr_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "int buckets" `Quick test_prng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "bounded pareto support" `Quick test_prng_bounded_pareto_support;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_is_permutation;
        ] );
      ( "kahan",
        [
          Alcotest.test_case "pathological" `Quick test_kahan_pathological;
          Alcotest.test_case "small exact" `Quick test_kahan_matches_naive_on_small;
          Alcotest.test_case "sum_by" `Quick test_kahan_sum_by;
          Alcotest.test_case "sum_list" `Quick test_kahan_list;
        ] );
      ( "floatx",
        [
          Alcotest.test_case "powi" `Quick test_powi_matches_pow;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "min/max" `Quick test_min_max_arr;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford moments" `Quick test_welford_moments;
          Alcotest.test_case "welford empty" `Quick test_welford_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          Alcotest.test_case "jain" `Quick test_jain;
          Alcotest.test_case "cv" `Quick test_cv;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity_check;
          Alcotest.test_case "fcell" `Quick test_fcell;
        ] );
      ("properties", qsuite);
    ]
