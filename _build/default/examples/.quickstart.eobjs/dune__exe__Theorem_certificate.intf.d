examples/theorem_certificate.mli:
