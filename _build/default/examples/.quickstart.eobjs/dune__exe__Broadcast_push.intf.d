examples/broadcast_push.mli:
