examples/starvation.mli:
