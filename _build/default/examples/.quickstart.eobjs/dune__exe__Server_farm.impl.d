examples/server_farm.ml: Array Format List Rr_engine Rr_metrics Rr_policies Rr_util Rr_workload Temporal_fairness
