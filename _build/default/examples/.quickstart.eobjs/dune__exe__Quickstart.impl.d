examples/quickstart.ml: Array List Printf Rr_engine Rr_lp Rr_metrics Rr_policies Rr_workload Temporal_fairness
