examples/textbook_to_theory.mli:
