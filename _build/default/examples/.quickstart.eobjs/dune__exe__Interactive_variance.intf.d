examples/interactive_variance.mli:
