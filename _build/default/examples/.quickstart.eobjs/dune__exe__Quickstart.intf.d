examples/quickstart.mli:
