examples/broadcast_push.ml: Array Float List Printf Rr_broadcast Rr_metrics Rr_util
