examples/textbook_to_theory.ml: Array Float Format List Printf Rr_engine Rr_metrics Rr_policies Rr_util Rr_workload Temporal_fairness
