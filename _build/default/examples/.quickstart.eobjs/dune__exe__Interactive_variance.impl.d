examples/interactive_variance.ml: Format List Rr_engine Rr_metrics Rr_policies Rr_util Rr_workload Temporal_fairness
