examples/starvation.ml: Array Format List Printf Rr_engine Rr_metrics Rr_policies Rr_util Rr_workload Temporal_fairness
