examples/theorem_certificate.ml: Float Format Printf Rr_dualfit Rr_lp Rr_policies Rr_util Rr_workload Temporal_fairness
