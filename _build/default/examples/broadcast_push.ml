(* Broadcast push server (the second setting of the paper's §1.3).

   A content server pushes pages over a shared channel; every transmission
   satisfies ALL clients currently waiting for that page.  Round Robin over
   outstanding pages keeps every page advancing — the same instantaneous
   fairness as in CPU scheduling — while Longest Wait First chases the
   largest accumulated waiting time.  The paper notes RR keeps its l1
   guarantee in this setting but provably loses the l2 one.

   Run with: dune exec examples/broadcast_push.exe *)

let () =
  let rng = Rr_util.Prng.create ~seed:2025 in
  let n_pages = 30 in
  let sizes = Rr_broadcast.Workgen.uniform_sizes ~rng ~n_pages ~lo:0.5 ~hi:2. in
  (* Zipf popularity: a few hot pages attract most requests, so
     aggregation carries a nominal load well above the channel capacity. *)
  let requests =
    Rr_broadcast.Workgen.requests ~rng ~n_pages ~exponent:1.2 ~rate:1.8 ~n:1500 ()
  in
  let nominal_load =
    List.fold_left
      (fun acc (r : Rr_broadcast.Request.t) -> acc +. sizes.(r.page))
      0. requests
    /. (List.fold_left
          (fun acc (r : Rr_broadcast.Request.t) -> Float.max acc r.arrival)
          0. requests
       +. 1e-9)
  in
  Printf.printf "%d requests over %d pages; nominal (unicast) load %.2f on a unit channel\n\n"
    (List.length requests) n_pages nominal_load;

  let table =
    Rr_util.Table.create ~title:"broadcast push server, Zipf(1.2) popularity"
      ~columns:[ "policy"; "mean flow"; "l2"; "p99"; "max"; "events" ]
  in
  List.iter
    (fun policy ->
      let r = Rr_broadcast.Bsim.run ~sizes ~policy requests in
      let s = Rr_metrics.Flow_stats.of_flows r.flows in
      Rr_util.Table.add_row table
        [
          policy.Rr_broadcast.Bsim.name;
          Rr_util.Table.fcell s.mean;
          Rr_util.Table.fcell s.l2;
          Rr_util.Table.fcell s.p99;
          Rr_util.Table.fcell s.max;
          string_of_int r.events;
        ])
    [ Rr_broadcast.Bsim.broadcast_rr; Rr_broadcast.Bsim.lwf; Rr_broadcast.Bsim.fifo ];
  Rr_util.Table.print table;

  print_endline
    "Although the unicast load exceeds the channel, aggregation makes the system\n\
     stable: one hot-page transmission serves many clients at once.  RR shares the\n\
     channel over all outstanding pages; LWF and FIFO focus it, trading fairness\n\
     across cold pages for better norms — the broadcast analogue of the paper's\n\
     RR-vs-SRPT trade-off."
