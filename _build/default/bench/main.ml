(* Benchmark harness: regenerates every table and figure of the evaluation
   suite (see DESIGN.md section 3 and EXPERIMENTS.md), then runs the B1
   micro-benchmarks measuring the throughput of the substrates.

   Usage: dune exec bench/main.exe [-- --quick]  *)

open Rr_util

let scale =
  if Array.exists (String.equal "--quick") Sys.argv then Temporal_fairness.Experiments.Quick
  else Temporal_fairness.Experiments.Full

let run_experiments () =
  let t0 = Unix.gettimeofday () in
  List.iter Table.print (Temporal_fairness.Experiments.all scale);
  Printf.printf "(experiment suite completed in %.1f s)\n\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* B1: micro-benchmarks                                                *)
(* ------------------------------------------------------------------ *)

let bench_instance =
  let rng = Prng.create ~seed:42 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:1000 ()

let small_instance =
  let rng = Prng.create ~seed:43 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:40 ()

let tests =
  let open Bechamel in
  Test.make_grouped ~name:"B1" ~fmt:"%s %s"
    [
      Test.make ~name:"rr-simulate-n1000"
        (Staged.stage (fun () ->
             ignore
               (Temporal_fairness.Run.simulate ~speed:2. ~machines:1
                  Rr_policies.Round_robin.policy bench_instance)));
      Test.make ~name:"srpt-simulate-n1000"
        (Staged.stage (fun () ->
             ignore
               (Temporal_fairness.Run.simulate ~machines:1 Rr_policies.Srpt.policy
                  bench_instance)));
      Test.make ~name:"lp-bound-n40"
        (Staged.stage (fun () ->
             ignore
               (Rr_lp.Lp_bound.opt_power_lower_bound ~k:2 ~machines:1 ~delta:0.5
                  small_instance)));
      Test.make ~name:"dualfit-certify-n40"
        (Staged.stage (fun () ->
             let res =
               Temporal_fairness.Run.simulate ~speed:4.4 ~record_trace:true ~machines:1
                 Rr_policies.Round_robin.policy small_instance
             in
             ignore (Rr_dualfit.Certificate.certify ~k:2 res)));
    ]

let run_microbench () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"B1: substrate micro-benchmarks" ~columns:[ "benchmark"; "time/run" ]
  in
  Hashtbl.iter
    (fun name ols_result ->
      let cell =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) ->
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else Printf.sprintf "%.1f us" (t /. 1e3)
        | _ -> "n/a"
      in
      Table.add_row table [ name; cell ])
    results;
  Table.print table

let () =
  run_experiments ();
  run_microbench ()
