(* Benchmark harness: regenerates every table and figure of the evaluation
   suite (see DESIGN.md section 3 and EXPERIMENTS.md) on a domain pool,
   then runs the B1 micro-benchmarks measuring the throughput of the
   substrates, the B2 pool benchmark measuring Run.batch speedup over
   sequential execution at 2 and 4 domains (scaled task set) plus the
   chunking effect on a small-task batch, the B3 simulation-core
   benchmark comparing the general event loop against the closed-form
   equal-share engine and a cold sweep against a cached one, the B4
   streaming benchmark comparing the sink pipeline against
   materialize-and-measure (jobs/sec, allocated words, peak live heap),
   the B5 fast-path benchmark measuring each classified engine (the
   priority-index and cascade kernels SRPT, SJF, FCFS, SETF plus the
   class-layer additions laps, mlfq, wrr-age, hdf and the starvation
   hybrid) against the general loop plus one cold end-to-end
   Ratio.vs_baseline, and the B6 live-engine
   benchmark driving every incremental core (Engine.Live) through the
   submit-one/advance feed rr_cli serve uses, gating sequential
   throughput (>= 1M events/s at full scale) and <= 1e-9 agreement, and
   the B7 certified-bound benchmark gating the sparse LP network against
   the frozen dense lp-bound-n40 baseline (>= 25x, equal value), warm
   resolves against cold solves (<= 1e-9), and the wall-clock of a
   certified ratio curve up to n = 2000, and the B8 serving benchmark
   driving a live rr_cli-serve daemon over its Unix socket with the
   loadgen client, gating the binary framed protocol (>= 500k events/s
   at full scale, >= 10x over the text line protocol) and requiring the
   socket-fed STATS to match an in-process replay of the same feed to
   <= 1e-9 (bit-identical in practice).

   Machine-readable results land in BENCH_simcore.json, BENCH_pool.json,
   BENCH_stream.json, BENCH_fastpaths.json, BENCH_live.json,
   BENCH_bound.json and
   BENCH_serve.json next to the text report.  The process exits non-zero when B3's differential
   check — the two engines must agree on every flow time — fails, when a
   B2 parallel batch is not bit-identical to the sequential one or
   misses its speedup gate (>= 1.2x at 2 domains, >= 1.8x at 4; each
   domain-count gate is skipped, and recorded as skipped, when the
   machine has fewer CPUs than the point needs — but the executor points
   are never skipped: the Auto-chosen backend must beat sequential on
   every box, and the forced process backend must be bit-identical even
   on one CPU), when B4's
   allocation/peak-heap/agreement gates fail, or when a B5 engine or B6
   live core misses its perf floor or its <= 1e-9
   differential-agreement gate, or when B8 misses a throughput gate or
   its socket-vs-in-process agreement, so CI can gate on them.

   Usage: dune exec bench/main.exe [-- --quick] [-- --jobs N]
   (RR_JOBS is honoured when --jobs is absent; default: all cores.)  *)

open Rr_util
module Pool = Temporal_fairness.Pool
module Run = Temporal_fairness.Run
module Cache = Temporal_fairness.Cache
module Sweep = Temporal_fairness.Sweep
module Ratio = Temporal_fairness.Ratio
module Simulator = Rr_engine.Simulator

let scale =
  if Array.exists (String.equal "--quick") Sys.argv then Temporal_fairness.Experiments.Quick
  else Temporal_fairness.Experiments.Full

let quick = match scale with Temporal_fairness.Experiments.Quick -> true | Full -> false

let domains =
  let from_argv =
    let n = Array.length Sys.argv in
    let rec find i =
      if i >= n - 1 then None
      else if String.equal Sys.argv.(i) "--jobs" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 0
  in
  match from_argv with
  | Some j when j >= 1 -> j
  | Some _ -> Pool.recommended_domains ()
  | None -> (
      match Pool.env_domains () with Some j -> j | None -> Pool.recommended_domains ())

let run_experiments pool =
  let t0 = Unix.gettimeofday () in
  List.iter Table.print (Temporal_fairness.Experiments.all ~pool scale);
  Printf.printf "(experiment suite completed in %.1f s on %d domain(s))\n\n%!"
    (Unix.gettimeofday () -. t0)
    (Pool.size pool)

(* ------------------------------------------------------------------ *)
(* B1: micro-benchmarks                                                *)
(* ------------------------------------------------------------------ *)

let bench_instance =
  let rng = Prng.create ~seed:42 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:1000 ()

let small_instance =
  let rng = Prng.create ~seed:43 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:40 ()

let tests =
  let open Bechamel in
  Test.make_grouped ~name:"B1" ~fmt:"%s %s"
    [
      Test.make ~name:"rr-simulate-n1000"
        (Staged.stage (fun () ->
             ignore
               (Run.simulate (Run.config ~speed:2. ()) Rr_policies.Round_robin.policy
                  bench_instance)));
      Test.make ~name:"srpt-simulate-n1000"
        (Staged.stage (fun () ->
             ignore (Run.simulate Run.default Rr_policies.Srpt.policy bench_instance)));
      Test.make ~name:"lp-bound-n40"
        (Staged.stage (fun () ->
             ignore
               (Rr_lp.Lp_bound.opt_power_lower_bound ~k:2 ~machines:1 ~delta:0.5
                  small_instance)));
      Test.make ~name:"dualfit-certify-n40"
        (Staged.stage (fun () ->
             let res =
               Run.simulate
                 (Run.config ~speed:4.4 ~record_trace:true ())
                 Rr_policies.Round_robin.policy small_instance
             in
             ignore (Rr_dualfit.Certificate.certify ~k:2 res)));
    ]

(* Returns (name, ns/run) rows for the JSON report. *)
let run_microbench () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with Some (t :: _) -> Some t | _ -> None
        in
        (name, ns) :: acc)
      results []
    (* Hashtbl.fold order is unspecified; sort so the table (and the JSON)
       is stable run to run. *)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Table.create ~title:"B1: substrate micro-benchmarks" ~columns:[ "benchmark"; "time/run" ]
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        match ns with
        | Some t ->
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else Printf.sprintf "%.1f us" (t /. 1e3)
        | None -> "n/a"
      in
      Table.add_row table [ name; cell ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------------ *)
(* B2: pool scaling and chunking (BENCH_pool.json)                     *)
(* ------------------------------------------------------------------ *)

type b2_point = {
  p_domains : int;
  p_auto_s : float;
  p_fixed1_s : float;
  p_identical : bool;
  p_gate_min : float;
  p_gate_skipped : bool;  (* machine has fewer CPUs than the point needs *)
  p_minor_heap_words : int;
  p_gc : Pool.gc_delta array;  (* per participant, for the auto-chunked run *)
}

(* One executor-layer measurement: a backend (Auto-chosen or forced),
   its wall clock against the same sequential baseline, and whether its
   results were bit-identical.  [e_gate_min = None] means the point is
   recorded but not gated (a forced backend on hardware that cannot
   possibly make it win is a contrast, not a floor). *)
type b2_exec = {
  e_label : string;  (* "auto" | "procs-forced" *)
  e_backend : string;  (* Run.backend_name of what actually ran *)
  e_time_s : float;
  e_speedup : float;
  e_identical : bool;
  e_gate_min : float option;
}

type b2_small = {
  sm_tasks : int;
  sm_seq_s : float;
  sm_auto_s : float;
  sm_fixed1_s : float;
  sm_identical : bool;
}

type b2_report = {
  b2_cpus : int;
  b2_tasks : int;
  b2_jobs_per_instance : int;
  b2_seq_s : float;
  b2_points : b2_point list;
  b2_exec : b2_exec list;
  b2_small : b2_small;
  b2_failures : string list;
}

let same_results seq par =
  List.length seq = List.length par
  && List.for_all2
       (fun (a : Run.result) (b : Run.result) ->
         a.norm = b.norm && a.power_sum = b.power_sum && a.mean_flow = b.mean_flow
         && a.max_flow = b.max_flow && a.n = b.n && a.events = b.events)
       seq par

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let b2_tasks_of ~n_insts ~n ~seed0 =
  let policies =
    [ Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy ]
  in
  let insts =
    List.init n_insts (fun i ->
        let rng = Prng.create ~seed:(seed0 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.9 ~machines:1 ~n ())
  in
  List.concat_map (fun inst -> List.map (fun p -> (p, inst)) policies) insts

(* Speed-sweep-shaped workloads — many independent (policy, instance)
   simulate-and-measure tasks — run once sequentially and once through
   Run.batch per pool size.  Every comparison measures the wall-clock
   speedup AND machine-checks the determinism guarantee (parallel results
   bit-identical to sequential).  Caching and the equal-share fast path
   are both off: the sequential pass would otherwise hand the parallel
   pass its results for free, and the point here is the pool's scaling on
   the general event loop (B3 measures the fast engine).

   Two workloads, two questions:

   - the SCALED batch (heavy-traffic instances at speed 1, several ms per
     task) asks whether domains scale: its speedups are gated (>= 1.2x at
     2 domains, >= 1.8x at 4) whenever the machine has that many CPUs;
   - the SMALL batch (hundreds of ~100 us tasks — the shape the old B2
     measured at 0.455x) asks whether cost-aware chunking amortises the
     per-task overhead that caused that slowdown; auto vs `Fixed 1 is
     reported, not gated (it is a contrast, not a floor). *)
let run_pool_bench () =
  let cpus = Pool.recommended_domains () in
  let n = if quick then 3000 else 6000 in
  let n_insts = if quick then 8 else 24 in
  let tasks = b2_tasks_of ~n_insts ~n ~seed0:200 in
  let cfg = Run.config ~speed:1. ~cache:false ~engine:`General () in
  let seq, t_seq = time (fun () -> List.map (fun (p, i) -> Run.measure cfg p i) tasks) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let point domains =
    let gate_min = if domains >= 4 then 1.8 else 1.2 in
    let gate_skipped = cpus < domains in
    let ((par_auto, t_auto), gc_deltas, minor_heap_words), (par_fixed1, t_fixed1) =
      Pool.with_pool ~domains (fun pool ->
          (* Capture the GC deltas right after the auto-chunked run —
             the `Fixed 1 run below would overwrite them. *)
          let auto = time (fun () -> Run.batch pool cfg tasks) in
          let gc = Pool.last_batch_gc_deltas pool in
          ( (auto, gc, Pool.minor_heap_words pool),
            time (fun () -> Run.batch ~chunk:(`Fixed 1) pool cfg tasks) ))
    in
    let identical = same_results seq par_auto && same_results seq par_fixed1 in
    let speedup = t_seq /. Float.max 1e-9 t_auto in
    if not identical then fail "B2: %d-domain batch is not bit-identical to sequential" domains;
    if (not gate_skipped) && speedup < gate_min then
      fail "B2: %d-domain speedup %.2fx below gate %.1fx" domains speedup gate_min;
    Printf.printf
      "B2: scaled batch on %d domain(s): auto %.3f s (%.2fx) | `Fixed 1 %.3f s (%.2fx) | \
       bit-identical: %s%s\n%!"
      domains t_auto speedup t_fixed1
      (t_seq /. Float.max 1e-9 t_fixed1)
      (if identical then "yes" else "NO")
      (if gate_skipped then
         Printf.sprintf " | gate >=%.1fx SKIPPED (%d CPU(s))" gate_min cpus
       else Printf.sprintf " | gate >=%.1fx" gate_min);
    {
      p_domains = domains;
      p_auto_s = t_auto;
      p_fixed1_s = t_fixed1;
      p_identical = identical;
      p_gate_min = gate_min;
      p_gate_skipped = gate_skipped;
      p_minor_heap_words = minor_heap_words;
      p_gc = gc_deltas;
    }
  in
  Printf.printf "B2: scaled batch: %d tasks (n=%d, speed 1, general engine), sequential %.3f s\n%!"
    (List.length tasks) n t_seq;
  (* Executor layer: the same tasks through Run.batch_auto.  These points
     run BEFORE the domain-pool points: the runtime refuses fork once any
     worker domain was ever spawned in this process, so the process
     backend must fork while the process is still domain-free (and the
     procs point precedes the auto point, which spawns domains whenever
     the heuristic picks them).  Two points:

     - PROCS-FORCED: the fork backend, forced, so its bit-identicality
       contract is machine-checked on every box including 1-CPU ones
       where Auto would never pick it.  Its speedup is recorded but only
       gated (>= 1.0x) when the machine has the CPUs to make fork win.
     - AUTO: whatever the heuristic picks on this machine.  Gated at >=
       1.0x — "Run.batch always wins" means the chosen backend never
       loses to the sequential loop.  When the choice IS the sequential
       loop (1-CPU box, or a batch too cheap to parallelise) the two
       runs execute the same code, so the gate drops to 0.9x purely to
       absorb timing noise between two identical passes — the point is
       still recorded and still gated, not skipped by construction. *)
  let exec_point label executor ~gate_min =
    let (backend, par), t = time (fun () -> Run.batch_auto ~executor cfg tasks) in
    let identical = same_results seq par in
    let speedup = t_seq /. Float.max 1e-9 t in
    if not identical then
      fail "B2: %s (%s) batch is not bit-identical to sequential" label
        (Run.backend_name backend);
    (match gate_min with
    | Some g when speedup < g ->
        fail "B2: %s (%s) speedup %.2fx below gate %.1fx" label
          (Run.backend_name backend) speedup g
    | _ -> ());
    Printf.printf
      "B2: executor %-12s -> %-12s %.3f s (%.2fx) | bit-identical: %s | %s\n%!" label
      (Run.backend_name backend) t speedup
      (if identical then "yes" else "NO")
      (match gate_min with
      | Some g -> Printf.sprintf "gate >=%.1fx" g
      | None -> Printf.sprintf "ungated (%d CPU(s))" cpus);
    {
      e_label = label;
      e_backend = Run.backend_name backend;
      e_time_s = t;
      e_speedup = speedup;
      e_identical = identical;
      e_gate_min = gate_min;
    }
  in
  let auto_backend =
    Run.choose_backend ~cpus ~tasks:(List.length tasks)
      ~total_cost_us:
        (List.fold_left
           (fun acc (p, i) ->
             acc +. Run.estimated_cost_us cfg p ~jobs:(Rr_workload.Instance.n i))
           0. tasks)
      ()
  in
  let auto_gate = match auto_backend with `Sequential -> 0.9 | _ -> 1.0 in
  let procs_point =
    exec_point "procs-forced"
      (`Procs (Int.min 4 (Int.max 2 cpus)))
      ~gate_min:(if cpus >= 2 then Some 1.0 else None)
  in
  let exec_points = [ procs_point; exec_point "auto" `Auto ~gate_min:(Some auto_gate) ] in
  let points = List.map point [ 2; 4 ] in
  (* Small-task batch: chunking contrast at 2 domains. *)
  let small_tasks = b2_tasks_of ~n_insts:(if quick then 40 else 80) ~n:120 ~seed0:500 in
  let cfg_small = Run.config ~speed:1. ~cache:false ~engine:`General () in
  let seq_small, t_seq_small =
    time (fun () -> List.map (fun (p, i) -> Run.measure cfg_small p i) small_tasks)
  in
  let (par_auto, t_auto_small), (par_f1, t_f1_small) =
    Pool.with_pool ~domains:2 (fun pool ->
        ( time (fun () -> Run.batch pool cfg_small small_tasks),
          time (fun () -> Run.batch ~chunk:(`Fixed 1) pool cfg_small small_tasks) ))
  in
  let sm_identical = same_results seq_small par_auto && same_results seq_small par_f1 in
  if not sm_identical then fail "B2: small-task batch is not bit-identical to sequential";
  Printf.printf
    "B2: small batch (%d tasks, n=120) on 2 domains: sequential %.3f s | auto-chunked %.3f s \
     (%.2fx) | `Fixed 1 %.3f s (%.2fx) | bit-identical: %s\n%!"
    (List.length small_tasks) t_seq_small t_auto_small
    (t_seq_small /. Float.max 1e-9 t_auto_small)
    t_f1_small
    (t_seq_small /. Float.max 1e-9 t_f1_small)
    (if sm_identical then "yes" else "NO");
  {
    b2_cpus = cpus;
    b2_tasks = List.length tasks;
    b2_jobs_per_instance = n;
    b2_seq_s = t_seq;
    b2_points = points;
    b2_exec = exec_points;
    b2_small =
      {
        sm_tasks = List.length small_tasks;
        sm_seq_s = t_seq_small;
        sm_auto_s = t_auto_small;
        sm_fixed1_s = t_f1_small;
        sm_identical;
      };
    b2_failures = List.rev !failures;
  }

let pool_json_file = "BENCH_pool.json"

let write_pool_json (b2 : b2_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_pool/v2\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"cpus\": %d,\n" b2.b2_cpus;
  add "  \"scaled\": {\n";
  add "    \"tasks\": %d, \"jobs_per_instance\": %d, \"sequential_s\": %.6f,\n"
    b2.b2_tasks b2.b2_jobs_per_instance b2.b2_seq_s;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"domains\": %d, \"auto_s\": %.6f, \"speedup\": %.3f, \"fixed1_s\": %.6f, \
         \"speedup_fixed1\": %.3f, \"bit_identical\": %b, \"gate_min_speedup\": %.1f, \
         \"gate_skipped\": %b,\n"
        p.p_domains p.p_auto_s
        (b2.b2_seq_s /. Float.max 1e-9 p.p_auto_s)
        p.p_fixed1_s
        (b2.b2_seq_s /. Float.max 1e-9 p.p_fixed1_s)
        p.p_identical p.p_gate_min p.p_gate_skipped;
      add "       \"minor_heap_words\": %d, \"gc_deltas\": [" p.p_minor_heap_words;
      Array.iteri
        (fun j (g : Pool.gc_delta) ->
          add
            "%s{\"participant\": %d, \"minor_words\": %.0f, \"promoted_words\": %.0f, \
             \"minor_collections\": %d, \"major_collections\": %d}"
            (if j = 0 then "" else ", ")
            g.Pool.participant g.Pool.minor_words g.Pool.promoted_words
            g.Pool.minor_collections g.Pool.major_collections)
        p.p_gc;
      add "]}%s\n" (if i = List.length b2.b2_points - 1 then "" else ","))
    b2.b2_points;
  add "    ]\n";
  add "  },\n";
  add "  \"executor\": [\n";
  List.iteri
    (fun i (e : b2_exec) ->
      add
        "    {\"point\": %S, \"backend\": %S, \"time_s\": %.6f, \"speedup\": %.3f, \
         \"bit_identical\": %b, \"gate_min_speedup\": %s}%s\n"
        e.e_label e.e_backend e.e_time_s e.e_speedup e.e_identical
        (match e.e_gate_min with
        | Some g -> Printf.sprintf "%.1f" g
        | None -> "null")
        (if i = List.length b2.b2_exec - 1 then "" else ","))
    b2.b2_exec;
  add "  ],\n";
  let s = b2.b2_small in
  add
    "  \"small\": {\"tasks\": %d, \"sequential_s\": %.6f, \"auto_s\": %.6f, \"auto_speedup\": \
     %.3f, \"fixed1_s\": %.6f, \"fixed1_speedup\": %.3f, \"bit_identical\": %b},\n"
    s.sm_tasks s.sm_seq_s s.sm_auto_s
    (s.sm_seq_s /. Float.max 1e-9 s.sm_auto_s)
    s.sm_fixed1_s
    (s.sm_seq_s /. Float.max 1e-9 s.sm_fixed1_s)
    s.sm_identical;
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b2.b2_failures));
  add "  \"ok\": %b\n" (b2.b2_failures = []);
  add "}\n";
  let oc = open_out pool_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" pool_json_file

(* ------------------------------------------------------------------ *)
(* B3: simulation core — fast path and result cache                    *)
(* ------------------------------------------------------------------ *)

type b3_report = {
  sim_general_ns : float;
  sim_fast_ns : float;
  sim_max_rel_diff : float;
  sim_rtol : float;
  sim_agree : bool;
  sweep_probes : int;
  sweep_cold_s : float;
  sweep_opt_s : float;
  sweep_hits : int;
  sweep_misses : int;
  sweep_same_answer : bool;
}

(* The two engines must produce the same flow times up to rounding.  The
   tolerance is deliberately tight: the engines compute identical
   event-by-event trajectories in different arithmetic orders, so anything
   beyond accumulated rounding is a real divergence. *)
let diff_rtol = 1e-9

let time_per_run reps f =
  for _ = 1 to 3 do
    f ()
  done;
  (* Best-of-3 batch means: the min is far more stable under scheduler
     jitter than a single long mean, which is what the perf gates need. *)
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. Float.of_int reps
  in
  let best = ref (batch ()) in
  for _ = 2 to 3 do
    best := Float.min !best (batch ())
  done;
  !best

let run_simcore_bench () =
  let jobs = Rr_workload.Instance.jobs bench_instance in
  (* Speed 1.0 is the regime the fast path exists for: heavy traffic, large
     alive sets, many events.  (At speed 2 the system drains and both
     engines are cheap.) *)
  let general () = Simulator.run ~machines:1 ~policy:Rr_policies.Round_robin.policy jobs in
  let fast () = Simulator.run_equal_share ~machines:1 jobs in
  let fg = Simulator.flows (general ()) and ff = Simulator.flows (fast ()) in
  let max_rel = ref 0. in
  Array.iteri
    (fun i g -> max_rel := Float.max !max_rel (Float.abs (g -. ff.(i)) /. Float.abs g))
    fg;
  let agree = Array.length fg = Array.length ff && !max_rel <= diff_rtol in
  let reps = if quick then 30 else 200 in
  let general_ns = time_per_run reps (fun () -> ignore (general ())) in
  let fast_ns = time_per_run reps (fun () -> ignore (fast ())) in
  Printf.printf
    "B3: rr-simulate-n1000 (speed 1.0): general %.3f ms | equal-share %.3f ms | speedup \
     %.1fx\n\
    \    differential: max relative flow diff %.2e (rtol %.0e) -> %s\n%!"
    (general_ns /. 1e6) (fast_ns /. 1e6)
    (general_ns /. Float.max 1. fast_ns)
    !max_rel diff_rtol
    (if agree then "agree" else "DISAGREE");
  (* A 20-probe crossover search, the workload the cache exists for: every
     probe re-measures the SRPT baseline (identical across probes) and the
     optimized config additionally runs RR on the equal-share engine.  Both
     searches start from a cold cache. *)
  let iters = 20 in
  let search cfg =
    Sweep.min_speed_for
      ~f:(fun speed -> Ratio.vs_baseline { cfg with Run.speed } Rr_policies.Round_robin.policy bench_instance)
      ~threshold:1.5 ~lo:1. ~hi:8. ~iters ()
  in
  let timed cfg =
    Cache.clear ();
    let t0 = Unix.gettimeofday () in
    let r = search cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_cold, t_cold = timed (Run.config ~engine:`General ~cache:false ()) in
  let r_opt, t_opt = timed (Run.config ()) in
  let st = Cache.stats () in
  let same_answer =
    match (r_cold, r_opt) with
    | Ok a, Ok b -> Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a)
    | Error _, Error _ -> true
    | _ -> false
  in
  let hit_rate =
    let total = st.hits + st.misses in
    if total = 0 then 0. else Float.of_int st.hits /. Float.of_int total
  in
  Printf.printf
    "B3: min_speed_for, %d probes: general+uncached %.3f s | equal-share+cached %.3f s | \
     speedup %.1fx\n\
    \    cache: %d hits / %d misses (hit rate %.0f%%) | same crossover: %s\n%!"
    iters t_cold t_opt
    (t_cold /. Float.max 1e-9 t_opt)
    st.hits st.misses (100. *. hit_rate)
    (if same_answer then "yes" else "NO");
  {
    sim_general_ns = general_ns;
    sim_fast_ns = fast_ns;
    sim_max_rel_diff = !max_rel;
    sim_rtol = diff_rtol;
    sim_agree = agree;
    sweep_probes = iters;
    sweep_cold_s = t_cold;
    sweep_opt_s = t_opt;
    sweep_hits = st.hits;
    sweep_misses = st.misses;
    sweep_same_answer = same_answer;
  }

(* ------------------------------------------------------------------ *)
(* B4: streaming pipeline — throughput and memory vs materialized       *)
(* ------------------------------------------------------------------ *)

type b4_point = {
  b4_n : int;
  b4_stream_s : float;
  b4_stream_alloc_words : float;
  b4_stream_peak_words : int;
  (* (seconds, allocated words, heap growth words, l2 norm) of the
     materialize-then-measure pipeline; None when n is streamed-only. *)
  b4_mat : (float * float * int * float) option;
  b4_rel_diff : float option;
}

type b4_report = { b4_points : b4_point list; b4_failures : string list }

(* The streamed pipeline must stay O(alive): near-zero allocation per job
   and a peak live heap an order of magnitude under the materialized
   pipeline's at the largest size.  After the arena work the raw
   equal-share path allocates ~11 words/job under the release profile
   (the remaining words are the O(log alive) heap-node churn amortised
   per job plus a handful of boxed floats at uninlined call boundaries);
   anything past 16 means a per-job allocation leaked back in.  The gate
   assumes the release profile: the dev profile passes [-opaque], which
   kills cross-module inlining and roughly triples the figure — run the
   bench with [dune exec --profile release]. *)
let b4_max_words_per_job = 16.
let b4_min_peak_ratio = 10.
let b4_rtol = 1e-9

(* Growth ratios divide by the streamed growth, which on a warm heap can
   legitimately be ~0 (the run fits in space freed by earlier phases); the
   floor keeps the ratio finite without hiding real growth. *)
let b4_growth_floor = 4096

let run_stream_bench () =
  let sizes =
    (* (n, also run the materialized pipeline?) — the largest full-scale
       point is streamed-only: ten million materialized jobs is exactly
       the allocation this pipeline exists to avoid. *)
    if quick then [ (10_000, true); (100_000, true) ]
    else [ (100_000, true); (1_000_000, true); (10_000_000, false) ]
  in
  let cfg = Run.config ~speed:2. ~cache:false () in
  let rr = Rr_policies.Round_robin.policy in
  let heap_words () = (Gc.quick_stat ()).Gc.heap_words in
  let point (n, mat_too) =
    let stream =
      Rr_workload.Instance.Stream.generate_load ~seed:77
        ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
        ~load:0.9 ~machines:1 ~n ()
    in
    (* Peaks are measured as heap *growth* above a post-collection
       baseline: Gc.compact is a no-op on this runtime (OCaml < 5.2), so
       absolute heap_words carries every earlier phase's high-water mark.
       Two full majors settle the baseline. *)
    let phase_base () =
      Gc.full_major ();
      Gc.full_major ();
      heap_words ()
    in
    let base = phase_base () in
    let peak = ref 0 in
    let completions = ref 0 in
    let lk = Rr_metrics.Sink.lk ~k:2 () in
    let sink ~id:_ ~arrival:_ ~flow =
      Rr_metrics.Sink.push lk flow;
      incr completions;
      (* Sample the major heap as the run progresses; quick_stat does not
         walk the heap, so the probe is cheap at 1/4096 completions. *)
      if !completions land 4095 = 0 then peak := Int.max !peak (heap_words () - base)
    in
    let bytes0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let (_ : Simulator.summary) = Run.simulate_stream cfg rr stream ~sink in
    let t_stream = Unix.gettimeofday () -. t0 in
    let alloc_stream = (Gc.allocated_bytes () -. bytes0) /. 8. in
    peak := Int.max !peak (heap_words () - base);
    let norm_stream = Rr_metrics.Sink.value lk in
    let peak_stream = !peak in
    let mat =
      if not mat_too then None
      else begin
        let base = phase_base () in
        let bytes0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let inst = Rr_workload.Instance.Stream.materialize stream in
        let r = Run.measure cfg rr inst in
        let t_mat = Unix.gettimeofday () -. t0 in
        let alloc_mat = (Gc.allocated_bytes () -. bytes0) /. 8. in
        let peak_mat = heap_words () - base in
        ignore (Sys.opaque_identity inst);
        Some (t_mat, alloc_mat, peak_mat, r.Run.norm)
      end
    in
    {
      b4_n = n;
      b4_stream_s = t_stream;
      b4_stream_alloc_words = alloc_stream;
      b4_stream_peak_words = peak_stream;
      b4_mat = mat;
      b4_rel_diff =
        Option.map
          (fun (_, _, _, norm_mat) ->
            Float.abs (norm_stream -. norm_mat) /. Float.max 1e-300 (Float.abs norm_mat))
          mat;
    }
  in
  let points = List.map point sizes in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun p ->
      let wpj = p.b4_stream_alloc_words /. Float.of_int (Int.max 1 p.b4_n) in
      if wpj > b4_max_words_per_job then
        fail "n=%d: streamed allocation %.1f words/job exceeds %.0f" p.b4_n wpj
          b4_max_words_per_job;
      (match p.b4_rel_diff with
      | Some d when d > b4_rtol ->
          fail "n=%d: streamed and materialized norms differ by %.2e (rtol %.0e)" p.b4_n d
            b4_rtol
      | _ -> ());
      Printf.printf
        "B4: n=%-9d streamed %8.0f jobs/s, %6.1f words/job, heap growth %9d words | %s\n%!"
        p.b4_n
        (Float.of_int p.b4_n /. Float.max 1e-9 p.b4_stream_s)
        wpj p.b4_stream_peak_words
        (match p.b4_mat with
        | None -> "materialized: skipped (streamed-only point)"
        | Some (t, alloc, peak, _) ->
            Printf.sprintf
              "materialized %8.0f jobs/s, %6.1f words/job, heap growth %9d words (%.1fx)"
              (Float.of_int p.b4_n /. Float.max 1e-9 t)
              (alloc /. Float.of_int (Int.max 1 p.b4_n))
              peak
              (Float.of_int peak
              /. Float.of_int (Int.max b4_growth_floor p.b4_stream_peak_words))))
    points;
  (* The memory argument must hold where it matters most: at the largest
     size both pipelines ran, the streamed heap growth must be >= 10x
     smaller than the materialized one. *)
  (match
     List.fold_left
       (fun acc p -> match p.b4_mat with Some _ -> Some p | None -> acc)
       None points
   with
  | Some ({ b4_mat = Some (_, _, peak_mat, _); _ } as p) ->
      let ratio =
        Float.of_int peak_mat /. Float.of_int (Int.max b4_growth_floor p.b4_stream_peak_words)
      in
      if ratio < b4_min_peak_ratio then
        fail "n=%d: materialized heap growth only %.1fx the streamed one (gate %.0fx)" p.b4_n
          ratio b4_min_peak_ratio
  | _ -> ());
  { b4_points = points; b4_failures = List.rev !failures }

let stream_json_file = "BENCH_stream.json"

let write_stream_json (b4 : b4_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_stream/v1\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"gates\": {\"max_words_per_job\": %.0f, \"min_peak_ratio\": %.0f, \"rtol\": %.0e},\n"
    b4_max_words_per_job b4_min_peak_ratio b4_rtol;
  add "  \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"n\": %d, \"stream\": {\"s\": %.6f, \"jobs_per_s\": %.1f, \"alloc_words\": \
         %.0f, \"words_per_job\": %.2f, \"heap_growth_words\": %d}, \"materialized\": %s, \
         \"rel_norm_diff\": %s}%s\n"
        p.b4_n p.b4_stream_s
        (Float.of_int p.b4_n /. Float.max 1e-9 p.b4_stream_s)
        p.b4_stream_alloc_words
        (p.b4_stream_alloc_words /. Float.of_int (Int.max 1 p.b4_n))
        p.b4_stream_peak_words
        (match p.b4_mat with
        | None -> "null"
        | Some (t, alloc, peak, _) ->
            Printf.sprintf
              "{\"s\": %.6f, \"jobs_per_s\": %.1f, \"alloc_words\": %.0f, \
               \"heap_growth_words\": %d}"
              t
              (Float.of_int p.b4_n /. Float.max 1e-9 t)
              alloc peak)
        (match p.b4_rel_diff with None -> "null" | Some d -> Printf.sprintf "%.3e" d)
        (if i = List.length b4.b4_points - 1 then "" else ","))
    b4.b4_points;
  add "  ],\n";
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b4.b4_failures));
  add "  \"ok\": %b\n" (b4.b4_failures = []);
  add "}\n";
  let oc = open_out stream_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" stream_json_file

(* ------------------------------------------------------------------ *)
(* B5: per-engine fast paths (BENCH_fastpaths.json)                    *)
(* ------------------------------------------------------------------ *)

type b5_engine = {
  e_policy : string;
  e_engine : string;
  e_general_ns : float;
  e_fast_ns : float;
  e_max_rel_diff : float;  (* worst over m in {1, 2, 8} *)
  e_gate_min : float;
}

type b5_report = {
  b5_n : int;
  b5_engines : b5_engine list;
  b5_ratio_n : int;
  b5_ratio_baseline_s : float;
  b5_ratio_fast_s : float;
  b5_ratio_gate : float;
  b5_ratio_same : bool;
  b5_failures : string list;
}

(* Speedup floors per engine on the n=10^4, rho=0.9, m=1 instance.  SRPT's
   5x is the acceptance gate of the fast-path work; the others are set
   from measured headroom (see EXPERIMENTS.md for typical numbers) with
   ~2x margin so a real regression trips them but scheduler jitter does
   not.  The completion cascades (SJF/FCFS) clear far higher bars than
   the preemptive engines; SETF pays for group maintenance, and the
   dense rate-vector kernels (laps, mlfq, wrr-age) remain O(alive) per
   event like the general loop — their win is structural (no policy
   closure, no view rebuild), so 2x is the honest floor.  All five
   classified additions ride the registry defaults. *)
let b5_cases =
  let classified spec = Rr_policies.Registry.(make spec) in
  [
    (Rr_policies.Srpt.policy, 5.0);
    (Rr_policies.Sjf.policy, 4.0);
    (Rr_policies.Fcfs.policy, 5.0);
    (Rr_policies.Setf.policy, 2.0);
    (classified (Rr_policies.Registry.Laps 0.5), 2.0);
    (classified (Rr_policies.Registry.Mlfq 0.5), 2.0);
    (classified (Rr_policies.Registry.Wrr_age 2), 2.0);
    (classified (Rr_policies.Registry.Hdf 2.), 2.0);
    (classified (Rr_policies.Registry.Hybrid 3.), 2.0);
  ]

let b5_ratio_gate = 3.0

let run_fastpath_bench () =
  (* B5 runs after the allocation-heavy bechamel suites; compact so its
     timings measure the engines, not the leftover heap. *)
  Gc.compact ();
  let n = if quick then 2_000 else 10_000 in
  let inst_m1 =
    let rng = Prng.create ~seed:46 in
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n ()
  in
  (* Smaller multi-machine instances: the differential gate must hold for
     m > 1 too, but the timing story is the m = 1 heavy-traffic one. *)
  let inst_of machines =
    if machines = 1 then inst_m1
    else begin
      let rng = Prng.create ~seed:(46 + machines) in
      Rr_workload.Instance.generate_load ~rng
        ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
        ~load:0.9 ~machines ~n:(n / 5) ()
    end
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let reps = if quick then 10 else 30 in
  (* Quick mode is a CI smoke on small n and shared runners: the agreement
     gates stay exact, but the speedup floors are halved — fixed per-run
     overheads eat a larger share of a 2k-job simulation, and the
     full-scale floors are what the real bench enforces. *)
  let gate_scale = if quick then 0.5 else 1.0 in
  let engine_point ((policy : Rr_engine.Policy.t), full_gate) =
    let gate_min = full_gate *. gate_scale in
    let cfg_fast = Run.config ~cache:false () in
    let cfg_gen = Run.config ~cache:false ~engine:`General () in
    let engine = Run.engine_name cfg_fast policy in
    let max_rel = ref 0. in
    List.iter
      (fun machines ->
        let inst = inst_of machines in
        let fg = Run.flows { cfg_gen with Run.machines } policy inst in
        let ff = Run.flows { cfg_fast with Run.machines } policy inst in
        if Array.length fg <> Array.length ff then
          fail "B5: %s m=%d: engines completed different job counts" policy.name machines
        else
          Array.iteri
            (fun i g ->
              max_rel := Float.max !max_rel (Float.abs (g -. ff.(i)) /. Float.abs g))
            fg)
      [ 1; 2; 8 ];
    if !max_rel > diff_rtol then
      fail "B5: %s: max relative flow diff %.2e exceeds rtol %.0e" policy.name !max_rel
        diff_rtol;
    Gc.compact ();
    let general_ns = time_per_run reps (fun () -> ignore (Run.simulate cfg_gen policy inst_m1)) in
    let fast_ns = time_per_run reps (fun () -> ignore (Run.simulate cfg_fast policy inst_m1)) in
    let speedup = general_ns /. Float.max 1. fast_ns in
    if speedup < gate_min then
      fail "B5: %s: speedup %.1fx below gate %.1fx" policy.name speedup gate_min;
    Printf.printf
      "B5: %-14s n=%d (speed 1.0, m=1): general %7.3f ms | %-15s %7.3f ms | speedup %5.1fx \
       (gate >=%.1fx) | max rel diff %.2e (m in {1,2,8})\n%!"
      policy.name n (general_ns /. 1e6) engine (fast_ns /. 1e6) speedup gate_min !max_rel;
    {
      e_policy = policy.name;
      e_engine = engine;
      e_general_ns = general_ns;
      e_fast_ns = fast_ns;
      e_max_rel_diff = !max_rel;
      e_gate_min = gate_min;
    }
  in
  let engines = List.map engine_point b5_cases in
  (* End-to-end: one cold-cache Ratio.vs_baseline (RR at speed 2 vs
     SRPT@1).  The pre-fast-path baseline is reconstructed from the same
     build — RR still on the equal-share engine, but the SRPT baseline on
     the general loop — so the gate isolates exactly what this round of
     engines bought. *)
  let rr = Rr_policies.Round_robin.policy in
  let cfg = Run.config ~speed:2. () in
  Gc.compact ();
  let timed_cold f =
    (* Every run is cold (cache cleared first); best-of-5 wall clocks keep
       the gate from tripping on one unlucky scheduler hiccup. *)
    let once () =
      Cache.clear ();
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r, t0 = once () in
    let best = ref t0 in
    for _ = 2 to 5 do
      let _, t = once () in
      best := Float.min !best t
    done;
    (r, !best)
  in
  let r_fast, t_fast = timed_cold (fun () -> Ratio.vs_baseline cfg rr inst_m1) in
  let r_base, t_base =
    timed_cold (fun () ->
        let rr_norm = Run.norm cfg rr inst_m1 in
        let srpt_norm =
          Run.norm { cfg with Run.speed = 1.; engine = `General } Rr_policies.Srpt.policy inst_m1
        in
        rr_norm /. srpt_norm)
  in
  let ratio_same = Float.abs (r_fast -. r_base) <= 1e-6 *. Float.max 1. (Float.abs r_base) in
  let ratio_speedup = t_base /. Float.max 1e-9 t_fast in
  if not ratio_same then
    fail "B5: ratio answers differ: fast %.9g vs general-baseline %.9g" r_fast r_base;
  let ratio_gate = b5_ratio_gate *. gate_scale in
  if ratio_speedup < ratio_gate then
    fail "B5: cold vs_baseline speedup %.1fx below gate %.1fx" ratio_speedup ratio_gate;
  Printf.printf
    "B5: Ratio.vs_baseline n=%d cold cache: general-baseline %.3f s | fast %.3f s | speedup \
     %.1fx (gate >=%.1fx) | same answer: %s\n%!"
    n t_base t_fast ratio_speedup ratio_gate
    (if ratio_same then "yes" else "NO");
  {
    b5_n = n;
    b5_engines = engines;
    b5_ratio_n = n;
    b5_ratio_baseline_s = t_base;
    b5_ratio_fast_s = t_fast;
    b5_ratio_gate = ratio_gate;
    b5_ratio_same = ratio_same;
    b5_failures = List.rev !failures;
  }

let fastpaths_json_file = "BENCH_fastpaths.json"

let write_fastpaths_json (b5 : b5_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_fastpaths/v2\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"jobs\": %d, \"rtol\": %.0e, \"machines_checked\": [1, 2, 8],\n" b5.b5_n diff_rtol;
  add "  \"engines\": [\n";
  List.iteri
    (fun i e ->
      add
        "    {\"policy\": %S, \"engine\": %S, \"general_ns\": %.1f, \"fast_ns\": %.1f, \
         \"speedup\": %.3f, \"max_rel_flow_diff\": %.3e, \"gate_min_speedup\": %.1f, \
         \"gate_ok\": %b, \"agree\": %b}%s\n"
        e.e_policy e.e_engine e.e_general_ns e.e_fast_ns
        (e.e_general_ns /. Float.max 1. e.e_fast_ns)
        e.e_max_rel_diff e.e_gate_min
        (e.e_general_ns /. Float.max 1. e.e_fast_ns >= e.e_gate_min)
        (e.e_max_rel_diff <= diff_rtol)
        (if i = List.length b5.b5_engines - 1 then "" else ","))
    b5.b5_engines;
  add "  ],\n";
  add
    "  \"ratio\": {\"jobs\": %d, \"baseline_s\": %.6f, \"fast_s\": %.6f, \"speedup\": %.3f, \
     \"gate_min_speedup\": %.1f, \"same_answer\": %b},\n"
    b5.b5_ratio_n b5.b5_ratio_baseline_s b5.b5_ratio_fast_s
    (b5.b5_ratio_baseline_s /. Float.max 1e-9 b5.b5_ratio_fast_s)
    b5.b5_ratio_gate b5.b5_ratio_same;
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b5.b5_failures));
  add "  \"ok\": %b\n" (b5.b5_failures = []);
  add "}\n";
  let oc = open_out fastpaths_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" fastpaths_json_file

(* ------------------------------------------------------------------ *)
(* B6: live engine throughput and agreement (BENCH_live.json)          *)
(* ------------------------------------------------------------------ *)

type b6_point = {
  l_spec : string;
  l_events : int;
  l_feed_s : float;
  l_events_per_s : float;
  l_max_rel_diff : float;
  l_gate_eps : float;
}

type b6_report = {
  b6_n : int;
  b6_points : b6_point list;
  b6_failures : string list;
}

(* Sequential-throughput floors, events per second on the incremental
   feed (submit one job, advance to its arrival, repeat — the rr_cli
   serve pattern).  The acceptance bar of the live-engine work is one
   million events per second; the slot-kernel specs clear it with wide
   margin, the heap-cascade specs (equal-share, SETF) carry more state
   per event and get the bare floor, and the dense rate-vector cores
   (laps, mlfq, wrr-age) touch every alive job per event, so they get
   half of it. *)
let b6_cases =
  [
    (Rr_engine.Live.Equal_share, Rr_policies.Round_robin.policy, 1.0e6);
    (Rr_engine.Live.Indexed Rr_engine.Index_engine.Srpt, Rr_policies.Srpt.policy, 1.0e6);
    (Rr_engine.Live.Indexed Rr_engine.Index_engine.Sjf, Rr_policies.Sjf.policy, 1.0e6);
    (Rr_engine.Live.Indexed Rr_engine.Index_engine.Fcfs, Rr_policies.Fcfs.policy, 1.0e6);
    (Rr_engine.Live.Setf_cascade, Rr_policies.Setf.policy, 1.0e6);
  ]
  @ List.map
      (fun (spec, gate) ->
        let policy = Rr_policies.Registry.make spec in
        (Rr_engine.Live.Classified (Option.get policy.Rr_engine.Policy.klass), policy, gate))
      [
        (Rr_policies.Registry.Laps 0.5, 0.5e6);
        (Rr_policies.Registry.Mlfq 0.5, 0.5e6);
        (Rr_policies.Registry.Wrr_age 2, 0.5e6);
        (Rr_policies.Registry.Hybrid 3., 1.0e6);
      ]

let run_live_bench () =
  Gc.compact ();
  let n = if quick then 50_000 else 500_000 in
  let inst =
    let rng = Prng.create ~seed:52 in
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n ()
  in
  let jobs = Array.of_list (Rr_workload.Instance.jobs inst) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Same rationale as B5: quick mode halves the perf floors (CI smoke on
     shared runners, smaller n), agreement gates stay exact. *)
  let gate_scale = if quick then 0.5 else 1.0 in
  let point (spec, (policy : Rr_engine.Policy.t), full_gate) =
    let gate_eps = full_gate *. gate_scale in
    (* Agreement first, on a slice small enough to keep the flow compare
       cheap: live flows vs the closed engine's, per job id. *)
    let n_agree = Int.min n 20_000 in
    let agree_inst =
      Rr_workload.Instance.of_jobs
        (List.filteri (fun i _ -> i < n_agree)
           (List.map
              (fun (j : Rr_engine.Job.t) -> (j.arrival, j.size))
              (Rr_workload.Instance.jobs inst)))
    in
    let reference = Run.flows (Run.config ~cache:false ()) policy agree_inst in
    let live_flows = Array.make n_agree nan in
    let live =
      Rr_engine.Live.create ~sink:(fun ~id ~arrival:_ ~flow -> live_flows.(id) <- flow) spec
    in
    List.iter
      (fun (j : Rr_engine.Job.t) ->
        ignore (Rr_engine.Live.submit live ~arrival:j.arrival ~size:j.size);
        Rr_engine.Live.advance live j.arrival)
      (Rr_workload.Instance.jobs agree_inst);
    Rr_engine.Live.drain live;
    let max_rel = ref 0. in
    Array.iteri
      (fun i f -> max_rel := Float.max !max_rel (Float.abs (f -. reference.(i)) /. reference.(i)))
      live_flows;
    if !max_rel > diff_rtol then
      fail "B6: %s: max relative flow diff %.2e exceeds rtol %.0e"
        (Rr_engine.Live.spec_name spec) !max_rel diff_rtol;
    (* Throughput: the full incremental feed, timed end to end. *)
    Gc.compact ();
    let live = Rr_engine.Live.create spec in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (j : Rr_engine.Job.t) ->
        ignore (Rr_engine.Live.submit live ~arrival:j.arrival ~size:j.size);
        Rr_engine.Live.advance live j.arrival)
      jobs;
    Rr_engine.Live.drain live;
    let feed_s = Unix.gettimeofday () -. t0 in
    let events = (Rr_engine.Live.query live).Rr_engine.Live.events in
    let eps = Float.of_int events /. Float.max 1e-9 feed_s in
    if eps < gate_eps then
      fail "B6: %s: %.2e events/s below gate %.1e" (Rr_engine.Live.spec_name spec) eps gate_eps;
    Printf.printf
      "B6: %-13s n=%d incremental feed: %d events in %6.3f s | %8.0f kevents/s (gate \
       >=%.0f k) | max rel diff %.2e\n%!"
      (Rr_engine.Live.spec_name spec) n events feed_s (eps /. 1e3) (gate_eps /. 1e3) !max_rel;
    {
      l_spec = Rr_engine.Live.spec_name spec;
      l_events = events;
      l_feed_s = feed_s;
      l_events_per_s = eps;
      l_max_rel_diff = !max_rel;
      l_gate_eps = gate_eps;
    }
  in
  let points = List.map point b6_cases in
  { b6_n = n; b6_points = points; b6_failures = List.rev !failures }

let live_json_file = "BENCH_live.json"

let write_live_json (b6 : b6_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_live/v1\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"jobs\": %d, \"rtol\": %.0e,\n" b6.b6_n diff_rtol;
  add "  \"engines\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"spec\": %S, \"events\": %d, \"feed_s\": %.6f, \"events_per_s\": %.1f, \
         \"max_rel_flow_diff\": %.3e, \"gate_min_events_per_s\": %.1f, \"gate_ok\": %b, \
         \"agree\": %b}%s\n"
        p.l_spec p.l_events p.l_feed_s p.l_events_per_s p.l_max_rel_diff p.l_gate_eps
        (p.l_events_per_s >= p.l_gate_eps)
        (p.l_max_rel_diff <= diff_rtol)
        (if i = List.length b6.b6_points - 1 then "" else ","))
    b6.b6_points;
  add "  ],\n";
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b6.b6_failures));
  add "  \"ok\": %b\n" (b6.b6_failures = []);
  add "}\n";
  let oc = open_out live_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" live_json_file

(* ------------------------------------------------------------------ *)
(* Machine-readable report                                             *)
(* ------------------------------------------------------------------ *)

let json_file = "BENCH_simcore.json"

(* b2 moved to its own report (BENCH_pool.json, bench_pool/v1) in v2. *)
let write_json b1 (b3 : b3_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_simcore/v2\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"b1\": [\n";
  List.iteri
    (fun i (name, ns) ->
      add "    {\"name\": %S, \"ns_per_run\": %s}%s\n" name
        (match ns with Some t -> Printf.sprintf "%.1f" t | None -> "null")
        (if i = List.length b1 - 1 then "" else ","))
    b1;
  add "  ],\n";
  add "  \"b3\": {\n";
  add
    "    \"simulate\": {\"name\": \"rr-simulate-n1000\", \"speed\": 1.0, \"general_ns\": \
     %.1f, \"equal_share_ns\": %.1f, \"speedup\": %.3f, \"max_rel_flow_diff\": %.3e, \
     \"rtol\": %.0e, \"agree\": %b},\n"
    b3.sim_general_ns b3.sim_fast_ns
    (b3.sim_general_ns /. Float.max 1. b3.sim_fast_ns)
    b3.sim_max_rel_diff b3.sim_rtol b3.sim_agree;
  add
    "    \"sweep\": {\"probes\": %d, \"cold_s\": %.6f, \"optimized_s\": %.6f, \"speedup\": \
     %.3f, \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
     \"same_crossover\": %b}\n"
    b3.sweep_probes b3.sweep_cold_s b3.sweep_opt_s
    (b3.sweep_cold_s /. Float.max 1e-9 b3.sweep_opt_s)
    b3.sweep_hits b3.sweep_misses
    (let total = b3.sweep_hits + b3.sweep_misses in
     if total = 0 then 0. else Float.of_int b3.sweep_hits /. Float.of_int total)
    b3.sweep_same_answer;
  add "  }\n";
  add "}\n";
  let oc = open_out json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" json_file

(* ------------------------------------------------------------------ *)
(* B7: certified lower bound at scale (BENCH_bound.json)               *)
(* ------------------------------------------------------------------ *)

type b7_point = {
  bp_n : int;
  bp_seconds : float;
  bp_ratio : float;
  bp_lp_solved : bool;
  bp_lo : float;
  bp_hi : float;
  bp_delta : float;
  bp_solves : int;
}

type b7_report = {
  b7_dense_ns : float;
  b7_sparse_ns : float;
  b7_rel_diff : float;
  b7_speedup_vs_baseline : float;
  b7_warm_max_rel : float;
  b7_warm_cases : int;
  b7_cheap_ns : float;
  b7_points : b7_point list;
  b7_failures : string list;
}

(* lp-bound-n40 as B1 measured it before arc sparsification (seed-43
   instance, delta 0.5, dense network): frozen so the speedup gate keeps
   its meaning as both paths get faster. *)
let b7_baseline_ms = 45.6
let b7_speedup_floor = 25.
let b7_n40_rtol = 1e-6

(* Wall-clock ceiling for the n=2000 certified point (doubled under
   --quick for slow CI runners): "a certified ratio curve at production
   scale costs seconds per point, not minutes". *)
let b7_curve_ceiling_s = 15.
let b7_curve_tol = 0.1
let b7_warm_rtol = 1e-9

(* Random transportation network in the LP's shape — per-job arc costs
   non-decreasing in slot index — split into an initial slot range plus a
   widening tail, to differential-test solve -> add_edge -> resolve
   against a cold solve of the full network.  Monotone costs are the
   regime the warm path is specified for: a later slot is never cheaper,
   so the perturbation cannot create a negative residual cycle. *)
let b7_warm_case rng =
  let ns = 2 + Prng.int rng ~bound:4 in
  let nd = ns + 2 + Prng.int rng ~bound:6 in
  let split = nd - 1 - Prng.int rng ~bound:(nd / 2) in
  let supplies = Array.init ns (fun _ -> Prng.float_range rng ~lo:0.5 ~hi:5.) in
  let caps = Array.init nd (fun _ -> Prng.float_range rng ~lo:1. ~hi:4.) in
  let costs =
    Array.init ns (fun _ ->
        let c = ref 0. in
        Array.init nd (fun _ ->
            c := !c +. Prng.float_range rng ~lo:0. ~hi:3.;
            !c))
  in
  let build_net () = Rr_flow.Mcmf.create ~n_nodes:(ns + nd + 2) in
  let source = 0 and sink = ns + nd + 1 in
  let add_supplies net =
    Array.iteri
      (fun i s ->
        ignore (Rr_flow.Mcmf.add_edge net ~src:source ~dst:(1 + i) ~capacity:s ~cost:0.))
      supplies
  in
  let add_slots net lo hi =
    for j = lo to hi - 1 do
      ignore
        (Rr_flow.Mcmf.add_edge net ~src:(1 + ns + j) ~dst:sink ~capacity:caps.(j) ~cost:0.);
      for i = 0 to ns - 1 do
        ignore
          (Rr_flow.Mcmf.add_edge net ~src:(1 + i) ~dst:(1 + ns + j) ~capacity:10.
             ~cost:costs.(i).(j))
      done
    done
  in
  let cold = build_net () in
  add_supplies cold;
  add_slots cold 0 nd;
  let cold_out = Rr_flow.Mcmf.solve cold ~source ~sink in
  let warm = build_net () in
  add_supplies warm;
  add_slots warm 0 split;
  ignore (Rr_flow.Mcmf.solve warm ~source ~sink);
  add_slots warm split nd;
  let warm_out = Rr_flow.Mcmf.resolve warm ~source ~sink in
  let rel a b = Float.abs (a -. b) /. Float.max 1. (Float.abs b) in
  Float.max
    (rel warm_out.Rr_flow.Mcmf.flow cold_out.Rr_flow.Mcmf.flow)
    (rel warm_out.Rr_flow.Mcmf.cost cold_out.Rr_flow.Mcmf.cost)

let run_bound_bench pool =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let gate_scale = if quick then 0.5 else 1.0 in
  (* -- n40: sparse vs dense at the B1 operating point ---------------- *)
  let dense () =
    Rr_lp.Lp_bound.value ~windows:Rr_lp.Lp_bound.Dense ~k:2 ~machines:1 ~delta:0.5
      small_instance
  in
  let sparse () =
    Rr_lp.Lp_bound.value ~windows:Rr_lp.Lp_bound.Sparse ~k:2 ~machines:1 ~delta:0.5
      small_instance
  in
  let vd = dense () and vs = sparse () in
  let rel_diff = Float.abs (vs -. vd) /. Float.max 1e-12 (Float.abs vd) in
  if rel_diff > b7_n40_rtol then
    fail "lp-bound-n40 sparse value %.9g disagrees with dense %.9g (rel %.3e > %.0e)" vs vd
      rel_diff b7_n40_rtol;
  let reps = if quick then 10 else 30 in
  let dense_ns = time_per_run reps (fun () -> ignore (dense ())) in
  let sparse_ns = time_per_run reps (fun () -> ignore (sparse ())) in
  let speedup = b7_baseline_ms *. 1e6 /. Float.max 1. sparse_ns in
  let floor = b7_speedup_floor *. gate_scale in
  if speedup < floor then
    fail "lp-bound-n40 speedup %.1fx vs frozen %.1f ms baseline is below the %.1fx floor"
      speedup b7_baseline_ms floor;
  (* -- warm resolve vs cold solve differential ----------------------- *)
  let warm_rng = Prng.create ~seed:77 in
  let warm_cases = if quick then 20 else 60 in
  let warm_max_rel = ref 0. in
  for _ = 1 to warm_cases do
    warm_max_rel := Float.max !warm_max_rel (b7_warm_case warm_rng)
  done;
  if !warm_max_rel > b7_warm_rtol then
    fail "warm resolve diverges from cold solve: max rel diff %.3e > %.0e" !warm_max_rel
      b7_warm_rtol;
  (* -- certified ratio curve ----------------------------------------- *)
  let curve_ns = if quick then [ 500; 2000 ] else [ 200; 500; 1000; 2000 ] in
  let curve_inst n =
    let rng = Prng.create ~seed:(40 + n) in
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n ()
  in
  let cfg = Run.config () in
  let points =
    List.map
      (fun n ->
        let inst = curve_inst n in
        let t0 = Unix.gettimeofday () in
        let c =
          Ratio.vs_certified ~pool ~tol:b7_curve_tol cfg Rr_policies.Round_robin.policy inst
        in
        let seconds = Unix.gettimeofday () -. t0 in
        let lo, hi, delta, solves =
          match c.Ratio.interval with
          | Some itv ->
              Rr_lp.Lp_bound.(itv.lo, itv.hi, itv.delta, itv.solves)
          | None -> (0., 0., 0., 0)
        in
        {
          bp_n = n;
          bp_seconds = seconds;
          bp_ratio = c.Ratio.ratio;
          bp_lp_solved = c.Ratio.lp_solved;
          bp_lo = lo;
          bp_hi = hi;
          bp_delta = delta;
          bp_solves = solves;
        })
      curve_ns
  in
  let ceiling = b7_curve_ceiling_s /. gate_scale in
  List.iter
    (fun p ->
      if p.bp_n >= 2000 && p.bp_seconds > ceiling then
        fail "certified ratio point at n=%d took %.1f s (> %.1f s ceiling)" p.bp_n
          p.bp_seconds ceiling;
      if p.bp_lp_solved && p.bp_lo > p.bp_hi *. (1. +. 1e-9) then
        fail "certified interval inverted at n=%d: lo %.6g > hi %.6g" p.bp_n p.bp_lo p.bp_hi)
    points;
  (* -- cheap filter cost (context for the curve) --------------------- *)
  let big = curve_inst 2000 in
  let cheap_ns =
    time_per_run reps (fun () ->
        ignore (Rr_lp.Lp_bound.cheap_lower_bound ~k:2 ~machines:1 big))
  in
  let table =
    Table.create ~title:"B7: certified lower bound at scale"
      ~columns:[ "measure"; "value" ]
  in
  Table.add_row table
    [ "lp-bound-n40 sparse"; Printf.sprintf "%.3f ms (dense %.3f ms)" (sparse_ns /. 1e6)
        (dense_ns /. 1e6) ];
  Table.add_row table
    [ "speedup vs 45.6 ms baseline"; Printf.sprintf "%.1fx (floor %.1fx)" speedup floor ];
  Table.add_row table
    [ "warm vs cold max rel diff"; Printf.sprintf "%.2e (%d cases)" !warm_max_rel warm_cases ];
  Table.add_row table
    [ "cheap filter n=2000"; Printf.sprintf "%.3f ms" (cheap_ns /. 1e6) ];
  List.iter
    (fun p ->
      Table.add_row table
        [ Printf.sprintf "certified ratio n=%d" p.bp_n;
          Printf.sprintf "%.3f in %.1f s [%.6g, %.6g] delta %.4g (%d solves)%s" p.bp_ratio
            p.bp_seconds p.bp_lo p.bp_hi p.bp_delta p.bp_solves
            (if p.bp_lp_solved then "" else " (cheap filter only)") ])
    points;
  Table.print table;
  {
    b7_dense_ns = dense_ns;
    b7_sparse_ns = sparse_ns;
    b7_rel_diff = rel_diff;
    b7_speedup_vs_baseline = speedup;
    b7_warm_max_rel = !warm_max_rel;
    b7_warm_cases = warm_cases;
    b7_cheap_ns = cheap_ns;
    b7_points = points;
    b7_failures = List.rev !failures;
  }

let bound_json_file = "BENCH_bound.json"

let write_bound_json (b7 : b7_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_bound/v1\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add
    "  \"n40\": {\"dense_ns\": %.1f, \"sparse_ns\": %.1f, \"rel_diff\": %.3e, \"rtol\": \
     %.0e, \"baseline_ms\": %.1f, \"speedup_vs_baseline\": %.2f, \"floor\": %.1f},\n"
    b7.b7_dense_ns b7.b7_sparse_ns b7.b7_rel_diff b7_n40_rtol b7_baseline_ms
    b7.b7_speedup_vs_baseline
    (b7_speedup_floor *. if quick then 0.5 else 1.0);
  add "  \"warm\": {\"max_rel_diff\": %.3e, \"rtol\": %.0e, \"cases\": %d},\n"
    b7.b7_warm_max_rel b7_warm_rtol b7.b7_warm_cases;
  add "  \"cheap\": {\"n\": 2000, \"ns_per_run\": %.1f},\n" b7.b7_cheap_ns;
  add "  \"curve\": {\"tol\": %.3g, \"ceiling_s\": %.1f, \"points\": [\n" b7_curve_tol
    (b7_curve_ceiling_s /. if quick then 0.5 else 1.0);
  List.iteri
    (fun i p ->
      add
        "    {\"n\": %d, \"seconds\": %.3f, \"ratio\": %.6f, \"lp_solved\": %b, \"lo\": \
         %.6f, \"hi\": %.6f, \"delta\": %.6f, \"solves\": %d}%s\n"
        p.bp_n p.bp_seconds p.bp_ratio p.bp_lp_solved p.bp_lo p.bp_hi p.bp_delta p.bp_solves
        (if i = List.length b7.b7_points - 1 then "" else ","))
    b7.b7_points;
  add "  ]},\n";
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b7.b7_failures));
  add "  \"ok\": %b\n" (b7.b7_failures = []);
  add "}\n";
  let oc = open_out bound_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" bound_json_file

(* ------------------------------------------------------------------ *)
(* B8: wire-speed serving (BENCH_serve.json)                           *)
(* ------------------------------------------------------------------ *)

type b8_point = {
  s_proto : string;
  s_clients : int;
  s_batch : int;
  s_jobs : int;
  s_ops : int;
  s_wall_s : float;
  s_events_per_s : float;
  s_lat_p50_us : float;
  s_lat_p90_us : float;
  s_lat_p99_us : float;
  s_gate_eps : float option;
}

type b8_report = {
  b8_points : b8_point list;
  b8_speedup : float;
  b8_speedup_gate : float;
  b8_stats_max_rel : float;
  b8_stats_identical : bool;
  b8_failures : string list;
}

(* Acceptance bars of the serving work: the binary framed path must
   sustain half a million wire events per second end to end (client,
   socket, server loop, engine) and beat the text line protocol — one
   syscall round trip per event — by an order of magnitude.  Quick mode
   halves both floors like B5/B6 (shared CI runners, smaller n); the
   agreement gate stays exact. *)
let b8_binary_floor = 500e3
let b8_speedup_floor = 10.
let b8_batch = 512
let b8_seed = 29

(* Max relative difference across the 15 STATS fields; int fields must
   match exactly (counted as an infinite difference when they do not). *)
let b8_stats_rel (a : Rr_engine.Live.stats) (b : Rr_engine.Live.stats) =
  let rel x y =
    if x = y then 0. else Float.abs (x -. y) /. Float.max 1e-12 (Float.max (Float.abs x) (Float.abs y))
  in
  let ints =
    [
      (a.submitted, b.submitted);
      (a.completed, b.completed);
      (a.alive, b.alive);
      (a.pending, b.pending);
      (a.events, b.events);
      (a.max_alive, b.max_alive);
    ]
  in
  let floats =
    [
      (a.now, b.now);
      (a.makespan, b.makespan);
      (a.mean_flow, b.mean_flow);
      (a.max_flow, b.max_flow);
      (a.power_sum, b.power_sum);
      (a.norm, b.norm);
      (a.p50, b.p50);
      (a.p90, b.p90);
      (a.p99, b.p99);
    ]
  in
  if List.exists (fun (x, y) -> x <> y) ints then infinity
  else List.fold_left (fun acc (x, y) -> Float.max acc (rel x y)) 0. floats

(* In-process replay of exactly the feed the binary loadgen sends: same
   stream, same batch boundaries, advance to each batch's last arrival,
   drain.  The socket-fed engine must land on the same stats bit for
   bit. *)
let b8_inprocess_replay ~n =
  let stream =
    Rr_workload.Instance.Stream.generate_load ~seed:b8_seed
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n ()
  in
  let next = Rr_workload.Instance.Stream.start stream in
  let live = Rr_engine.Live.create Rr_engine.Live.Equal_share in
  let arrivals = Array.make b8_batch 0. and sizes = Array.make b8_batch 0. in
  let rec fill i =
    if i >= b8_batch then i
    else
      match next () with
      | None -> i
      | Some (j : Rr_engine.Job.t) ->
          arrivals.(i) <- j.arrival;
          sizes.(i) <- j.size;
          fill (i + 1)
  in
  let continue = ref true in
  while !continue do
    let len = fill 0 in
    if len = 0 then continue := false
    else begin
      ignore (Rr_engine.Live.submit_batch live ~arrivals ~sizes ~len () : int);
      Rr_engine.Live.advance live arrivals.(len - 1)
    end
  done;
  Rr_engine.Live.drain live;
  Rr_engine.Live.query live

let b8_serve_point ~proto ~clients ~n ~gate_eps =
  let path = Printf.sprintf "/tmp/rr-bench-serve-%d-%s.sock" (Unix.getpid ())
      (match proto with `Binary -> "bin" | `Text -> "text")
  in
  let engine = ref (Rr_engine.Live.create Rr_engine.Live.Equal_share) in
  let server_proto =
    match proto with `Binary -> Rr_serve.Server.Binary | `Text -> Rr_serve.Server.Text
  in
  let d =
    Domain.spawn (fun () -> Rr_serve.Server.run ~proto:server_proto ~engine ~path ())
  in
  let report =
    Fun.protect
      ~finally:(fun () -> Domain.join d)
      (fun () ->
        try
          Rr_serve.Loadgen.run ~path ~proto ~clients ~batch:b8_batch ~seed:b8_seed
            ~shutdown:true ~n ()
        with e ->
          (* Best-effort server stop, so the join in the finally above
             cannot hang on a server that never got its shutdown. *)
          (match proto with
          | `Binary -> (
              try Rr_serve.Client.shutdown (Rr_serve.Client.connect ~retries:5 path)
              with _ -> ())
          | `Text -> (
              try
                let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                Unix.connect fd (Unix.ADDR_UNIX path);
                let oc = Unix.out_channel_of_descr fd in
                output_string oc "QUIT\n";
                flush oc;
                Unix.close fd
              with _ -> ()));
          raise e)
  in
  let point =
    {
      s_proto = report.Rr_serve.Loadgen.proto;
      s_clients = report.clients;
      s_batch = report.batch;
      s_jobs = report.jobs;
      s_ops = report.ops;
      s_wall_s = report.wall_s;
      s_events_per_s = report.events_per_s;
      s_lat_p50_us = report.lat_p50_us;
      s_lat_p90_us = report.lat_p90_us;
      s_lat_p99_us = report.lat_p99_us;
      s_gate_eps = gate_eps;
    }
  in
  (point, report.final_stats)

let run_serve_bench () =
  Gc.compact ();
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let gate_scale = if quick then 0.5 else 1.0 in
  let n_binary = if quick then 100_000 else 400_000 in
  let n_text = if quick then 4_000 else 20_000 in
  let binary_gate = b8_binary_floor *. gate_scale in
  let speedup_gate = b8_speedup_floor *. gate_scale in
  (* Binary point: one feeder shipping BATCH frames plus one concurrent
     STATS observer, so the measured rate includes real multiplexing. *)
  let binary, wire_stats =
    b8_serve_point ~proto:`Binary ~clients:2 ~n:n_binary ~gate_eps:(Some binary_gate)
  in
  if binary.s_events_per_s < binary_gate then
    fail "B8: binary %.0f events/s below gate %.0f" binary.s_events_per_s binary_gate;
  (* Socket-fed vs in-process: replay the identical feed locally and
     compare all 15 STATS fields. *)
  let local_stats = b8_inprocess_replay ~n:n_binary in
  let stats_max_rel = b8_stats_rel wire_stats local_stats in
  if stats_max_rel > diff_rtol then
    fail "B8: socket-fed stats diverge from in-process replay: %.2e > %.0e" stats_max_rel
      diff_rtol;
  (* Text point: same server loop, one SUBMIT line per job — the
     contrast that justifies the framed protocol. *)
  let text, _ = b8_serve_point ~proto:`Text ~clients:1 ~n:n_text ~gate_eps:None in
  let speedup = binary.s_events_per_s /. Float.max 1e-9 text.s_events_per_s in
  if speedup < speedup_gate then
    fail "B8: binary only %.1fx over text, below gate %.1fx" speedup speedup_gate;
  Printf.printf
    "B8: binary  n=%d clients=%d batch=%d: %8.0f kevents/s (gate >=%.0f k) | p50 %.0f us \
     p99 %.0f us\n%!"
    binary.s_jobs binary.s_clients binary.s_batch
    (binary.s_events_per_s /. 1e3)
    (binary_gate /. 1e3) binary.s_lat_p50_us binary.s_lat_p99_us;
  Printf.printf
    "B8: text    n=%d clients=%d: %8.0f kevents/s | binary/text %.1fx (gate >=%.1fx) | \
     stats max rel %.2e\n%!"
    text.s_jobs text.s_clients
    (text.s_events_per_s /. 1e3)
    speedup speedup_gate stats_max_rel;
  {
    b8_points = [ binary; text ];
    b8_speedup = speedup;
    b8_speedup_gate = speedup_gate;
    b8_stats_max_rel = stats_max_rel;
    b8_stats_identical = stats_max_rel = 0.;
    b8_failures = List.rev !failures;
  }

let serve_json_file = "BENCH_serve.json"

let write_serve_json (b8 : b8_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_serve/v1\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"proto\": %S, \"clients\": %d, \"batch\": %d, \"jobs\": %d, \"ops\": %d, \
         \"wall_s\": %.6f, \"events_per_s\": %.1f, \"lat_p50_us\": %.2f, \"lat_p90_us\": \
         %.2f, \"lat_p99_us\": %.2f, \"gate_min_events_per_s\": %s, \"gate_ok\": %b}%s\n"
        p.s_proto p.s_clients p.s_batch p.s_jobs p.s_ops p.s_wall_s p.s_events_per_s
        p.s_lat_p50_us p.s_lat_p90_us p.s_lat_p99_us
        (match p.s_gate_eps with Some g -> Printf.sprintf "%.1f" g | None -> "null")
        (match p.s_gate_eps with Some g -> p.s_events_per_s >= g | None -> true)
        (if i = List.length b8.b8_points - 1 then "" else ","))
    b8.b8_points;
  add "  ],\n";
  add "  \"binary_over_text\": %.2f, \"gate_min_speedup\": %.1f,\n" b8.b8_speedup
    b8.b8_speedup_gate;
  add "  \"stats_max_rel_diff\": %.3e, \"stats_rtol\": %.0e, \"stats_bit_identical\": %b,\n"
    b8.b8_stats_max_rel diff_rtol b8.b8_stats_identical;
  add "  \"failures\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") b8.b8_failures));
  add "  \"ok\": %b\n" (b8.b8_failures = []);
  add "}\n";
  let oc = open_out serve_json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" serve_json_file

let () =
  (* B5 carries the strictest perf gates (engine speedup floors), so it
     runs first, on a pristine heap — after the bechamel suites the major
     heap is large enough to distort its per-run timings. *)
  let b5 = run_fastpath_bench () in
  let b6 = run_live_bench () in
  (* B2 must precede every other pool user: its process-backend point
     forks, and the runtime refuses fork once any worker domain was ever
     spawned in the process (B2 itself forks before it spawns).  B5 and
     B6 above are strictly sequential. *)
  let b2 = run_pool_bench () in
  let b1 =
    Pool.with_pool ~domains (fun pool ->
        run_experiments pool;
        run_microbench ())
  in
  let b3 = run_simcore_bench () in
  let b4 = run_stream_bench () in
  let b7 = Pool.with_pool ~domains run_bound_bench in
  (* B8 spawns a server domain per point, so it must stay after B2 (the
     fork-based pool point) like every other domain user. *)
  let b8 = run_serve_bench () in
  write_json b1 b3;
  write_pool_json b2;
  write_stream_json b4;
  write_fastpaths_json b5;
  write_live_json b6;
  write_bound_json b7;
  write_serve_json b8;
  if not (b3.sim_agree && b3.sweep_same_answer) then begin
    prerr_endline
      "B3 FAILED: the equal-share engine disagrees with the general engine; see \
       BENCH_simcore.json";
    exit 1
  end;
  if b2.b2_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B2 FAILED: " ^ m)) b2.b2_failures;
    prerr_endline "B2 FAILED: pool gate; see BENCH_pool.json";
    exit 1
  end;
  if b4.b4_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B4 FAILED: " ^ m)) b4.b4_failures;
    prerr_endline "B4 FAILED: streaming pipeline gate; see BENCH_stream.json";
    exit 1
  end;
  if b5.b5_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B5 FAILED: " ^ m)) b5.b5_failures;
    prerr_endline "B5 FAILED: fast-path engine gate; see BENCH_fastpaths.json";
    exit 1
  end;
  if b6.b6_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B6 FAILED: " ^ m)) b6.b6_failures;
    prerr_endline "B6 FAILED: live engine gate; see BENCH_live.json";
    exit 1
  end;
  if b7.b7_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B7 FAILED: " ^ m)) b7.b7_failures;
    prerr_endline "B7 FAILED: certified bound gate; see BENCH_bound.json";
    exit 1
  end;
  if b8.b8_failures <> [] then begin
    List.iter (fun m -> prerr_endline ("B8 FAILED: " ^ m)) b8.b8_failures;
    prerr_endline "B8 FAILED: serving gate; see BENCH_serve.json";
    exit 1
  end
