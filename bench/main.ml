(* Benchmark harness: regenerates every table and figure of the evaluation
   suite (see DESIGN.md section 3 and EXPERIMENTS.md) on a domain pool,
   then runs the B1 micro-benchmarks measuring the throughput of the
   substrates and the B2 parallel-executor benchmark comparing a
   sequential sweep against Run.batch on the pool.

   Usage: dune exec bench/main.exe [-- --quick] [-- --jobs N]
   (RR_JOBS is honoured when --jobs is absent; default: all cores.)  *)

open Rr_util
module Pool = Temporal_fairness.Pool
module Run = Temporal_fairness.Run

let scale =
  if Array.exists (String.equal "--quick") Sys.argv then Temporal_fairness.Experiments.Quick
  else Temporal_fairness.Experiments.Full

let domains =
  let from_argv =
    let n = Array.length Sys.argv in
    let rec find i =
      if i >= n - 1 then None
      else if String.equal Sys.argv.(i) "--jobs" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 0
  in
  match from_argv with
  | Some j when j >= 1 -> j
  | Some _ -> Pool.recommended_domains ()
  | None -> (
      match Pool.env_domains () with Some j -> j | None -> Pool.recommended_domains ())

let run_experiments pool =
  let t0 = Unix.gettimeofday () in
  List.iter Table.print (Temporal_fairness.Experiments.all ~pool scale);
  Printf.printf "(experiment suite completed in %.1f s on %d domain(s))\n\n%!"
    (Unix.gettimeofday () -. t0)
    (Pool.size pool)

(* ------------------------------------------------------------------ *)
(* B1: micro-benchmarks                                                *)
(* ------------------------------------------------------------------ *)

let bench_instance =
  let rng = Prng.create ~seed:42 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:1000 ()

let small_instance =
  let rng = Prng.create ~seed:43 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:40 ()

let tests =
  let open Bechamel in
  Test.make_grouped ~name:"B1" ~fmt:"%s %s"
    [
      Test.make ~name:"rr-simulate-n1000"
        (Staged.stage (fun () ->
             ignore
               (Run.simulate (Run.config ~speed:2. ()) Rr_policies.Round_robin.policy
                  bench_instance)));
      Test.make ~name:"srpt-simulate-n1000"
        (Staged.stage (fun () ->
             ignore (Run.simulate Run.default Rr_policies.Srpt.policy bench_instance)));
      Test.make ~name:"lp-bound-n40"
        (Staged.stage (fun () ->
             ignore
               (Rr_lp.Lp_bound.opt_power_lower_bound ~k:2 ~machines:1 ~delta:0.5
                  small_instance)));
      Test.make ~name:"dualfit-certify-n40"
        (Staged.stage (fun () ->
             let res =
               Run.simulate
                 (Run.config ~speed:4.4 ~record_trace:true ())
                 Rr_policies.Round_robin.policy small_instance
             in
             ignore (Rr_dualfit.Certificate.certify ~k:2 res)));
    ]

let run_microbench () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"B1: substrate micro-benchmarks" ~columns:[ "benchmark"; "time/run" ]
  in
  Hashtbl.iter
    (fun name ols_result ->
      let cell =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) ->
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else Printf.sprintf "%.1f us" (t /. 1e3)
        | _ -> "n/a"
      in
      Table.add_row table [ name; cell ])
    results;
  Table.print table

(* ------------------------------------------------------------------ *)
(* B2: parallel experiment executor                                    *)
(* ------------------------------------------------------------------ *)

(* A speed-sweep-shaped workload — many independent (policy, instance)
   simulate-and-measure tasks — run once sequentially and once through
   Run.batch on the pool.  The comparison both measures the wall-clock
   speedup and machine-checks the determinism guarantee: the parallel
   results must be bit-identical to the sequential ones. *)
let run_parallel_bench pool =
  let n = match scale with Temporal_fairness.Experiments.Quick -> 400 | Full -> 1200 in
  let n_insts = 24 in
  let policies =
    [ Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy ]
  in
  let insts =
    List.init n_insts (fun i ->
        let rng = Prng.create ~seed:(200 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.9 ~machines:1 ~n ())
  in
  let tasks = List.concat_map (fun inst -> List.map (fun p -> (p, inst)) policies) insts in
  let cfg = Run.config ~speed:2. () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = time (fun () -> List.map (fun (p, i) -> Run.measure cfg p i) tasks) in
  let par, t_par = time (fun () -> Run.batch pool cfg tasks) in
  let identical =
    List.for_all2
      (fun (a : Run.result) (b : Run.result) ->
        a.flows = b.flows && a.norm = b.norm && a.power_sum = b.power_sum
        && a.events = b.events)
      seq par
  in
  Printf.printf
    "B2: Run.batch over %d (policy x instance) tasks on %d domain(s):\n\
    \    sequential %.3f s | parallel %.3f s | speedup %.2fx | bit-identical: %s\n%!"
    (List.length tasks) (Pool.size pool) t_seq t_par
    (t_seq /. Float.max 1e-9 t_par)
    (if identical then "yes" else "NO")

let () =
  Pool.with_pool ~domains (fun pool ->
      run_experiments pool;
      run_microbench ();
      run_parallel_bench pool)
