(* Benchmark harness: regenerates every table and figure of the evaluation
   suite (see DESIGN.md section 3 and EXPERIMENTS.md) on a domain pool,
   then runs the B1 micro-benchmarks measuring the throughput of the
   substrates, the B2 parallel-executor benchmark comparing a sequential
   sweep against Run.batch on the pool, and the B3 simulation-core
   benchmark comparing the general event loop against the closed-form
   equal-share engine and a cold sweep against a cached one.

   Machine-readable results land in BENCH_simcore.json next to the text
   report.  The process exits non-zero when B3's differential check — the
   two engines must agree on every flow time — fails, so CI can gate on
   it.

   Usage: dune exec bench/main.exe [-- --quick] [-- --jobs N]
   (RR_JOBS is honoured when --jobs is absent; default: all cores.)  *)

open Rr_util
module Pool = Temporal_fairness.Pool
module Run = Temporal_fairness.Run
module Cache = Temporal_fairness.Cache
module Sweep = Temporal_fairness.Sweep
module Ratio = Temporal_fairness.Ratio
module Simulator = Rr_engine.Simulator

let scale =
  if Array.exists (String.equal "--quick") Sys.argv then Temporal_fairness.Experiments.Quick
  else Temporal_fairness.Experiments.Full

let quick = match scale with Temporal_fairness.Experiments.Quick -> true | Full -> false

let domains =
  let from_argv =
    let n = Array.length Sys.argv in
    let rec find i =
      if i >= n - 1 then None
      else if String.equal Sys.argv.(i) "--jobs" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 0
  in
  match from_argv with
  | Some j when j >= 1 -> j
  | Some _ -> Pool.recommended_domains ()
  | None -> (
      match Pool.env_domains () with Some j -> j | None -> Pool.recommended_domains ())

let run_experiments pool =
  let t0 = Unix.gettimeofday () in
  List.iter Table.print (Temporal_fairness.Experiments.all ~pool scale);
  Printf.printf "(experiment suite completed in %.1f s on %d domain(s))\n\n%!"
    (Unix.gettimeofday () -. t0)
    (Pool.size pool)

(* ------------------------------------------------------------------ *)
(* B1: micro-benchmarks                                                *)
(* ------------------------------------------------------------------ *)

let bench_instance =
  let rng = Prng.create ~seed:42 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:1000 ()

let small_instance =
  let rng = Prng.create ~seed:43 in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines:1 ~n:40 ()

let tests =
  let open Bechamel in
  Test.make_grouped ~name:"B1" ~fmt:"%s %s"
    [
      Test.make ~name:"rr-simulate-n1000"
        (Staged.stage (fun () ->
             ignore
               (Run.simulate (Run.config ~speed:2. ()) Rr_policies.Round_robin.policy
                  bench_instance)));
      Test.make ~name:"srpt-simulate-n1000"
        (Staged.stage (fun () ->
             ignore (Run.simulate Run.default Rr_policies.Srpt.policy bench_instance)));
      Test.make ~name:"lp-bound-n40"
        (Staged.stage (fun () ->
             ignore
               (Rr_lp.Lp_bound.opt_power_lower_bound ~k:2 ~machines:1 ~delta:0.5
                  small_instance)));
      Test.make ~name:"dualfit-certify-n40"
        (Staged.stage (fun () ->
             let res =
               Run.simulate
                 (Run.config ~speed:4.4 ~record_trace:true ())
                 Rr_policies.Round_robin.policy small_instance
             in
             ignore (Rr_dualfit.Certificate.certify ~k:2 res)));
    ]

(* Returns (name, ns/run) rows for the JSON report. *)
let run_microbench () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with Some (t :: _) -> Some t | _ -> None
        in
        (name, ns) :: acc)
      results []
    (* Hashtbl.fold order is unspecified; sort so the table (and the JSON)
       is stable run to run. *)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Table.create ~title:"B1: substrate micro-benchmarks" ~columns:[ "benchmark"; "time/run" ]
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        match ns with
        | Some t ->
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else Printf.sprintf "%.1f us" (t /. 1e3)
        | None -> "n/a"
      in
      Table.add_row table [ name; cell ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------------ *)
(* B2: parallel experiment executor                                    *)
(* ------------------------------------------------------------------ *)

type b2_report = {
  b2_tasks : int;
  b2_domains : int;
  b2_seq_s : float;
  b2_par_s : float;
  b2_identical : bool;
}

(* A speed-sweep-shaped workload — many independent (policy, instance)
   simulate-and-measure tasks — run once sequentially and once through
   Run.batch on the pool.  The comparison both measures the wall-clock
   speedup and machine-checks the determinism guarantee: the parallel
   results must be bit-identical to the sequential ones.  Caching and the
   equal-share fast path are both off: the sequential pass would otherwise
   hand the parallel pass its results for free, and the point here is the
   pool's scaling on the general event loop (B3 measures the fast
   engine). *)
let run_parallel_bench pool =
  let n = if quick then 400 else 1200 in
  let n_insts = 24 in
  let policies =
    [ Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy ]
  in
  let insts =
    List.init n_insts (fun i ->
        let rng = Prng.create ~seed:(200 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.9 ~machines:1 ~n ())
  in
  let tasks = List.concat_map (fun inst -> List.map (fun p -> (p, inst)) policies) insts in
  let cfg = Run.config ~speed:2. ~cache:false ~fast_path:false () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = time (fun () -> List.map (fun (p, i) -> Run.measure cfg p i) tasks) in
  let par, t_par = time (fun () -> Run.batch pool cfg tasks) in
  let identical =
    List.for_all2
      (fun (a : Run.result) (b : Run.result) ->
        a.flows = b.flows && a.norm = b.norm && a.power_sum = b.power_sum
        && a.events = b.events)
      seq par
  in
  Printf.printf
    "B2: Run.batch over %d (policy x instance) tasks on %d domain(s):\n\
    \    sequential %.3f s | parallel %.3f s | speedup %.2fx | bit-identical: %s\n%!"
    (List.length tasks) (Pool.size pool) t_seq t_par
    (t_seq /. Float.max 1e-9 t_par)
    (if identical then "yes" else "NO");
  {
    b2_tasks = List.length tasks;
    b2_domains = Pool.size pool;
    b2_seq_s = t_seq;
    b2_par_s = t_par;
    b2_identical = identical;
  }

(* ------------------------------------------------------------------ *)
(* B3: simulation core — fast path and result cache                    *)
(* ------------------------------------------------------------------ *)

type b3_report = {
  sim_general_ns : float;
  sim_fast_ns : float;
  sim_max_rel_diff : float;
  sim_rtol : float;
  sim_agree : bool;
  sweep_probes : int;
  sweep_cold_s : float;
  sweep_opt_s : float;
  sweep_hits : int;
  sweep_misses : int;
  sweep_same_answer : bool;
}

(* The two engines must produce the same flow times up to rounding.  The
   tolerance is deliberately tight: the engines compute identical
   event-by-event trajectories in different arithmetic orders, so anything
   beyond accumulated rounding is a real divergence. *)
let diff_rtol = 1e-9

let time_per_run reps f =
  for _ = 1 to 3 do
    f ()
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. Float.of_int reps

let run_simcore_bench () =
  let jobs = Rr_workload.Instance.jobs bench_instance in
  (* Speed 1.0 is the regime the fast path exists for: heavy traffic, large
     alive sets, many events.  (At speed 2 the system drains and both
     engines are cheap.) *)
  let general () = Simulator.run ~machines:1 ~policy:Rr_policies.Round_robin.policy jobs in
  let fast () = Simulator.run_equal_share ~machines:1 jobs in
  let fg = Simulator.flows (general ()) and ff = Simulator.flows (fast ()) in
  let max_rel = ref 0. in
  Array.iteri
    (fun i g -> max_rel := Float.max !max_rel (Float.abs (g -. ff.(i)) /. Float.abs g))
    fg;
  let agree = Array.length fg = Array.length ff && !max_rel <= diff_rtol in
  let reps = if quick then 30 else 200 in
  let general_ns = time_per_run reps (fun () -> ignore (general ())) in
  let fast_ns = time_per_run reps (fun () -> ignore (fast ())) in
  Printf.printf
    "B3: rr-simulate-n1000 (speed 1.0): general %.3f ms | equal-share %.3f ms | speedup \
     %.1fx\n\
    \    differential: max relative flow diff %.2e (rtol %.0e) -> %s\n%!"
    (general_ns /. 1e6) (fast_ns /. 1e6)
    (general_ns /. Float.max 1. fast_ns)
    !max_rel diff_rtol
    (if agree then "agree" else "DISAGREE");
  (* A 20-probe crossover search, the workload the cache exists for: every
     probe re-measures the SRPT baseline (identical across probes) and the
     optimized config additionally runs RR on the equal-share engine.  Both
     searches start from a cold cache. *)
  let iters = 20 in
  let search cfg =
    Sweep.min_speed_for
      ~f:(fun speed -> Ratio.vs_baseline { cfg with Run.speed } Rr_policies.Round_robin.policy bench_instance)
      ~threshold:1.5 ~lo:1. ~hi:8. ~iters ()
  in
  let timed cfg =
    Cache.clear ();
    let t0 = Unix.gettimeofday () in
    let r = search cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_cold, t_cold = timed (Run.config ~fast_path:false ~cache:false ()) in
  let r_opt, t_opt = timed (Run.config ()) in
  let st = Cache.stats () in
  let same_answer =
    match (r_cold, r_opt) with
    | Ok a, Ok b -> Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a)
    | Error _, Error _ -> true
    | _ -> false
  in
  let hit_rate =
    let total = st.hits + st.misses in
    if total = 0 then 0. else Float.of_int st.hits /. Float.of_int total
  in
  Printf.printf
    "B3: min_speed_for, %d probes: general+uncached %.3f s | equal-share+cached %.3f s | \
     speedup %.1fx\n\
    \    cache: %d hits / %d misses (hit rate %.0f%%) | same crossover: %s\n%!"
    iters t_cold t_opt
    (t_cold /. Float.max 1e-9 t_opt)
    st.hits st.misses (100. *. hit_rate)
    (if same_answer then "yes" else "NO");
  {
    sim_general_ns = general_ns;
    sim_fast_ns = fast_ns;
    sim_max_rel_diff = !max_rel;
    sim_rtol = diff_rtol;
    sim_agree = agree;
    sweep_probes = iters;
    sweep_cold_s = t_cold;
    sweep_opt_s = t_opt;
    sweep_hits = st.hits;
    sweep_misses = st.misses;
    sweep_same_answer = same_answer;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable report                                             *)
(* ------------------------------------------------------------------ *)

let json_file = "BENCH_simcore.json"

let write_json b1 (b2 : b2_report) (b3 : b3_report) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_simcore/v1\",\n";
  add "  \"scale\": %S,\n" (if quick then "quick" else "full");
  add "  \"b1\": [\n";
  List.iteri
    (fun i (name, ns) ->
      add "    {\"name\": %S, \"ns_per_run\": %s}%s\n" name
        (match ns with Some t -> Printf.sprintf "%.1f" t | None -> "null")
        (if i = List.length b1 - 1 then "" else ","))
    b1;
  add "  ],\n";
  add
    "  \"b2\": {\"tasks\": %d, \"domains\": %d, \"sequential_s\": %.6f, \"parallel_s\": \
     %.6f, \"speedup\": %.3f, \"bit_identical\": %b},\n"
    b2.b2_tasks b2.b2_domains b2.b2_seq_s b2.b2_par_s
    (b2.b2_seq_s /. Float.max 1e-9 b2.b2_par_s)
    b2.b2_identical;
  add "  \"b3\": {\n";
  add
    "    \"simulate\": {\"name\": \"rr-simulate-n1000\", \"speed\": 1.0, \"general_ns\": \
     %.1f, \"equal_share_ns\": %.1f, \"speedup\": %.3f, \"max_rel_flow_diff\": %.3e, \
     \"rtol\": %.0e, \"agree\": %b},\n"
    b3.sim_general_ns b3.sim_fast_ns
    (b3.sim_general_ns /. Float.max 1. b3.sim_fast_ns)
    b3.sim_max_rel_diff b3.sim_rtol b3.sim_agree;
  add
    "    \"sweep\": {\"probes\": %d, \"cold_s\": %.6f, \"optimized_s\": %.6f, \"speedup\": \
     %.3f, \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
     \"same_crossover\": %b}\n"
    b3.sweep_probes b3.sweep_cold_s b3.sweep_opt_s
    (b3.sweep_cold_s /. Float.max 1e-9 b3.sweep_opt_s)
    b3.sweep_hits b3.sweep_misses
    (let total = b3.sweep_hits + b3.sweep_misses in
     if total = 0 then 0. else Float.of_int b3.sweep_hits /. Float.of_int total)
    b3.sweep_same_answer;
  add "  }\n";
  add "}\n";
  let oc = open_out json_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" json_file

let () =
  let b2, b1 =
    Pool.with_pool ~domains (fun pool ->
        run_experiments pool;
        let b1 = run_microbench () in
        (run_parallel_bench pool, b1))
  in
  let b3 = run_simcore_bench () in
  write_json b1 b2 b3;
  if not (b3.sim_agree && b3.sweep_same_answer) then begin
    prerr_endline
      "B3 FAILED: the equal-share engine disagrees with the general engine; see \
       BENCH_simcore.json";
    exit 1
  end;
  if not b2.b2_identical then begin
    prerr_endline "B2 FAILED: parallel batch results differ from sequential";
    exit 1
  end
