(** Incremental, O(1)-memory folds over streamed flow times.

    A sink consumes one flow-time observation at a time and can produce
    its value at any point; it is the metric half of the streaming
    pipeline — {!Rr_engine.Simulator}'s streaming entry points push each
    completion into one (or a combination) of these, so what is computed
    per job is independent of how many jobs exist.

    The array functions of {!Norms} are defined as {!of_array} adapters
    over these same folds, so array results are bit-identical to the
    pre-streaming implementations, and a streamed fold differs from the
    array fold only by summation order (completion order vs id order) —
    within ~1e-9 relative for the power sums, exactly equal for order
    statistics like {!linf}. *)

type 'a t
(** A fold producing an ['a]: push observations in, read the value out.
    Values may be read mid-stream (they are snapshots, not finalisers). *)

val make : push:(float -> unit) -> value:(unit -> 'a) -> 'a t
(** Build a custom sink from its two operations. *)

val push : 'a t -> float -> unit

val value : 'a t -> 'a

val feed : 'a t -> Rr_engine.Simulator.sink
(** Adapt a sink to the engine's completion-event shape (the id and
    arrival are dropped; only the flow is folded). *)

val of_array : 'a t -> float array -> 'a
(** Push every element in index order, then read the value — the bridge
    back to the materialized API. *)

(** {1 Combinators} *)

val map : ('a -> 'b) -> 'a t -> 'b t

val pair : 'a t -> 'b t -> ('a * 'b) t
(** One pass feeding both sinks. *)

val all : 'a t list -> 'a list t
(** One pass feeding every sink in the list. *)

(** {1 Counting and moments} *)

val count : unit -> int t

val moments : unit -> Rr_util.Welford.t t
(** Running count/mean/variance/min/max via {!Rr_util.Welford}; the value
    is the live accumulator (not a copy). *)

(** {1 lk norms (Kahan-compensated)} *)

val power_sum : k:int -> unit -> float t
(** Incremental [sum_j F_j^k].
    @raise Invalid_argument at creation when [k < 1], at push on a
    negative flow. *)

val lk : k:int -> unit -> float t
(** [power_sum^(1/k)]; 0. before the first observation. *)

val normalized_lk : k:int -> unit -> float t
(** [(power_sum / n)^(1/k)]; 0. before the first observation. *)

val linf : unit -> float t
(** Running maximum; 0. before the first observation. *)

(** {1 Merging parallel folds}

    A sink folds one stream; a parallel batch folds one stream {e per
    domain} and must combine the finished values.  Values of the sinks
    above merge as follows — [Merge] names each rule so call sites read
    as intent (quantile sketches are the exception: P² markers are not
    mergeable; fold quantiles per stream or not at all). *)

module Merge : sig
  val count : int -> int -> int

  val power_sum : float -> float -> float
  (** Power sums are plain sums: add them.  (Each input is already
      Kahan-compensated over its own stream; the handful of cross-domain
      adds need no compensation.) *)

  val linf : float -> float -> float
  (** Maxima merge by [Float.max]. *)

  val moments : Rr_util.Welford.t -> Rr_util.Welford.t -> Rr_util.Welford.t
  (** {!Rr_util.Welford.merge}: exact count/min/max, stable mean and
      variance. *)

  val lk : k:int -> float list -> float
  (** Rooted norms do NOT add; re-root the sum of the unrooted values:
      [lk ~k [a; b; ...] = (a^k + b^k + ...)^(1/k)].  Prefer carrying
      {!power_sum} values and rooting once at the end. *)
end

(** {1 Streaming quantiles} *)

val quantile : p:float -> unit -> float t
(** P-squared (Jain–Chlamtac) streaming quantile estimate for [p] in
    (0, 1): five markers, O(1) memory, no buffering.  Exact for the first
    five observations, a converging estimate afterwards — the streaming
    fairness tables trade exact percentiles for the ability to run at
    n = 10^7.
    @raise Invalid_argument when [p] is outside (0, 1). *)
