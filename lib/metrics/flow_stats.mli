(** One-stop descriptive summary of a schedule's flow times.

    Captures both the latency view (mean, percentiles) and the temporal
    fairness view (variance, maximum, l2/l3 norms) that the paper's
    introduction contrasts, plus slowdown (flow divided by size), the
    per-job stretch measure common in the systems literature. *)

type t = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  l1 : float;  (** Total flow time. *)
  l2 : float;  (** l2-norm of flow time. *)
  l3 : float;  (** l3-norm of flow time. *)
}

val of_flows : float array -> t
(** @raise Invalid_argument on an empty array or negative flows. *)

val sink : unit -> t Sink.t
(** Streaming counterpart of {!of_flows}: one O(1)-memory fold producing
    the same record from pushed observations.  The moments and l1/l2/l3
    norms are the same incremental folds {!of_flows} uses (so they differ
    from the array values only by observation order); the percentiles are
    P-squared sketch estimates ({!Sink.quantile}) rather than exact order
    statistics — the price of never materializing the flow vector.
    Reading the value before any observation raises [Invalid_argument]. *)

val slowdowns : sizes:float array -> flows:float array -> float array
(** Per-job stretch [F_j / p_j].
    @raise Invalid_argument on mismatched lengths or non-positive sizes. *)

val max_slowdown : sizes:float array -> flows:float array -> float
(** The starvation measure: the worst stretch over all jobs. *)

val pp : Format.formatter -> t -> unit
