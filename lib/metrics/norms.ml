(* Array adapters over the incremental folds of {!Sink}: the fold order
   (index order) and arithmetic (Kahan over [Floatx.powi]) are exactly the
   pre-streaming implementations', so every value here is bit-identical to
   what the array-only code produced — the streaming pipeline and the
   materialized one share a single definition of each norm. *)

let power_sum ~k flows = Sink.of_array (Sink.power_sum ~k ()) flows

let lk ~k flows = Sink.of_array (Sink.lk ~k ()) flows

let linf flows = Sink.of_array (Sink.linf ()) flows

let normalized_lk ~k flows = Sink.of_array (Sink.normalized_lk ~k ()) flows

let weighted_power_sum ~k ~weights flows =
  if k < 1 then invalid_arg "Norms.weighted_power_sum: k must be >= 1";
  if Array.length weights <> Array.length flows then
    invalid_arg "Norms.weighted_power_sum: length mismatch";
  let acc = Rr_util.Kahan.create () in
  Array.iteri
    (fun i f ->
      if f < 0. then invalid_arg "Norms.weighted_power_sum: negative flow time";
      if weights.(i) < 0. then invalid_arg "Norms.weighted_power_sum: negative weight";
      Rr_util.Kahan.add acc (weights.(i) *. Rr_util.Floatx.powi f k))
    flows;
  Rr_util.Kahan.total acc

let weighted_lk ~k ~weights flows =
  if Array.length flows = 0 then 0.
  else weighted_power_sum ~k ~weights flows ** (1. /. Float.of_int k)
