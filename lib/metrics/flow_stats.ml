type t = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  l1 : float;
  l2 : float;
  l3 : float;
}

(* The moment and norm fields come from the same incremental folds the
   streaming sink uses, fed in array order; only the percentiles differ
   between the two constructors (exact sort here, P² sketch there). *)
let of_welford ~norms ~quantiles w =
  let l1, l2, l3 = norms in
  let p50, p90, p99 = quantiles in
  {
    n = Rr_util.Welford.count w;
    mean = Rr_util.Welford.mean w;
    variance = Rr_util.Welford.variance w;
    stddev = Rr_util.Welford.stddev w;
    min = Rr_util.Welford.min w;
    max = Rr_util.Welford.max w;
    p50;
    p90;
    p99;
    l1;
    l2;
    l3;
  }

let of_flows flows =
  if Array.length flows = 0 then invalid_arg "Flow_stats.of_flows: empty array";
  let w = Rr_util.Welford.of_array flows in
  of_welford
    ~norms:(Norms.power_sum ~k:1 flows, Norms.lk ~k:2 flows, Norms.lk ~k:3 flows)
    ~quantiles:
      ( Rr_util.Stats.percentile flows ~p:50.,
        Rr_util.Stats.percentile flows ~p:90.,
        Rr_util.Stats.percentile flows ~p:99. )
    w

let sink () =
  let w = Sink.moments () in
  let l1 = Sink.power_sum ~k:1 () in
  let l2 = Sink.lk ~k:2 () in
  let l3 = Sink.lk ~k:3 () in
  let p50 = Sink.quantile ~p:0.5 () in
  let p90 = Sink.quantile ~p:0.9 () in
  let p99 = Sink.quantile ~p:0.99 () in
  let parts = Sink.all [ l1; l2; l3; p50; p90; p99 ] in
  Sink.make
    ~push:(fun f ->
      Sink.push w f;
      Sink.push parts f)
    ~value:(fun () ->
      let wv = Sink.value w in
      if Rr_util.Welford.count wv = 0 then
        invalid_arg "Flow_stats.sink: no observations";
      match Sink.value parts with
      | [ l1; l2; l3; p50; p90; p99 ] ->
          of_welford ~norms:(l1, l2, l3) ~quantiles:(p50, p90, p99) wv
      | _ -> assert false)

let slowdowns ~sizes ~flows =
  if Array.length sizes <> Array.length flows then
    invalid_arg "Flow_stats.slowdowns: length mismatch";
  Array.map2
    (fun p f ->
      if p <= 0. then invalid_arg "Flow_stats.slowdowns: non-positive size";
      f /. p)
    sizes flows

let max_slowdown ~sizes ~flows =
  let s = slowdowns ~sizes ~flows in
  if Array.length s = 0 then 0. else Rr_util.Floatx.max_arr s

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4f sd=%.4f max=%.4f p50=%.4f p99=%.4f l1=%.4f l2=%.4f l3=%.4f" t.n t.mean
    t.stddev t.max t.p50 t.p99 t.l1 t.l2 t.l3
