type 'a t = { push : float -> unit; value : unit -> 'a }

let make ~push ~value = { push; value }

let[@inline] push t x = t.push x

let value t = t.value ()

let[@inline] feed t ~id:_ ~arrival:_ ~flow = t.push flow

let of_array t flows =
  Array.iter t.push flows;
  t.value ()

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let map f t = { push = t.push; value = (fun () -> f (t.value ())) }

let pair a b =
  {
    push =
      (fun x ->
        a.push x;
        b.push x);
    value = (fun () -> (a.value (), b.value ()));
  }

let all ts =
  {
    push = (fun x -> List.iter (fun t -> t.push x) ts);
    value = (fun () -> List.map (fun t -> t.value ()) ts);
  }

(* ------------------------------------------------------------------ *)
(* Counting and moments                                                *)
(* ------------------------------------------------------------------ *)

let count () =
  let n = ref 0 in
  { push = (fun _ -> incr n); value = (fun () -> !n) }

let moments () =
  let w = Rr_util.Welford.create () in
  { push = Rr_util.Welford.add w; value = (fun () -> w) }

(* ------------------------------------------------------------------ *)
(* lk norms                                                            *)
(* ------------------------------------------------------------------ *)

(* These folds are THE definition of the array functions in {!Norms}:
   [Norms.power_sum ~k flows = of_array (power_sum ~k ()) flows], so the
   streaming and the materialized measurement pipelines share one
   arithmetic (Kahan-compensated sums of [Floatx.powi]), and array values
   are bit-identical to what the pre-streaming implementation produced. *)

let power_sum ~k () =
  if k < 1 then invalid_arg "Sink.power_sum: k must be >= 1";
  let acc = Rr_util.Kahan.create () in
  {
    push =
      (fun f ->
        if f < 0. then invalid_arg "Sink.power_sum: negative flow time";
        Rr_util.Kahan.add acc (Rr_util.Floatx.powi f k));
    value = (fun () -> Rr_util.Kahan.total acc);
  }

let lk ~k () =
  let n = ref 0 in
  let ps = power_sum ~k () in
  {
    push =
      (fun f ->
        incr n;
        ps.push f);
    value = (fun () -> if !n = 0 then 0. else ps.value () ** (1. /. Float.of_int k));
  }

let normalized_lk ~k () =
  let n = ref 0 in
  let ps = power_sum ~k () in
  {
    push =
      (fun f ->
        incr n;
        ps.push f);
    value =
      (fun () ->
        if !n = 0 then 0.
        else (ps.value () /. Float.of_int !n) ** (1. /. Float.of_int k));
  }

let linf () =
  let n = ref 0 in
  let m = ref Float.neg_infinity in
  {
    push =
      (fun f ->
        incr n;
        if f > !m then m := f);
    value = (fun () -> if !n = 0 then 0. else !m);
  }

(* ------------------------------------------------------------------ *)
(* Merging parallel folds                                              *)
(* ------------------------------------------------------------------ *)

module Merge = struct
  let count = ( + )

  let power_sum = ( +. )

  let linf = Float.max

  let moments = Rr_util.Welford.merge

  let lk ~k values =
    let ps =
      List.fold_left (fun acc v -> acc +. Rr_util.Floatx.powi v k) 0. values
    in
    if ps = 0. then 0. else ps ** (1. /. Float.of_int k)
end

(* Jain & Chlamtac's P² algorithm: the sketch itself lives in
   {!Rr_util.P2} as a marshalable record (the live engine snapshots it);
   this sink is a thin closure over one, raising the historical error
   message for an out-of-range [p].  Arithmetic is unchanged — the P2
   module is the former inline implementation moved verbatim. *)

let quantile ~p () =
  if not (p > 0. && p < 1.) then invalid_arg "Sink.quantile: p must be in (0, 1)";
  let sketch = Rr_util.P2.create ~p () in
  { push = Rr_util.P2.add sketch; value = (fun () -> Rr_util.P2.value sketch) }
