type 'a t = { push : float -> unit; value : unit -> 'a }

let make ~push ~value = { push; value }

let push t x = t.push x

let value t = t.value ()

let feed t ~id:_ ~arrival:_ ~flow = t.push flow

let of_array t flows =
  Array.iter t.push flows;
  t.value ()

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let map f t = { push = t.push; value = (fun () -> f (t.value ())) }

let pair a b =
  {
    push =
      (fun x ->
        a.push x;
        b.push x);
    value = (fun () -> (a.value (), b.value ()));
  }

let all ts =
  {
    push = (fun x -> List.iter (fun t -> t.push x) ts);
    value = (fun () -> List.map (fun t -> t.value ()) ts);
  }

(* ------------------------------------------------------------------ *)
(* Counting and moments                                                *)
(* ------------------------------------------------------------------ *)

let count () =
  let n = ref 0 in
  { push = (fun _ -> incr n); value = (fun () -> !n) }

let moments () =
  let w = Rr_util.Welford.create () in
  { push = Rr_util.Welford.add w; value = (fun () -> w) }

(* ------------------------------------------------------------------ *)
(* lk norms                                                            *)
(* ------------------------------------------------------------------ *)

(* These folds are THE definition of the array functions in {!Norms}:
   [Norms.power_sum ~k flows = of_array (power_sum ~k ()) flows], so the
   streaming and the materialized measurement pipelines share one
   arithmetic (Kahan-compensated sums of [Floatx.powi]), and array values
   are bit-identical to what the pre-streaming implementation produced. *)

let power_sum ~k () =
  if k < 1 then invalid_arg "Sink.power_sum: k must be >= 1";
  let acc = Rr_util.Kahan.create () in
  {
    push =
      (fun f ->
        if f < 0. then invalid_arg "Sink.power_sum: negative flow time";
        Rr_util.Kahan.add acc (Rr_util.Floatx.powi f k));
    value = (fun () -> Rr_util.Kahan.total acc);
  }

let lk ~k () =
  let n = ref 0 in
  let ps = power_sum ~k () in
  {
    push =
      (fun f ->
        incr n;
        ps.push f);
    value = (fun () -> if !n = 0 then 0. else ps.value () ** (1. /. Float.of_int k));
  }

let normalized_lk ~k () =
  let n = ref 0 in
  let ps = power_sum ~k () in
  {
    push =
      (fun f ->
        incr n;
        ps.push f);
    value =
      (fun () ->
        if !n = 0 then 0.
        else (ps.value () /. Float.of_int !n) ** (1. /. Float.of_int k));
  }

let linf () =
  let n = ref 0 in
  let m = ref Float.neg_infinity in
  {
    push =
      (fun f ->
        incr n;
        if f > !m then m := f);
    value = (fun () -> if !n = 0 then 0. else !m);
  }

(* ------------------------------------------------------------------ *)
(* Merging parallel folds                                              *)
(* ------------------------------------------------------------------ *)

module Merge = struct
  let count = ( + )

  let power_sum = ( +. )

  let linf = Float.max

  let moments = Rr_util.Welford.merge

  let lk ~k values =
    let ps =
      List.fold_left (fun acc v -> acc +. Rr_util.Floatx.powi v k) 0. values
    in
    if ps = 0. then 0. else ps ** (1. /. Float.of_int k)
end

(* Jain & Chlamtac's P² algorithm (CACM 1985): five markers track the
   minimum, the p/2, p and (1+p)/2 quantiles, and the maximum; marker
   heights move by piecewise-parabolic interpolation as observations
   stream past.  O(1) memory and O(1) per observation, no buffering —
   exactly what the fairness tables need at n = 10^7, where sorting a flow
   vector is no longer an option.  Estimates converge to the true quantile
   for i.i.d. inputs; for the first four observations the estimate is
   exact (order statistics of the buffered sample). *)

let quantile ~p () =
  if not (p > 0. && p < 1.) then invalid_arg "Sink.quantile: p must be in (0, 1)";
  let q = Array.make 5 0. in
  (* marker heights *)
  let np = Array.make 5 0. in
  (* desired positions *)
  let pos = [| 1.; 2.; 3.; 4.; 5. |] in
  (* actual positions (1-based) *)
  let dnp = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |] in
  let count = ref 0 in
  let parabolic i d =
    q.(i)
    +. d
       /. (pos.(i + 1) -. pos.(i - 1))
       *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (pos.(i + 1) -. pos.(i)))
          +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (pos.(i) -. pos.(i - 1)))
          )
  in
  let linear i d =
    let j = i + int_of_float d in
    q.(i) +. (d *. (q.(j) -. q.(i)) /. (pos.(j) -. pos.(i)))
  in
  let push x =
    incr count;
    if !count <= 5 then begin
      q.(!count - 1) <- x;
      if !count = 5 then begin
        Array.sort Float.compare q;
        for i = 0 to 4 do
          np.(i) <- 1. +. (4. *. dnp.(i))
        done
      end
    end
    else begin
      (* Locate the cell and bump the extreme markers. *)
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          q.(4) <- Float.max q.(4) x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= q.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        pos.(i) <- pos.(i) +. 1.
      done;
      for i = 0 to 4 do
        np.(i) <- np.(i) +. dnp.(i)
      done;
      (* Adjust the three interior markers towards their desired spots. *)
      for i = 1 to 3 do
        let d = np.(i) -. pos.(i) in
        if
          (d >= 1. && pos.(i + 1) -. pos.(i) > 1.)
          || (d <= -1. && pos.(i - 1) -. pos.(i) < -1.)
        then begin
          let d = if d >= 0. then 1. else -1. in
          let candidate = parabolic i d in
          let h =
            if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate else linear i d
          in
          q.(i) <- h;
          pos.(i) <- pos.(i) +. d
        end
      done
    end
  in
  let value () =
    let n = !count in
    if n = 0 then 0.
    else if n <= 5 then begin
      (* Exact small-sample quantile, interpolated like Stats.percentile. *)
      let sorted = Array.sub q 0 n in
      Array.sort Float.compare sorted;
      let rank = p *. Float.of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then sorted.(lo)
      else begin
        let frac = rank -. Float.of_int lo in
        ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
      end
    end
    else q.(2)
  in
  { push; value }
