open Rr_engine

let policy ~weight_of () =
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    (* Negated density so the shared smallest-first helper serves the
       densest jobs. *)
    let key (v : Policy.view) =
      let w = weight_of v.Policy.id in
      if not (Float.is_finite w && w > 0.) then
        invalid_arg (Printf.sprintf "Hdf: weight of job %d must be positive" v.id);
      -.(w /. Policy.size_exn v)
    in
    Srpt.top_m_by key ~machines views
  in
  { Policy.name = "hdf"; clairvoyant = true; klass = None; allocate }

(* The size-powered member of the family: weight size^alpha, so the key
   is a pure function of the job's size and the policy classifies as a
   static-key index (the closure version above cannot — an arbitrary
   [weight_of] is not declarable data). *)
let sized ?(alpha = 2.) () =
  let kspec = Policy_class.Key_density { alpha } in
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    let key (v : Policy.view) =
      let size = Policy.size_exn v in
      Policy_class.static_key kspec ~arrival:v.Policy.arrival ~size ~remaining:size
    in
    Srpt.top_m_by key ~machines views
  in
  Policy.make
    ~name:(Printf.sprintf "hdf(a=%g)" alpha)
    ~clairvoyant:true
    ~klass:(Policy_class.Static_key kspec)
    allocate
