open Rr_engine

(* Give one full machine to each of the [machines] jobs ranked first by
   [key]; shared by SRPT / SJF / FCFS which differ only in the key. *)
let top_m_by key ~machines (views : Policy.view array) =
  let n = Array.length views in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare (key views.(a)) (key views.(b)) with
      | 0 -> Int.compare views.(a).Policy.id views.(b).Policy.id
      | c -> c)
    idx;
  let rates = Array.make n 0. in
  for rank = 0 to Int.min machines n - 1 do
    rates.(idx.(rank)) <- 1.
  done;
  { Policy.rates; horizon = None }

let index_kind = Index_engine.Srpt

let key = Index_engine.key_of_view index_kind

let allocate ~now:_ ~machines ~speed:_ views = top_m_by key ~machines views

let policy =
  Policy.make ~name:"srpt" ~clairvoyant:true
    ~klass:(Policy_class.Static_key Policy_class.Key_remaining) allocate
