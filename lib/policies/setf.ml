open Rr_engine

(* Jobs whose attained service differs by at most this (relative) tolerance
   form one sharing group; catch-up events make attained values meet only
   approximately in floating point.  The predicate lives with the fast
   cascade engine so both schedulers agree on when groups merge. *)
let same_group = Index_engine.same_attained

let allocate ~now ~machines ~speed (views : Policy.view array) =
  let n = Array.length views in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare views.(a).Policy.attained views.(b).Policy.attained with
      | 0 -> Int.compare views.(a).Policy.id views.(b).Policy.id
      | c -> c)
    idx;
  (* Partition the sorted views into maximal groups of equal attained. *)
  let groups = ref [] in
  let start = ref 0 in
  for i = 1 to n do
    if
      i = n
      || not (same_group views.(idx.(i)).Policy.attained views.(idx.(!start)).Policy.attained)
    then begin
      groups := (!start, i - 1) :: !groups;
      start := i
    end
  done;
  let groups = Array.of_list (List.rev !groups) in
  (* Water-filling: earlier (less-attained) groups saturate at rate 1 while
     machines remain; the first unsaturated group splits the leftover. *)
  let rates = Array.make n 0. in
  let group_rate = Array.make (Array.length groups) 0. in
  let left = ref (Float.of_int machines) in
  Array.iteri
    (fun g (lo, hi) ->
      let count = Float.of_int (hi - lo + 1) in
      let r = Float.min 1. (!left /. count) in
      if r > 0. then begin
        group_rate.(g) <- r;
        for j = lo to hi do
          rates.(idx.(j)) <- r
        done;
        left := !left -. (r *. count)
      end)
    groups;
  (* Horizon: the earliest instant a faster group reaches the attained level
     of the next group.  Only adjacent groups can meet first. *)
  let horizon = ref None in
  for g = 0 to Array.length groups - 2 do
    let lo_g, _ = groups.(g) and lo_h, _ = groups.(g + 1) in
    let gap = views.(idx.(lo_h)).Policy.attained -. views.(idx.(lo_g)).Policy.attained in
    let closing = (group_rate.(g) -. group_rate.(g + 1)) *. speed in
    if closing > 0. && gap > 0. then begin
      let t = now +. (gap /. closing) in
      match !horizon with
      | Some h when h <= t -> ()
      | _ -> horizon := Some t
    end
  done;
  { Policy.rates; horizon = !horizon }

let policy =
  Policy.make ~name:"setf" ~clairvoyant:false ~klass:Policy_class.Attained_cascade allocate
