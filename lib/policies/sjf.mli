(** (Preemptive) Shortest Job First.

    The [m] alive jobs with the smallest {e original} size each occupy one
    machine.  Clairvoyant; one of the algorithms Bansal and Pruhs showed
    scalable for lk-norms of flow time, cited throughout Section 1. *)

val policy : Rr_engine.Policy.t

val key : Rr_engine.Policy.view -> float
(** The priority key SJF ranks by: original size
    ({!Rr_engine.Policy.size_exn}), shared with the fast index engine
    via [Rr_engine.Index_engine.key_of_view index_kind]. *)

val index_kind : Rr_engine.Index_engine.kind
(** {!Rr_engine.Index_engine.Sjf}. *)
