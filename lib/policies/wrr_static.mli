(** Statically weighted Round Robin.

    Machines are split in proportion to fixed per-job weights (capped at
    one machine per job) — the natural generalisation of RR towards
    {e weighted} flow time, the objective of the dual-fitting literature
    the paper builds on (Anand-Garg-Kumar).  With all weights equal it
    coincides with plain RR; the weighted-norm experiment uses it to show
    that weighted shares buy proportionally better flow for heavy jobs
    while preserving RR's never-starve property. *)

val policy : weight_of:(int -> float) -> unit -> Rr_engine.Policy.t
(** [policy ~weight_of ()] reads the weight of each alive job from its id
    via [weight_of] (weights must be positive and finite; violations raise
    [Invalid_argument] at allocation time).  Unclassified: an arbitrary
    weight function is not declarable data, so this version runs on the
    general loop. *)

val sized : ?gamma:float -> unit -> Rr_engine.Policy.t
(** [sized ~gamma ()] weights each job by [size^gamma] (default 1:
    machines in proportion to sizes).  The weight is a pure function of
    declarable data, so the policy declares [Sized_share {gamma}] and
    runs on the dense proportional-share kernel.  [gamma = 0] is plain
    RR with extra steps; negative gamma favours short jobs.
    Clairvoyant.  @raise Invalid_argument when [gamma] is not finite. *)
