type spec =
  | Rr
  | Srpt
  | Sjf
  | Setf
  | Fcfs
  | Laps of float
  | Wrr_age of int
  | Quantum_rr of float
  | Mlfq of float

let validate spec =
  match spec with
  | Rr | Srpt | Sjf | Setf | Fcfs -> Ok spec
  | Laps beta ->
      if beta > 0. && beta <= 1. then Ok spec
      else Error (Printf.sprintf "laps needs beta in (0, 1], got %g" beta)
  | Wrr_age k ->
      if k >= 1 then Ok spec else Error (Printf.sprintf "wrr-age needs k >= 1, got %d" k)
  | Quantum_rr q ->
      if q > 0. then Ok spec
      else Error (Printf.sprintf "quantum-rr needs a positive quantum, got %g" q)
  | Mlfq q ->
      if q > 0. then Ok spec
      else Error (Printf.sprintf "mlfq needs a positive base quantum, got %g" q)

let make spec =
  (match validate spec with Ok _ -> () | Error msg -> invalid_arg ("Registry.make: " ^ msg));
  match spec with
  | Rr -> Round_robin.policy
  | Srpt -> Srpt.policy
  | Sjf -> Sjf.policy
  | Setf -> Setf.policy
  | Fcfs -> Fcfs.policy
  | Laps beta -> Laps.policy ~beta
  | Wrr_age k -> Wrr_age.policy ~k ()
  | Quantum_rr quantum -> Quantum_rr.policy ~quantum ()
  | Mlfq base_quantum -> Mlfq.policy ~base_quantum ()

let spec_to_string = function
  | Rr -> "rr"
  | Srpt -> "srpt"
  | Sjf -> "sjf"
  | Setf -> "setf"
  | Fcfs -> "fcfs"
  | Laps beta -> Printf.sprintf "laps:%g" beta
  | Wrr_age k -> Printf.sprintf "wrr-age:%d" k
  | Quantum_rr q -> Printf.sprintf "quantum-rr:%g" q
  | Mlfq q -> Printf.sprintf "mlfq:%g" q

let names () =
  [ "rr"; "srpt"; "sjf"; "setf"; "fcfs"; "laps[:beta]"; "wrr-age[:k]"; "quantum-rr[:q]"; "mlfq[:q]" ]

let spec_of_string s =
  let float_param ~form ~what ~check arg of_float =
    match float_of_string_opt arg with
    | Some v when check v -> Ok (of_float v)
    | Some _ | None -> Error (Printf.sprintf "%s needs %s, got %S" form what arg)
  in
  match String.split_on_char ':' s with
  | [ "rr" ] -> Ok Rr
  | [ "srpt" ] -> Ok Srpt
  | [ "sjf" ] -> Ok Sjf
  | [ "setf" ] -> Ok Setf
  | [ "fcfs" ] -> Ok Fcfs
  | [ "laps" ] -> Ok (Laps 0.5)
  | [ "laps"; b ] ->
      float_param ~form:"laps:<beta>" ~what:"beta in (0, 1]"
        ~check:(fun v -> v > 0. && v <= 1.)
        b
        (fun v -> Laps v)
  | [ "wrr-age" ] -> Ok (Wrr_age 2)
  | [ "wrr-age"; k ] -> (
      match int_of_string_opt k with
      | Some v when v >= 1 -> Ok (Wrr_age v)
      | Some _ | None ->
          Error (Printf.sprintf "wrr-age:<k> needs an integer k >= 1, got %S" k))
  | [ "quantum-rr" ] -> Ok (Quantum_rr 1.)
  | [ "quantum-rr"; q ] ->
      float_param ~form:"quantum-rr:<q>" ~what:"a positive quantum"
        ~check:(fun v -> v > 0.)
        q
        (fun v -> Quantum_rr v)
  | [ "mlfq" ] -> Ok (Mlfq 0.5)
  | [ "mlfq"; q ] ->
      float_param ~form:"mlfq:<q>" ~what:"a positive base quantum"
        ~check:(fun v -> v > 0.)
        q
        (fun v -> Mlfq v)
  | _ ->
      Error
        (Printf.sprintf "unknown policy %S (expected one of: %s)" s
           (String.concat ", " (names ())))

let default_specs () =
  [ Rr; Srpt; Sjf; Setf; Fcfs; Laps 0.5; Wrr_age 2; Quantum_rr 1.; Mlfq 0.5 ]

let all () = List.map make (default_specs ())
