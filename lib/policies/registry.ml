type spec =
  | Rr
  | Srpt
  | Sjf
  | Setf
  | Fcfs
  | Laps of float
  | Wrr_age of int
  | Quantum_rr of float
  | Mlfq of float
  | Hdf of float
  | Wrr_static of float
  | Hybrid of float
  | Srpt_mig of int

let validate spec =
  match spec with
  | Rr | Srpt | Sjf | Setf | Fcfs -> Ok spec
  | Laps beta ->
      if beta > 0. && beta <= 1. then Ok spec
      else Error (Printf.sprintf "laps needs beta in (0, 1], got %g" beta)
  | Wrr_age k ->
      if k >= 1 then Ok spec else Error (Printf.sprintf "wrr-age needs k >= 1, got %d" k)
  | Quantum_rr q ->
      if q > 0. then Ok spec
      else Error (Printf.sprintf "quantum-rr needs a positive quantum, got %g" q)
  | Mlfq q ->
      if q > 0. then Ok spec
      else Error (Printf.sprintf "mlfq needs a positive base quantum, got %g" q)
  | Hdf alpha ->
      if Float.is_finite alpha then Ok spec
      else Error (Printf.sprintf "hdf needs a finite alpha, got %g" alpha)
  | Wrr_static gamma ->
      if Float.is_finite gamma then Ok spec
      else Error (Printf.sprintf "wrr-static needs a finite gamma, got %g" gamma)
  | Hybrid theta ->
      if Float.is_finite theta && theta > 0. then Ok spec
      else Error (Printf.sprintf "hybrid needs a finite positive theta, got %g" theta)
  | Srpt_mig b ->
      if b >= 0 then Ok spec
      else Error (Printf.sprintf "srpt-mig needs a budget >= 0, got %d" b)

let make spec =
  (match validate spec with Ok _ -> () | Error msg -> invalid_arg ("Registry.make: " ^ msg));
  match spec with
  | Rr -> Round_robin.policy
  | Srpt -> Srpt.policy
  | Sjf -> Sjf.policy
  | Setf -> Setf.policy
  | Fcfs -> Fcfs.policy
  | Laps beta -> Laps.policy ~beta
  | Wrr_age k -> Wrr_age.policy ~k ()
  | Quantum_rr quantum -> Quantum_rr.policy ~quantum ()
  | Mlfq base_quantum -> Mlfq.policy ~base_quantum ()
  | Hdf alpha -> Hdf.sized ~alpha ()
  | Wrr_static gamma -> Wrr_static.sized ~gamma ()
  | Hybrid theta -> Hybrid.policy ~theta ()
  | Srpt_mig budget -> Srpt_mig.policy ~budget ()

let spec_to_string = function
  | Rr -> "rr"
  | Srpt -> "srpt"
  | Sjf -> "sjf"
  | Setf -> "setf"
  | Fcfs -> "fcfs"
  | Laps beta -> Printf.sprintf "laps:%g" beta
  | Wrr_age k -> Printf.sprintf "wrr-age:%d" k
  | Quantum_rr q -> Printf.sprintf "quantum-rr:%g" q
  | Mlfq q -> Printf.sprintf "mlfq:%g" q
  | Hdf alpha -> Printf.sprintf "hdf:%g" alpha
  | Wrr_static gamma -> Printf.sprintf "wrr-static:%g" gamma
  | Hybrid theta -> Printf.sprintf "hybrid:%g" theta
  | Srpt_mig b -> Printf.sprintf "srpt-mig:%d" b

let names () =
  [
    "rr";
    "srpt";
    "sjf";
    "setf";
    "fcfs";
    "laps[:beta]";
    "wrr-age[:k]";
    "quantum-rr[:q]";
    "mlfq[:q]";
    "hdf[:alpha]";
    "wrr-static[:gamma]";
    "hybrid[:theta]";
    "srpt-mig[:budget]";
  ]

let spec_of_string s =
  let float_param ~form ~what ~check arg of_float =
    match float_of_string_opt arg with
    | Some v when check v -> Ok (of_float v)
    | Some _ | None -> Error (Printf.sprintf "%s needs %s, got %S" form what arg)
  in
  match String.split_on_char ':' s with
  | [ "rr" ] -> Ok Rr
  | [ "srpt" ] -> Ok Srpt
  | [ "sjf" ] -> Ok Sjf
  | [ "setf" ] -> Ok Setf
  | [ "fcfs" ] -> Ok Fcfs
  | [ "laps" ] -> Ok (Laps 0.5)
  | [ "laps"; b ] ->
      float_param ~form:"laps:<beta>" ~what:"beta in (0, 1]"
        ~check:(fun v -> v > 0. && v <= 1.)
        b
        (fun v -> Laps v)
  | [ "wrr-age" ] -> Ok (Wrr_age 2)
  | [ "wrr-age"; k ] -> (
      match int_of_string_opt k with
      | Some v when v >= 1 -> Ok (Wrr_age v)
      | Some _ | None ->
          Error (Printf.sprintf "wrr-age:<k> needs an integer k >= 1, got %S" k))
  | [ "quantum-rr" ] -> Ok (Quantum_rr 1.)
  | [ "quantum-rr"; q ] ->
      float_param ~form:"quantum-rr:<q>" ~what:"a positive quantum"
        ~check:(fun v -> v > 0.)
        q
        (fun v -> Quantum_rr v)
  | [ "mlfq" ] -> Ok (Mlfq 0.5)
  | [ "mlfq"; q ] ->
      float_param ~form:"mlfq:<q>" ~what:"a positive base quantum"
        ~check:(fun v -> v > 0.)
        q
        (fun v -> Mlfq v)
  | [ "hdf" ] -> Ok (Hdf 2.)
  | [ "hdf"; a ] ->
      float_param ~form:"hdf:<alpha>" ~what:"a finite alpha" ~check:Float.is_finite a
        (fun v -> Hdf v)
  | [ "wrr-static" ] -> Ok (Wrr_static 1.)
  | [ "wrr-static"; g ] ->
      float_param ~form:"wrr-static:<gamma>" ~what:"a finite gamma" ~check:Float.is_finite g
        (fun v -> Wrr_static v)
  | [ "hybrid" ] -> Ok (Hybrid 3.)
  | [ "hybrid"; t ] ->
      float_param ~form:"hybrid:<theta>" ~what:"a finite positive theta"
        ~check:(fun v -> Float.is_finite v && v > 0.)
        t
        (fun v -> Hybrid v)
  | [ "srpt-mig" ] -> Ok (Srpt_mig 1)
  | [ "srpt-mig"; b ] -> (
      match int_of_string_opt b with
      | Some v when v >= 0 -> Ok (Srpt_mig v)
      | Some _ | None ->
          Error (Printf.sprintf "srpt-mig:<budget> needs an integer budget >= 0, got %S" b))
  | _ ->
      Error
        (Printf.sprintf "unknown policy %S (expected one of: %s)" s
           (String.concat ", " (names ())))

let default_specs () =
  [
    Rr;
    Srpt;
    Sjf;
    Setf;
    Fcfs;
    Laps 0.5;
    Wrr_age 2;
    Quantum_rr 1.;
    Mlfq 0.5;
    Hdf 2.;
    Wrr_static 1.;
    Hybrid 3.;
    Srpt_mig 1;
  ]

let all () = List.map make (default_specs ())
