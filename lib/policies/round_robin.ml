let allocate ~now:_ ~machines ~speed:_ (views : Rr_engine.Policy.view array) =
  let n = Array.length views in
  let share = Float.min 1. (Float.of_int machines /. Float.of_int (Int.max n 1)) in
  { Rr_engine.Policy.rates = Array.make n share; horizon = None }

let policy =
  Rr_engine.Policy.make ~name:"rr" ~clairvoyant:false ~klass:Rr_engine.Policy_class.Equal_share
    allocate
