open Rr_engine

(* Cumulative demotion thresholds: T_0 = q, T_1 = q + q f, ...; the
   ladder lives with the classification layer so the mlfq-ladder engine
   computes the identical levels. *)
let level_of_attained = Policy_class.ladder_level
let threshold_of_level = Policy_class.ladder_threshold

let policy ?(base_quantum = 0.5) ?(factor = 2.) ?(levels = 24) () =
  if base_quantum <= 0. then invalid_arg "Mlfq.policy: base_quantum must be positive";
  if factor < 1. then invalid_arg "Mlfq.policy: factor must be >= 1";
  if levels < 1 then invalid_arg "Mlfq.policy: levels must be >= 1";
  let allocate ~now ~machines ~speed (views : Policy.view array) =
    let n = Array.length views in
    let level =
      Array.map
        (fun (v : Policy.view) ->
          level_of_attained ~base_quantum ~factor ~levels v.Policy.attained)
        views
    in
    (* Serve levels lowest-first; jobs within a served level share what the
       level receives, one machine per job at most. *)
    let idx = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        match Int.compare level.(a) level.(b) with
        | 0 -> Int.compare views.(a).Policy.id views.(b).Policy.id
        | c -> c)
      idx;
    let rates = Array.make n 0. in
    let left = ref (Float.of_int machines) in
    let pos = ref 0 in
    while !pos < n && !left > 1e-12 do
      (* The maximal block of sorted indices sharing one level. *)
      let lvl = level.(idx.(!pos)) in
      let stop = ref !pos in
      while !stop < n && level.(idx.(!stop)) = lvl do
        incr stop
      done;
      let count = Float.of_int (!stop - !pos) in
      let share = Float.min 1. (!left /. count) in
      for i = !pos to !stop - 1 do
        rates.(idx.(i)) <- share
      done;
      left := !left -. (share *. count);
      pos := !stop
    done;
    (* Horizon: the earliest instant a served job crosses its demotion
       threshold. *)
    let horizon = ref None in
    Array.iteri
      (fun i (v : Policy.view) ->
        let l = level.(i) in
        if rates.(i) > 0. && l < levels - 1 then begin
          let next = threshold_of_level ~base_quantum ~factor l in
          let gap = next -. v.Policy.attained in
          if gap > 1e-12 then begin
            let t = now +. (gap /. (rates.(i) *. speed)) in
            match !horizon with
            | Some h when h <= t -> ()
            | _ -> horizon := Some t
          end
        end)
      views;
    { Policy.rates; horizon = !horizon }
  in
  Policy.make
    ~name:(Printf.sprintf "mlfq(q=%g,f=%g)" base_quantum factor)
    ~clairvoyant:false
    ~klass:(Policy_class.Level_ladder { base_quantum; factor; levels })
    allocate
