open Rr_engine

let policy ~beta =
  if not (beta > 0. && beta <= 1.) then invalid_arg "Laps.policy: beta must be in (0, 1]";
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    let n = Array.length views in
    let share_count = Int.max 1 (int_of_float (Float.ceil (beta *. Float.of_int n))) in
    let idx = Array.init n Fun.id in
    (* Latest arrivals first; ties broken towards the larger id, i.e. the
       job considered to have arrived last. *)
    Array.sort
      (fun a b ->
        match Float.compare views.(b).Policy.arrival views.(a).Policy.arrival with
        | 0 -> Int.compare views.(b).Policy.id views.(a).Policy.id
        | c -> c)
      idx;
    let rates = Array.make n 0. in
    let share = Float.min 1. (Float.of_int machines /. Float.of_int share_count) in
    for rank = 0 to share_count - 1 do
      rates.(idx.(rank)) <- share
    done;
    { Policy.rates; horizon = None }
  in
  Policy.make
    ~name:(Printf.sprintf "laps(%.2f)" beta)
    ~clairvoyant:false
    ~klass:(Policy_class.Latest_fraction { beta })
    allocate
