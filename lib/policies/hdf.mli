(** Highest Density First — the clairvoyant baseline for weighted flow.

    Serves the [m] alive jobs with the largest density [w_j / p_j]
    (weight over original size), the weighted analogue of SJF used
    throughout the weighted flow-time literature the paper builds on.
    With unit weights it coincides with SJF. *)

val policy : weight_of:(int -> float) -> unit -> Rr_engine.Policy.t
(** [policy ~weight_of ()] reads each job's weight from its id; weights
    must be positive and finite ([Invalid_argument] at allocation time
    otherwise).  Unclassified: an arbitrary weight function is not
    declarable data, so this version runs on the general loop. *)

val sized : ?alpha:float -> unit -> Rr_engine.Policy.t
(** [sized ~alpha ()] is HDF with weight [size^alpha] (default 2): the
    key [-(size^alpha / size)] depends only on the job's size, so the
    policy declares [Static_key (Key_density {alpha})] and runs on the
    priority-index kernel.  [alpha = 1] coincides with Round Robin's
    densities being all 1 — every job equally dense — so ties resolve
    by id; [alpha = 0] is SJF in disguise (density 1/size). *)
