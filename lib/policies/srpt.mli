(** Shortest Remaining Processing Time first.

    The [m] alive jobs with the least remaining work each occupy one
    machine (ties broken by job id).  SRPT is clairvoyant, optimal for
    total flow time on a single machine, and the standard strong baseline
    the paper compares against; we use SRPT at speed 1 as the practical
    stand-in for OPT in ratio experiments. *)

val policy : Rr_engine.Policy.t

val top_m_by :
  (Rr_engine.Policy.view -> float) ->
  machines:int ->
  Rr_engine.Policy.view array ->
  Rr_engine.Policy.decision
(** [top_m_by key ~machines views] gives one full machine to each of the
    [machines] views ranked smallest by [key] (ties by job id) and rate 0
    to the rest.  Shared by the fixed-priority policies SRPT, SJF and
    FCFS, which differ only in the key. *)

val key : Rr_engine.Policy.view -> float
(** The priority key SRPT ranks by: remaining work
    ({!Rr_engine.Policy.remaining_exn}).  Defined as
    [Rr_engine.Index_engine.key_of_view index_kind], so the general loop
    and the fast priority-index engine provably rank by the same
    number. *)

val index_kind : Rr_engine.Index_engine.kind
(** {!Rr_engine.Index_engine.Srpt} — the fast engine {!Rr_core} [Run]
    dispatches this policy to by default. *)
