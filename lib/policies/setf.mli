(** Shortest Elapsed Time First.

    Machines are devoted to the alive jobs with the least attained service;
    jobs tied at the minimum share equally.  SETF is non-clairvoyant and
    scalable for lk-norms on a single machine (Bansal-Pruhs), which is why
    Section 1.3 contrasts it with RR.

    Exactness: groups of equal attained service run at a common rate, and a
    faster (less-attained) group catches up with the next group in finite
    time; the policy reports that catch-up instant as its {e horizon} so the
    simulator re-evaluates exactly there.  The simulation therefore remains
    event-exact for SETF as well. *)

val policy : Rr_engine.Policy.t

val same_group : float -> float -> bool
(** The sharing tolerance: attained-service values within
    [1e-9 * (1 + max)] count as one equal-share group.  Re-export of
    {!Rr_engine.Index_engine.same_attained}, so the general policy and
    the fast cascade engine agree on when a catch-up merges groups. *)
