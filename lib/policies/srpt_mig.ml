open Rr_engine

(* Preemption-budget SRPT ("migration-limited" in the classification
   layer's sense: machines are fungible here, so the bounded resource is
   preemptions rather than machine moves).  SRPT, except each job may be
   evicted from a machine at most [budget] times; a running job whose
   eviction count has reached the budget is immune to preemption and
   runs to completion.  [budget = 0] is non-preemptive SRPT; a large
   budget is plain SRPT.

   The rule depends on eviction history, so the mirror policy is
   stateful, like Quantum_rr: it replays exactly the transitions the
   budget kernel makes, in the same order —

     1. drop completed jobs from the running set,
     2. promote the best waiting jobs (min (remaining, id)) into free
        machines (completion beats arrival: promotions at time t happen
        before arrivals at t are considered),
     3. admit fresh arrivals in (arrival, id) order; each arrival takes a
        free machine if any, else challenges the weakest *evictable*
        running job (max (remaining, id) among those with eviction count
        < budget) and evicts it — bumping its count — iff it beats it
        under (remaining, id).

   The general loop invokes [allocate] exactly once per event, so the
   replay sees every transition; with no fresh arrivals and no
   completions the state is untouched and the allocation is stable. *)

type state = {
  known : (int, unit) Hashtbl.t;
  running : (int, unit) Hashtbl.t;
  evictions : (int, int) Hashtbl.t;
  mutable last_now : float;
}

let policy ?(budget = 1) () =
  if budget < 0 then invalid_arg "Srpt_mig.policy: budget must be >= 0";
  let state =
    {
      known = Hashtbl.create 64;
      running = Hashtbl.create 16;
      evictions = Hashtbl.create 64;
      last_now = Float.neg_infinity;
    }
  in
  let allocate ~now ~machines ~speed:_ (views : Policy.view array) =
    (* Time running backwards means the policy value is being reused for
       a fresh simulation: start from clean history. *)
    if now < state.last_now then begin
      Hashtbl.reset state.known;
      Hashtbl.reset state.running;
      Hashtbl.reset state.evictions
    end;
    state.last_now <- now;
    let n = Array.length views in
    let slot_of = Hashtbl.create n in
    Array.iteri (fun i (v : Policy.view) -> Hashtbl.replace slot_of v.Policy.id i) views;
    (* 1. Completed jobs vanish from the views; drop them. *)
    let gone =
      Hashtbl.fold
        (fun id () acc -> if Hashtbl.mem slot_of id then acc else id :: acc)
        state.running []
    in
    List.iter (Hashtbl.remove state.running) gone;
    let count id = match Hashtbl.find_opt state.evictions id with Some c -> c | None -> 0 in
    let remaining i = Policy.remaining_exn views.(i) in
    let id_of i = views.(i).Policy.id in
    let waiting () =
      let acc = ref [] in
      Array.iteri
        (fun i (v : Policy.view) ->
          if Hashtbl.mem state.known v.Policy.id && not (Hashtbl.mem state.running v.Policy.id)
          then acc := i :: !acc)
        views;
      !acc
    in
    (* 2. Refill free machines from the waiting set, best first. *)
    let refill () =
      let continue = ref true in
      while !continue do
        if Hashtbl.length state.running >= machines then continue := false
        else begin
          let best = ref (-1) in
          List.iter
            (fun i ->
              if
                !best < 0
                || remaining i < remaining !best
                || (remaining i = remaining !best && id_of i < id_of !best)
              then best := i)
            (waiting ());
          if !best < 0 then continue := false
          else Hashtbl.replace state.running (id_of !best) ()
        end
      done
    in
    refill ();
    (* 3. Admit fresh arrivals in (arrival, id) order. *)
    let fresh =
      Array.to_list views
      |> List.filter (fun (v : Policy.view) -> not (Hashtbl.mem state.known v.Policy.id))
      |> List.sort (fun (a : Policy.view) (b : Policy.view) ->
             match Float.compare a.arrival b.arrival with
             | 0 -> Int.compare a.id b.id
             | c -> c)
    in
    List.iter
      (fun (v : Policy.view) ->
        Hashtbl.replace state.known v.Policy.id ();
        if Hashtbl.length state.running < machines then
          Hashtbl.replace state.running v.Policy.id ()
        else begin
          (* Weakest evictable incumbent under (remaining, id). *)
          let weak = ref (-1) in
          Hashtbl.iter
            (fun id () ->
              if count id < budget then
                let i = Hashtbl.find slot_of id in
                if
                  !weak < 0
                  || remaining i > remaining !weak
                  || (remaining i = remaining !weak && id_of i > id_of !weak)
                then weak := i)
            state.running;
          if !weak >= 0 then begin
            let j = Hashtbl.find slot_of v.Policy.id in
            if
              remaining j < remaining !weak
              || (remaining j = remaining !weak && id_of j < id_of !weak)
            then begin
              let wid = id_of !weak in
              Hashtbl.remove state.running wid;
              Hashtbl.replace state.evictions wid (count wid + 1);
              Hashtbl.replace state.running v.Policy.id ()
            end
          end
        end)
      fresh;
    let rates = Array.make n 0. in
    Hashtbl.iter (fun id () -> rates.(Hashtbl.find slot_of id) <- 1.) state.running;
    { Policy.rates; horizon = None }
  in
  Policy.make
    ~name:(Printf.sprintf "srpt-mig(b=%d)" budget)
    ~clairvoyant:true
    ~klass:(Policy_class.Preempt_budget { budget })
    allocate
