(** Typed registry of the built-in policies, for the CLI and the
    experiment harness.

    A {!spec} is the value-level description of a policy and its
    parameters.  {!make} turns a spec into a fresh policy value — fresh
    matters for stateful policies like quantum-RR, whose closure owns the
    ready queue of one simulation run — and {!spec_of_string} parses the
    CLI surface syntax with a structured error message on failure. *)

type spec =
  | Rr
  | Srpt
  | Sjf
  | Setf
  | Fcfs
  | Laps of float  (** [Laps beta] with [beta] in (0, 1]. *)
  | Wrr_age of int  (** [Wrr_age k] with [k >= 1]: age-weighted RR for the lk norm. *)
  | Quantum_rr of float  (** [Quantum_rr q] with quantum [q > 0]. *)
  | Mlfq of float  (** [Mlfq q] with base quantum [q > 0]. *)
  | Hdf of float  (** [Hdf alpha]: highest density first, weight [size^alpha]. *)
  | Wrr_static of float  (** [Wrr_static gamma]: weights [size^gamma]. *)
  | Hybrid of float  (** [Hybrid theta] with [theta > 0]: SRPT/FCFS starvation hybrid. *)
  | Srpt_mig of int  (** [Srpt_mig budget] with [budget >= 0]: preemption-budget SRPT. *)

val validate : spec -> (spec, string) result
(** [Ok spec] when the parameters are in range, [Error msg] otherwise
    (e.g. [Laps 2.] or [Wrr_age 0]). *)

val make : spec -> Rr_engine.Policy.t
(** A fresh policy value for the spec.  Build one spec per concurrent
    simulation when the policy is stateful.
    @raise Invalid_argument on out-of-range parameters (see {!validate}). *)

val spec_to_string : spec -> string
(** The canonical surface syntax, e.g. ["laps:0.25"]; a fixed point of
    {!spec_of_string}. *)

val spec_of_string : string -> (spec, string) result
(** Parse the surface syntax: a policy name, optionally followed by
    [:parameter].  [Error msg] pinpoints what was wrong: unknown name,
    malformed parameter, or parameter out of range — e.g.
    ["laps:2.0" -> Error "laps:<beta> needs beta in (0, 1], got \"2.0\""].
    Defaults match {!default_specs}: [laps -> Laps 0.5],
    [wrr-age -> Wrr_age 2], [quantum-rr -> Quantum_rr 1.],
    [mlfq -> Mlfq 0.5], [hdf -> Hdf 2.], [wrr-static -> Wrr_static 1.],
    [hybrid -> Hybrid 3.], [srpt-mig -> Srpt_mig 1]. *)

val default_specs : unit -> spec list
(** Every built-in policy with its default parameters, in presentation
    order. *)

val all : unit -> Rr_engine.Policy.t list
(** [List.map make (default_specs ())]: fresh policy values for every
    built-in. *)

val names : unit -> string list
(** Accepted surface forms for {!spec_of_string}, for help messages. *)
