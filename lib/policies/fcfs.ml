let index_kind = Rr_engine.Index_engine.Fcfs

let key = Rr_engine.Index_engine.key_of_view index_kind

let allocate ~now:_ ~machines ~speed:_ views = Srpt.top_m_by key ~machines views

let policy =
  Rr_engine.Policy.make ~name:"fcfs" ~clairvoyant:false
    ~klass:(Rr_engine.Policy_class.Static_key Rr_engine.Policy_class.Key_arrival) allocate
