(** First-Come First-Served.

    The [m] earliest-arrived alive jobs each occupy one machine.  Because
    priorities never change after arrival this coincides with
    non-preemptive FCFS.  Non-clairvoyant; included as the classic
    variance-friendly but latency-poor baseline of the operating-systems
    motivation in Section 1. *)

val policy : Rr_engine.Policy.t

val key : Rr_engine.Policy.view -> float
(** The priority key FCFS ranks by: release time (visible without
    clairvoyance), shared with the fast index engine via
    [Rr_engine.Index_engine.key_of_view index_kind]. *)

val index_kind : Rr_engine.Index_engine.kind
(** {!Rr_engine.Index_engine.Fcfs}. *)
