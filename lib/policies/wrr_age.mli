(** Age-weighted Round Robin (the weighted variant of Section 1.2).

    Machines are distributed in proportion to [(age + offset)^(k-1)],
    capped at one machine per job; for the l2-norm ([k = 2]) this is the
    "machines in proportion to ages" algorithm that Edmonds, Im and
    Moseley showed O(1)-speed O(1)-competitive, and which the paper
    contrasts with oblivious RR.  [k = 1] degenerates to plain RR.

    Because the weights drift continuously with job ages, the allocation is
    refreshed on a relative-time horizon; the refresh coefficient bounds
    the drift error.  Non-clairvoyant. *)

val policy : ?refresh:float -> ?offset:float -> k:int -> unit -> Rr_engine.Policy.t
(** [policy ~k ()] builds the variant for the lk-norm.

    @param refresh fraction of the youngest job's age used as the
      re-evaluation horizon (default [0.25]; smaller is more accurate but
      generates proportionally more simulation events).
    @param offset additive age offset so that freshly arrived jobs have
      non-zero weight (default [0.1]).
    @raise Invalid_argument when [k < 1], [refresh <= 0.] or
      [offset <= 0.]. *)

val proportional_rates : machines:int -> ids:int array -> float array -> float array
(** [proportional_rates ~machines ~ids weights] solves the capped
    proportional allocation: rates [r_i = min(1, theta * w_i)] with the
    largest [theta] such that [sum r_i <= machines] (all rates 1 when the
    job count is at most [machines]).  [ids.(i)] is the job id of entry
    [i]; weight ties sort by increasing id so the internal suffix sums
    have one deterministic association order, which the dense engines
    replay to reproduce bit-identical rates.  Exposed for testing and for
    the engine layer.
    @raise Invalid_argument when [ids] and [weights] differ in length. *)
