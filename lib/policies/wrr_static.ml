open Rr_engine

let policy ~weight_of () =
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    let weights =
      Array.map
        (fun (v : Policy.view) ->
          let w = weight_of v.Policy.id in
          if not (Float.is_finite w && w > 0.) then
            invalid_arg (Printf.sprintf "Wrr_static: weight of job %d must be positive" v.id);
          w)
        views
    in
    let ids = Array.map (fun (v : Policy.view) -> v.Policy.id) views in
    { Policy.rates = Wrr_age.proportional_rates ~machines ~ids weights; horizon = None }
  in
  { Policy.name = "wrr-static"; clairvoyant = false; klass = None; allocate }

(* The size-powered member of the family: weight size^gamma, a pure
   function of declarable data, so the policy classifies as Sized_share
   and gets the dense proportional-share kernel.  The weight expression
   below is the one the kernel evaluates too. *)
let sized ?(gamma = 1.) () =
  if not (Float.is_finite gamma) then invalid_arg "Wrr_static.sized: gamma must be finite";
  let allocate ~now:_ ~machines ~speed:_ (views : Policy.view array) =
    let weights = Array.map (fun v -> Policy.size_exn v ** gamma) views in
    let ids = Array.map (fun (v : Policy.view) -> v.Policy.id) views in
    { Policy.rates = Wrr_age.proportional_rates ~machines ~ids weights; horizon = None }
  in
  Policy.make
    ~name:(Printf.sprintf "wrr-static(g=%g)" gamma)
    ~clairvoyant:true
    ~klass:(Policy_class.Sized_share { gamma })
    allocate
