(** Preemption-budget SRPT (the migration-limited family, reinterpreted
    for fungible machines).

    SRPT evicts the currently weakest job whenever a shorter one
    arrives; on real systems each eviction has a cost, which the
    bounded-migration literature models by capping how often a job may
    be displaced.  Here machines are identical and fungible, so the
    bounded resource is preemptions: each job may be evicted from a
    machine at most [budget] times, after which it is immune and runs
    to completion.  [budget = 0] is non-preemptive SRPT; as
    [budget -> infinity] the policy converges to plain SRPT.

    Classified as [Preempt_budget {budget}]: the budget kernel runs the
    same rule with per-job eviction counters on the slot array.
    Stateful (eviction history), like {!Quantum_rr}: one policy value
    replays deterministically for one simulation at a time, and resets
    itself when time runs backwards. *)

val policy : ?budget:int -> unit -> Rr_engine.Policy.t
(** [policy ~budget ()] builds the family member with the given
    eviction budget per job (default 1).
    @raise Invalid_argument when [budget < 0]. *)
