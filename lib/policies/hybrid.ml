open Rr_engine

(* Kuo's starvation-mitigation hybrid.  A job is "starved" once its
   flow/size ratio reaches theta, i.e. from the instant
   [Policy_class.starve_time ~theta ~arrival ~size] onwards — one shared
   expression with the hybrid index kernel, so policy and engine agree
   bit for bit on who is starved when.  Starved jobs take absolute
   priority and are served FCFS (oldest first) — the starved job has
   waited long relative to its size, and finishing it first caps its
   flow/size ratio; everyone else is served SRPT, which is what makes
   the family interpolate between pure SRPT (theta = infinity in the
   limit) and FCFS-dominated service (theta -> 0). *)
let policy ?(theta = 3.) () =
  if not (Float.is_finite theta && theta > 0.) then
    invalid_arg "Hybrid.policy: theta must be finite and positive";
  let allocate ~now ~machines ~speed:_ (views : Policy.view array) =
    let n = Array.length views in
    let starve =
      Array.map
        (fun (v : Policy.view) ->
          Policy_class.starve_time ~theta ~arrival:v.Policy.arrival ~size:(Policy.size_exn v))
        views
    in
    let starved i = now >= starve.(i) in
    let idx = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        match (starved a, starved b) with
        | true, false -> -1
        | false, true -> 1
        | true, true -> (
            match Float.compare views.(a).Policy.arrival views.(b).Policy.arrival with
            | 0 -> Int.compare views.(a).Policy.id views.(b).Policy.id
            | c -> c)
        | false, false -> (
            match
              Float.compare (Policy.remaining_exn views.(a)) (Policy.remaining_exn views.(b))
            with
            | 0 -> Int.compare views.(a).Policy.id views.(b).Policy.id
            | c -> c))
      idx;
    let rates = Array.make n 0. in
    for rank = 0 to Int.min machines n - 1 do
      rates.(idx.(rank)) <- 1.
    done;
    (* The priority order also changes when a waiting job crosses its
       starvation threshold, which is not an arrival or a completion:
       re-evaluate no later than the earliest pending promotion. *)
    let horizon = ref None in
    for i = 0 to n - 1 do
      if not (starved i) then
        match !horizon with
        | Some h when h <= starve.(i) -> ()
        | _ -> horizon := Some starve.(i)
    done;
    { Policy.rates; horizon = !horizon }
  in
  Policy.make
    ~name:(Printf.sprintf "hybrid(t=%g)" theta)
    ~clairvoyant:true
    ~klass:(Policy_class.Starvation_hybrid { theta })
    allocate
