open Rr_engine

(* The solver lives with the classification layer so the dense engines
   share it; re-exported here for tests and the weighted policies. *)
let proportional_rates = Policy_class.proportional_rates

let policy ?(refresh = 0.25) ?(offset = 0.1) ~k () =
  if k < 1 then invalid_arg "Wrr_age.policy: k must be >= 1";
  if refresh <= 0. then invalid_arg "Wrr_age.policy: refresh must be positive";
  if offset <= 0. then invalid_arg "Wrr_age.policy: offset must be positive";
  let allocate ~now ~machines ~speed:_ (views : Policy.view array) =
    let weights =
      Array.map
        (fun v -> Rr_util.Floatx.powi (Policy.age ~now v +. offset) (k - 1))
        views
    in
    let ids = Array.map (fun (v : Policy.view) -> v.Policy.id) views in
    let rates = proportional_rates ~machines ~ids weights in
    (* Ages drift, so refresh after a fraction of the youngest age; the
       youngest job's weight is the fastest-changing one in relative terms. *)
    let youngest =
      Array.fold_left (fun acc v -> Float.min acc (Policy.age ~now v)) Float.infinity views
    in
    let horizon =
      if k = 1 || Array.length views = 0 then None
      else Some (now +. Float.max 1e-6 (refresh *. (youngest +. offset)))
    in
    { Policy.rates; horizon }
  in
  Policy.make
    ~name:(Printf.sprintf "wrr-age(k=%d)" k)
    ~clairvoyant:false
    ~klass:(Policy_class.Aged_share { k; refresh; offset })
    allocate
