open Rr_engine

type state = {
  known : (int, unit) Hashtbl.t;  (* every job id ever admitted *)
  ready : int Queue.t;  (* jobs waiting for a machine, FIFO *)
  mutable slots : (int * float) option array;  (* per machine: (job, quantum deadline) *)
  mutable last_now : float;
}

let policy ?(quantum = 1.0) () =
  if quantum <= 0. then invalid_arg "Quantum_rr.policy: quantum must be positive";
  let state =
    { known = Hashtbl.create 64; ready = Queue.create (); slots = [||]; last_now = Float.neg_infinity }
  in
  let allocate ~now ~machines ~speed:_ (views : Policy.view array) =
    (* Time running backwards means the policy value is being reused for a
       fresh simulation: start from a clean ready queue. *)
    if now < state.last_now then begin
      Hashtbl.reset state.known;
      Queue.clear state.ready;
      state.slots <- [||]
    end;
    state.last_now <- now;
    if Array.length state.slots <> machines then state.slots <- Array.make machines None;
    let alive = Hashtbl.create (Array.length views) in
    Array.iteri (fun i (v : Policy.view) -> Hashtbl.replace alive v.id i) views;
    (* Retire completed jobs from the machine slots. *)
    Array.iteri
      (fun s slot ->
        match slot with
        | Some (j, _) when not (Hashtbl.mem alive j) -> state.slots.(s) <- None
        | _ -> ())
      state.slots;
    (* Admit newly arrived jobs in (arrival, id) order. *)
    let fresh =
      Array.to_list views
      |> List.filter (fun (v : Policy.view) -> not (Hashtbl.mem state.known v.id))
      |> List.sort (fun (a : Policy.view) (b : Policy.view) ->
             match Float.compare a.arrival b.arrival with
             | 0 -> Int.compare a.id b.id
             | c -> c)
    in
    List.iter
      (fun (v : Policy.view) ->
        Hashtbl.replace state.known v.id ();
        Queue.push v.id state.ready)
      fresh;
    (* Expire quanta: the incumbent goes to the back of the ready queue. *)
    Array.iteri
      (fun s slot ->
        match slot with
        | Some (j, deadline) when now >= deadline -. 1e-12 ->
            Queue.push j state.ready;
            state.slots.(s) <- None
        | _ -> ())
      state.slots;
    (* Refill idle machines from the ready queue, skipping stale entries of
       jobs that completed while queued. *)
    let rec next_ready () =
      match Queue.take_opt state.ready with
      | None -> None
      | Some j -> if Hashtbl.mem alive j then Some j else next_ready ()
    in
    Array.iteri
      (fun s slot ->
        if slot = None then
          match next_ready () with
          | Some j -> state.slots.(s) <- Some (j, now +. quantum)
          | None -> ())
      state.slots;
    let rates = Array.make (Array.length views) 0. in
    let horizon = ref None in
    Array.iter
      (fun slot ->
        match slot with
        | Some (j, deadline) ->
            rates.(Hashtbl.find alive j) <- 1.;
            (match !horizon with
            | Some h when h <= deadline -> ()
            | _ -> horizon := Some deadline)
        | None -> ())
      state.slots;
    { Policy.rates; horizon = !horizon }
  in
  Policy.make
    ~name:(Printf.sprintf "quantum-rr(q=%g)" quantum)
    ~clairvoyant:false
    ~klass:(Policy_class.Quantum_cycle { quantum })
    allocate
