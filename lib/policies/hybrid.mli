(** Starvation-mitigation hybrid (Kuo): SRPT for the fresh, FCFS for the
    starved.

    SRPT minimises total (l1) flow but lets an unlucky long job starve
    behind a stream of short ones — exactly the temporal unfairness the
    paper's lk-norm objective penalises.  The hybrid family bounds each
    job's stretch: a job whose flow/size ratio reaches [theta] is
    promoted to a "starved" class with absolute priority, served FCFS
    among themselves; everyone else is served SRPT.  Sweeping [theta]
    traces the l1-vs-l2 tradeoff curve between SRPT-like efficiency
    (large [theta] — promotions never fire) and starvation-free but
    l1-costly service (small [theta] — most jobs promote on arrival,
    collapsing towards FCFS).

    Classified as [Starvation_hybrid {theta}]: the hybrid index kernel
    runs the same rule with two priority heaps plus a promotion-event
    heap keyed on {!Rr_engine.Policy_class.starve_time}. *)

val policy : ?theta:float -> unit -> Rr_engine.Policy.t
(** [policy ~theta ()] builds the hybrid with stretch threshold [theta]
    (default 3): job [j] counts as starved from
    [arrival_j + theta * size_j] onwards.  Clairvoyant.
    @raise Invalid_argument when [theta] is not finite and positive. *)
