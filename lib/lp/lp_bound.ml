type mode = Slot_start | Slot_end
type windows = Dense | Sparse

type solution = {
  value : float;
  delta : float;
  allocation : (float * float) list array;
}

type interval = { lo : float; hi : float; delta : float; solves : int }

let default_delta = 0.25
let default_tol = 0.05

let validate ~k ~machines ~delta =
  if k < 1 then invalid_arg "Lp_bound.value: k must be >= 1";
  if machines < 1 then invalid_arg "Lp_bound.value: machines must be >= 1";
  if delta <= 0. then invalid_arg "Lp_bound.value: delta must be positive"

(* Single-machine busy periods of the instance: maximal [(first, last)]
   index ranges (jobs sorted by arrival, as Instance.jobs guarantees) with
   no idle time between them when the work is served at unit rate, plus
   the end time of each period.  Any work-conserving schedule on m >= 1
   unit-speed machines drains alive work at rate >= 1 whenever it is
   positive, so its alive-work profile is dominated by the one-machine one
   and every job completes by the end of its one-machine busy period; and
   every instance has a work-conserving optimal schedule (idling never
   helps a non-decreasing completion-time objective).  Hence restricting
   job j's LP arcs to [r_j, busy-period end) keeps some optimal schedule
   feasible — which is all the 2-gamma certificate needs — and in fact
   leaves the LP optimum unchanged: the window holds enough slack capacity
   and every arc cost grows with age, so no optimal LP solution runs work
   past the end of its busy period. *)
let busy_periods (jobs : Rr_engine.Job.t array) =
  let n = Array.length jobs in
  let periods = ref [] in
  let period_start = ref 0 in
  let busy_end = ref Float.neg_infinity in
  for i = 0 to n - 1 do
    let j = jobs.(i) in
    if j.arrival > !busy_end then begin
      if i > 0 then periods := (!period_start, i - 1, !busy_end) :: !periods;
      period_start := i;
      busy_end := j.arrival
    end;
    busy_end := !busy_end +. j.size
  done;
  if n > 0 then periods := (!period_start, n - 1, !busy_end) :: !periods;
  List.rev !periods

(* Solved transportation network of one component: the Mcmf network plus
   its (job, slot_start, edge) arc handles, for solution extraction. *)
type part = { net : Rr_flow.Mcmf.t; arcs : (int * float * int) list }

(* Solve the LP restricted to one group of jobs and one range of slots
   [s_lo, s_hi_init) (global slot indices; the component owns the nodes up
   to [s_reach] so the belt-and-braces widening loop below can grow into
   the idle gap after the busy period without rebuilding).  [members] are
   global job indices.  Returns the component's objective and its part. *)
let solve_part ~mode ~gamma ~k ~machines ~delta ~(jobs : Rr_engine.Job.t array) ~members
    ~s_lo ~s_hi_init ~s_reach =
  let nm = Array.length members in
  let source = 0 in
  let slot_node s = 1 + nm + (s - s_lo) in
  let sink = 1 + nm + (s_reach - s_lo) in
  let net = Rr_flow.Mcmf.create ~n_nodes:(sink + 1) in
  let m_cap = Float.of_int machines *. delta in
  let total_work = ref 0. in
  Array.iteri
    (fun mi ji ->
      let j = jobs.(ji) in
      total_work := !total_work +. j.size;
      ignore (Rr_flow.Mcmf.add_edge net ~src:source ~dst:(1 + mi) ~capacity:j.size ~cost:0.))
    members;
  let s_hi = ref s_hi_init in
  for s = s_lo to !s_hi - 1 do
    ignore (Rr_flow.Mcmf.add_edge net ~src:(slot_node s) ~dst:sink ~capacity:m_cap ~cost:0.)
  done;
  let arcs = ref [] in
  (* Job arcs for slots [from_slot, to_slot) of member mi. *)
  let add_arcs mi ~from_slot ~to_slot =
    let j = jobs.(members.(mi)) in
    let pk = Rr_util.Floatx.powi j.size k in
    for s = from_slot to to_slot - 1 do
      let slot_start = Float.of_int s *. delta in
      let slot_end = slot_start +. delta in
      if slot_end > j.arrival then begin
        (* Work of this job routed into slot s runs inside
           [max(r_j, slot_start), slot_end). *)
        let window_start = Float.max j.arrival slot_start in
        let cap = Float.of_int machines *. (slot_end -. window_start) in
        let t_eval = match mode with Slot_start -> window_start | Slot_end -> slot_end in
        let age = t_eval -. j.arrival in
        let cost = gamma /. j.size *. (Rr_util.Floatx.powi age k +. pk) in
        let e = Rr_flow.Mcmf.add_edge net ~src:(1 + mi) ~dst:(slot_node s) ~capacity:cap ~cost in
        arcs := (members.(mi), slot_start, e) :: !arcs
      end
    done
  in
  let member_lo =
    Array.map (fun ji -> Int.max s_lo (int_of_float (jobs.(ji).arrival /. delta))) members
  in
  Array.iteri (fun mi _ -> add_arcs mi ~from_slot:member_lo.(mi) ~to_slot:!s_hi) members;
  let routed = ref (Rr_flow.Mcmf.solve net ~source ~sink) in
  let enough (o : Rr_flow.Mcmf.outcome) = o.flow >= !total_work *. (1. -. 1e-6) in
  (* Should be unreachable (busy-period windows are provably sufficient);
     kept as a guard so a rounding corner degrades into a warm-started
     widening into the trailing idle gap instead of a wrong answer. *)
  while (not (enough !routed)) && !s_hi < s_reach do
    let next = Int.min s_reach (!s_hi + Int.max 1 (!s_hi - s_lo)) in
    for s = !s_hi to next - 1 do
      ignore (Rr_flow.Mcmf.add_edge net ~src:(slot_node s) ~dst:sink ~capacity:m_cap ~cost:0.)
    done;
    Array.iteri (fun mi _ -> add_arcs mi ~from_slot:!s_hi ~to_slot:next) members;
    s_hi := next;
    routed := Rr_flow.Mcmf.resolve net ~source ~sink
  done;
  if not (enough !routed) then
    failwith
      (Printf.sprintf "Lp_bound.value: routed only %g of %g work (internal horizon bug)"
         (!routed).flow !total_work);
  ((!routed).cost, { net; arcs = List.rev !arcs })

(* Build and solve the transportation network(s) for LP_primal.  With
   [Sparse] windows the problem decomposes: jobs of different busy periods
   have disjoint slot windows, so each (merged) group of overlapping
   busy-period slot ranges is an independent transportation problem and
   the objective is the sum — the successive-shortest-path solver is
   superlinear in component size, so solving many 1/(1-rho)-sized
   components is the difference between seconds and hours at n = 2000.
   [Dense] keeps the original single O(n·slots) network as the
   differential oracle. *)
let solve_network ~mode ~gamma ~k ~machines ~delta ~windows inst =
  validate ~k ~machines ~delta;
  let jobs = Array.of_list (Rr_workload.Instance.jobs inst) in
  let n = Array.length jobs in
  if n = 0 then (0., [])
  else begin
    let total_work = Rr_workload.Instance.total_work inst in
    let max_arrival =
      Array.fold_left (fun acc (j : Rr_engine.Job.t) -> Float.max acc j.arrival) 0. jobs
    in
    (* Slots cover [0, horizon); capacity after the last arrival suffices to
       absorb all remaining work, so the transportation problem is feasible. *)
    let horizon = max_arrival +. (total_work /. Float.of_int machines) +. (2. *. delta) in
    let n_slots = int_of_float (Float.ceil (horizon /. delta)) in
    if n_slots > 200_000 then
      invalid_arg
        (Printf.sprintf "Lp_bound.value: %d slots needed; coarsen delta" n_slots);
    let components =
      match windows with
      | Dense ->
          [ (Array.init n (fun i -> i), 0, n_slots, n_slots) ]
      | Sparse ->
          (* Slot range of each busy period, merged when ranges touch (an
             idle gap shorter than delta shares a boundary slot). *)
          let ranges =
            List.map
              (fun (first, last, busy_end) ->
                let s_lo = int_of_float (jobs.(first).arrival /. delta) in
                let s_hi = Int.min n_slots (1 + int_of_float (Float.ceil (busy_end /. delta))) in
                (first, last, s_lo, Int.max (s_lo + 1) s_hi))
              (busy_periods jobs)
          in
          let merged =
            List.fold_left
              (fun acc (first, last, s_lo, s_hi) ->
                match acc with
                | (f0, _, lo0, hi0) :: rest when s_lo < hi0 ->
                    (f0, last, lo0, Int.max hi0 s_hi) :: rest
                | _ -> (first, last, s_lo, s_hi) :: acc)
              [] ranges
          in
          (* Each component may widen rightwards into the idle gap before
             the next component's first slot (the last one up to the global
             horizon) without touching foreign capacity. *)
          let rec with_reach = function
            | [] -> []
            | (first, last, s_lo, s_hi) :: ((next_first, _, _, _) :: _ as rest) ->
                let reach = int_of_float (jobs.(next_first).arrival /. delta) in
                (Array.init (last - first + 1) (fun i -> first + i), s_lo, s_hi,
                 Int.max s_hi reach)
                :: with_reach rest
            | [ (first, last, s_lo, s_hi) ] ->
                [ (Array.init (last - first + 1) (fun i -> first + i), s_lo, s_hi, n_slots) ]
          in
          with_reach (List.rev merged)
    in
    let total = Rr_util.Kahan.create () in
    let parts =
      List.map
        (fun (members, s_lo, s_hi_init, s_reach) ->
          let v, part =
            solve_part ~mode ~gamma ~k ~machines ~delta ~jobs ~members ~s_lo ~s_hi_init
              ~s_reach
          in
          Rr_util.Kahan.add total v;
          part)
        components
    in
    (Rr_util.Kahan.total total, parts)
  end

let value ?(mode = Slot_start) ?(gamma = 1.) ?(windows = Sparse) ~k ~machines ~delta inst =
  let v, _ = solve_network ~mode ~gamma ~k ~machines ~delta ~windows inst in
  v

let solve ?(mode = Slot_start) ?(gamma = 1.) ?(windows = Sparse) ~k ~machines ~delta inst =
  let v, parts = solve_network ~mode ~gamma ~k ~machines ~delta ~windows inst in
  let allocation = Array.make (Rr_workload.Instance.n inst) [] in
  List.iter
    (fun { net; arcs } ->
      List.iter
        (fun (ji, slot_start, e) ->
          let f = Rr_flow.Mcmf.flow_on net e in
          if f > 1e-12 then allocation.(ji) <- (slot_start, f) :: allocation.(ji))
        arcs)
    parts;
  Array.iteri
    (fun i l ->
      allocation.(i) <- List.sort (fun (a, _) (b, _) -> Float.compare a b) l)
    allocation;
  { value = v; delta; allocation }

let completion_profile sol ~job =
  if job < 0 || job >= Array.length sol.allocation then
    invalid_arg "Lp_bound.completion_profile: unknown job";
  match List.rev sol.allocation.(job) with
  | [] -> Float.nan
  | (slot_start, _) :: _ -> slot_start +. sol.delta

(* Adaptive coarse-to-fine certification: solve both evaluation modes at a
   coarse delta and halve it only while the certified [lo, hi] bracket on
   the continuous LP value is wider than [tol] relative.  [probe] evaluates
   a batch of (mode, delta) requests — the default runs them sequentially
   here; Temporal_fairness.Bound injects a probe that fans the pair out on
   a Pool and memoises each evaluation in the Cache. *)
let value_interval ?(gamma = 1.) ?(windows = Sparse) ?init_delta ?(min_delta = 1e-4)
    ?(max_solves = 64) ?probe ~tol ~k ~machines inst =
  let init_delta = match init_delta with Some d -> d | None -> 4. *. default_delta in
  validate ~k ~machines ~delta:init_delta;
  if tol <= 0. then invalid_arg "Lp_bound.value_interval: tol must be positive";
  if min_delta <= 0. then invalid_arg "Lp_bound.value_interval: min_delta must be positive";
  let probe =
    match probe with
    | Some f -> f
    | None ->
        List.map (fun (mode, delta) -> value ~mode ~gamma ~windows ~k ~machines ~delta inst)
  in
  if Rr_workload.Instance.n inst = 0 then { lo = 0.; hi = 0.; delta = init_delta; solves = 0 }
  else begin
    let slots_for delta =
      let total_work = Rr_workload.Instance.total_work inst in
      let max_arrival =
        List.fold_left
          (fun acc (j : Rr_engine.Job.t) -> Float.max acc j.arrival)
          0.
          (Rr_workload.Instance.jobs inst)
      in
      let horizon = max_arrival +. (total_work /. Float.of_int machines) +. (2. *. delta) in
      int_of_float (Float.ceil (horizon /. delta))
    in
    let rec refine delta solves =
      let lo, hi =
        match probe [ (Slot_start, delta); (Slot_end, delta) ] with
        | [ lo; hi ] -> (lo, hi)
        | _ -> invalid_arg "Lp_bound.value_interval: probe must return one value per request"
      in
      let solves = solves + 2 in
      let converged = hi -. lo <= tol *. Float.max lo 1e-12 in
      let next = delta /. 2. in
      if converged || next < min_delta || solves + 2 > max_solves || slots_for next > 200_000
      then { lo; hi; delta; solves }
      else refine next solves
    in
    refine init_delta 0
  end

(* Combinatorial pre-filter: a certified lower bound on OPT's power sum
   with no LP solve.  Two floors:

   - every unit of job j's work costs the LP at least gamma * p_j^{k-1}
     (the p^k term alone), so gamma * sum_j p_j^k <= LP value at any
     discretisation, and (sum p^k)/2 <= OPT's power sum outright (every
     flow time is at least the size);
   - on one machine SRPT minimises total flow time, so by the power-mean
     inequality OPT's power sum >= (sum_j F_j^SRPT)^k / n^{k-1}; the
     companion (a + p)^k <= 2^{k-1} (a^k + p^k) slack keeps the halved
     term at or below the LP certificate in practice, making the filter a
     sound stand-in for the bound it short-circuits.

   The SRPT sum comes from the priority-index kernel
   (Rr_engine.Index_engine), so the filter costs one fast simulation. *)
let cheap_lower_bound ?(gamma = 1.) ~k ~machines inst =
  validate ~k ~machines ~delta:1.;
  let jobs = Rr_workload.Instance.jobs inst in
  match jobs with
  | [] -> 0.
  | _ ->
      let n = Rr_workload.Instance.n inst in
      let sum_pk =
        Rr_util.Kahan.sum_by
          (fun (j : Rr_engine.Job.t) -> Rr_util.Floatx.powi j.size k)
          (Array.of_list jobs)
      in
      let srpt_term =
        if machines = 1 then begin
          let res =
            Rr_engine.Index_engine.run ~machines:1 ~kind:Rr_engine.Index_engine.Srpt jobs
          in
          let total = Rr_util.Kahan.sum (Rr_engine.Simulator.flows res) in
          Rr_util.Floatx.powi total k /. Rr_util.Floatx.powi (2. *. Float.of_int n) (k - 1)
        end
        else 0.
      in
      gamma *. Float.max sum_pk srpt_term /. 2.

let opt_power_lower_bound ?windows ~k ~machines ~delta inst =
  value ~mode:Slot_start ~gamma:1. ?windows ~k ~machines ~delta inst /. 2.

let opt_norm_lower_bound ?windows ~k ~machines ~delta inst =
  opt_power_lower_bound ?windows ~k ~machines ~delta inst ** (1. /. Float.of_int k)
