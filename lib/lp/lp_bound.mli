(** The paper's LP relaxation (Section 3.1), solved exactly.

    LP_primal:
    {v
      min   sum_j sum_{t >= r_j} gamma * (x_jt / p_j) * ((t - r_j)^k + p_j^k)
      s.t.  sum_t x_jt >= p_j          for every job j
            sum_j x_jt <= m            for every time t
            x_jt >= 0
    v}

    After discretising time into slots of width [delta] this is a
    transportation problem between jobs and slots, solved exactly by the
    min-cost-flow substrate {!Rr_flow.Mcmf}.  The per-unit-work cost of a
    job inside a slot can be evaluated at the earliest instant the job may
    run in that slot ([Slot_start], which only lowers the objective, so
    the discrete value {e lower-bounds} the continuous LP) or at the slot
    end ([Slot_end], which upper-bounds the continuous LP).  The paper
    shows LP <= 2 gamma OPT^k, so with [gamma = 1]
    [Slot_start]-value / 2 is a certified lower bound on OPT's sum of
    k-th powers of flow time — the quantity competitive ratios in the
    benchmark suite are measured against.

    {2 Production scale}

    Three mechanisms keep the certificate affordable at n = 2000+:

    - {e sparse windows} ({!windows}, the default): job j only receives
      arcs for the slots overlapping [\[r_j, deadline_j)], where
      [deadline_j] is the end of j's {e single-machine busy period} — a
      provable completion deadline for every work-conserving schedule on
      any number of unit-speed machines, and some optimal schedule is
      work-conserving, so the 2-gamma certificate survives the
      restriction and the optimum value is unchanged (differential-tested
      against [Dense]).  The network shrinks from O(n·slots) arcs to
      near-linear;
    - {e interval certification} ({!value_interval}): solve both modes at
      a coarse delta and refine only until the certified
      [\[Slot_start, Slot_end\]] bracket on the continuous LP is tight
      enough, instead of hard-coding one fine delta everywhere;
    - {e combinatorial pre-filter} ({!cheap_lower_bound}): a certified
      bound from one fast SRPT simulation, letting callers skip the LP
      entirely when the cheap bound already decides their question. *)

type mode = Slot_start | Slot_end

type windows =
  | Dense  (** Every job may use every slot after its release — the
               original O(n·slots) build, kept as the differential
               oracle. *)
  | Sparse  (** Busy-period windows (the default): near-linear arcs, same
                optimum.  If rounding ever leaves work unrouted, windows
                double and the solver warm-restarts ({!Rr_flow.Mcmf.resolve})
                until feasible. *)

val default_delta : float
(** [0.25] — the one named discretisation default; every fixed-delta call
    site in the experiment suite uses this instead of a local magic
    constant. *)

val default_tol : float
(** [0.05] — default relative gap for interval certification
    ({!value_interval}, [rr_cli lowerbound --tol]). *)

val value :
  ?mode:mode ->
  ?gamma:float ->
  ?windows:windows ->
  k:int ->
  machines:int ->
  delta:float ->
  Rr_workload.Instance.t ->
  float
(** LP optimum under the given discretisation (default [mode = Slot_start],
    [gamma = 1.], [windows = Sparse]).  The slot horizon is chosen large
    enough that the transportation problem is always feasible.
    @raise Invalid_argument when [k < 1], [machines < 1], [delta <= 0.],
    or the discretisation would need more than 200_000 slots.
    @raise Failure if the solver cannot route all work (horizon bug — this
    indicates an internal error, not bad input). *)

type interval = {
  lo : float;  (** [Slot_start] value at [delta]: certified lower bound on
                   the continuous LP value. *)
  hi : float;  (** [Slot_end] value at [delta]: certified upper bound on
                   the continuous LP value. *)
  delta : float;  (** The slot width the bracket converged at. *)
  solves : int;  (** LP evaluations requested (two per refinement level). *)
}
(** A certified bracket: the continuous LP value lies in [\[lo, hi\]], so
    [lo / 2] is a certified lower bound on OPT's power sum and
    [(hi - lo) / lo] bounds the certificate quality left on the table. *)

val value_interval :
  ?gamma:float ->
  ?windows:windows ->
  ?init_delta:float ->
  ?min_delta:float ->
  ?max_solves:int ->
  ?probe:((mode * float) list -> float list) ->
  tol:float ->
  k:int ->
  machines:int ->
  Rr_workload.Instance.t ->
  interval
(** Adaptive coarse-to-fine certification: evaluate both modes at
    [init_delta] (default [4 * default_delta]) and halve the slot width
    until [hi - lo <= tol * max lo 1e-12], [delta] would fall below
    [min_delta] (default [1e-4]), the probe budget [max_solves] (default
    64) would be exceeded, or the next level would blow the 200_000-slot
    limit — whichever comes first; the returned bracket is certified at
    every stopping reason, just possibly wider than [tol].

    [?probe] evaluates one batch of (mode, delta) requests and exists so
    callers can inject parallel or memoised evaluation
    ({!Temporal_fairness.Bound} fans the pair out on a [Pool] and caches
    each probe); the default evaluates sequentially via {!value}.
    @raise Invalid_argument on invalid [k]/[machines]/[init_delta], a
    non-positive [tol] or [min_delta], or a [probe] that does not return
    exactly one value per request. *)

val cheap_lower_bound :
  ?gamma:float -> k:int -> machines:int -> Rr_workload.Instance.t -> float
(** A certified lower bound on [gamma] times OPT's power sum, computable
    without any LP solve and scaled to sit at or below the LP certificate
    {!opt_power_lower_bound} so it can short-circuit it.  It is the larger
    of two floors, halved like the LP certificate:

    - [sum_j p_j^k]: every flow time is at least the job's size, and every
      unit of LP work costs at least [gamma * p^{k-1}], so this floor is
      below both OPT and the LP value at {e any} discretisation;
    - (one machine only) [(sum_j F_j^SRPT)^k / (2n)^{k-1}]: SRPT minimises
      total flow time on a single machine, so the power-mean inequality
      turns its total flow — computed by the fast priority-index engine —
      into a floor under OPT's power sum; the extra [2^{k-1}] is the
      [(a+p)^k <= 2^{k-1}(a^k + p^k)] slack separating the LP's split cost
      from the completion-time cost.

    Used by {!Temporal_fairness.Ratio.vs_certified} to run the LP only
    when the cheap bound leaves the ratio inside an interesting band.
    Returns [0.] for the empty instance.
    @raise Invalid_argument when [k < 1] or [machines < 1]. *)

val opt_power_lower_bound :
  ?windows:windows ->
  k:int -> machines:int -> delta:float -> Rr_workload.Instance.t -> float
(** [value ~mode:Slot_start ~gamma:1.] divided by 2: a certified lower
    bound on [min_schedules sum_j (C_j - r_j)^k].  Returns 0. for the
    empty instance. *)

val opt_norm_lower_bound :
  ?windows:windows ->
  k:int -> machines:int -> delta:float -> Rr_workload.Instance.t -> float
(** k-th root of {!opt_power_lower_bound}: a lower bound on the optimal
    lk-norm of flow time. *)

type solution = {
  value : float;  (** LP objective, as from {!value}. *)
  delta : float;  (** Slot width the solution is expressed in. *)
  allocation : (float * float) list array;
      (** Per job id: [(slot_start, work)] pairs with positive work,
          chronological. *)
}

val solve :
  ?mode:mode ->
  ?gamma:float ->
  ?windows:windows ->
  k:int ->
  machines:int ->
  delta:float ->
  Rr_workload.Instance.t ->
  solution
(** Like {!value} but also extracts the optimal fractional schedule from
    the flow network — how the LP chooses to spread each job's work over
    time.  The test suite checks the LP-feasibility invariants on it
    (release times respected, all work scheduled, slot capacity obeyed). *)

val completion_profile : solution -> job:int -> float
(** The fractional completion time of a job in the LP solution: the end of
    the last slot carrying any of its work.  Lower-bounds nothing by
    itself but shows where the relaxation finishes each job. *)
