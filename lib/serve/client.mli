(** Blocking client for the binary framed protocol (PROTOCOL.md).

    One synchronous request/reply exchange per call, over a Unix domain
    socket.  The loadgen, the serve benchmarks and the over-the-socket
    tests all drive the server through this module; [rr_cli loadgen] is
    a thin CLI over {!Loadgen}, which builds on it. *)

type t

exception Server_error of string
(** An ERR reply: the server-reported message, verbatim.  Engine-level
    errors leave the connection usable; protocol errors are followed by
    a server-side close. *)

val connect : ?retries:int -> string -> t
(** Connect to the Unix socket at this path and exchange hellos.
    [retries] (default 100) x 20 ms covers the race against a server
    still binding its socket (connection refused / missing path).
    SIGPIPE is ignored process-wide.
    @raise Unix.Unix_error when the server never comes up;
    @raise Failure on a handshake mismatch. *)

val close : t -> unit
(** Close the descriptor without saying BYE (the mid-batch-disconnect
    tests use this to hang up rudely). *)

val bye : t -> unit
(** Orderly goodbye: BYE, await OK, close. *)

val shutdown : t -> unit
(** Stop the whole server: SHUTDOWN, await OK, close. *)

val submit : t -> arrival:float -> size:float -> int
(** One SUBMIT frame; returns the job id. *)

val submit_batch : t -> arrivals:float array -> sizes:float array -> ?off:int -> ?len:int -> unit -> int
(** One BATCH frame carrying [len] jobs (default: all of [arrivals]);
    returns the first id — the batch gets ids [first .. first+len-1].
    @raise Invalid_argument on an empty or oversized batch. *)

val advance : t -> float -> float * int * int
(** ADVANCE to the horizon; returns [(now, completed, alive)]. *)

val drain : t -> float * int * int
(** DRAIN; returns [(now, completed, alive)]. *)

val stats : t -> Rr_engine.Live.stats
(** STATS; the 15 fields decode bit-exactly off the wire. *)

val snapshot : t -> bytes
(** SNAPSHOT; the engine's serialized bytes, as {!Rr_engine.Live.to_bytes}. *)

val restore : t -> bytes -> unit
(** RESTORE from bytes previously obtained via {!snapshot}. *)

val send_raw : t -> bytes -> unit
(** Write raw bytes with no framing or reply wait — for tests that need
    to speak mid-frame garbage at the server. *)
