(* Load generator.  See loadgen.mli for the contract.

   The feeder drives the same incremental pattern as the B6 live bench
   (submit, advance to the arrival, repeat) but through the wire: jobs
   come off a replayable Instance.Stream cursor into reusable float
   arrays, go out as BATCH frames (binary) or SUBMIT lines (text), and
   every round trip is timed into P-squared sketches.  Observers poll
   STATS on their own connections every few rounds, so a multi-client
   run actually exercises the server's multiplexing rather than just
   opening idle sockets. *)

module P2 = Rr_util.P2
module Live = Rr_engine.Live

type report = {
  proto : string;
  clients : int;
  batch : int;
  jobs : int;
  ops : int;
  replies : int;
  wall_s : float;
  events_per_s : float;
  lat_p50_us : float;
  lat_p90_us : float;
  lat_p99_us : float;
  final_stats : Live.stats;
}

type lat = { p50 : P2.t; p90 : P2.t; p99 : P2.t }

let lat_create () =
  { p50 = P2.create ~p:0.5 (); p90 = P2.create ~p:0.9 (); p99 = P2.create ~p:0.99 () }

let lat_add l dt =
  P2.add l.p50 dt;
  P2.add l.p90 dt;
  P2.add l.p99 dt

(* Sleep however long keeps [ops] wire events under [rate] events/s. *)
let pace ~rate ~t_start ~ops =
  match rate with
  | None -> ()
  | Some r ->
      let due = Float.of_int ops /. r in
      let elapsed = Unix.gettimeofday () -. t_start in
      if due > elapsed then Unix.sleepf (due -. elapsed)

let observer_poll_every = 16

(* ------------------------------------------------------------------ *)
(* Binary path                                                         *)
(* ------------------------------------------------------------------ *)

let run_binary ~path ~clients ~batch ~rate ~shutdown ~stream =
  let feeder = Client.connect path in
  let observers = List.init (clients - 1) (fun _ -> Client.connect path) in
  let next = Rr_workload.Instance.Stream.start stream in
  let arrivals = Array.make batch 0. and sizes = Array.make batch 0. in
  let lat = lat_create () in
  let ops = ref 0 and replies = ref 0 and jobs = ref 0 and rounds = ref 0 in
  let t_start = Unix.gettimeofday () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    lat_add lat (Unix.gettimeofday () -. t0);
    incr replies;
    r
  in
  let rec fill i =
    if i >= batch then i
    else
      match next () with
      | None -> i
      | Some (j : Rr_engine.Job.t) ->
          arrivals.(i) <- j.arrival;
          sizes.(i) <- j.size;
          fill (i + 1)
  in
  let continue = ref true in
  while !continue do
    let len = fill 0 in
    if len = 0 then continue := false
    else begin
      ignore (timed (fun () -> Client.submit_batch feeder ~arrivals ~sizes ~len ()) : int);
      jobs := !jobs + len;
      ops := !ops + len;
      ignore (timed (fun () -> Client.advance feeder arrivals.(len - 1)) : float * int * int);
      incr ops;
      incr rounds;
      if !rounds mod observer_poll_every = 0 then
        List.iter
          (fun o ->
            ignore (timed (fun () -> Client.stats o) : Live.stats);
            incr ops)
          observers;
      pace ~rate ~t_start ~ops:!ops
    end
  done;
  ignore (timed (fun () -> Client.drain feeder) : float * int * int);
  incr ops;
  let final_stats = timed (fun () -> Client.stats feeder) in
  incr ops;
  let wall_s = Unix.gettimeofday () -. t_start in
  List.iter Client.bye observers;
  if shutdown then Client.shutdown feeder else Client.bye feeder;
  (lat, !jobs, !ops, !replies, wall_s, final_stats)

(* ------------------------------------------------------------------ *)
(* Text path                                                           *)
(* ------------------------------------------------------------------ *)

let parse_stats_line line : Live.stats =
  let tbl = Hashtbl.create 16 in
  String.split_on_char ' ' (String.trim line)
  |> List.iter (fun tok ->
         match String.index_opt tok '=' with
         | Some i ->
             Hashtbl.replace tbl
               (String.sub tok 0 i)
               (String.sub tok (i + 1) (String.length tok - i - 1))
         | None -> ());
  let f name = match Hashtbl.find_opt tbl name with Some v -> float_of_string v | None -> 0. in
  let i name = match Hashtbl.find_opt tbl name with Some v -> int_of_string v | None -> 0 in
  {
    submitted = i "submitted";
    completed = i "completed";
    alive = i "alive";
    pending = i "pending";
    now = f "now";
    events = i "events";
    makespan = f "makespan";
    max_alive = i "max_alive";
    mean_flow = f "mean_flow";
    max_flow = f "max_flow";
    power_sum = f "power_sum";
    norm = f "norm";
    p50 = f "p50";
    p90 = f "p90";
    p99 = f "p99";
  }

(* Same bind-race tolerance as Client.connect: a fresh socket per
   attempt (a descriptor that failed connect is not reusable
   everywhere), 20 ms between attempts. *)
let rec connect_text ?(retries = 100) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when retries > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      connect_text ~retries:(retries - 1) path

let run_text ~path ~batch ~rate ~shutdown ~stream =
  let fd = connect_text path in
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let lat = lat_create () in
  let ops = ref 0 and replies = ref 0 and jobs = ref 0 in
  let t_start = Unix.gettimeofday () in
  let exchange line =
    let t0 = Unix.gettimeofday () in
    Out_channel.output_string oc line;
    Out_channel.output_char oc '\n';
    Out_channel.flush oc;
    let reply = match In_channel.input_line ic with Some r -> r | None -> failwith "EOF" in
    lat_add lat (Unix.gettimeofday () -. t0);
    incr ops;
    incr replies;
    if String.length reply >= 3 && String.sub reply 0 3 = "ERR" then failwith reply;
    reply
  in
  let next = Rr_workload.Instance.Stream.start stream in
  let in_round = ref 0 and last_arrival = ref 0. in
  let continue = ref true in
  while !continue do
    match next () with
    | None -> continue := false
    | Some (j : Rr_engine.Job.t) ->
        ignore (exchange (Printf.sprintf "SUBMIT %.17g %.17g" j.arrival j.size) : string);
        incr jobs;
        last_arrival := j.arrival;
        incr in_round;
        if !in_round >= batch then begin
          ignore (exchange (Printf.sprintf "ADVANCE %.17g" !last_arrival) : string);
          in_round := 0;
          pace ~rate ~t_start ~ops:!ops
        end
  done;
  ignore (exchange "DRAIN" : string);
  let final_stats = parse_stats_line (exchange "STATS") in
  let wall_s = Unix.gettimeofday () -. t_start in
  if shutdown then ignore (exchange "QUIT" : string);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (lat, !jobs, !ops, !replies, wall_s, final_stats)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ~path ~proto ?(clients = 1) ?(batch = 512) ?rate ?(machines = 1) ?(seed = 1)
    ?(sizes = Rr_workload.Distribution.Exponential { mean = 1. }) ?(load = 0.9)
    ?(shutdown = false) ~n () =
  if clients < 1 then invalid_arg "Loadgen.run: clients must be >= 1";
  if batch < 1 || batch > Frame.max_batch then
    invalid_arg (Printf.sprintf "Loadgen.run: batch must be in 1..%d" Frame.max_batch);
  let stream =
    Rr_workload.Instance.Stream.generate_load ~seed ~sizes ~load ~machines ~n ()
  in
  let lat, jobs, ops, replies, wall_s, final_stats =
    match proto with
    | `Binary -> run_binary ~path ~clients ~batch ~rate ~shutdown ~stream
    | `Text ->
        let lat, jobs, ops, replies, wall_s, final_stats =
          run_text ~path ~batch ~rate ~shutdown ~stream
        in
        (lat, jobs, ops, replies, wall_s, final_stats)
  in
  let us p2 = 1e6 *. P2.value p2 in
  {
    proto = (match proto with `Binary -> "binary" | `Text -> "text");
    clients = (match proto with `Binary -> clients | `Text -> 1);
    batch;
    jobs;
    ops;
    replies;
    wall_s;
    events_per_s = Float.of_int ops /. Float.max 1e-9 wall_s;
    lat_p50_us = us lat.p50;
    lat_p90_us = us lat.p90;
    lat_p99_us = us lat.p99;
    final_stats;
  }
