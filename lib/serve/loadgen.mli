(** Load generator for the serving layer: replay a seed-replayable
    workload ({!Rr_workload.Instance.Stream}) against a running server
    socket and report the achieved wire throughput and reply latency.

    One feeder connection submits jobs — BATCH frames of [batch] jobs on
    the binary path, one SUBMIT line per job on the text path — and
    advances the clock to each batch's last arrival; optional extra
    connections ([clients - 1]) poll STATS concurrently, exercising the
    server's multiplexing.  (Submissions stay on one connection because
    the engine requires globally non-decreasing arrivals; observers are
    how additional clients share the socket.)

    Every request/reply round trip feeds a P-squared latency sketch
    ({!Rr_util.P2}), so the report's percentiles are O(1)-memory
    estimates over {e all} exchanges, feeder and observers alike. *)

type report = {
  proto : string;  (** ["binary"] or ["text"]. *)
  clients : int;  (** Connections opened (1 feeder + observers). *)
  batch : int;  (** Submits per BATCH frame (1 on the text path). *)
  jobs : int;  (** Jobs submitted. *)
  ops : int;  (** Wire operations: submits + advances + stats + drain. *)
  replies : int;  (** Replies received (one per round trip). *)
  wall_s : float;
  events_per_s : float;  (** [ops /. wall_s]. *)
  lat_p50_us : float;  (** Round-trip latency sketch estimates, microseconds. *)
  lat_p90_us : float;
  lat_p99_us : float;
  final_stats : Rr_engine.Live.stats;  (** Server STATS after the drain. *)
}

val run :
  path:string ->
  proto:[ `Binary | `Text ] ->
  ?clients:int ->
  ?batch:int ->
  ?rate:float ->
  ?machines:int ->
  ?seed:int ->
  ?sizes:Rr_workload.Distribution.t ->
  ?load:float ->
  ?shutdown:bool ->
  n:int ->
  unit ->
  report
(** Drive the server at [path] with [n] jobs from the
    [Instance.Stream.generate_load] workload named by
    [seed]/[sizes]/[load]/[machines] (defaults: 1 client, batch 512,
    unthrottled, 1 machine, seed 1, Exp(1) sizes, load 0.9).  [rate]
    caps offered load at that many wire events per second (sleeping
    between rounds); omitted means as fast as the socket allows.
    [shutdown] (default false) stops the whole server afterwards
    (SHUTDOWN frame / QUIT line) — otherwise the feeder says BYE (binary)
    or just disconnects (text) and the server keeps running.
    @raise Client.Server_error / @raise Unix.Unix_error on wire faults. *)
