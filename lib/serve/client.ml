(* Blocking binary-protocol client.  Requests are built in a write ring
   and flushed whole; replies are read into a read ring until one full
   frame is available, then decoded in place.  Both rings are reused
   across calls, so a steady request stream allocates nothing per
   exchange beyond what the caller asks for (snapshot bytes). *)

type t = { fd : Unix.file_descr; rd : Ring.t; wr : Ring.t }

exception Server_error of string

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all t =
  while not (Ring.is_empty t.wr) do
    match Ring.write_to_fd t.wr t.fd with
    | `Wrote _ | `Again -> ()
    | `Closed -> raise (Server_error "connection closed by server")
  done

(* Block until [n] readable bytes are buffered. *)
let rec fill t n =
  if Ring.length t.rd < n then
    match Ring.read_from_fd t.rd t.fd with
    | `Read _ | `Again -> fill t n
    | `Eof -> raise (Server_error "connection closed by server")

(* One reply frame: returns (op, payload offset, payload length); the
   offsets point into [Ring.buf t.rd] and are valid until the frame is
   consumed (callers decode, then [finish]). *)
let read_frame t =
  fill t Frame.header_size;
  match Frame.parse_header (Ring.buf t.rd) (Ring.pos t.rd) with
  | Error msg -> raise (Server_error ("corrupt reply header: " ^ msg))
  | Ok (op, plen) ->
      fill t (Frame.header_size + plen);
      (op, Ring.pos t.rd + Frame.header_size, plen)

let finish t plen = Ring.consume t.rd (Frame.header_size + plen)

let expect t want =
  let op, p, plen = read_frame t in
  if op = Frame.op_err then begin
    let msg = Bytes.sub_string (Ring.buf t.rd) p plen in
    finish t plen;
    raise (Server_error msg)
  end;
  if op <> want then begin
    finish t plen;
    raise
      (Server_error
         (Printf.sprintf "expected %s reply, got %s" (Frame.op_name want) (Frame.op_name op)))
  end;
  (p, plen)

let connect ?(retries = 100) path =
  (match Sys.os_type with
  | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.02;
        go (attempt + 1)
  in
  let fd = go 0 in
  let t = { fd; rd = Ring.create ~capacity:8192 (); wr = Ring.create ~capacity:8192 () } in
  Ring.add_string t.wr Frame.hello;
  write_all t;
  (* The server answers with its own hello — or an ERR frame (busy).
     Both start with 8 bytes; disambiguate on the first byte, which is
     'R' for a hello and an opcode byte for a frame. *)
  fill t Frame.hello_len;
  if Frame.hello_matches (Ring.buf t.rd) (Ring.pos t.rd) then begin
    Ring.consume t.rd Frame.hello_len;
    t
  end
  else begin
    match read_frame t with
    | op, p, plen when op = Frame.op_err ->
        let msg = Bytes.sub_string (Ring.buf t.rd) p plen in
        close t;
        raise (Server_error msg)
    | _ ->
        close t;
        failwith "Client.connect: server did not speak the RRSV protocol"
  end

let submit t ~arrival ~size =
  Frame.put_submit t.wr ~arrival ~size;
  write_all t;
  let p, plen = expect t Frame.op_ok_id in
  let id = Frame.get_u64 (Ring.buf t.rd) p in
  finish t plen;
  id

let submit_batch t ~arrivals ~sizes ?(off = 0) ?len () =
  let len = match len with Some l -> l | None -> Array.length arrivals - off in
  Frame.put_batch t.wr ~arrivals ~sizes ~off ~len;
  write_all t;
  let p, plen = expect t Frame.op_ok_id in
  let first = Frame.get_u64 (Ring.buf t.rd) p in
  finish t plen;
  first

let ok_now t =
  let p, plen = expect t Frame.op_ok_now in
  let b = Ring.buf t.rd in
  let now = Frame.get_f64 b p in
  let completed = Frame.get_u64 b (p + 8) in
  let alive = Frame.get_u64 b (p + 16) in
  finish t plen;
  (now, completed, alive)

let advance t horizon =
  Frame.put_advance t.wr horizon;
  write_all t;
  ok_now t

let drain t =
  Frame.put_empty t.wr ~op:Frame.op_drain;
  write_all t;
  ok_now t

let stats t =
  Frame.put_empty t.wr ~op:Frame.op_stats;
  write_all t;
  let p, plen = expect t Frame.op_ok_stats in
  if plen <> Frame.stats_size then begin
    finish t plen;
    raise (Server_error "malformed STATS reply")
  end;
  let s = Frame.stats_of_payload (Ring.buf t.rd) p in
  finish t plen;
  s

let snapshot t =
  Frame.put_empty t.wr ~op:Frame.op_snapshot;
  write_all t;
  let p, plen = expect t Frame.op_ok_snapshot in
  let b = Bytes.sub (Ring.buf t.rd) p plen in
  finish t plen;
  b

let restore t bytes =
  Frame.put_payload t.wr ~op:Frame.op_restore bytes;
  write_all t;
  let _, plen = expect t Frame.op_ok in
  finish t plen

let bye t =
  Frame.put_empty t.wr ~op:Frame.op_bye;
  write_all t;
  (let _, plen = expect t Frame.op_ok in
   finish t plen);
  close t

let shutdown t =
  Frame.put_empty t.wr ~op:Frame.op_shutdown;
  write_all t;
  (let _, plen = expect t Frame.op_ok in
   finish t plen);
  close t

let send_raw t b =
  Ring.add_subbytes t.wr b 0 (Bytes.length b);
  write_all t
