(** The text line protocol of [rr_cli serve] — the original stdio
    protocol, kept as the human-debuggable escape hatch behind
    [--proto text] (the binary framed protocol in {!Frame}/{!Server} is
    the production path).

    One request per line, one reply per line; replies start with [OK] or
    [ERR].  A faulting request (bad arguments, exhausted event budget,
    unreadable snapshot) answers [ERR] and leaves the session running.
    Trailing ['\r'] (CRLF clients: telnet, netcat) and embedded tabs are
    treated as token separators, so CRLF and LF clients see the same
    protocol. *)

type outcome =
  | Silent  (** Blank line: no reply. *)
  | Reply of string
  | Quit  (** [QUIT]: reply [OK bye], then end the session. *)

val handle : Rr_engine.Live.t ref -> string -> outcome
(** Parse and execute one request line against the engine.  [RESTORE]
    replaces the engine in the ref; everything else mutates in place. *)

val stats_line : Rr_engine.Live.stats -> string
(** The one-line [STATS] reply ([%.17g] floats, round-trippable). *)

val run_channels : Rr_engine.Live.t ref -> in_channel -> out_channel -> bool
(** Serve one blocking session over channels (the stdio mode); returns
    [true] on QUIT, [false] on EOF. *)
