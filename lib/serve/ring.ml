(* Grow-on-demand byte queue with a contiguous readable region.  See
   ring.mli for the contract.  [pos] is the dead-prefix length; live
   bytes occupy [pos .. pos + len - 1].  Compaction (shift-to-front)
   happens only inside [reserve], so any offset handed out by [alloc]
   stays valid until the next reserve/alloc — the frame writers rely on
   that to fill headers and payloads in place. *)

type t = { mutable buf : Bytes.t; mutable pos : int; mutable len : int }

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Bytes.create capacity; pos = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  t.pos <- 0;
  t.len <- 0

let buf t = t.buf
let pos t = t.pos

let reserve t extra =
  if extra < 0 then invalid_arg "Ring.reserve: negative size";
  let cap = Bytes.length t.buf in
  if t.pos + t.len + extra > cap then
    if t.len + extra <= cap then begin
      (* The dead prefix alone frees enough space: compact in place. *)
      Bytes.blit t.buf t.pos t.buf 0 t.len;
      t.pos <- 0
    end
    else begin
      let cap' = ref (Int.max 16 cap) in
      while t.len + extra > !cap' do
        cap' := !cap' * 2
      done;
      let b = Bytes.create !cap' in
      Bytes.blit t.buf t.pos b 0 t.len;
      t.buf <- b;
      t.pos <- 0
    end

let alloc t n =
  reserve t n;
  let off = t.pos + t.len in
  t.len <- t.len + n;
  off

let add_substring t s off len =
  let dst = alloc t len in
  Bytes.blit_string s off t.buf dst len

let add_string t s = add_substring t s 0 (String.length s)

let add_char t c =
  let dst = alloc t 1 in
  Bytes.set t.buf dst c

let add_subbytes t b off len =
  let dst = alloc t len in
  Bytes.blit b off t.buf dst len

let consume t n =
  if n < 0 || n > t.len then invalid_arg "Ring.consume: out of range";
  t.pos <- t.pos + n;
  t.len <- t.len - n;
  if t.len = 0 then t.pos <- 0

let read_from_fd ?(chunk = 65536) t fd =
  reserve t chunk;
  match Unix.read fd t.buf (t.pos + t.len) chunk with
  | 0 -> `Eof
  | n ->
      t.len <- t.len + n;
      `Read n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again

let write_to_fd t fd =
  match Unix.write fd t.buf t.pos t.len with
  | n ->
      consume t n;
      `Wrote n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> `Closed
