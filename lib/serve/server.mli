(** Multiplexed multi-client serving loop for [rr_cli serve].

    One engine, one thread, many clients: a single [Unix.select] loop
    over non-blocking descriptors accepts concurrent connections and
    drives each through per-connection grow-on-demand read/write rings
    ({!Ring}), so a slow or half-closed client never blocks the others.

    Two protocols share the loop:

    - [Binary] — the length-prefixed framed protocol ({!Frame},
      PROTOCOL.md): zero-copy parse out of the read ring, batched
      submits (up to {!Frame.max_batch} jobs per frame), snapshot bytes
      over the wire, any number of concurrent clients (up to
      [max_clients]), server shutdown via the SHUTDOWN frame.
    - [Text] — the line protocol ({!Session}): one client at a time
      (the engine is a single sequential simulation; interleaving text
      clients would be order-fragile), extra connections answered with
      an explicit [ERR busy] line and closed instead of queueing
      silently, daemon exit on [QUIT].

    Flow control: partial writes resume when [select] reports the
    descriptor writable again; a connection whose un-drained replies
    exceed [max_pending] bytes is shed (closed and dropped — the
    documented policy for a consumer that stops reading).  A client
    disconnecting mid-frame (or mid-batch) simply discards its buffered
    partial input; other sessions and the engine are untouched.

    Engine faults (bad arguments, exhausted event budget, unreadable
    snapshots) answer an ERR frame/line and leave the connection open;
    protocol corruption (bad hello, unknown opcode, nonzero reserved
    bytes, oversized or malformed frame) answers ERR and closes that
    connection. *)

type proto = Binary | Text

type config = {
  backlog : int;  (** [listen] backlog (default 64). *)
  max_clients : int;
      (** Concurrent connections before new ones are turned away
          (default 64; [Text] mode always serves one at a time). *)
  max_frame_payload : int;
      (** Largest accepted frame payload in bytes (default 64 MiB —
          ample for a BATCH of {!Frame.max_batch} and for RESTORE
          payloads); larger frames answer ERR and close. *)
  max_pending : int;
      (** Shed threshold: pending reply bytes before a non-reading
          client is disconnected (default 64 MiB). *)
}

val default_config : config

val run :
  ?config:config ->
  proto:proto ->
  engine:Rr_engine.Live.t ref ->
  path:string ->
  unit ->
  unit
(** Bind a Unix domain socket at [path] (unlinking any stale one),
    serve until a BYE-initiated shutdown ([Binary]: SHUTDOWN frame;
    [Text]: QUIT line), then flush pending replies, close every
    connection and unlink [path].  The engine persists across client
    connects and disconnects; RESTORE replaces the value in the ref.
    SIGPIPE is ignored process-wide (writes to dead peers surface as
    [EPIPE] results instead of killing the daemon). *)
