(* The text line protocol of [rr_cli serve]: one request per line, one
   reply per line, replies starting OK or ERR.  This is the original
   stdio protocol, kept verbatim as the debuggability escape hatch
   behind [--proto text] — the binary framed protocol (frame.ml,
   server.ml) is the production path.

   Lines from interactive tools (telnet, netcat in CRLF mode) arrive
   with a trailing '\r' and sometimes embedded '\t'; both are folded
   into token separators before parsing so a CRLF client sees the same
   protocol as an LF one (regression-pinned in test_serve.ml).

   Numbers print with %.17g so a client can round-trip every float. *)

module Live = Rr_engine.Live

type outcome = Silent | Reply of string | Quit

let stats_line (s : Live.stats) =
  Printf.sprintf
    "OK submitted=%d completed=%d alive=%d pending=%d now=%.17g events=%d makespan=%.17g \
     max_alive=%d mean_flow=%.17g max_flow=%.17g power_sum=%.17g norm=%.17g p50=%.17g \
     p90=%.17g p99=%.17g"
    s.submitted s.completed s.alive s.pending s.now s.events s.makespan s.max_alive s.mean_flow
    s.max_flow s.power_sum s.norm s.p50 s.p90 s.p99

(* One request -> Reply / Quit / Silent (blank line).  Engine faults
   (bad arguments, event budget, unreadable snapshots) become ERR replies
   so one bad request never kills the session. *)
let handle (engine : Live.t ref) line =
  let normalized =
    String.map (function '\r' | '\t' -> ' ' | c -> c) (String.trim line)
  in
  let parts = String.split_on_char ' ' normalized |> List.filter (fun s -> s <> "") in
  match parts with
  | [] -> Silent
  | verb :: args -> (
      let reply =
        try
          match (String.uppercase_ascii verb, args) with
          | "SUBMIT", [ t; size ] -> (
              match (float_of_string_opt t, float_of_string_opt size) with
              | Some arrival, Some size ->
                  Printf.sprintf "OK %d" (Live.submit !engine ~arrival ~size)
              | _ -> "ERR usage: SUBMIT <arrival> <size>")
          | "ADVANCE", [ t ] -> (
              match float_of_string_opt t with
              | Some horizon ->
                  Live.advance !engine horizon;
                  let s = Live.query !engine in
                  Printf.sprintf "OK now=%.17g completed=%d alive=%d" s.Live.now
                    s.Live.completed s.Live.alive
              | None -> "ERR usage: ADVANCE <time>")
          | "DRAIN", [] ->
              Live.drain !engine;
              let s = Live.query !engine in
              Printf.sprintf "OK now=%.17g completed=%d" s.Live.now s.Live.completed
          | "STATS", [] -> stats_line (Live.query !engine)
          | "SNAPSHOT", [ path ] ->
              Live.save !engine path;
              "OK"
          | "RESTORE", [ path ] ->
              engine := Live.load path;
              "OK"
          | "QUIT", [] -> ""
          | verb, _ -> Printf.sprintf "ERR unknown command %s" verb
        with
        | Invalid_argument msg | Failure msg -> "ERR " ^ msg
        | Sys_error msg -> "ERR " ^ msg
        | Rr_engine.Simulator.Event_limit_exceeded { limit; now } ->
            Printf.sprintf "ERR event budget exhausted: %d events by t = %g" limit now
      in
      if String.uppercase_ascii verb = "QUIT" && args = [] then Quit else Reply reply)

(* Channel-driven session for the stdio mode.  Returns [true] when the
   client said QUIT (as opposed to EOF). *)
let run_channels engine ic oc =
  let reply r =
    Out_channel.output_string oc r;
    Out_channel.output_char oc '\n';
    Out_channel.flush oc
  in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> false
    | Some line -> (
        match handle engine line with
        | Silent -> loop ()
        | Reply r ->
            reply r;
            loop ()
        | Quit ->
            reply "OK bye";
            true)
  in
  loop ()
