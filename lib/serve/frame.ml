(* Binary frame codec.  See frame.mli and PROTOCOL.md.

   Everything is fixed-width little-endian out of/into a Ring's backing
   buffer: decode never allocates (floats come straight off the wire via
   Int64.float_of_bits), encode allocates only when the write ring has
   to grow.  The STATS field order is exactly the Live.stats record
   order, so the layout and the record cannot drift apart silently —
   test_serve pins the round trip bit-for-bit. *)

let version = 1
let hello_len = 8

let hello =
  let b = Bytes.create hello_len in
  Bytes.blit_string "RRSV" 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int version);
  Bytes.to_string b

let hello_matches b off =
  Bytes.length b - off >= hello_len && String.equal (Bytes.sub_string b off hello_len) hello

let op_submit = 0x01
let op_batch = 0x02
let op_advance = 0x03
let op_drain = 0x04
let op_stats = 0x05
let op_snapshot = 0x06
let op_restore = 0x07
let op_bye = 0x08
let op_shutdown = 0x09
let op_ok = 0x81
let op_ok_id = 0x82
let op_ok_now = 0x83
let op_ok_stats = 0x84
let op_ok_snapshot = 0x85
let op_err = 0xFF

let op_name = function
  | 0x01 -> "SUBMIT"
  | 0x02 -> "BATCH"
  | 0x03 -> "ADVANCE"
  | 0x04 -> "DRAIN"
  | 0x05 -> "STATS"
  | 0x06 -> "SNAPSHOT"
  | 0x07 -> "RESTORE"
  | 0x08 -> "BYE"
  | 0x09 -> "SHUTDOWN"
  | 0x81 -> "OK"
  | 0x82 -> "OK_ID"
  | 0x83 -> "OK_NOW"
  | 0x84 -> "OK_STATS"
  | 0x85 -> "OK_SNAPSHOT"
  | 0xFF -> "ERR"
  | op -> Printf.sprintf "op_0x%02X" op

let max_batch = 65536
let header_size = 8

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)
let get_f64 b off = Int64.float_of_bits (Bytes.get_int64_le b off)

let parse_header b off =
  let op = Char.code (Bytes.get b off) in
  if Bytes.get b (off + 1) <> '\000' || Bytes.get b (off + 2) <> '\000'
     || Bytes.get b (off + 3) <> '\000'
  then Error "nonzero reserved header bytes"
  else Ok (op, get_u32 b (off + 4))

(* Writers: one Ring.alloc for the whole frame, fields filled in place. *)

let start ring ~op ~payload_len =
  let off = Ring.alloc ring (header_size + payload_len) in
  let b = Ring.buf ring in
  Bytes.set b off (Char.chr op);
  Bytes.set b (off + 1) '\000';
  Bytes.set b (off + 2) '\000';
  Bytes.set b (off + 3) '\000';
  Bytes.set_int32_le b (off + 4) (Int32.of_int payload_len);
  off + header_size

let set_f64 b off v = Bytes.set_int64_le b off (Int64.bits_of_float v)
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let put_empty ring ~op = ignore (start ring ~op ~payload_len:0 : int)

let put_submit ring ~arrival ~size =
  let p = start ring ~op:op_submit ~payload_len:16 in
  let b = Ring.buf ring in
  set_f64 b p arrival;
  set_f64 b (p + 8) size

let put_batch ring ~arrivals ~sizes ~off ~len =
  if len < 1 || len > max_batch then invalid_arg "Frame.put_batch: count out of range";
  let p = start ring ~op:op_batch ~payload_len:(4 + (16 * len)) in
  let b = Ring.buf ring in
  Bytes.set_int32_le b p (Int32.of_int len);
  for i = 0 to len - 1 do
    set_f64 b (p + 4 + (16 * i)) arrivals.(off + i);
    set_f64 b (p + 12 + (16 * i)) sizes.(off + i)
  done

let put_advance ring horizon =
  let p = start ring ~op:op_advance ~payload_len:8 in
  set_f64 (Ring.buf ring) p horizon

let put_ok_id ring ~first_id ~count =
  let p = start ring ~op:op_ok_id ~payload_len:12 in
  let b = Ring.buf ring in
  set_u64 b p first_id;
  Bytes.set_int32_le b (p + 8) (Int32.of_int count)

let put_ok_now ring ~now ~completed ~alive =
  let p = start ring ~op:op_ok_now ~payload_len:24 in
  let b = Ring.buf ring in
  set_f64 b p now;
  set_u64 b (p + 8) completed;
  set_u64 b (p + 16) alive

let stats_size = 120

let put_stats ring (s : Rr_engine.Live.stats) =
  let p = start ring ~op:op_ok_stats ~payload_len:stats_size in
  let b = Ring.buf ring in
  set_u64 b p s.submitted;
  set_u64 b (p + 8) s.completed;
  set_u64 b (p + 16) s.alive;
  set_u64 b (p + 24) s.pending;
  set_f64 b (p + 32) s.now;
  set_u64 b (p + 40) s.events;
  set_f64 b (p + 48) s.makespan;
  set_u64 b (p + 56) s.max_alive;
  set_f64 b (p + 64) s.mean_flow;
  set_f64 b (p + 72) s.max_flow;
  set_f64 b (p + 80) s.power_sum;
  set_f64 b (p + 88) s.norm;
  set_f64 b (p + 96) s.p50;
  set_f64 b (p + 104) s.p90;
  set_f64 b (p + 112) s.p99

let stats_of_payload b p : Rr_engine.Live.stats =
  {
    submitted = get_u64 b p;
    completed = get_u64 b (p + 8);
    alive = get_u64 b (p + 16);
    pending = get_u64 b (p + 24);
    now = get_f64 b (p + 32);
    events = get_u64 b (p + 40);
    makespan = get_f64 b (p + 48);
    max_alive = get_u64 b (p + 56);
    mean_flow = get_f64 b (p + 64);
    max_flow = get_f64 b (p + 72);
    power_sum = get_f64 b (p + 80);
    norm = get_f64 b (p + 88);
    p50 = get_f64 b (p + 96);
    p90 = get_f64 b (p + 104);
    p99 = get_f64 b (p + 112);
  }

let put_payload ring ~op payload =
  let n = Bytes.length payload in
  let p = start ring ~op ~payload_len:n in
  Bytes.blit payload 0 (Ring.buf ring) p n

let put_err ring msg =
  let n = String.length msg in
  let p = start ring ~op:op_err ~payload_len:n in
  Bytes.blit_string msg 0 (Ring.buf ring) p n
