(** Grow-on-demand byte queues for the serving layer.

    A ring is a FIFO of bytes whose readable region is always {e one
    contiguous slice} of the backing buffer — [buf r] at [pos r],
    [length r] bytes — so the frame parser can decode fixed-width fields
    straight out of the buffer with no per-frame copy.  Contiguity is
    kept by shifting the live bytes back to offset 0 whenever the dead
    prefix alone would satisfy a {!reserve} (amortized O(1) per byte),
    and by doubling the buffer otherwise.

    Each connection owns one read ring (socket -> parser) and one write
    ring (replies -> socket); both survive for the connection's lifetime
    and are reused across every frame, so the steady state allocates
    nothing per event. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty ring backed by [capacity] (default 4096) bytes. *)

val length : t -> int
(** Readable bytes currently queued. *)

val is_empty : t -> bool

val clear : t -> unit
(** Drop every queued byte (the backing buffer is kept). *)

val buf : t -> Bytes.t
(** The backing buffer.  Valid only until the next {!reserve}, {!alloc}
    or [add_*]; the readable slice is [pos t .. pos t + length t - 1]. *)

val pos : t -> int
(** Offset of the first readable byte in {!buf}. *)

val reserve : t -> int -> unit
(** [reserve t n] guarantees [n] bytes of tail space after the readable
    region, compacting or growing as needed. *)

val alloc : t -> int -> int
(** [alloc t n] appends [n] {e uninitialized} bytes and returns the
    offset in {!buf} where the caller must write them (the offset stays
    valid until the next reserve/alloc).  The frame writers use this to
    build replies in place. *)

val add_substring : t -> string -> int -> int -> unit
val add_string : t -> string -> unit
val add_char : t -> char -> unit
val add_subbytes : t -> Bytes.t -> int -> int -> unit

val consume : t -> int -> unit
(** Drop [n] bytes from the front.
    @raise Invalid_argument when [n] exceeds {!length}. *)

val read_from_fd : ?chunk:int -> t -> Unix.file_descr -> [ `Read of int | `Eof | `Again ]
(** Read up to [chunk] (default 65536) bytes from [fd] into the tail.
    [`Again] covers [EAGAIN]/[EWOULDBLOCK]/[EINTR] on a non-blocking
    descriptor; [`Eof] is an orderly zero-byte read. *)

val write_to_fd : t -> Unix.file_descr -> [ `Wrote of int | `Again | `Closed ]
(** Write the readable region to [fd], consuming whatever the kernel
    accepted (partial writes resume on the next call).  [`Closed] covers
    [EPIPE]/[ECONNRESET] — the peer is gone. *)
