(* Multiplexed serving loop.  See server.mli for the contract.

   Single-threaded by design: the engine is one sequential simulation,
   so the win is not parallel dispatch but keeping the wire out of the
   engine's way — reads and writes are batched through per-connection
   rings, frames decode in place out of the read ring, BATCH frames
   amortize up to 64Ki submits per syscall, and select wakes the loop
   only when a descriptor actually has work.  Every connection owns its
   two rings for its whole lifetime, so steady-state traffic allocates
   nothing per event on the server side.

   Failure discipline mirrors the text protocol: engine faults answer
   ERR and keep the connection; protocol corruption answers ERR and
   closes it; a mid-frame disconnect discards only that connection's
   buffered bytes. *)

module Live = Rr_engine.Live

type proto = Binary | Text

type config = {
  backlog : int;
  max_clients : int;
  max_frame_payload : int;
  max_pending : int;
}

let default_config =
  {
    backlog = 64;
    max_clients = 64;
    max_frame_payload = 64 * 1024 * 1024;
    max_pending = 64 * 1024 * 1024;
  }

type conn = {
  fd : Unix.file_descr;
  rd : Ring.t;
  wr : Ring.t;
  mutable greeted : bool;  (* binary hello exchanged *)
  mutable read_closed : bool;  (* peer sent EOF: flush replies, then close *)
  mutable closing : bool;  (* stop reading; close once [wr] drains *)
  mutable dead : bool;  (* close at the next reap, replies dropped *)
}

(* Reusable decode scratch for BATCH frames: the wire floats land in
   unboxed float arrays handed straight to [Live.submit_batch], so a
   batch costs zero per-job heap allocation on the way in. *)
type scratch = { mutable arrivals : float array; mutable sizes : float array }

let scratch_reserve s n =
  if Array.length s.arrivals < n then begin
    let cap = ref (Int.max 1024 (Array.length s.arrivals)) in
    while !cap < n do
      cap := !cap * 2
    done;
    s.arrivals <- Array.make !cap 0.;
    s.sizes <- Array.make !cap 0.
  end

(* ------------------------------------------------------------------ *)
(* Binary dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let engine_error_message = function
  | Invalid_argument m | Failure m | Sys_error m -> Some m
  | Rr_engine.Simulator.Event_limit_exceeded { limit; now } ->
      Some (Printf.sprintf "event budget exhausted: %d events by t = %g" limit now)
  | _ -> None

(* Run one engine operation; faults become ERR replies on [wr] and the
   connection stays open (same contract as the text protocol). *)
let guarded wr f =
  try f () with
  | e when engine_error_message e <> None ->
      Frame.put_err wr (Option.get (engine_error_message e))

let dispatch_binary ~config ~engine ~scratch ~stop conn op p plen =
  let rdbuf = Ring.buf conn.rd in
  let wr = conn.wr in
  let proto_err msg =
    Frame.put_err wr msg;
    conn.closing <- true
  in
  if op = Frame.op_submit then
    if plen <> 16 then proto_err "SUBMIT payload must be 16 bytes"
    else
      let arrival = Frame.get_f64 rdbuf p and size = Frame.get_f64 rdbuf (p + 8) in
      guarded wr (fun () ->
          let id = Live.submit !engine ~arrival ~size in
          Frame.put_ok_id wr ~first_id:id ~count:1)
  else if op = Frame.op_batch then
    if plen < 4 then proto_err "BATCH payload too short"
    else
      let count = Frame.get_u32 rdbuf p in
      if count < 1 || count > Frame.max_batch then
        proto_err (Printf.sprintf "BATCH count %d out of range 1..%d" count Frame.max_batch)
      else if plen <> 4 + (16 * count) then
        proto_err
          (Printf.sprintf "BATCH payload %d bytes does not match count %d" plen count)
      else begin
        scratch_reserve scratch count;
        let arrivals = scratch.arrivals and sizes = scratch.sizes in
        for i = 0 to count - 1 do
          arrivals.(i) <- Frame.get_f64 rdbuf (p + 4 + (16 * i));
          sizes.(i) <- Frame.get_f64 rdbuf (p + 12 + (16 * i))
        done;
        guarded wr (fun () ->
            let first = Live.submit_batch !engine ~arrivals ~sizes ~len:count () in
            Frame.put_ok_id wr ~first_id:first ~count)
      end
  else if op = Frame.op_advance then
    if plen <> 8 then proto_err "ADVANCE payload must be 8 bytes"
    else
      let horizon = Frame.get_f64 rdbuf p in
      guarded wr (fun () ->
          Live.advance !engine horizon;
          let s = Live.query !engine in
          Frame.put_ok_now wr ~now:s.Live.now ~completed:s.Live.completed ~alive:s.Live.alive)
  else if op = Frame.op_drain then
    if plen <> 0 then proto_err "DRAIN carries no payload"
    else
      guarded wr (fun () ->
          Live.drain !engine;
          let s = Live.query !engine in
          Frame.put_ok_now wr ~now:s.Live.now ~completed:s.Live.completed ~alive:s.Live.alive)
  else if op = Frame.op_stats then
    if plen <> 0 then proto_err "STATS carries no payload"
    else Frame.put_stats wr (Live.query !engine)
  else if op = Frame.op_snapshot then
    if plen <> 0 then proto_err "SNAPSHOT carries no payload"
    else guarded wr (fun () -> Frame.put_payload wr ~op:Frame.op_ok_snapshot (Live.to_bytes !engine))
  else if op = Frame.op_restore then
    guarded wr (fun () ->
        engine := Live.of_bytes (Bytes.sub rdbuf p plen);
        Frame.put_empty wr ~op:Frame.op_ok)
  else if op = Frame.op_bye then begin
    Frame.put_empty wr ~op:Frame.op_ok;
    conn.closing <- true
  end
  else if op = Frame.op_shutdown then begin
    Frame.put_empty wr ~op:Frame.op_ok;
    conn.closing <- true;
    stop := true
  end
  else begin
    ignore config;
    proto_err (Printf.sprintf "unknown opcode %s" (Frame.op_name op))
  end

let rec process_binary ~config ~engine ~scratch ~stop conn =
  if conn.closing || conn.dead then ()
  else if not conn.greeted then begin
    if Ring.length conn.rd >= Frame.hello_len then
      if Frame.hello_matches (Ring.buf conn.rd) (Ring.pos conn.rd) then begin
        Ring.consume conn.rd Frame.hello_len;
        Ring.add_string conn.wr Frame.hello;
        conn.greeted <- true;
        process_binary ~config ~engine ~scratch ~stop conn
      end
      else begin
        Frame.put_err conn.wr "bad hello: expected RRSV protocol version 1";
        conn.closing <- true
      end
  end
  else if Ring.length conn.rd >= Frame.header_size then
    match Frame.parse_header (Ring.buf conn.rd) (Ring.pos conn.rd) with
    | Error msg ->
        Frame.put_err conn.wr msg;
        conn.closing <- true
    | Ok (op, plen) ->
        if plen > config.max_frame_payload then begin
          Frame.put_err conn.wr
            (Printf.sprintf "frame payload %d exceeds limit %d" plen config.max_frame_payload);
          conn.closing <- true
        end
        else if Ring.length conn.rd >= Frame.header_size + plen then begin
          dispatch_binary ~config ~engine ~scratch ~stop conn op
            (Ring.pos conn.rd + Frame.header_size)
            plen;
          Ring.consume conn.rd (Frame.header_size + plen);
          process_binary ~config ~engine ~scratch ~stop conn
        end

(* ------------------------------------------------------------------ *)
(* Text dispatch (one line in, one line out, via Session)              *)
(* ------------------------------------------------------------------ *)

let find_newline ring =
  let b = Ring.buf ring and p = Ring.pos ring and n = Ring.length ring in
  let rec go i = if i >= n then None else if Bytes.get b (p + i) = '\n' then Some i else go (i + 1) in
  go 0

let rec process_text ~engine ~stop conn =
  if conn.closing || conn.dead then ()
  else
    match find_newline conn.rd with
    | None -> ()
    | Some i ->
        let line = Bytes.sub_string (Ring.buf conn.rd) (Ring.pos conn.rd) i in
        Ring.consume conn.rd (i + 1);
        (match Session.handle engine line with
        | Session.Silent -> ()
        | Session.Reply r ->
            Ring.add_string conn.wr r;
            Ring.add_char conn.wr '\n'
        | Session.Quit ->
            Ring.add_string conn.wr "OK bye\n";
            conn.closing <- true;
            (* The text daemon exits on QUIT, as it always has. *)
            stop := true);
        process_text ~engine ~stop conn

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let new_conn fd =
  {
    fd;
    rd = Ring.create ~capacity:8192 ();
    wr = Ring.create ~capacity:8192 ();
    greeted = false;
    read_closed = false;
    closing = false;
    dead = false;
  }

let run ?(config = default_config) ~proto ~engine ~path () =
  (match Sys.os_type with
  | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lsock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> close_quietly c.fd) !conns;
      close_quietly lsock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind lsock (Unix.ADDR_UNIX path);
      Unix.listen lsock config.backlog;
      Unix.set_nonblock lsock;
      let stop = ref false in
      let scratch = { arrivals = [||]; sizes = [||] } in
      let process conn =
        match proto with
        | Binary -> process_binary ~config ~engine ~scratch ~stop conn
        | Text -> process_text ~engine ~stop conn
      in
      let effective_max_clients =
        match proto with Text -> 1 | Binary -> config.max_clients
      in
      let rec accept_all () =
        match Unix.accept ~cloexec:true lsock with
        | fd, _ ->
            Unix.set_nonblock fd;
            let active = List.length (List.filter (fun c -> not c.closing) !conns) in
            let c = new_conn fd in
            if active >= effective_max_clients then begin
              (* Explicit rejection instead of silently queueing (or
                 hanging) the extra client. *)
              (match proto with
              | Text -> Ring.add_string c.wr "ERR busy\n"
              | Binary ->
                  Ring.add_string c.wr Frame.hello;
                  Frame.put_err c.wr "busy: too many clients");
              c.closing <- true
            end;
            conns := c :: !conns;
            accept_all ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
      in
      let handle_readable conn =
        match Ring.read_from_fd conn.rd conn.fd with
        | `Eof ->
            (* Half-close: anything buffered was already parsed on the
               read that delivered it; a partial trailing frame or line
               is discarded with the connection.  Replies still queued
               keep flushing until drained. *)
            conn.read_closed <- true
        | `Again -> ()
        | `Read _ ->
            process conn;
            if Ring.length conn.wr > config.max_pending then
              (* Shed policy: a client that stops reading while replies
                 accumulate past the cap is dropped outright. *)
              conn.dead <- true
      in
      let handle_writable conn =
        match Ring.write_to_fd conn.wr conn.fd with
        | `Closed -> conn.dead <- true
        | `Again | `Wrote _ -> ()
      in
      let reap () =
        conns :=
          List.filter
            (fun c ->
              if (not c.dead) && (c.closing || c.read_closed) && Ring.is_empty c.wr then
                c.dead <- true;
              if c.dead then close_quietly c.fd;
              not c.dead)
            !conns
      in
      while not !stop do
        let readers =
          List.filter (fun c -> not (c.read_closed || c.closing || c.dead)) !conns
        in
        let writers = List.filter (fun c -> not (Ring.is_empty c.wr)) !conns in
        let rds = lsock :: List.map (fun c -> c.fd) readers in
        let wrs = List.map (fun c -> c.fd) writers in
        match Unix.select rds wrs [] (-1.) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | r, w, _ ->
            if List.memq lsock r then accept_all ();
            List.iter (fun c -> if List.memq c.fd r then handle_readable c) readers;
            List.iter (fun c -> if List.memq c.fd w then handle_writable c) writers;
            reap ()
      done;
      (* Shutdown: give pending replies (the OK that acknowledged the
         stop, and any other client's queued output) a bounded chance to
         flush, then close everything. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec flush_phase () =
        reap ();
        let writers = List.filter (fun c -> not (Ring.is_empty c.wr || c.dead)) !conns in
        if writers <> [] && Unix.gettimeofday () < deadline then begin
          (match Unix.select [] (List.map (fun c -> c.fd) writers) [] 0.1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _, w, _ ->
              List.iter (fun c -> if List.memq c.fd w then handle_writable c) writers);
          flush_phase ()
        end
      in
      flush_phase ())
