(** The binary framed wire protocol of [rr_cli serve].

    Byte-for-byte layout in PROTOCOL.md; the short version:

    - a connection opens with an 8-byte hello in each direction —
      ASCII ["RRSV"] then a little-endian u32 protocol version;
    - every subsequent message is one frame: an 8-byte header (u8
      opcode, three zero bytes, little-endian u32 payload length)
      followed by the payload;
    - all integers are little-endian fixed width, all floats are IEEE-754
      binary64 transported as their [Int64] bit patterns, so a value
      round-trips the wire bit-exactly (STATS replies compare
      byte-identical against an in-process engine).

    Decoding reads fixed-width fields straight out of a {!Ring}'s
    backing buffer (no per-frame copy, no strings); encoding writes
    replies in place into the connection's write ring via {!Ring.alloc}. *)

(** {2 Handshake} *)

val version : int

val hello : string
(** The 8 handshake bytes both sides exchange on connect. *)

val hello_len : int

val hello_matches : Bytes.t -> int -> bool
(** Does the buffer at this offset hold exactly {!hello}? *)

(** {2 Opcodes} *)

val op_submit : int (** 0x01: payload f64 arrival, f64 size. *)

val op_batch : int
(** 0x02: payload u32 count (1..{!max_batch}), then count x (f64
    arrival, f64 size).  One OK_ID reply for the whole batch. *)

val op_advance : int (** 0x03: payload f64 horizon. *)

val op_drain : int (** 0x04: empty payload. *)

val op_stats : int (** 0x05: empty payload. *)

val op_snapshot : int (** 0x06: empty payload; reply carries the engine bytes. *)

val op_restore : int (** 0x07: payload = snapshot bytes from a SNAPSHOT reply. *)

val op_bye : int (** 0x08: close this connection (server keeps running). *)

val op_shutdown : int (** 0x09: stop the whole server after an OK. *)

val op_ok : int (** 0x81: empty payload. *)

val op_ok_id : int (** 0x82: u64 first id, u32 count. *)

val op_ok_now : int (** 0x83: f64 now, u64 completed, u64 alive. *)

val op_ok_stats : int (** 0x84: the 15 {!Rr_engine.Live.stats} fields, 120 bytes. *)

val op_ok_snapshot : int (** 0x85: payload = engine snapshot bytes. *)

val op_err : int (** 0xFF: payload = UTF-8 message. *)

val op_name : int -> string
(** Human name for diagnostics; ["op_0xNN"] for unknown codes. *)

val max_batch : int
(** 65536: the largest submit count one BATCH frame may carry. *)

(** {2 Header} *)

val header_size : int
(** 8 bytes: u8 opcode, 3 reserved zero bytes, u32 LE payload length. *)

val parse_header : Bytes.t -> int -> (int * int, string) result
(** [(op, payload_len)] from 8 header bytes; [Error] on a nonzero
    reserved byte (corrupt or non-protocol traffic). *)

(** {2 Fixed-width field accessors (little-endian)} *)

val get_u32 : Bytes.t -> int -> int
val get_u64 : Bytes.t -> int -> int
val get_f64 : Bytes.t -> int -> float

(** {2 Frame writers (append one whole frame to a write ring)} *)

val put_empty : Ring.t -> op:int -> unit
val put_submit : Ring.t -> arrival:float -> size:float -> unit
val put_batch : Ring.t -> arrivals:float array -> sizes:float array -> off:int -> len:int -> unit
val put_advance : Ring.t -> float -> unit
val put_ok_id : Ring.t -> first_id:int -> count:int -> unit
val put_ok_now : Ring.t -> now:float -> completed:int -> alive:int -> unit
val put_stats : Ring.t -> Rr_engine.Live.stats -> unit
val put_payload : Ring.t -> op:int -> Bytes.t -> unit
(** Frame whose payload is the given bytes (SNAPSHOT/RESTORE). *)

val put_err : Ring.t -> string -> unit

(** {2 Payload decoders} *)

val stats_size : int
(** 120: fixed STATS payload size. *)

val stats_of_payload : Bytes.t -> int -> Rr_engine.Live.stats
(** Decode a STATS payload; bit-exact inverse of {!put_stats}. *)
