(* Cached, pool-aware front end over Rr_lp.Lp_bound.  Every LP evaluation
   is memoised in the process-wide Cache under a key that spells out the
   full discretisation context (mode, gamma, windows, delta) in the policy
   string — the typed Cache.key constructor keeps LP entries from ever
   aliasing a simulation measurement (engine "lp-mcmf" exists for nothing
   else).  The interval refinement injects a probe that fans the
   (Slot_start, Slot_end) pair of a level out on the Pool and looks each
   one up in the cache first, so a speed sweep whose every probe needs the
   same certified denominator solves the LP once per (instance, delta)
   across the whole sweep. *)

let mode_name = function Rr_lp.Lp_bound.Slot_start -> "start" | Slot_end -> "end"
let windows_name = function Rr_lp.Lp_bound.Dense -> "dense" | Sparse -> "sparse"

let default_delta = Rr_lp.Lp_bound.default_delta
let default_tol = Rr_lp.Lp_bound.default_tol

let lp_key ~mode ~gamma ~windows ~k ~machines ~delta inst =
  Cache.key
    ~policy:
      (Printf.sprintf "lp-bound(mode=%s,gamma=%.17g,windows=%s,delta=%.17g)" (mode_name mode)
         gamma (windows_name windows) delta)
    ~machines ~speed:1. ~k ~engine:"lp-mcmf" ~streamed:false
    ~digest:(Rr_workload.Instance.digest inst)

let value ?(mode = Rr_lp.Lp_bound.Slot_start) ?(gamma = 1.) ?(windows = Rr_lp.Lp_bound.Sparse)
    ?(cache = true) ~k ~machines ~delta inst =
  let compute () = Rr_lp.Lp_bound.value ~mode ~gamma ~windows ~k ~machines ~delta inst in
  if not cache then compute ()
  else begin
    let key = lp_key ~mode ~gamma ~windows ~k ~machines ~delta inst in
    let entry =
      Cache.find_or_compute key (fun () ->
          let v = compute () in
          (* The entry shape is built for simulation aggregates; an LP
             evaluation stores its objective in [power_sum] (the unrooted
             quantity it certifies) and leaves the rest zero. *)
          {
            Cache.n = Rr_workload.Instance.n inst;
            norm = 0.;
            power_sum = v;
            mean_flow = 0.;
            max_flow = 0.;
            events = 0;
          })
    in
    entry.Cache.power_sum
  end

let interval ?pool ?(tol = default_tol) ?(gamma = 1.) ?(windows = Rr_lp.Lp_bound.Sparse)
    ?init_delta ?min_delta ?max_solves ?(cache = true) ~k ~machines inst =
  let eval (mode, delta) = value ~mode ~gamma ~windows ~cache ~k ~machines ~delta inst in
  let probe reqs =
    match pool with
    | Some pl when Pool.size pl > 1 && List.compare_length_with reqs 1 > 0 ->
        (* The two modes of a refinement level are independent full LP
           solves: `Fixed 1 keeps them two steal units, and the cache's
           single-flight deduplicates racing probes from sibling sweeps. *)
        Pool.map ~chunk:(`Fixed 1) pl eval reqs
    | _ -> List.map eval reqs
  in
  Rr_lp.Lp_bound.value_interval ~gamma ~windows ?init_delta ?min_delta ?max_solves ~probe ~tol
    ~k ~machines inst

let opt_power_lower_bound ?pool ?tol ?windows ?init_delta ?min_delta ?max_solves ?cache ~k
    ~machines inst =
  let itv =
    interval ?pool ?tol ?windows ?init_delta ?min_delta ?max_solves ?cache ~k ~machines inst
  in
  let cheap = Rr_lp.Lp_bound.cheap_lower_bound ~k ~machines inst in
  (Float.max cheap (itv.Rr_lp.Lp_bound.lo /. 2.), itv)

let opt_norm_lower_bound ?pool ?tol ?windows ?init_delta ?min_delta ?max_solves ?cache ~k
    ~machines inst =
  let power, itv =
    opt_power_lower_bound ?pool ?tol ?windows ?init_delta ?min_delta ?max_solves ?cache ~k
      ~machines inst
  in
  (power ** (1. /. Float.of_int k), itv)
