(** Process fan-out: parallel [map] over forked worker processes.

    The {!Pool} parallelises with OCaml 5 domains, which share one major
    heap — allocation-heavy tasks serialise on the shared allocator and
    on stop-the-world minor collections however independent they are.  A
    forked child owns an entire runtime (private minor and major heap,
    private GC), so processes scale where domains stall; the price is a
    [fork] plus a [Marshal] round-trip per chunk, so this backend only
    pays for itself on expensive tasks.  {!Rr_core.Run.choose_backend}
    makes that call; few users should pick this module by hand.

    Determinism matches {!Pool} exactly: the batch is cut with
    {!Pool.chunk_offsets} into chunks of consecutive task indices, a
    child evaluates its chunk in ascending index order, and results come
    back ordered by task index — bit-identical to the sequential loop,
    for every [procs] and every [?chunk].  Tasks needing randomness must
    seed from their task index (the same discipline {!Pool} documents);
    task {e results} must be marshalable (no closures, no custom blocks
    without serialisers).

    Failures: a task exception is re-raised at the caller as
    [Pool.Task_error (index, Remote_error message)] — the message is the
    child-side [Printexc.to_string], because exception {e identity} does
    not survive marshalling.  A child that dies without delivering its
    payload (killed, OOM) raises the same, charged to the first task
    index of its chunk, with the wait status in the message.

    Do not run a procs batch while {!Pool} worker domains are live in
    the same process: [fork] duplicates only the calling domain.  The
    {!Rr_core.Run} executor never mixes the two. *)

exception Remote_error of string
(** Carrier for child-side failures; always arrives wrapped in
    [Pool.Task_error] with the failing task index. *)

val available : unit -> bool
(** Whether this process can still fork: a Unix platform AND no {!Pool}
    has ever spawned a worker domain (the OCaml 5 runtime refuses
    [Unix.fork] once other domains were {e ever} created, even after
    they are joined — see {!Pool.domains_ever_spawned}).  When [false],
    the [map] functions below degrade to the sequential loop (procs = 1
    semantics) rather than failing; fork-dependent benchmarks must run
    before the process's first multi-domain pool. *)

val map_array :
  ?chunk:Pool.chunking ->
  ?cost:('a -> float) ->
  procs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map_array ~procs f xs] computes [Array.map f xs] with up to [procs]
    concurrent forked children ([procs = 1] runs the plain sequential
    loop in-process).  [?chunk] and [?cost] control chunking exactly as
    in {!Pool.map_array} and change no result.
    @raise Pool.Task_error on the first task failure (lowest index
    wins), with {!Remote_error} as the payload exception for failures
    that crossed the process boundary.
    @raise Invalid_argument when [procs < 1] or on [`Fixed c] with
    [c < 1]. *)

val map :
  ?chunk:Pool.chunking ->
  ?cost:('a -> float) ->
  procs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** List counterpart of {!map_array}. *)
