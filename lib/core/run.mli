(** The facade tying instances, policies and the simulator together.

    A {!config} names the full simulation context once — machine count,
    resource-augmentation speed, norm index [k], trace recording — and
    every entry point takes it first, so sweeps build one record and vary
    only the field under study ([{ cfg with speed }]).  {!batch} evaluates
    many (policy, instance) pairs on a {!Pool}; because simulation is
    deterministic given its inputs and every task is independent, the
    batch results are bit-identical to the sequential ones for any number
    of domains. *)

type config = {
  machines : int;  (** Identical machines; default 1. *)
  speed : float;  (** Resource-augmentation speed; default 1. *)
  k : int;  (** Norm index of the lk objective; default 2. *)
  record_trace : bool;  (** Keep the full segment trace; default false. *)
}

val default : config
(** [{ machines = 1; speed = 1.; k = 2; record_trace = false }]. *)

val config : ?machines:int -> ?speed:float -> ?k:int -> ?record_trace:bool -> unit -> config
(** {!default} with the given fields overridden. *)

val simulate : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> Rr_engine.Simulator.result
(** Run a policy on an instance under [config]. *)

val flows : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float array
(** Flow times by job id. *)

val norm : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The lk-norm of flow time achieved by the policy ([k] from the
    config). *)

val power_sum : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The unrooted [sum_j F_j^k] achieved by the policy. *)

type result = {
  policy_name : string;
  instance_label : string;
  flows : float array;  (** Flow times by job id. *)
  norm : float;  (** lk-norm at the config's [k]. *)
  power_sum : float;  (** Unrooted [sum_j F_j^k]. *)
  events : int;  (** Simulation events processed. *)
}
(** One completed measurement of {!batch}: the flow vector plus the derived
    norms, without the trace (record a trace with {!simulate} when the
    dual-fitting verifier or the fairness time series needs it). *)

val measure : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> result
(** One simulate-and-measure step — what {!batch} runs per task. *)

val batch : Pool.t -> config -> (Rr_engine.Policy.t * Rr_workload.Instance.t) list -> result list
(** [batch pool cfg tasks] measures every (policy, instance) pair on the
    pool.  Results are ordered like [tasks] and bit-identical to
    [List.map (measure cfg) tasks] for any pool size.  Policy values that
    carry per-run mutable state (e.g. {!Rr_policies.Quantum_rr}) must be
    fresh per task — build them with {!Rr_policies.Registry.make}.
    @raise Pool.Task_error when a simulation raises. *)
