(** The facade tying instances, policies and the simulator together.

    A {!config} names the full simulation context once — machine count,
    resource-augmentation speed, norm index [k], trace recording, the two
    performance switches — and every entry point takes it first, so sweeps
    build one record and vary only the field under study
    ([{ cfg with speed }]).  {!batch} evaluates many (policy, instance)
    pairs on a {!Pool}; because simulation is deterministic given its
    inputs and every task is independent, the batch results are
    bit-identical to the sequential ones for any number of domains.

    Measurements come in two shapes:

    - {e materialized}: {!measure} takes an {!Rr_workload.Instance.t}
      (a job list in memory) and folds the flow vector the simulator
      returns;
    - {e streaming}: {!measure_stream} takes an
      {!Rr_workload.Instance.Stream.t} and pushes every completion through
      the incremental folds of [Rr_metrics.Sink] as it happens — live
      memory is O(alive jobs), so ten-million-job workloads measure in a
      constant-size heap.  The two paths agree to ~1e-9 relative (they sum
      in different orders) and never alias in the cache.

    Engine selection is one typed surface, the [engine] field:

    - [`Auto] (the default): every policy that declares a
      {!Rr_engine.Policy_class.t} dispatches to its class's specialised
      kernel — Round Robin to the equal-share cascade
      {!Rr_engine.Simulator.run_equal_share}, SRPT/SJF/FCFS/HDF to the
      priority-index kernel {!Rr_engine.Index_engine.run}, SETF to the
      group cascade {!Rr_engine.Index_engine.run_setf}, LAPS / MLFQ /
      quantum-RR / the weighted shares to the dense class kernels
      ({!Rr_engine.Class_engine}), the starvation hybrid to
      {!Rr_engine.Hybrid_engine} and migration-limited SRPT to
      {!Rr_engine.Budget_engine} — each agreeing with the general engine
      to <= 1e-9 relative flow time but several times faster in heavy
      traffic ({!selection_for} is the classifier, {!engine_name} the
      audit string).  Unclassified policies take the general loop.
    - [`General]: force the per-event policy loop for every policy (e.g.
      to reproduce bit-exact historical numbers).
    - [`Indexed] / [`Equal_share]: insist on a specialised kernel —
      [`Indexed] accepts any classified policy except Round Robin
      (which keeps its historical [`Equal_share] selector); selection
      raises [Invalid_argument] for a policy outside the requested
      kernel's reach instead of silently falling back.
    - [`Live]: route every classified policy through the incremental
      {!Rr_engine.Live} core (submit-while-running; here fed from the
      materialized instance or stream), exercising the exact engine a
      long-running [rr_cli serve] daemon uses.

    The remaining optimisation switch, [cache], stays a boolean:
    {!measure} and {!measure_stream} (and everything built on them —
    {!norm}, {!batch}, {!Ratio.vs_baseline}, sweeps) consult the
    process-wide {!Cache}, so re-measuring the same (policy, config,
    instance) triple costs a hash lookup.  Set [cache:false] for
    benchmarking or for custom policies whose [name] does not determine
    their behaviour. *)

type engine = [ `Auto | `General | `Indexed | `Equal_share | `Live ]
(** Engine-selection surface; see the module preamble for what each
    variant selects.  Distinct engines never alias in the {!Cache} — the
    selection is part of every key via {!engine_name}. *)

type config = {
  machines : int;  (** Identical machines; default 1. *)
  speed : float;  (** Resource-augmentation speed; default 1. *)
  k : int;  (** Norm index of the lk objective; default 2. *)
  record_trace : bool;
      (** Keep the full segment trace; default false.  Ignored by
          [`Live] (the incremental core keeps no trace). *)
  engine : engine;  (** Engine selection; default [`Auto]. *)
  cache : bool;  (** Memoise {!measure} results in {!Cache}; default true. *)
}

val default : config
(** [{ machines = 1; speed = 1.; k = 2; record_trace = false;
      engine = `Auto; cache = true }]. *)

val config :
  ?machines:int ->
  ?speed:float ->
  ?k:int ->
  ?record_trace:bool ->
  ?engine:engine ->
  ?cache:bool ->
  unit ->
  config
(** {!default} with the given fields overridden.  (The pre-variant
    [?fast_path] boolean is gone; pass [~engine:`General] where
    [~fast_path:false] was meant.  The CLI keeps [--no-fast-path] as an
    alias for [--engine general].) *)

val engine_of_string : string -> engine option
(** Parse a CLI spelling: ["auto"], ["general"], ["indexed"],
    ["equal-share"], ["live"] (case-insensitive). *)

val engine_to_string : engine -> string

val engine_strings : string list
(** The accepted {!engine_of_string} spellings, for help text. *)

type selection =
  | General  (** The per-event policy-invoking loop of {!Rr_engine.Simulator.run}. *)
  | Equal_share  (** {!Rr_engine.Simulator.run_equal_share} (Round Robin). *)
  | Index of Rr_engine.Index_engine.kind
      (** The priority-index kernel (SRPT / SJF / FCFS / HDF). *)
  | Setf_cascade  (** {!Rr_engine.Index_engine.run_setf}. *)
  | Classed of Rr_engine.Class_engine.kind
      (** A dense class kernel (LAPS / MLFQ / quantum-RR / WRR). *)
  | Hybrid of { theta : float }  (** {!Rr_engine.Hybrid_engine} (starvation hybrid). *)
  | Budget of { budget : int }
      (** {!Rr_engine.Budget_engine} (migration-limited SRPT). *)
  | Live of Rr_engine.Live.spec  (** The incremental {!Rr_engine.Live} core. *)

val selection_for : config -> Rr_engine.Policy.t -> selection
(** Which concrete engine {!simulate} / {!simulate_stream} will dispatch
    this (config, policy) pair to.  The classifier reads the policy's
    declared class ([Rr_engine.Policy.t.klass]) — never its name or
    structure: a policy without the declaration falls back to [General]
    even if it is a structural copy of a classified one (the declaration
    is the contract the differential suite pins).  Under [`Indexed],
    [`Equal_share] and [`Live] the same classification applies, but a
    policy outside the requested kernel's reach
    @raise Invalid_argument instead of silently falling back. *)

val engine_name : config -> Rr_engine.Policy.t -> string
(** {!selection_for} as the audit string recorded in cache keys and
    printed by the CLI: ["general"], ["equal-share"], ["srpt-index"],
    ["setf-cascade"], ["mlfq-ladder"], ["laps-dense"], ["hybrid-index"],
    ... ({!Rr_engine.Policy_class.engine_name}), or the same with a
    ["live-"] prefix under [`Live]. *)

val default_max_events : int
(** The event budget every engine runs under (10 million; streams scale
    it with the job count) — the livelock guard behind exit code 3. *)

val simulate : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> Rr_engine.Simulator.result
(** Run a policy on an instance under [config].  Never cached (the cache
    stores measurements, not traces); dispatches to the engine
    {!selection_for} selects.  Under [`Live] the instance is fed to the
    incremental core job by job (submit, advance to its arrival) and the
    result carries an empty trace. *)

val simulate_stream :
  config ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.Stream.t ->
  sink:Rr_engine.Simulator.sink ->
  Rr_engine.Simulator.summary
(** Streaming counterpart of {!simulate}: starts a fresh cursor on the
    stream, pushes every completion into [sink], returns the O(1)
    {!Rr_engine.Simulator.summary}.  Never cached; [record_trace] is
    ignored (streaming runs keep no trace).  Same fast-path dispatch as
    {!simulate}. *)

val flows : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float array
(** Flow times by job id.  Always re-simulates (the cache stores O(1)
    aggregates, never flow vectors); the array is the caller's own. *)

val norm : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The lk-norm of flow time achieved by the policy ([k] from the
    config). *)

val power_sum : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The unrooted [sum_j F_j^k] achieved by the policy. *)

type result = {
  policy_name : string;
  instance_label : string;
  n : int;  (** Jobs completed. *)
  norm : float;  (** lk-norm at the config's [k]. *)
  power_sum : float;  (** Unrooted [sum_j F_j^k]. *)
  mean_flow : float;  (** Average flow time; [0.] when [n = 0]. *)
  max_flow : float;  (** Maximum flow time (the l-infinity norm). *)
  events : int;  (** Simulation events processed. *)
}
(** One completed measurement: O(1) aggregates only, so results from
    {!measure} and {!measure_stream} are interchangeable and cheap to keep
    in bulk.  Need the per-job flow vector?  {!flows} (materialized) or a
    custom sink via {!simulate_stream}. *)

val measure : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> result
(** One simulate-and-measure step — what {!batch} runs per task.  Cached
    when [cfg.cache] is set; [record_trace] is ignored here (measurements
    never need the trace), so traced and untraced configs share cache
    entries. *)

val measure_stream : config -> Rr_engine.Policy.t -> Rr_workload.Instance.Stream.t -> result
(** {!measure} over a lazy stream: one O(alive)-memory pass pushing
    completions through incremental folds.  Cached when [cfg.cache] is
    set, keyed on the stream's digest with [streamed = true] (streamed
    folds sum in completion order, materialized in id order; the two agree
    to ~1e-9 relative and never share entries).  Replays the stream from
    its seed — the stream value itself is not consumed. *)

val estimated_cost_us : config -> Rr_engine.Policy.t -> jobs:int -> float
(** Order-of-magnitude cost estimate for one simulate-and-measure task,
    in microseconds — the default [?cost] model behind [`Auto] chunking
    in {!batch} and friends.  Carries one per-job coefficient per engine
    class ({!selection_for}): the closed-form cascades are sub-microsecond
    per job, the general event loop a few microseconds; only the ratios
    matter for chunk sizing. *)

val batch :
  ?chunk:Pool.chunking ->
  Pool.t ->
  config ->
  (Rr_engine.Policy.t * Rr_workload.Instance.t) list ->
  result list
(** [batch pool cfg tasks] measures every (policy, instance) pair on the
    pool.  Results are ordered like [tasks] and bit-identical to
    [List.map (measure cfg) tasks] for any pool size and any [?chunk]
    (the shared {!Cache} is domain-safe and simulation deterministic, so
    caching does not perturb results).  [?chunk] defaults to [`Auto]
    sized by {!estimated_cost_us}, which groups short simulations into
    ~1 ms steal units — the difference between parallel slowdown and
    near-linear speedup on batches of small instances.  Policy values
    that carry per-run mutable state (e.g. {!Rr_policies.Quantum_rr})
    must be fresh per task — build them with
    {!Rr_policies.Registry.make}.
    @raise Pool.Task_error when a simulation raises. *)

val batch_stream :
  ?chunk:Pool.chunking ->
  Pool.t ->
  config ->
  (Rr_engine.Policy.t * Rr_workload.Instance.Stream.t) list ->
  result list
(** {!batch} over streamed tasks.  Streams are seed-replayable, so the
    same stream value may appear in several tasks (and on several domains)
    safely — each measurement starts its own cursor.  Each task folds its
    own sinks as it streams, so live memory stays O(alive jobs) {e per
    domain} no matter how many million-job streams the batch holds. *)

val fold_stream :
  ?chunk:Pool.chunking ->
  Pool.t ->
  config ->
  sink:(unit -> 'a Rr_metrics.Sink.t) ->
  merge:('b -> 'a -> 'b) ->
  init:'b ->
  (Rr_engine.Policy.t * Rr_workload.Instance.Stream.t) list ->
  'b
(** Parallel streaming with a custom fold: every task builds a fresh sink
    with [sink ()] {e on the domain that runs it}, streams its simulation
    through it, and hands the finished value back; [merge] folds the
    values on the calling domain in task-index order (like
    {!Pool.map_reduce}, so a non-commutative merge is well defined and
    the result is identical for any domain count).  Combine values with
    {!Rr_metrics.Sink.Merge} — e.g. sum [power_sum] sinks, or
    {!Rr_util.Welford.merge} [moments] sinks — to aggregate over a
    many-stream batch in O(alive) memory per domain.  Results are never
    cached (the cache stores {!measure} aggregates, not custom folds). *)

(** {1 Executor selection}

    {!batch} binds the caller to a {!Pool} — fine when one pool serves
    many batches, wrong when the batch is the whole program and domains
    may not even help.  The executor layer picks among three backends
    with one heuristic and guarantees all three produce bit-identical
    results (both parallel backends cut with {!Pool.chunk_offsets} and
    evaluate chunks in ascending index order), so [`Auto] is purely a
    performance decision. *)

type backend = [ `Sequential | `Domains of int | `Procs of int ]
(** How a batch actually runs: the plain in-process loop, a fresh
    {!Pool} of [d] total participant domains, or {!Procs} fan-out over
    [p] forked worker processes. *)

type executor = [ `Auto | backend ]
(** A backend, or [`Auto] to let {!choose_backend} pick from the CPU
    count and the batch's {!estimated_cost_us}. *)

val backend_name : backend -> string
(** ["sequential"], ["domains:4"], ["procs:8"] — for logs and
    diagnostics. *)

val choose_backend :
  ?cpus:int -> tasks:int -> total_cost_us:float -> unit -> backend
(** The [`Auto] heuristic, exposed for tests and diagnostics.  [cpus]
    defaults to {!Pool.recommended_domains} (clamped to at least 1).
    Sequential when [cpus <= 1], [tasks <= 1], or the whole batch is
    estimated under ~20 ms (spawning anything would dominate); processes
    when each task averages >= ~50 ms, there are at least [cpus] tasks,
    and the platform can fork (private heaps beat the shared major heap
    once fork + [Marshal] amortise); domains otherwise.  Parallel widths
    are clamped to [min cpus tasks]. *)

val batch_auto :
  ?executor:executor ->
  config ->
  (Rr_engine.Policy.t * Rr_workload.Instance.t) list ->
  backend * result list
(** {!batch} without the pool: runs the tasks on the chosen backend and
    returns it alongside the results (print it with {!backend_name}).
    Results are bit-identical to [List.map (measure cfg) tasks] for
    every [?executor] value.  Failures raise [Pool.Task_error] with the
    lowest failing task index from every backend; the [`Procs] backend
    wraps the original exception's text as {!Procs.Remote_error}.
    Creates a fresh pool per call under [`Domains] — callers amortising
    many batches over one pool should keep using {!batch}. *)

val batch_stream_auto :
  ?executor:executor ->
  config ->
  (Rr_engine.Policy.t * Rr_workload.Instance.Stream.t) list ->
  backend * result list
(** {!batch_stream} under the executor heuristic; see {!batch_auto}. *)
