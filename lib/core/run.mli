(** The facade tying instances, policies and the simulator together.

    A {!config} names the full simulation context once — machine count,
    resource-augmentation speed, norm index [k], trace recording, the two
    performance switches — and every entry point takes it first, so sweeps
    build one record and vary only the field under study
    ([{ cfg with speed }]).  {!batch} evaluates many (policy, instance)
    pairs on a {!Pool}; because simulation is deterministic given its
    inputs and every task is independent, the batch results are
    bit-identical to the sequential ones for any number of domains.

    Two optimisations are on by default and individually defeasible:

    - [fast_path]: runs of the shared {!Rr_policies.Round_robin.policy}
      value dispatch to the closed-form equal-share engine
      {!Rr_engine.Simulator.run_equal_share}, which agrees with the
      general engine to ~1e-12 relative flow time but is several times
      faster in heavy traffic.  Set [fast_path:false] to force the
      general event loop (e.g. to reproduce bit-exact historical
      numbers).
    - [cache]: {!measure} (and everything built on it — {!norm},
      {!flows}, {!batch}, {!Ratio.vs_baseline}, sweeps) consults the
      process-wide {!Cache}, so re-measuring the same (policy, config,
      instance) triple costs a hash lookup.  Set [cache:false] for
      benchmarking or for custom policies whose [name] does not determine
      their behaviour. *)

type config = {
  machines : int;  (** Identical machines; default 1. *)
  speed : float;  (** Resource-augmentation speed; default 1. *)
  k : int;  (** Norm index of the lk objective; default 2. *)
  record_trace : bool;  (** Keep the full segment trace; default false. *)
  fast_path : bool;
      (** Use the closed-form equal-share engine for round robin;
          default true. *)
  cache : bool;  (** Memoise {!measure} results in {!Cache}; default true. *)
}

val default : config
(** [{ machines = 1; speed = 1.; k = 2; record_trace = false;
      fast_path = true; cache = true }]. *)

val config :
  ?machines:int ->
  ?speed:float ->
  ?k:int ->
  ?record_trace:bool ->
  ?fast_path:bool ->
  ?cache:bool ->
  unit ->
  config
(** {!default} with the given fields overridden. *)

val simulate : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> Rr_engine.Simulator.result
(** Run a policy on an instance under [config].  Never cached (the cache
    stores measurements, not traces); dispatches to the equal-share
    engine when [fast_path] is set and the policy is physically
    {!Rr_policies.Round_robin.policy}. *)

val flows : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float array
(** Flow times by job id.  The array is the caller's own copy. *)

val norm : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The lk-norm of flow time achieved by the policy ([k] from the
    config). *)

val power_sum : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** The unrooted [sum_j F_j^k] achieved by the policy. *)

type result = {
  policy_name : string;
  instance_label : string;
  flows : float array;  (** Flow times by job id. *)
  norm : float;  (** lk-norm at the config's [k]. *)
  power_sum : float;  (** Unrooted [sum_j F_j^k]. *)
  events : int;  (** Simulation events processed. *)
}
(** One completed measurement of {!batch}: the flow vector plus the derived
    norms, without the trace (record a trace with {!simulate} when the
    dual-fitting verifier or the fairness time series needs it). *)

val measure : config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> result
(** One simulate-and-measure step — what {!batch} runs per task.  Cached
    when [cfg.cache] is set; [record_trace] is ignored here (measurements
    never need the trace), so traced and untraced configs share cache
    entries. *)

val batch : Pool.t -> config -> (Rr_engine.Policy.t * Rr_workload.Instance.t) list -> result list
(** [batch pool cfg tasks] measures every (policy, instance) pair on the
    pool.  Results are ordered like [tasks] and bit-identical to
    [List.map (measure cfg) tasks] for any pool size (the shared {!Cache}
    is domain-safe and simulation deterministic, so caching does not
    perturb results).  Policy values that carry per-run mutable state
    (e.g. {!Rr_policies.Quantum_rr}) must be fresh per task — build them
    with {!Rr_policies.Registry.make}.
    @raise Pool.Task_error when a simulation raises. *)
