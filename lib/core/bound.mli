(** Cached, pool-aware certified lower bounds.

    {!Rr_lp.Lp_bound} solves the paper's LP relaxation; this module is the
    production front end the experiment suite and CLI go through:

    - every LP evaluation is memoised in the process-wide {!Cache}, keyed
      by (instance digest, k, machines, delta, mode, gamma, windows) via
      the typed key constructor — so a speed sweep whose probes all divide
      by the same certified denominator solves the LP once, and
      concurrent probes racing on a cold bound coalesce in single flight;
    - {!interval} refinement fans the two evaluation modes of each level
      out on a {!Pool} ([`Fixed 1] chunks — each is a full LP solve).

    The discretisation policy lives in exactly two named constants,
    {!default_delta} for fixed-width callers and {!default_tol} for
    interval certification, both re-exported from {!Rr_lp.Lp_bound}. *)

val default_delta : float
(** = {!Rr_lp.Lp_bound.default_delta} (0.25). *)

val default_tol : float
(** = {!Rr_lp.Lp_bound.default_tol} (0.05). *)

val value :
  ?mode:Rr_lp.Lp_bound.mode ->
  ?gamma:float ->
  ?windows:Rr_lp.Lp_bound.windows ->
  ?cache:bool ->
  k:int ->
  machines:int ->
  delta:float ->
  Rr_workload.Instance.t ->
  float
(** {!Rr_lp.Lp_bound.value} through the {!Cache} (set [cache:false] to
    force a fresh solve, e.g. when benchmarking).  The cached entry stores
    the LP objective in its [power_sum] field. *)

val interval :
  ?pool:Pool.t ->
  ?tol:float ->
  ?gamma:float ->
  ?windows:Rr_lp.Lp_bound.windows ->
  ?init_delta:float ->
  ?min_delta:float ->
  ?max_solves:int ->
  ?cache:bool ->
  k:int ->
  machines:int ->
  Rr_workload.Instance.t ->
  Rr_lp.Lp_bound.interval
(** {!Rr_lp.Lp_bound.value_interval} with cached probes, the two modes of
    each refinement level evaluated side by side on [?pool].  Defaults as
    in the underlying function ([tol] defaults to {!default_tol}). *)

val opt_power_lower_bound :
  ?pool:Pool.t ->
  ?tol:float ->
  ?windows:Rr_lp.Lp_bound.windows ->
  ?init_delta:float ->
  ?min_delta:float ->
  ?max_solves:int ->
  ?cache:bool ->
  k:int ->
  machines:int ->
  Rr_workload.Instance.t ->
  float * Rr_lp.Lp_bound.interval
(** The best certified lower bound on OPT's power sum this library can
    produce — [max (cheap_lower_bound) (interval.lo / 2)] — together with
    the LP bracket it came from.  Both components are certified, so the
    max is. *)

val opt_norm_lower_bound :
  ?pool:Pool.t ->
  ?tol:float ->
  ?windows:Rr_lp.Lp_bound.windows ->
  ?init_delta:float ->
  ?min_delta:float ->
  ?max_solves:int ->
  ?cache:bool ->
  k:int ->
  machines:int ->
  Rr_workload.Instance.t ->
  float * Rr_lp.Lp_bound.interval
(** k-th root of {!opt_power_lower_bound}: a certified lower bound on the
    optimal lk-norm, with the bracket. *)
