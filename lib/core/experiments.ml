open Rr_util

type scale = Quick | Full

(* ------------------------------------------------------------------ *)
(* Shared workload builders                                            *)
(* ------------------------------------------------------------------ *)

let exp_sizes = Rr_workload.Distribution.Exponential { mean = 1. }

let heavy_sizes =
  Rr_workload.Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 50. }

let stochastic ~seed ~sizes ~load ~machines ~n =
  let rng = Prng.create ~seed in
  Rr_workload.Instance.generate_load ~rng ~sizes ~load ~machines ~n ()

let n_large = function Quick -> 250 | Full -> 2000
let seeds = function Quick -> [ 11 ] | Full -> [ 11; 12; 13 ]

let mean xs = Kahan.sum_list xs /. Float.of_int (List.length xs)

let rr = Rr_policies.Round_robin.policy
let srpt = Rr_policies.Srpt.policy

let b3 b = if b then "yes" else "NO"

(* Row-level parallelism: every experiment builds its row descriptors
   first, maps them to rendered cells — on the pool when one is given —
   and only then appends to the table, so row order (and, without
   data-dependent scheduling, content) is identical for any domain count.
   Tasks share instances and stateless policy values freely (both are
   immutable from the simulator's point of view); policies with per-run
   state (quantum-rr) are constructed inside the task that runs them. *)
let pmap pool f xs = match pool with None -> List.map f xs | Some p -> Pool.map p f xs

let add_rows table rows = List.iter (Table.add_row table) rows

(* ------------------------------------------------------------------ *)
(* T1: Theorem 1 at k = 2 — speed sweep                                *)
(* ------------------------------------------------------------------ *)

let t1_l2_speed_sweep ?(engine = `Auto) ?pool scale =
  let table =
    Table.create ~title:"T1: RR l2-norm competitive ratio vs speed (Theorem 1, k=2, m=1)"
      ~columns:
        [ "sizes"; "speed"; "l2 ratio vs SRPT@1"; "l2 ratio vs LP bound (small inst)" ]
  in
  let n = n_large scale in
  let n_small = match scale with Quick -> 20 | Full -> 40 in
  let speed_list = [ 1.0; 1.25; 1.5; 2.0; 3.0; 4.4 ] in
  let tasks =
    List.concat_map
      (fun sizes ->
        let insts =
          List.map (fun seed -> stochastic ~seed ~sizes ~load:0.9 ~machines:1 ~n) (seeds scale)
        in
        let small = stochastic ~seed:7 ~sizes ~load:0.9 ~machines:1 ~n:n_small in
        List.map (fun speed -> (sizes, insts, small, speed)) speed_list)
      [ exp_sizes; heavy_sizes ]
  in
  add_rows table
    (pmap pool
       (fun (sizes, insts, small, speed) ->
         let cfg = Run.config ~speed ~engine () in
         let ratio = mean (List.map (fun i -> Ratio.vs_baseline cfg rr i) insts) in
         let lp_ratio = Ratio.vs_lp_bound ~delta:Bound.default_delta cfg rr small in
         [
           Rr_workload.Distribution.name sizes;
           Table.fcell speed;
           Table.fcell ratio;
           Table.fcell lp_ratio;
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T2: Theorem 1 at the theorem speed for k = 1, 2, 3                  *)
(* ------------------------------------------------------------------ *)

let t2_lk_theorem_speed ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"T2: RR at the Theorem-1 speed 2k(1+10eps), eps=0.1 (lk ratio vs SRPT@1, m=1)"
      ~columns:[ "sizes"; "k"; "speed"; "lk ratio" ]
  in
  let n = n_large scale in
  let tasks =
    List.concat_map
      (fun sizes ->
        let insts =
          List.map (fun seed -> stochastic ~seed ~sizes ~load:0.9 ~machines:1 ~n) (seeds scale)
        in
        List.map (fun k -> (sizes, insts, k)) [ 1; 2; 3 ])
      [ exp_sizes; heavy_sizes ]
  in
  add_rows table
    (pmap pool
       (fun (sizes, insts, k) ->
         let speed = Rr_dualfit.Certificate.theorem_speed ~k ~eps:0.1 in
         let cfg = Run.config ~k ~speed ~engine () in
         let ratio = mean (List.map (fun i -> Ratio.vs_baseline cfg rr i) insts) in
         [
           Rr_workload.Distribution.name sizes;
           string_of_int k;
           Table.fcell speed;
           Table.fcell ratio;
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* F1: adversarial growth at low speed                                 *)
(* ------------------------------------------------------------------ *)

(* The paper's Section 1.1 lower bound (RR is not O(1)-competitive below
   speed 3/2 for l2) rests on the adaptive adversary of Bansal-Pruhs [4];
   no fixed oblivious family reproduces the asymptotic growth, because any
   stream whose load stays below the granted speed equilibrates (see
   EXPERIMENTS.md).  What is reproducible is the speed response: on
   adversarial transients RR's ratio is largest at speed 1 and decays to a
   small constant well before the Theorem-1 speed of 4 + eps. *)
let f1_lower_bound_growth ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "F1: RR l2 ratio vs speed on adversarial transients (largest at speed 1, small \
         constant by 4+eps)"
      ~columns:[ "family"; "speed"; "ratio vs SRPT@1"; "ratio vs LP bound" ]
  in
  let b = match scale with Quick -> 10 | Full -> 40 in
  let b_lp = match scale with Quick -> 5 | Full -> 7 in
  let families =
    [
      ( "batch+stream",
        Rr_workload.Adversary.batch_plus_stream ~batch:b ~stream_load:1.0 ~horizon_factor:1.0,
        Rr_workload.Adversary.batch_plus_stream ~batch:b_lp ~stream_load:1.0
          ~horizon_factor:1.0 );
      ( "geometric batch",
        Rr_workload.Adversary.geometric_batch ~levels:(match scale with Quick -> 4 | Full -> 6) ~k:2,
        Rr_workload.Adversary.geometric_batch ~levels:3 ~k:2 );
    ]
  in
  let tasks =
    List.concat_map
      (fun (label, inst, small) ->
        List.map
          (fun speed -> (label, inst, small, speed))
          [ 1.0; 1.1; 1.25; 1.5; 2.0; 3.0; 4.4 ])
      families
  in
  add_rows table
    (pmap pool
       (fun (label, inst, small, speed) ->
         let cfg = Run.config ~speed ~engine () in
         let r = Ratio.vs_baseline cfg rr inst in
         (* Interval-certified path: adaptive delta to half the default
            tolerance, in place of the old fixed ~delta:0.125. *)
         let r_lp = (Ratio.vs_certified ~tol:(Bound.default_tol /. 2.) cfg rr small).Ratio.ratio in
         [ label; Table.fcell speed; Table.fcell r; Table.fcell r_lp ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T3: dual-fitting certificates                                       *)
(* ------------------------------------------------------------------ *)

let t3_dual_certificates ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"T3: dual-fitting certificates for RR at speed 2k(1+10eps), eps=0.1"
      ~columns:
        [ "n"; "m"; "k"; "violation"; "certified ratio"; "lemma1"; "lemma2"; "weak duality" ]
  in
  let cases =
    match scale with
    | Quick -> [ (30, 1) ]
    | Full -> [ (60, 1); (60, 3); (120, 1) ]
  in
  let eps = 0.1 in
  let tasks =
    List.concat_map (fun (n, machines) -> List.map (fun k -> (n, machines, k)) [ 2; 3 ]) cases
  in
  add_rows table
    (pmap pool
       (fun (n, machines, k) ->
         let inst = stochastic ~seed:(100 + n + machines) ~sizes:exp_sizes ~load:0.9 ~machines ~n in
         let speed = Rr_dualfit.Certificate.theorem_speed ~k ~eps in
         let res = Run.simulate (Run.config ~machines ~speed ~record_trace:true ~engine ()) rr inst in
         let cert = Rr_dualfit.Certificate.certify ~eps ~k res in
         let gamma = cert.gamma in
         let lp_hi =
           Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_end ~gamma ~k ~machines
             ~delta:Bound.default_delta inst
         in
         let scaled_dual = cert.dual_objective /. Float.max 1. cert.violation_ratio in
         let weak_ok = scaled_dual <= lp_hi *. (1. +. 1e-6) in
         [
           string_of_int n;
           string_of_int machines;
           string_of_int k;
           Table.fcell cert.violation_ratio;
           Table.fcell cert.certified_ratio;
           b3 cert.lemma1_ok;
           b3 cert.lemma2_ok;
           b3 weak_ok;
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T4: the classical l1 guarantee                                      *)
(* ------------------------------------------------------------------ *)

let t4_l1_flow ?(engine = `Auto) ?pool scale =
  let table =
    Table.create ~title:"T4: RR total flow time (l1) ratio vs SRPT@1"
      ~columns:[ "sizes"; "m"; "RR speed"; "l1 ratio" ]
  in
  let n = n_large scale in
  let tasks =
    List.concat_map
      (fun sizes ->
        List.concat_map
          (fun machines ->
            let insts =
              List.map (fun seed -> stochastic ~seed ~sizes ~load:0.9 ~machines ~n) (seeds scale)
            in
            List.map (fun speed -> (sizes, machines, insts, speed)) [ 2.0; 3.0 ])
          [ 1; 4 ])
      [ exp_sizes; heavy_sizes ]
  in
  add_rows table
    (pmap pool
       (fun (sizes, machines, insts, speed) ->
         let cfg = Run.config ~machines ~k:1 ~speed ~engine () in
         let ratio = mean (List.map (fun i -> Ratio.vs_baseline cfg rr i) insts) in
         [
           Rr_workload.Distribution.name sizes;
           string_of_int machines;
           Table.fcell speed;
           Table.fcell ratio;
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T5: instantaneous fairness                                          *)
(* ------------------------------------------------------------------ *)

let t5_instantaneous_fairness ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"T5: instantaneous fairness under transient overload (rho = 1.2)"
      ~columns:[ "m"; "policy"; "time-weighted Jain index"; "max slowdown" ]
  in
  let n = match scale with Quick -> 120 | Full -> 500 in
  let policies =
    [ rr; srpt; Rr_policies.Sjf.policy; Rr_policies.Setf.policy; Rr_policies.Fcfs.policy ]
  in
  let tasks =
    List.concat_map
      (fun machines ->
        let inst = stochastic ~seed:5 ~sizes:exp_sizes ~load:1.2 ~machines ~n in
        let sizes =
          Array.of_list
            (List.map (fun (j : Rr_engine.Job.t) -> j.size) (Rr_workload.Instance.jobs inst))
        in
        List.map (fun policy -> (machines, inst, sizes, policy)) policies)
      [ 1; 4 ]
  in
  add_rows table
    (pmap pool
       (fun (machines, inst, sizes, (policy : Rr_engine.Policy.t)) ->
         let res = Run.simulate (Run.config ~machines ~record_trace:true ~engine ()) policy inst in
         let jain = Rr_metrics.Fairness.time_weighted_jain res.trace in
         let flows = Rr_engine.Simulator.flows res in
         (* Sizes indexed by id: instance ids are assigned in arrival order,
            matching the jobs list order. *)
         let slow = Rr_metrics.Flow_stats.max_slowdown ~sizes ~flows in
         [ string_of_int machines; policy.name; Table.fcell jain; Table.fcell slow ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* F2: variance vs average                                             *)
(* ------------------------------------------------------------------ *)

let f2_variance_vs_average ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "F2: latency vs temporal fairness at equal speed (heavy-tailed sizes, m=1, rho=0.9)"
      ~columns:[ "policy"; "mean"; "stddev"; "p99"; "max"; "l2" ]
  in
  let n = n_large scale in
  let inst = stochastic ~seed:21 ~sizes:heavy_sizes ~load:0.9 ~machines:1 ~n in
  let policies =
    [ rr; srpt; Rr_policies.Sjf.policy; Rr_policies.Setf.policy; Rr_policies.Fcfs.policy ]
  in
  add_rows table
    (pmap pool
       (fun (policy : Rr_engine.Policy.t) ->
         let flows = Run.flows (Run.config ~engine ()) policy inst in
         let s = Rr_metrics.Flow_stats.of_flows flows in
         [
           policy.name;
           Table.fcell s.mean;
           Table.fcell s.stddev;
           Table.fcell s.p99;
           Table.fcell s.max;
           Table.fcell s.l2;
         ])
       policies);
  table

(* ------------------------------------------------------------------ *)
(* T6: multiple machines                                               *)
(* ------------------------------------------------------------------ *)

let t6_multiple_machines ?(engine = `Auto) ?pool scale =
  let table =
    Table.create ~title:"T6: RR@4.4 l2 ratio vs SRPT@1 across machine counts (rho = 0.9)"
      ~columns:[ "m"; "l2 ratio"; "RR events" ]
  in
  let n = n_large scale in
  add_rows table
    (pmap pool
       (fun machines ->
         let insts =
           List.map
             (fun seed -> stochastic ~seed ~sizes:exp_sizes ~load:0.9 ~machines ~n)
             (seeds scale)
         in
         let cfg = Run.config ~machines ~speed:4.4 ~engine () in
         let ratio = mean (List.map (fun i -> Ratio.vs_baseline cfg rr i) insts) in
         let events = (Run.simulate cfg rr (List.hd insts)).events in
         [ string_of_int machines; Table.fcell ratio; string_of_int events ])
       [ 1; 2; 4; 8 ]);
  table

(* ------------------------------------------------------------------ *)
(* F3: ablation against weighted RR and friends                        *)
(* ------------------------------------------------------------------ *)

let f3_weighted_rr_ablation ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"F3: l2 ratio vs SRPT@1 — RR vs age-weighted RR vs SETF vs LAPS vs MLFQ vs quantum-RR (m=1)"
      ~columns:[ "policy"; "speed 1.5"; "speed 2"; "speed 3" ]
  in
  let n = match scale with Quick -> 150 | Full -> 1000 in
  let inst = stochastic ~seed:31 ~sizes:exp_sizes ~load:0.9 ~machines:1 ~n in
  (* Policies are built inside each task: quantum-rr owns per-run queue
     state, and a fresh value per speed keeps tasks self-contained. *)
  let mk_policies : (unit -> Rr_engine.Policy.t) list =
    [
      (fun () -> rr);
      (fun () -> Rr_policies.Wrr_age.policy ~k:2 ());
      (fun () -> Rr_policies.Setf.policy);
      (fun () -> Rr_policies.Laps.policy ~beta:0.5);
      (fun () -> Rr_policies.Mlfq.policy ());
      (fun () -> Rr_policies.Quantum_rr.policy ());
    ]
  in
  add_rows table
    (pmap pool
       (fun mk ->
         let cell speed = Table.fcell (Ratio.vs_baseline (Run.config ~speed ~engine ()) (mk ()) inst) in
         [ (mk ()).Rr_engine.Policy.name; cell 1.5; cell 2.0; cell 3.0 ])
       mk_policies);
  table

(* ------------------------------------------------------------------ *)
(* T7: empirical crossover speed                                       *)
(* ------------------------------------------------------------------ *)

(* The price of fairness in speed: the smallest speed augmentation at which
   RR's l2 norm matches (a fraction of) clairvoyant SRPT at speed 1 —
   bracketing the theory's [3/2, 4 + eps] window for when RR becomes
   competitive.  The pool goes into {!Sweep.min_speed_for}'s bracket
   probes, so more domains buy bracket precision, not different rows. *)
let t7_crossover_speed ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"T7: minimal RR speed with l2 norm <= theta * SRPT@1 (bisection)"
      ~columns:[ "workload"; "theta"; "crossover speed" ]
  in
  let b = match scale with Quick -> 10 | Full -> 32 in
  let n = match scale with Quick -> 150 | Full -> 1000 in
  let iters = match scale with Quick -> 8 | Full -> 12 in
  let families =
    [
      ( "batch+stream",
        Rr_workload.Adversary.batch_plus_stream ~batch:b ~stream_load:1.0 ~horizon_factor:1.0
      );
      ("poisson/exp rho=0.9", stochastic ~seed:77 ~sizes:exp_sizes ~load:0.9 ~machines:1 ~n);
      ("poisson/heavy rho=0.9", stochastic ~seed:78 ~sizes:heavy_sizes ~load:0.9 ~machines:1 ~n);
    ]
  in
  List.iter
    (fun (label, inst) ->
      List.iter
        (fun theta ->
          let f speed = Ratio.vs_baseline (Run.config ~speed ~engine ()) rr inst in
          let cross = Sweep.min_speed_for ?pool ~f ~threshold:theta ~lo:1.0 ~hi:8.0 ~iters () in
          Table.add_row table
            [
              label;
              Table.fcell theta;
              (match cross with
              | Ok s -> Table.fcell s
              | Error `Above_hi -> "> 8"
              | Error (`Bad_bracket msg) -> "bracket error: " ^ msg);
            ])
        [ 1.0; 0.5; 0.25 ])
    families;
  table

(* ------------------------------------------------------------------ *)
(* T8: LP soundness sandwich                                           *)
(* ------------------------------------------------------------------ *)

let t8_lp_soundness ?(engine = `Auto) ?pool _scale =
  let table =
    Table.create
      ~title:"T8: LP relaxation sandwich on tiny instances (LP/2 <= OPT^k <= SRPT^k)"
      ~columns:
        [ "instance"; "m"; "k"; "LP lo"; "LP hi"; "OPT^k (brute)"; "SRPT^k"; "sound" ]
  in
  let cases =
    [
      ("A", [ (0, 3); (1, 1); (2, 2) ], 1);
      ("B", [ (0, 2); (0, 1); (1, 2); (3, 1) ], 1);
      ("C", [ (0, 2); (0, 1); (1, 2); (3, 1) ], 2);
    ]
  in
  let tasks =
    List.concat_map
      (fun (label, jobs, machines) -> List.map (fun k -> (label, jobs, machines, k)) [ 1; 2 ])
      cases
  in
  add_rows table
    (pmap pool
       (fun (label, jobs, machines, k) ->
         let inst =
           Rr_workload.Instance.of_jobs ~label
             (List.map (fun (r, p) -> (Float.of_int r, Float.of_int p)) jobs)
         in
         let brute = Rr_lp.Brute.optimal_power_sum ~k ~machines jobs in
         let srpt_pow = Run.power_sum (Run.config ~machines ~k ~engine ()) srpt inst in
         let delta = Bound.default_delta in
         let lp_lo = Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_start ~k ~machines ~delta inst in
         let lp_hi = Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_end ~k ~machines ~delta inst in
         (* New-path cross-checks: the sparse-window build must reproduce
            the dense oracle, the cheap combinatorial floor must sit under
            the LP certificate, and the adaptive bracket must contain the
            fixed-delta values it refines past. *)
         let lp_lo_dense =
           Rr_lp.Lp_bound.value ~mode:Rr_lp.Lp_bound.Slot_start ~windows:Rr_lp.Lp_bound.Dense
             ~k ~machines ~delta inst
         in
         let cheap = Rr_lp.Lp_bound.cheap_lower_bound ~k ~machines inst in
         let itv = Bound.interval ~tol:Bound.default_tol ~cache:false ~k ~machines inst in
         let sound =
           lp_lo <= lp_hi +. 1e-6
           && lp_lo /. 2. <= brute +. 1e-6
           && brute <= srpt_pow +. 1e-6
           && Float.abs (lp_lo -. lp_lo_dense) <= 1e-6 *. Float.max 1. lp_lo_dense
           && cheap <= (lp_lo /. 2.) +. 1e-6
           && cheap <= brute +. 1e-6
           && itv.Rr_lp.Lp_bound.lo <= itv.Rr_lp.Lp_bound.hi +. 1e-6
           && itv.Rr_lp.Lp_bound.lo /. 2. <= brute +. 1e-6
         in
         [
           label;
           string_of_int machines;
           string_of_int k;
           Table.fcell lp_lo;
           Table.fcell lp_hi;
           Table.fcell brute;
           Table.fcell srpt_pow;
           b3 sound;
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T9: quantum Round Robin converges to the paper's fluid RR           *)
(* ------------------------------------------------------------------ *)

let t9_quantum_convergence ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "T9: time-sliced RR converges to the fluid RR the paper analyses as the quantum \
         shrinks (m=1, rho=0.9)"
      ~columns:[ "quantum"; "l1 ratio vs fluid RR"; "l2 ratio vs fluid RR"; "events" ]
  in
  let n = match scale with Quick -> 100 | Full -> 500 in
  let inst = stochastic ~seed:41 ~sizes:exp_sizes ~load:0.9 ~machines:1 ~n in
  let fluid = Run.flows (Run.config ~engine ()) rr inst in
  let fluid_l1 = Rr_metrics.Norms.lk ~k:1 fluid in
  let fluid_l2 = Rr_metrics.Norms.lk ~k:2 fluid in
  add_rows table
    (pmap pool
       (fun quantum ->
         let policy = Rr_policies.Quantum_rr.policy ~quantum () in
         let res = Run.simulate (Run.config ~engine ()) policy inst in
         let flows = Rr_engine.Simulator.flows res in
         [
           Table.fcell quantum;
           Table.fcell (Rr_metrics.Norms.lk ~k:1 flows /. fluid_l1);
           Table.fcell (Rr_metrics.Norms.lk ~k:2 flows /. fluid_l2);
           string_of_int res.events;
         ])
       [ 4.0; 2.0; 1.0; 0.5; 0.25; 0.1 ]);
  table

(* ------------------------------------------------------------------ *)
(* T10: simulator vs closed-form queueing theory                       *)
(* ------------------------------------------------------------------ *)

let t10_queueing_validation ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "T10: simulated mean flow vs closed-form queueing theory (Poisson arrivals, m=1, \
         rho=0.8)"
      ~columns:[ "model"; "policy"; "simulated"; "analytic"; "rel err" ]
  in
  let n = match scale with Quick -> 4_000 | Full -> 40_000 in
  let lambda = 0.8 in
  (* Mean flow over the middle 80% of jobs (by arrival order) to shed the
     empty-system warm-up and drain-out bias of a finite run. *)
  let steady_mean flows =
    let n = Array.length flows in
    let lo = n / 10 and hi = n - (n / 10) in
    let acc = Kahan.create () in
    for i = lo to hi - 1 do
      Kahan.add acc flows.(i)
    done;
    Kahan.total acc /. Float.of_int (hi - lo)
  in
  let exp1 = Rr_workload.Distribution.Exponential { mean = 1. } in
  let hyper =
    Rr_workload.Distribution.Bimodal { small = 0.5; large = 5.5; prob_large = 0.1 }
  in
  let es = Rr_workload.Distribution.mean hyper in
  let es2 = Rr_queueing.Mg1.second_moment hyper in
  (* M/M/1: mu = 1, lambda = 0.8; M/G/1 with a high-variance size
     distribution of mean 1, where PS insensitivity gives the same mean
     flow as the exponential case. *)
  let rows =
    [
      ("M/M/1", "fcfs", Rr_policies.Fcfs.policy, exp1, Rr_queueing.Mm1.mean_flow_fcfs ~lambda ~mu:1.);
      ("M/M/1", "rr (PS)", rr, exp1, Rr_queueing.Mm1.mean_flow_ps ~lambda ~mu:1.);
      ( "M/G/1 (bimodal)",
        "fcfs",
        Rr_policies.Fcfs.policy,
        hyper,
        Rr_queueing.Mg1.mean_flow_fcfs ~lambda ~es ~es2 );
      ("M/G/1 (bimodal)", "rr (PS)", rr, hyper, Rr_queueing.Mg1.mean_flow_ps ~lambda ~es);
    ]
  in
  (* Average several independent runs: at rho = 0.8 the queue's busy-period
     autocorrelation makes a single finite run noisy.  The (row, seed)
     grid is flattened so replicates parallelise too. *)
  let run_seeds = [ 53; 54; 55; 56; 57 ] in
  let tasks = List.concat_map (fun row -> List.map (fun seed -> (row, seed)) run_seeds) rows in
  let sims =
    pmap pool
      (fun ((_, _, policy, sizes, _), seed) ->
        let rng = Prng.create ~seed in
        let inst =
          Rr_workload.Instance.generate ~rng
            ~arrivals:(Rr_workload.Arrivals.Poisson { rate = lambda })
            ~sizes ~n ()
        in
        steady_mean (Run.flows (Run.config ~engine ()) policy inst))
      tasks
  in
  let replicates = List.length run_seeds in
  List.iteri
    (fun i (model, policy_label, _, _, analytic) ->
      let sim = mean (List.filteri (fun j _ -> j / replicates = i) sims) in
      Table.add_row table
        [
          model;
          policy_label;
          Table.fcell sim;
          Table.fcell analytic;
          Table.fcell (Float.abs (sim -. analytic) /. analytic);
        ])
    rows;
  table

(* ------------------------------------------------------------------ *)
(* F4: the speed-up curves contrast of Section 1.3                     *)
(* ------------------------------------------------------------------ *)

let f4_speedup_curves ?engine:_ ?pool scale =
  let table =
    Table.create
      ~title:
        "F4: EQUI (= RR) vs parallelizability-aware allocation in the speed-up curves \
         setting (m=4)"
      ~columns:
        [ "speed"; "EQUI l1"; "cap-EQUI l1"; "l1 ratio"; "EQUI l2"; "cap-EQUI l2"; "l2 ratio" ]
  in
  let n = match scale with Quick -> 20 | Full -> 60 in
  (* Each job alternates parallelizable work with a sequential phase that
     machines cannot accelerate; EQUI keeps granting the sequential phase
     its equal share, which is pure waste.  Jobs are rebuilt inside each
     task so no mutable phase state crosses domains. *)
  let make_jobs () =
    List.init n (fun id ->
        Rr_speedup.Sjob.make ~id
          ~arrival:(Float.of_int id *. 1.1)
          ~phases:
            [
              Rr_speedup.Sjob.parallel ~work:2.;
              Rr_speedup.Sjob.sequential ~work:1.;
              Rr_speedup.Sjob.parallel ~work:2.;
            ])
  in
  add_rows table
    (pmap pool
       (fun speed ->
         let run policy = Rr_speedup.Equi_sim.run ~speed ~machines:4 ~policy (make_jobs ()) in
         let e = run Rr_speedup.Equi_sim.equi in
         let c = run Rr_speedup.Equi_sim.cap_equi in
         let norm ~k flows = Rr_metrics.Norms.lk ~k flows in
         let e1 = norm ~k:1 e.flows and c1 = norm ~k:1 c.flows in
         let e2 = norm ~k:2 e.flows and c2 = norm ~k:2 c.flows in
         [
           Table.fcell speed;
           Table.fcell e1;
           Table.fcell c1;
           Table.fcell (e1 /. c1);
           Table.fcell e2;
           Table.fcell c2;
           Table.fcell (e2 /. c2);
         ])
       [ 1.0; 1.5; 2.0; 3.0 ]);
  table

(* ------------------------------------------------------------------ *)
(* T11: weighted flow time via statically weighted RR                  *)
(* ------------------------------------------------------------------ *)

let t11_weighted_rr ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "T11: weighted flow time (25% of jobs carry weight 4): static-weight RR vs plain RR \
         (m=1, rho=0.9)"
      ~columns:
        [ "policy"; "weighted l1"; "weighted l2"; "heavy-class mean flow"; "light-class mean flow" ]
  in
  let n = match scale with Quick -> 150 | Full -> 1200 in
  let inst = stochastic ~seed:61 ~sizes:exp_sizes ~load:0.9 ~machines:1 ~n in
  let weight_of id = if id mod 4 = 0 then 4. else 1. in
  let weights = Array.init n weight_of in
  let class_mean flows pred =
    let acc = Kahan.create () and count = ref 0 in
    Array.iteri
      (fun i f ->
        if pred i then begin
          Kahan.add acc f;
          incr count
        end)
      flows;
    Kahan.total acc /. Float.of_int (Int.max 1 !count)
  in
  add_rows table
    (pmap pool
       (fun (policy : Rr_engine.Policy.t) ->
         let flows = Run.flows (Run.config ~engine ()) policy inst in
         [
           policy.name;
           Table.fcell (Rr_metrics.Norms.weighted_lk ~k:1 ~weights flows);
           Table.fcell (Rr_metrics.Norms.weighted_lk ~k:2 ~weights flows);
           Table.fcell (class_mean flows (fun i -> i mod 4 = 0));
           Table.fcell (class_mean flows (fun i -> i mod 4 <> 0));
         ])
       [ rr; Rr_policies.Wrr_static.policy ~weight_of (); srpt; Rr_policies.Hdf.policy ~weight_of () ]);
  table

(* ------------------------------------------------------------------ *)
(* F5: broadcast scheduling (the other §1.3 setting)                   *)
(* ------------------------------------------------------------------ *)

let f5_broadcast ?engine:_ ?pool scale =
  let table =
    Table.create
      ~title:
        "F5: broadcast scheduling with Zipf page popularity — RR over pages vs LWF vs FIFO"
      ~columns:[ "speed"; "policy"; "l1"; "l2"; "max flow" ]
  in
  let n = match scale with Quick -> 300 | Full -> 2000 in
  let n_pages = 40 in
  let rng = Prng.create ~seed:71 in
  let sizes = Rr_broadcast.Workgen.uniform_sizes ~rng ~n_pages ~lo:0.5 ~hi:2. in
  (* Request rate chosen so the unicast load would be ~2x the channel; the
     Zipf skew makes aggregation absorb most of it. *)
  let requests =
    Rr_broadcast.Workgen.requests ~rng ~n_pages ~exponent:1.1 ~rate:1.6 ~n ()
  in
  let tasks =
    List.concat_map
      (fun speed ->
        List.map
          (fun policy -> (speed, policy))
          [ Rr_broadcast.Bsim.broadcast_rr; Rr_broadcast.Bsim.lwf; Rr_broadcast.Bsim.fifo ])
      [ 1.0; 2.0 ]
  in
  add_rows table
    (pmap pool
       (fun (speed, policy) ->
         let r = Rr_broadcast.Bsim.run ~speed ~sizes ~policy requests in
         [
           Table.fcell speed;
           policy.Rr_broadcast.Bsim.name;
           Table.fcell (Rr_metrics.Norms.lk ~k:1 r.flows);
           Table.fcell (Rr_metrics.Norms.lk ~k:2 r.flows);
           Table.fcell (Rr_metrics.Norms.linf r.flows);
         ])
       tasks);
  table

(* ------------------------------------------------------------------ *)
(* T12: the k = infinity end of the norm family                        *)
(* ------------------------------------------------------------------ *)

let t12_linf ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:
        "T12: the k = infinity end of the family — max flow time and max slowdown per policy (m=1, rho=0.9, heavy tail)"
      ~columns:[ "policy"; "max flow"; "max slowdown"; "l3"; "mean" ]
  in
  let n = n_large scale in
  let inst = stochastic ~seed:91 ~sizes:heavy_sizes ~load:0.9 ~machines:1 ~n in
  let sizes =
    Array.of_list
      (List.map (fun (j : Rr_engine.Job.t) -> j.size) (Rr_workload.Instance.jobs inst))
  in
  add_rows table
    (pmap pool
       (fun (policy : Rr_engine.Policy.t) ->
         let flows = Run.flows (Run.config ~engine ()) policy inst in
         let s = Rr_metrics.Flow_stats.of_flows flows in
         [
           policy.name;
           Table.fcell (Rr_metrics.Norms.linf flows);
           Table.fcell (Rr_metrics.Flow_stats.max_slowdown ~sizes ~flows);
           Table.fcell s.l3;
           Table.fcell s.mean;
         ])
       [ rr; srpt; Rr_policies.Sjf.policy; Rr_policies.Fcfs.policy; Rr_policies.Setf.policy ]);
  table

(* ------------------------------------------------------------------ *)
(* F6: starvation-hybrid tradeoff (Kuo)                                *)
(* ------------------------------------------------------------------ *)

(* Kuo's starvation-mitigation family interpolates between SRPT and
   FCFS: a job whose flow/size ratio crosses theta gains absolute FCFS
   priority.  Sweeping theta traces the l1-vs-l2 tradeoff the lk
   objective arbitrates — large theta never promotes (pure SRPT: best
   total flow, starving tail), small theta promotes almost on arrival
   (FCFS-like: l1 cost, bounded stretch).  Both endpoints are printed
   for reference; the l2 column should descend towards 1 as theta grows
   while the max-flow column rises, the monotone curve the test suite
   pins. *)
let f6_hybrid_tradeoff ?(engine = `Auto) ?pool scale =
  let table =
    Table.create
      ~title:"F6: starvation hybrid (Kuo) — l1/l2 tradeoff vs SRPT as theta sweeps (m=1, k=2)"
      ~columns:[ "sizes"; "theta"; "l1 vs SRPT"; "l2 vs SRPT"; "max flow vs SRPT" ]
  in
  let n = match scale with Quick -> 150 | Full -> 1000 in
  let thetas = [ 0.25; 0.5; 1.; 2.; 4.; 8.; 32. ] in
  let tasks =
    List.concat_map
      (fun sizes ->
        let inst = stochastic ~seed:83 ~sizes ~load:0.9 ~machines:1 ~n in
        List.map
          (fun sel -> (sizes, inst, sel))
          ((`Fcfs :: List.map (fun th -> `Hybrid th) thetas) @ [ `Srpt ]))
      [ exp_sizes; heavy_sizes ]
  in
  let cfg = Run.config ~engine () in
  add_rows table
    (pmap pool
       (fun (sizes, inst, sel) ->
         let label, policy =
           match sel with
           | `Fcfs -> ("fcfs (theta -> 0)", Rr_policies.Fcfs.policy)
           | `Hybrid th -> (Printf.sprintf "%g" th, Rr_policies.Hybrid.policy ~theta:th ())
           | `Srpt -> ("srpt (theta -> inf)", srpt)
         in
         let r = Run.measure cfg policy inst in
         let b = Run.measure cfg srpt inst in
         [
           Rr_workload.Distribution.name sizes;
           label;
           Table.fcell (r.Run.mean_flow /. b.Run.mean_flow);
           Table.fcell (r.Run.norm /. b.Run.norm);
           Table.fcell (r.Run.max_flow /. b.Run.max_flow);
         ])
       tasks);
  table

let all ?engine ?pool scale =
  [
    t1_l2_speed_sweep ?engine ?pool scale;
    t2_lk_theorem_speed ?engine ?pool scale;
    f1_lower_bound_growth ?engine ?pool scale;
    t3_dual_certificates ?engine ?pool scale;
    t4_l1_flow ?engine ?pool scale;
    t5_instantaneous_fairness ?engine ?pool scale;
    f2_variance_vs_average ?engine ?pool scale;
    t6_multiple_machines ?engine ?pool scale;
    f3_weighted_rr_ablation ?engine ?pool scale;
    t7_crossover_speed ?engine ?pool scale;
    t8_lp_soundness ?engine ?pool scale;
    t9_quantum_convergence ?engine ?pool scale;
    t10_queueing_validation ?engine ?pool scale;
    f4_speedup_curves ?engine ?pool scale;
    t11_weighted_rr ?engine ?pool scale;
    f5_broadcast ?engine ?pool scale;
    t12_linf ?engine ?pool scale;
    f6_hybrid_tradeoff ?engine ?pool scale;
  ]
