(* Work-stealing domain pool.  See pool.mli for the user-facing contract.

   Batch execution: the batch is first cut into chunks of consecutive
   task indices (cost-aware, see chunk_offsets below); the chunk indices
   [0, n_chunks) are then split into one contiguous slice per
   participant, each held as a packed (lo, hi) pair inside a single
   atomic int (lo in the high bits, hi in the low 31).  A participant
   pops from the lo end of its own slice and steals from the hi end of
   other slices, so owner and thieves contend on one CAS and every
   transition linearises.  Slices only ever shrink, so a participant that
   completes a full pop-then-scan without finding work can retire: any
   chunk it did not see claimed is being executed synchronously inside
   another participant's loop.  The batch is over when every participant
   has retired, which the submitting caller awaits under the pool mutex —
   that lock handoff is also what makes the workers' writes to the result
   array visible to the caller.

   Chunking changes the unit of stealing, never the unit of work: inside
   a chunk the tasks run in index order, each with its own exception
   boundary, so result ordering, per-task PRNG seeding, and the failure
   index reported by Task_error are identical for every chunking. *)

exception Task_error of int * exn

let () =
  Printexc.register_printer (function
    | Task_error (i, e) ->
        Some (Printf.sprintf "Pool.Task_error (task %d: %s)" i (Printexc.to_string e))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Packed index ranges                                                 *)
(* ------------------------------------------------------------------ *)

let mask31 = (1 lsl 31) - 1
let pack ~lo ~hi = (lo lsl 31) lor hi
let unpack r = (r lsr 31, r land mask31)

let try_pop slice =
  let rec go () =
    let r = Atomic.get slice in
    let lo, hi = unpack r in
    if lo >= hi then None
    else if Atomic.compare_and_set slice r (pack ~lo:(lo + 1) ~hi) then Some lo
    else go ()
  in
  go ()

let try_steal slice =
  let rec go () =
    let r = Atomic.get slice in
    let lo, hi = unpack r in
    if lo >= hi then None
    else if Atomic.compare_and_set slice r (pack ~lo ~hi:(hi - 1)) then Some (hi - 1)
    else go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Pool and batch state                                                *)
(* ------------------------------------------------------------------ *)

type gc_delta = {
  participant : int;
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

type batch = {
  run : int -> unit;  (* one task, by task index *)
  offsets : int array;  (* chunk j = task indices [offsets.(j), offsets.(j+1)) *)
  slices : int Atomic.t array;  (* of chunk indices *)
  stop : bool Atomic.t;
  failure : (int * exn) option Atomic.t;
  gc_deltas : gc_delta array;  (* slot p written only by participant p *)
  mutable unfinished : int;  (* participants still working; under the pool mutex *)
}

type t = {
  size : int;
  minor_heap_words : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable current : batch option;
  mutable generation : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable busy : bool;
  mutable last_gc : gc_delta array;  (* deltas of the most recent batch *)
}

(* Keep the lowest-index failure so that single-fault batches report
   deterministically whichever domain hit the fault. *)
let record_failure b i e =
  let rec go () =
    match Atomic.get b.failure with
    | Some (j, _) when j <= i -> ()
    | cur -> if not (Atomic.compare_and_set b.failure cur (Some (i, e))) then go ()
  in
  go ();
  Atomic.set b.stop true

(* [Gc.quick_stat] reads only the calling domain's counters (no
   stop-the-world), so bracketing each participant's share of a batch
   with it yields honest per-domain numbers: how many words this domain
   allocated, how much it promoted to the shared major heap, and how
   often it collected while chewing its tasks.  [minor_words] comes from
   [Gc.minor_words] instead: quick_stat's copy is only updated at
   collection boundaries, so a slice that fits inside one minor-heap
   cycle would read as zero allocation. *)
let gc_bracket p f =
  let s0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  f ();
  let m1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  {
    participant = p;
    minor_words = m1 -. m0;
    promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
    major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
  }

let work b p =
  let participants = Array.length b.slices in
  let claim () =
    if Atomic.get b.stop then None
    else
      match try_pop b.slices.(p) with
      | Some _ as s -> s
      | None ->
          let rec scan k =
            if k = participants then None
            else
              match try_steal b.slices.((p + k) mod participants) with
              | Some _ as s -> s
              | None -> scan (k + 1)
          in
          scan 1
  in
  (* Tasks of a chunk run in index order, each with its own exception
     boundary so the failure index is the task's, not the chunk's; a
     recorded failure abandons the rest of the chunk. *)
  let run_chunk j =
    let hi = b.offsets.(j + 1) in
    let i = ref b.offsets.(j) in
    while !i < hi && not (Atomic.get b.stop) do
      (try b.run !i with e -> record_failure b !i e);
      incr i
    done
  in
  let rec go () =
    match claim () with
    | None -> ()
    | Some j ->
        run_chunk j;
        go ()
  in
  go ()

(* Retire from the current batch; the last participant out wakes the
   submitter. *)
let retire pool b =
  Mutex.lock pool.mutex;
  b.unfinished <- b.unfinished - 1;
  if b.unfinished = 0 then Condition.broadcast pool.batch_done;
  Mutex.unlock pool.mutex

let rec worker_loop pool p seen =
  Mutex.lock pool.mutex;
  while (not pool.stopping) && pool.generation = seen do
    Condition.wait pool.work_ready pool.mutex
  done;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let b = match pool.current with Some b -> b | None -> assert false in
    Mutex.unlock pool.mutex;
    b.gc_deltas.(p) <- gc_bracket p (fun () -> work b p);
    retire pool b;
    worker_loop pool p gen
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Default worker minor heap: 4M words (32 MB).  The B4 audit puts a
   streamed simulation task at ~10 words/job steady state but tens of
   words/job for the materialized and dense engines, so a 100k-job task
   allocates on the order of 1-10M minor words; at the runtime's default
   256k-word minor heap that is tens of collections per task, each a
   rendezvous risk with sibling domains and a promotion pump into the
   shared major heap.  4M words keeps a typical task to a couple of
   collections while costing a bounded 32 MB per worker domain. *)
let default_minor_heap_words = 1 lsl 22

(* The OCaml 5 runtime refuses [Unix.fork] once any domain has EVER been
   spawned — joining them does not lift the ban.  Pools are the only
   domain spawner in this library, so this sticky flag is how the
   process-fan-out backend (Procs) knows fork is still on the table. *)
let spawned_domains = Atomic.make false
let domains_ever_spawned () = Atomic.get spawned_domains

let create ?(minor_heap_words = default_minor_heap_words) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if minor_heap_words < 1 lsl 12 then
    invalid_arg "Pool.create: minor_heap_words must be at least 4096";
  let pool =
    {
      size = domains;
      minor_heap_words;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      workers = [];
      busy = false;
      last_gc = [||];
    }
  in
  (* Give this pool's domains contention-free cache striping: at least
     4 shards per domain (grow-only, so two pools never fight). *)
  Cache.reserve_shards ~domains;
  if domains > 1 then Atomic.set spawned_domains true;
  pool.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            (* Per-domain GC tuning: Gc.set applies to the calling domain,
               so each worker sizes its own minor heap.  The submitting
               domain (participant 0) is deliberately left alone — its
               minor heap belongs to the surrounding program, not to this
               pool. *)
            Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words };
            worker_loop pool (i + 1) 0));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    pool.stopping <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?minor_heap_words ~domains f =
  let pool = create ?minor_heap_words ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let minor_heap_words pool = pool.minor_heap_words

let last_batch_gc_deltas pool = Array.copy pool.last_gc

(* ------------------------------------------------------------------ *)
(* Chunking                                                            *)
(* ------------------------------------------------------------------ *)

type chunking = [ `Auto | `Fixed of int ]

(* Work a chunk should amortise the per-chunk claim (one CAS) and any
   per-chunk cold-start cost over, in the units of the caller's ?cost
   estimates (nominally microseconds). *)
let auto_chunk_target_cost = 1_000.

let fixed_offsets ~n size =
  let n_chunks = (n + size - 1) / size in
  Array.init (n_chunks + 1) (fun j -> Int.min n (j * size))

(* Group consecutive tasks greedily until a chunk's estimated cost
   reaches the target.  When the whole batch is smaller than
   [participants] targets, shrink the target to an even split instead —
   better every domain busy on half-size chunks than half the domains
   idle. *)
let costed_offsets ~n ~participants costs =
  let total = Array.fold_left ( +. ) 0. costs in
  let target =
    Float.max 1e-9
      (Float.min auto_chunk_target_cost (total /. Float.of_int participants))
  in
  let offsets = ref [ 0 ] in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Float.max 0. costs.(i);
    if !acc >= target && i < n - 1 then begin
      offsets := (i + 1) :: !offsets;
      acc := 0.
    end
  done;
  Array.of_list (List.rev (n :: !offsets))

let chunk_offsets ~chunk ~costs ~n ~participants =
  match chunk with
  | `Fixed size ->
      if size < 1 then invalid_arg "Pool: chunk size must be >= 1";
      fixed_offsets ~n size
  | `Auto -> (
      match costs with
      | Some costs -> costed_offsets ~n ~participants costs
      | None ->
          (* No cost model: keep plenty of chunks for stealing (16 per
             participant) but amortise the claim CAS for huge batches. *)
          fixed_offsets ~n (Int.max 1 (Int.min 64 (n / (16 * participants)))))

(* ------------------------------------------------------------------ *)
(* Batch submission                                                    *)
(* ------------------------------------------------------------------ *)

let run_batch pool ~offsets run =
  let n_chunks = Array.length offsets - 1 in
  if n_chunks < 0 || n_chunks > mask31 then invalid_arg "Pool: task count out of range";
  if n_chunks = 0 then ()
  else begin
    let slices =
      Array.init pool.size (fun p ->
          Atomic.make
            (pack ~lo:(p * n_chunks / pool.size) ~hi:((p + 1) * n_chunks / pool.size)))
    in
    let b =
      {
        run;
        offsets;
        slices;
        stop = Atomic.make false;
        failure = Atomic.make None;
        gc_deltas =
          Array.init pool.size (fun participant ->
              {
                participant;
                minor_words = 0.;
                promoted_words = 0.;
                minor_collections = 0;
                major_collections = 0;
              });
        unfinished = pool.size;
      }
    in
    Mutex.lock pool.mutex;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool: map on a shut-down pool"
    end;
    if pool.busy then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool: concurrent map calls on the same pool"
    end;
    pool.busy <- true;
    pool.current <- Some b;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    b.gc_deltas.(0) <- gc_bracket 0 (fun () -> work b 0);
    Mutex.lock pool.mutex;
    b.unfinished <- b.unfinished - 1;
    while b.unfinished > 0 do
      Condition.wait pool.batch_done pool.mutex
    done;
    pool.current <- None;
    pool.busy <- false;
    (* Every participant has retired (their slot writes happened before
       the mutex handoff above), so the deltas are complete and visible. *)
    pool.last_gc <- b.gc_deltas;
    Mutex.unlock pool.mutex;
    match Atomic.get b.failure with
    | Some (i, e) -> raise (Task_error (i, e))
    | None -> ()
  end

let map_array ?(chunk = `Auto) ?cost pool f xs =
  let n = Array.length xs in
  if n > mask31 then invalid_arg "Pool: task count out of range";
  let costs = Option.map (fun c -> Array.map c xs) cost in
  let offsets = chunk_offsets ~chunk ~costs ~n ~participants:pool.size in
  let res = Array.make n None in
  run_batch pool ~offsets (fun i -> res.(i) <- Some (f xs.(i)));
  Array.map (function Some y -> y | None -> assert false) res

let map ?chunk ?cost pool f xs =
  Array.to_list (map_array ?chunk ?cost pool f (Array.of_list xs))

let map_reduce ?chunk ?cost pool ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map_array ?chunk ?cost pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Sizing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let recommended_domains () = Int.max 1 (Domain.recommended_domain_count ())

let env_domains () =
  match Sys.getenv_opt "RR_JOBS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Some (recommended_domains ())
      | Some j when j > 0 -> Some j
      | _ -> None)
