let speeds ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Sweep.speeds: need at least two steps";
  if lo >= hi then invalid_arg "Sweep.speeds: need lo < hi";
  List.init steps (fun i ->
      lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int (steps - 1)))

let min_speed_for ?pool ~f ~threshold ~lo ~hi ~iters () =
  if not (Float.is_finite lo && Float.is_finite hi) then
    Error (`Bad_bracket (Printf.sprintf "non-finite bracket [%g, %g]" lo hi))
  else if lo >= hi then
    Error (`Bad_bracket (Printf.sprintf "need lo < hi, got [%g, %g]" lo hi))
  else if iters < 1 then Error (`Bad_bracket (Printf.sprintf "need iters >= 1, got %d" iters))
  else begin
    let p = match pool with None -> 1 | Some pl -> Pool.size pl in
    (* Probe memo: each probe is typically a full simulate-and-measure, and
       once the bracket is narrow a probe can collide with an endpoint (or,
       with several probes per round, with a sibling).  Memoising f here
       guarantees no speed is ever evaluated twice within one search, even
       when f is opaque; probes whose f measures through Run additionally
       land in the sharded result Cache, whose single-flight lets the
       concurrent probes of a round share their baseline run without ever
       serialising behind one lock.  Probes are `Fixed 1 chunks: a round
       has at most p of them and each is a full simulation, so
       task-granular stealing is the right unit. *)
    let memo : (float, float) Hashtbl.t = Hashtbl.create 64 in
    let eval xs =
      let missing =
        List.sort_uniq Float.compare (List.filter (fun x -> not (Hashtbl.mem memo x)) xs)
      in
      let ys =
        match pool with
        | Some pl when p > 1 && List.compare_length_with missing 1 > 0 ->
            Pool.map ~chunk:(`Fixed 1) pl f missing
        | _ -> List.map f missing
      in
      List.iter2 (Hashtbl.replace memo) missing ys;
      List.map (Hashtbl.find memo) xs
    in
    match eval [ hi ] with
    | [ y_hi ] when y_hi > threshold -> Error `Above_hi
    | _ ->
        let lo = ref lo and hi = ref hi in
        for _ = 1 to iters do
          let width = !hi -. !lo in
          let probes =
            List.init p (fun i ->
                !lo +. (width *. Float.of_int (i + 1) /. Float.of_int (p + 1)))
          in
          let ys = eval probes in
          (* The leftmost satisfying probe bounds the crossover above; its left
             neighbour (or the current lo) bounds it below.  When no probe
             satisfies, the crossover lies in (last probe, hi]. *)
          let rec narrow prev = function
            | [] -> lo := prev
            | (x, y) :: rest ->
                if y <= threshold then begin
                  lo := prev;
                  hi := x
                end
                else narrow x rest
          in
          narrow !lo (List.combine probes ys)
        done;
        Ok !hi
  end
