let speeds ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Sweep.speeds: need at least two steps";
  if lo >= hi then invalid_arg "Sweep.speeds: need lo < hi";
  List.init steps (fun i ->
      lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int (steps - 1)))

let min_speed_for ?pool ~f ~threshold ~lo ~hi ~iters () =
  if not (Float.is_finite lo && Float.is_finite hi) then
    Error (`Bad_bracket (Printf.sprintf "non-finite bracket [%g, %g]" lo hi))
  else if lo >= hi then
    Error (`Bad_bracket (Printf.sprintf "need lo < hi, got [%g, %g]" lo hi))
  else if iters < 1 then Error (`Bad_bracket (Printf.sprintf "need iters >= 1, got %d" iters))
  else if f hi > threshold then Error `Above_hi
  else begin
    let p = match pool with None -> 1 | Some pl -> Pool.size pl in
    let eval xs = match pool with Some pl when p > 1 -> Pool.map pl f xs | _ -> List.map f xs in
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iters do
      let width = !hi -. !lo in
      let probes =
        List.init p (fun i ->
            !lo +. (width *. Float.of_int (i + 1) /. Float.of_int (p + 1)))
      in
      let ys = eval probes in
      (* The leftmost satisfying probe bounds the crossover above; its left
         neighbour (or the current lo) bounds it below.  When no probe
         satisfies, the crossover lies in (last probe, hi]. *)
      let rec narrow prev = function
        | [] -> lo := prev
        | (x, y) :: rest ->
            if y <= threshold then begin
              lo := prev;
              hi := x
            end
            else narrow x rest
      in
      narrow !lo (List.combine probes ys)
    done;
    Ok !hi
  end
