(* Both norms go through Run.measure, so with cfg.cache set the baseline —
   identical across every probe of a speed sweep — is simulated once and
   found in the Cache thereafter.  With a pool, the policy and the
   baseline simulate concurrently as two single-task chunks; the cache's
   single-flight keeps concurrent probes of a parallel sweep from ever
   duplicating the shared baseline run. *)

let ratio num den = if den <= 0. then Float.nan else num /. den

(* Evaluate the (numerator, denominator) thunks, side by side on the pool
   when one is given.  `Fixed 1: two long simulations must be two steal
   units, not one auto-grouped chunk. *)
let eval2 pool num den =
  match pool with
  | Some pool when Pool.size pool > 1 -> (
      match Pool.map ~chunk:(`Fixed 1) pool (fun f -> f ()) [ num; den ] with
      | [ n; d ] -> (n, d)
      | _ -> assert false)
  | _ -> (num (), den ())

let vs_baseline ?pool ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.)
    (cfg : Run.config) policy inst =
  let num, den =
    eval2 pool
      (fun () -> Run.norm cfg policy inst)
      (fun () -> Run.norm { cfg with speed = baseline_speed; record_trace = false } baseline inst)
  in
  ratio num den

let vs_baseline_stream ?pool ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.)
    (cfg : Run.config) policy stream =
  let num, den =
    eval2 pool
      (fun () -> (Run.measure_stream cfg policy stream).Run.norm)
      (fun () ->
        (Run.measure_stream { cfg with speed = baseline_speed; record_trace = false } baseline
           stream)
          .Run.norm)
  in
  ratio num den

let vs_lp_bound ~delta (cfg : Run.config) policy inst =
  let num = Run.norm cfg policy inst in
  let den =
    Rr_lp.Lp_bound.opt_norm_lower_bound ~k:cfg.k ~machines:cfg.machines ~delta inst
  in
  ratio num den
