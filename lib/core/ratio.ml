(* Both norms go through Run.measure, so with cfg.cache set the baseline —
   identical across every probe of a speed sweep — is simulated once and
   found in the Cache thereafter. *)
let vs_baseline ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.) (cfg : Run.config)
    policy inst =
  let num = Run.norm cfg policy inst in
  let den = Run.norm { cfg with speed = baseline_speed; record_trace = false } baseline inst in
  if den <= 0. then Float.nan else num /. den

let vs_baseline_stream ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.)
    (cfg : Run.config) policy stream =
  let num = (Run.measure_stream cfg policy stream).Run.norm in
  let den =
    (Run.measure_stream { cfg with speed = baseline_speed; record_trace = false } baseline
       stream)
      .Run.norm
  in
  if den <= 0. then Float.nan else num /. den

let vs_lp_bound ~delta (cfg : Run.config) policy inst =
  let num = Run.norm cfg policy inst in
  let den =
    Rr_lp.Lp_bound.opt_norm_lower_bound ~k:cfg.k ~machines:cfg.machines ~delta inst
  in
  if den <= 0. then Float.nan else num /. den
