(* Both norms go through Run.measure, so with cfg.cache set the baseline —
   identical across every probe of a speed sweep — is simulated once and
   found in the Cache thereafter.  With a pool, the policy and the
   baseline simulate concurrently as two single-task chunks; the cache's
   single-flight keeps concurrent probes of a parallel sweep from ever
   duplicating the shared baseline run. *)

let ratio num den = if den <= 0. then Float.nan else num /. den

(* Evaluate the (numerator, denominator) thunks, side by side on the pool
   when one is given.  `Fixed 1: two long simulations must be two steal
   units, not one auto-grouped chunk. *)
let eval2 pool num den =
  match pool with
  | Some pool when Pool.size pool > 1 -> (
      match Pool.map ~chunk:(`Fixed 1) pool (fun f -> f ()) [ num; den ] with
      | [ n; d ] -> (n, d)
      | _ -> assert false)
  | _ -> (num (), den ())

let vs_baseline ?pool ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.)
    (cfg : Run.config) policy inst =
  let num, den =
    eval2 pool
      (fun () -> Run.norm cfg policy inst)
      (fun () -> Run.norm { cfg with speed = baseline_speed; record_trace = false } baseline inst)
  in
  ratio num den

let vs_baseline_stream ?pool ?(baseline = Rr_policies.Srpt.policy) ?(baseline_speed = 1.)
    (cfg : Run.config) policy stream =
  let num, den =
    eval2 pool
      (fun () -> (Run.measure_stream cfg policy stream).Run.norm)
      (fun () ->
        (Run.measure_stream { cfg with speed = baseline_speed; record_trace = false } baseline
           stream)
          .Run.norm)
  in
  ratio num den

let vs_lp_bound ~delta (cfg : Run.config) policy inst =
  let num = Run.norm cfg policy inst in
  let den =
    Rr_lp.Lp_bound.opt_norm_lower_bound ~k:cfg.k ~machines:cfg.machines ~delta inst
  in
  ratio num den

type certified = {
  ratio : float;
  floor : float;
  lp_solved : bool;
  interval : Rr_lp.Lp_bound.interval option;
}

(* The cheap pre-filter brackets the certified ratio without touching the
   LP: cheap_lower_bound <= OPT^k gives an upper estimate of the ratio,
   SRPT's power sum >= OPT^k gives a lower one.  Only when that bracket
   intersects the caller's interesting band is the LP actually solved. *)
let vs_certified ?pool ?tol ?(band = (1., Float.infinity)) (cfg : Run.config) policy inst =
  let k = cfg.k and machines = cfg.machines in
  let kth x = if x <= 0. then 0. else x ** (1. /. Float.of_int k) in
  let base = { cfg with speed = 1.; record_trace = false } in
  let num, srpt_pow =
    eval2 pool
      (fun () -> Run.norm cfg policy inst)
      (fun () -> Run.power_sum base Rr_policies.Srpt.policy inst)
  in
  let cheap = Rr_lp.Lp_bound.cheap_lower_bound ~k ~machines inst in
  let floor = ratio num (kth srpt_pow) in
  let rough = ratio num (kth cheap) in
  let band_lo, band_hi = band in
  if rough < band_lo || floor > band_hi then
    (* The cheap bracket already settles the question on both sides:
       [rough] is a certified upper bound on the ratio, so below the band
       it is boring-good; [floor] underestimates even the uncertified
       ratio, so above the band the instance is hopeless either way. *)
    { ratio = rough; floor; lp_solved = false; interval = None }
  else begin
    let power, itv = Bound.opt_power_lower_bound ?pool ?tol ~k ~machines inst in
    { ratio = ratio num (kth power); floor; lp_solved = true; interval = Some itv }
  end
