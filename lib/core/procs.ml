(* Process fan-out: fork one child process per chunk of consecutive
   tasks, at most [procs] alive at a time, each piping its results back
   through [Marshal].  See procs.mli for the user-facing contract.

   Why processes when the Pool already has domains: every OCaml 5 domain
   allocates into one shared major heap, so allocation-heavy tasks
   serialise on the major allocator and on stop-the-world minor
   collections no matter how independent they are.  A forked child owns
   an entire runtime — private minor AND major heap, private GC — so the
   only shared resource is the kernel.  The price is a fork + a
   [Marshal] round-trip per chunk, which is why the executor heuristic
   (Run.choose_backend) only picks this backend when tasks are expensive
   enough to amortise it.

   Determinism contract, mirrored from Pool: chunks partition [0, n) in
   index order, a child evaluates its tasks in ascending index order,
   and the parent drains children oldest-first, writing each chunk's
   results back at its offset — so the result array, the evaluation
   order of any per-task effects *within a task*, and the identity of
   the first failing index are exactly those of the sequential loop.

   Failure semantics: a task exception is caught in the child at its own
   index, carried home as a string (exceptions do not survive [Marshal]
   with their identity intact — an unmarshalled exception would compare
   unequal to its own constructor), and re-raised by the parent as
   [Pool.Task_error (index, Remote_error message)].  A child that dies
   without delivering a complete payload (killed, OOM, segfault) is
   reported the same way, charged to the first task index of its chunk.

   Pipe discipline: the parent never spawns more than [procs] children
   and, once the window is full, fully drains the *oldest* child before
   spawning the next.  A child blocked writing a large payload simply
   waits until the parent gets to it; since children never depend on one
   another, draining oldest-first cannot deadlock, and payloads larger
   than the kernel pipe buffer (64 KiB) stream through cleanly.

   Fork safety: fork is called only from the submitting thread and the
   children do nothing but compute and write — they never touch locks
   inherited mid-operation.  Callers must not run this concurrently with
   live Pool worker domains (forking a multi-domain runtime duplicates
   only the calling domain, leaving forked-dead sibling state behind);
   the Run executor never mixes the two backends. *)

exception Remote_error of string

let () =
  Printexc.register_printer (function
    | Remote_error msg -> Some (Printf.sprintf "Procs.Remote_error (%s)" msg)
    | _ -> None)

(* The runtime refuses fork once any domain was ever spawned (even after
   they are joined), and pools are this library's only domain spawner —
   so availability is Unix AND no pool has gone multi-domain yet. *)
let available () = Sys.unix && not (Pool.domains_ever_spawned ())

(* Evaluate tasks [lo, hi) in ascending order, stopping at the first
   failure — the same per-task exception boundary as Pool.run_chunk. *)
let eval_chunk f (xs : 'a array) lo hi : ('b list, int * string) result =
  let rec go acc i =
    if i >= hi then Ok (List.rev acc)
    else
      match f xs.(i) with
      | y -> go (y :: acc) (i + 1)
      | exception e -> Error (i, Printexc.to_string e)
  in
  go [] lo

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* Child half: compute, marshal, flush, _exit.  [Unix._exit] skips
   at_exit handlers and stdio flushing — the parent flushed its buffers
   before forking, so anything buffered here would be a duplicate. *)
let child_main f xs lo hi wfd =
  (try
     let payload = eval_chunk f xs lo hi in
     let oc = Unix.out_channel_of_descr wfd in
     Marshal.to_channel oc payload [];
     flush oc
   with _ -> Unix._exit 3);
  Unix._exit 0

type child = { pid : int; rfd : Unix.file_descr; lo : int }

let spawn f xs lo hi =
  (* Anything sitting in the parent's stdio buffers would otherwise be
     written twice, once by each process. *)
  flush stdout;
  flush stderr;
  let rfd, wfd = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close rfd;
      child_main f xs lo hi wfd
  | pid ->
      Unix.close wfd;
      { pid; rfd; lo }

(* Drain one child completely: read its whole payload, then reap it.  A
   complete payload wins over a nonzero exit status (the work is done);
   an incomplete one is charged to the chunk's first task. *)
let collect child : ('b list, int * string) result =
  let ic = Unix.in_channel_of_descr child.rfd in
  let payload =
    match (Marshal.from_channel ic : ('b list, int * string) result) with
    | v -> Some v
    | exception _ -> None
  in
  close_in_noerr ic;
  let _, status = Unix.waitpid [] child.pid in
  match payload with
  | Some v -> v
  | None ->
      Error
        ( child.lo,
          Printf.sprintf "worker process died before delivering its results (%s)"
            (describe_status status) )

(* Sequential fallback with identical semantics (used for procs = 1 and
   platforms without fork): ascending order, first failure raises
   Task_error with the original exception — no marshal round-trip, so
   nothing to lose. *)
let sequential f xs (res : 'b option array) =
  Array.iteri
    (fun i x ->
      match f x with
      | y -> res.(i) <- Some y
      | exception e -> raise (Pool.Task_error (i, e)))
    xs

let map_array ?(chunk = `Auto) ?cost ~procs f xs =
  if procs < 1 then invalid_arg "Procs.map_array: procs must be >= 1";
  let n = Array.length xs in
  let res = Array.make n None in
  if procs = 1 || not (available ()) then sequential f xs res
  else begin
    let costs = Option.map (fun c -> Array.map c xs) cost in
    let offsets = Pool.chunk_offsets ~chunk ~costs ~n ~participants:procs in
    let n_chunks = Array.length offsets - 1 in
    let inflight = Queue.create () in
    let failure = ref None in
    let land_results child =
      match collect child with
      | Ok ys -> List.iteri (fun k y -> res.(child.lo + k) <- Some y) ys
      | Error (i, msg) -> if !failure = None then failure := Some (i, msg)
    in
    let j = ref 0 in
    while !j < n_chunks && !failure = None do
      if Queue.length inflight >= procs then land_results (Queue.pop inflight);
      if !failure = None then begin
        let lo = offsets.(!j) and hi = offsets.(!j + 1) in
        (match spawn f xs lo hi with
        | child -> Queue.push child inflight
        | exception Failure _ ->
            (* The runtime refused fork mid-run (a domain appeared since
               the availability check).  Evaluate the chunk in-parent:
               same order, same results, just no parallelism. *)
            (match eval_chunk f xs lo hi with
            | Ok ys -> List.iteri (fun k y -> res.(lo + k) <- Some y) ys
            | Error (i, msg) -> failure := Some (i, msg)));
        incr j
      end
    done;
    (* Drain stragglers even after a failure — every forked child must be
       reaped, and a lower-index failure in an earlier chunk wins. *)
    while not (Queue.is_empty inflight) do
      let child = Queue.pop inflight in
      match collect child with
      | Ok ys -> List.iteri (fun k y -> res.(child.lo + k) <- Some y) ys
      | Error (i, msg) -> (
          match !failure with
          | Some (i0, _) when i0 <= i -> ()
          | _ -> failure := Some (i, msg))
    done;
    match !failure with
    | Some (i, msg) -> raise (Pool.Task_error (i, Remote_error msg))
    | None -> ()
  end;
  Array.map (function Some y -> y | None -> assert false) res

let map ?chunk ?cost ~procs f xs =
  Array.to_list (map_array ?chunk ?cost ~procs f (Array.of_list xs))
