(** Empirical competitive ratios.

    An online algorithm is [c]-competitive for the lk-norm when its norm is
    at most [c] times the optimal scheduler's on every instance; with
    [s]-speed augmentation the algorithm runs at speed [s] while the
    optimum keeps speed 1.  True OPT being unavailable, ratios are measured
    against two proxies:

    - a baseline policy at speed 1 (usually SRPT, a strong practical
      stand-in): an {e estimate} of the ratio;
    - the paper's LP relaxation ({!Rr_lp.Lp_bound}): a certified {e upper
      bound} on the true ratio, since the LP certifiably lower-bounds OPT.

    Both take the policy's context as a {!Run.config} ([machines], [speed]
    and [k] are read from it); the baseline always runs trace-free at
    [baseline_speed].  With [?pool] (more than one domain), the policy and
    the baseline simulate side by side; the {!Cache}'s single-flight
    guarantees the shared baseline is computed once even when many probes
    race on it. *)

val vs_baseline :
  ?pool:Pool.t ->
  ?baseline:Rr_engine.Policy.t ->
  ?baseline_speed:float ->
  Run.config ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  float
(** lk-norm of the policy under the config divided by the lk-norm of
    [baseline] (default SRPT) at [baseline_speed] (default 1).  Returns
    [nan] when the baseline norm is 0 (empty instance).  [?pool] runs the
    two simulations concurrently; the value is identical either way. *)

val vs_baseline_stream :
  ?pool:Pool.t ->
  ?baseline:Rr_engine.Policy.t ->
  ?baseline_speed:float ->
  Run.config ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.Stream.t ->
  float
(** {!vs_baseline} over a lazy stream: both the policy and the baseline
    measure through {!Run.measure_stream}, so the ratio of a
    million-job workload costs O(alive jobs) memory — per domain, when
    [?pool] runs the two sides concurrently.  With [cfg.cache] set, the
    baseline is simulated once per (config, stream digest) and found in
    the cache (or joined in flight) on every subsequent probe, exactly as
    in the materialized path. *)

val vs_lp_bound :
  delta:float -> Run.config -> Rr_engine.Policy.t -> Rr_workload.Instance.t -> float
(** lk-norm of the policy under the config divided by the certified LP
    lower bound on the optimal lk-norm ([delta] is the LP discretisation
    width): an upper bound on the policy's true competitive ratio on this
    instance. *)

type certified = {
  ratio : float;
      (** Certified upper bound on the policy's competitive ratio on this
          instance: its norm over the best certified lower bound on the
          optimal norm available (the LP bracket's [lo / 2], the cheap
          combinatorial floor when the LP was skipped — both certified). *)
  floor : float;
      (** The other end of what is knowable cheaply: the policy's norm
          over SRPT's norm-root of power sum — a lower estimate of even
          the uncertified ratio, since SRPT's cost upper-bounds OPT's. *)
  lp_solved : bool;  (** Whether the LP actually ran (vs cheap filter). *)
  interval : Rr_lp.Lp_bound.interval option;
      (** The certified LP bracket, when the LP ran. *)
}

val vs_certified :
  ?pool:Pool.t ->
  ?tol:float ->
  ?band:float * float ->
  Run.config ->
  Rr_engine.Policy.t ->
  Rr_workload.Instance.t ->
  certified
(** Certified competitive ratio with the combinatorial first-pass filter:
    {!Rr_lp.Lp_bound.cheap_lower_bound} and one fast SRPT power sum
    bracket the ratio for free, and the LP
    ({!Bound.opt_power_lower_bound}, interval-certified to [?tol],
    cached, fanned out on [?pool]) runs only when that bracket still
    intersects [?band] (default [(1., infinity)]: skip only instances the
    cheap bound already certifies below ratio 1's band floor — pass a
    narrower band to skip more).  The returned [ratio] is certified in
    both cases. *)
