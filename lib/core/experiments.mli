(** The reproduction's evaluation suite.

    The paper is pure theory and publishes no tables or figures; DESIGN.md
    derives one experiment per quantitative claim (T1-T8, F1-F3) and this
    module implements each as a function producing a rendered table.  The
    [Full] scale is what [bench/main.exe] runs and what EXPERIMENTS.md
    records; [Quick] shrinks instance sizes so that the whole suite runs in
    seconds inside the test suite while exercising identical code paths.

    Every experiment takes an optional {!Pool.t} and computes its
    independent simulate-and-measure rows on it; row order and — except
    for T7, whose bracket precision intentionally grows with the domain
    count — row content are identical for any pool size. *)

type scale = Quick | Full

val t1_l2_speed_sweep : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Theorem 1 at k = 2: RR's l2 ratio across speeds; bounded by a small
    constant at speed 4.4, larger at low speeds.  Ratios vs SRPT\@1 on
    large stochastic instances and vs the certified LP bound on a small
    one. *)

val t2_lk_theorem_speed : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Theorem 1 for k = 1, 2, 3: RR at exactly the theorem speed
    [2k(1 + 10 eps)] with [eps = 0.1]. *)

val f1_lower_bound_growth : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The Section 1.1 negative result, empirically: RR's l2 ratio as a
    function of speed on adversarial transients — largest at speed 1,
    decaying to a small constant before the Theorem-1 speed.  The
    asymptotic [Omega(n^eps)] growth at [(1+eps)]-speed needs the adaptive
    adversary of Bansal-Pruhs and is documented as out of scope for fixed
    families (EXPERIMENTS.md). *)

val t3_dual_certificates : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Dual-fitting certificates (Sections 3.2-3.4) constructed and verified
    on random instances, including a weak-duality cross-check against the
    LP value. *)

val t4_l1_flow : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The classical l1 guarantee (RR is O(1)-speed O(1)-competitive for
    total flow) the paper builds on. *)

val t5_instantaneous_fairness : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Time-weighted Jain index of machine shares: RR is exactly fair at all
    times; priority policies are not. *)

val f2_variance_vs_average : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The Silberschatz motivation: per-policy mean, variance, p99, max and
    l2 of flow time at equal speed on a heavy-tailed workload. *)

val t6_multiple_machines : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Theorem 1's multi-machine claim: l2 ratios as m grows with load held
    constant. *)

val f3_weighted_rr_ablation : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Ablation of Section 1.2's backstory: plain RR vs age-weighted RR vs
    SETF vs LAPS for the l2 norm at moderate speeds. *)

val t7_crossover_speed : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The price of instantaneous fairness in speed: bracket search for the
    smallest speed at which RR's l2 norm matches theta times clairvoyant
    SRPT at speed 1 — the empirical counterpart of the theory's
    [3/2, 4 + eps] competitiveness window.  The pool parallelises the
    bracket probes of {!Sweep.min_speed_for}. *)

val t8_lp_soundness : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Sandwich checks on tiny instances: LP(Slot_start) <= LP(Slot_end),
    LP lower bound <= brute-force OPT^k <= SRPT^k, and agreement between
    the flow-based and simplex LP solvers. *)

val t9_quantum_convergence : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Ablation: the textbook time-sliced Round Robin converges to the fluid
    RR of the paper as the quantum shrinks (norm ratios tend to 1). *)

val t10_queueing_validation : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Simulator calibration against closed-form queueing theory: M/M/1 FCFS
    and PS mean flow, the M/G/1 Pollaczek-Khinchine formula, and the
    insensitivity of PS (= fluid RR) to the size distribution. *)

val f4_speedup_curves : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The Section 1.3 contrast: in the arbitrary speed-up curves setting,
    oblivious EQUI (= RR) wastes machines on sequential phases and needs
    extra speed that a parallelizability-aware allocator does not —
    the environment where RR's lk guarantees provably fail. *)

val t11_weighted_rr : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Extension toward weighted flow time: statically weighted RR improves
    the weighted lk norms over oblivious RR by shifting shares to heavy
    jobs while preserving the never-starve guarantee. *)

val f5_broadcast : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The broadcast setting of §1.3: RR over outstanding pages (good for l1,
    provably not O(1) for l2) against Longest Wait First and FIFO on a
    Zipf-popular page workload. *)

val t12_linf : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** The k = infinity end of the paper's norm family ("in practice k in
    \[1,3\] and infinity"): maximum flow time and maximum slowdown per
    policy.  FCFS optimises max flow, RR bounds every job's slowdown by
    the alive count, SRPT/SJF sacrifice the tail. *)

val f6_hybrid_tradeoff : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t
(** Kuo's starvation-mitigation hybrid: l1 / l2 / max-flow ratios vs
    SRPT as the stretch threshold theta sweeps from FCFS-like (small) to
    pure SRPT (large), with both endpoints printed for reference — the
    l2-vs-l1 tradeoff curve the lk objective arbitrates. *)

val all : ?engine:Run.engine -> ?pool:Pool.t -> scale -> Rr_util.Table.t list
(** All experiments in presentation order, sharing the pool.
    [?engine] (default [`Auto]) is forwarded to every [Run.config] the
    suite builds — pass [`General] (the CLI's [--engine general]) to
    force the general event loop everywhere, e.g. to regenerate the
    archived EXPERIMENTS.md numbers bit-exactly.  F4 and F5 run custom
    simulators outside the engine surface; they accept and ignore the
    selection. *)
