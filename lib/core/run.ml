type config = { machines : int; speed : float; k : int; record_trace : bool }

let default = { machines = 1; speed = 1.; k = 2; record_trace = false }

let config ?(machines = default.machines) ?(speed = default.speed) ?(k = default.k)
    ?(record_trace = default.record_trace) () =
  { machines; speed; k; record_trace }

let simulate cfg policy inst =
  Rr_engine.Simulator.run ~record_trace:cfg.record_trace ~speed:cfg.speed
    ~machines:cfg.machines ~policy
    (Rr_workload.Instance.jobs inst)

let flows cfg policy inst = Rr_engine.Simulator.flows (simulate cfg policy inst)
let norm cfg policy inst = Rr_metrics.Norms.lk ~k:cfg.k (flows cfg policy inst)
let power_sum cfg policy inst = Rr_metrics.Norms.power_sum ~k:cfg.k (flows cfg policy inst)

type result = {
  policy_name : string;
  instance_label : string;
  flows : float array;
  norm : float;
  power_sum : float;
  events : int;
}

let measure cfg (policy : Rr_engine.Policy.t) inst =
  let res = simulate cfg policy inst in
  let flows = Rr_engine.Simulator.flows res in
  {
    policy_name = policy.name;
    instance_label = (inst : Rr_workload.Instance.t).label;
    flows;
    norm = Rr_metrics.Norms.lk ~k:cfg.k flows;
    power_sum = Rr_metrics.Norms.power_sum ~k:cfg.k flows;
    events = res.events;
  }

let batch pool cfg tasks = Pool.map pool (fun (policy, inst) -> measure cfg policy inst) tasks
