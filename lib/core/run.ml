type engine = [ `Auto | `General | `Indexed | `Equal_share | `Live ]

type config = {
  machines : int;
  speed : float;
  k : int;
  record_trace : bool;
  engine : engine;
  cache : bool;
}

let default =
  { machines = 1; speed = 1.; k = 2; record_trace = false; engine = `Auto; cache = true }

let config ?(machines = default.machines) ?(speed = default.speed) ?(k = default.k)
    ?(record_trace = default.record_trace) ?(engine = default.engine)
    ?(cache = default.cache) () =
  { machines; speed; k; record_trace; engine; cache }

let engine_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some `Auto
  | "general" -> Some `General
  | "indexed" -> Some `Indexed
  | "equal-share" | "equal_share" -> Some `Equal_share
  | "live" -> Some `Live
  | _ -> None

let engine_to_string = function
  | `Auto -> "auto"
  | `General -> "general"
  | `Indexed -> "indexed"
  | `Equal_share -> "equal-share"
  | `Live -> "live"

let engine_strings = [ "auto"; "general"; "indexed"; "equal-share"; "live" ]

type selection =
  | General
  | Equal_share
  | Index of Rr_engine.Index_engine.kind
  | Setf_cascade
  | Classed of Rr_engine.Class_engine.kind
  | Hybrid of { theta : float }
  | Budget of { budget : int }
  | Live of Rr_engine.Live.spec

(* A specialised engine applies exactly when the policy declares a
   class: the descriptor ([Policy.t.klass]) asserts that [allocate] is
   extensionally the class's reference behaviour, and the engine layer
   dispatches on the descriptor alone.  An undeclared policy — even one
   structurally identical to a classified one — stays on the general
   loop by design: the declaration is the contract the differential
   suite pins, not a structural guess. *)
let selection_of_class (klass : Rr_engine.Policy_class.t) =
  match klass with
  | Rr_engine.Policy_class.Equal_share -> Equal_share
  | Rr_engine.Policy_class.Static_key key -> Index (Rr_engine.Index_engine.kind_of_key key)
  | Rr_engine.Policy_class.Attained_cascade -> Setf_cascade
  | Rr_engine.Policy_class.Starvation_hybrid { theta } -> Hybrid { theta }
  | Rr_engine.Policy_class.Preempt_budget { budget } -> Budget { budget }
  | Rr_engine.Policy_class.Level_ladder _ | Rr_engine.Policy_class.Quantum_cycle _
  | Rr_engine.Policy_class.Latest_fraction _ | Rr_engine.Policy_class.Aged_share _
  | Rr_engine.Policy_class.Sized_share _ -> (
      match Rr_engine.Class_engine.kind_of_class klass with
      | Some kind -> Classed kind
      | None -> assert false (* the dense classes all have a kind *))

let classify (policy : Rr_engine.Policy.t) = Option.map selection_of_class policy.klass

let unsupported engine (policy : Rr_engine.Policy.t) =
  invalid_arg
    (Printf.sprintf "Run: policy %s has no %s engine (pick `Auto or `General)" policy.name
       engine)

let selection_for cfg (policy : Rr_engine.Policy.t) =
  match cfg.engine with
  | `General -> General
  | `Auto -> ( match classify policy with Some s -> s | None -> General)
  | `Equal_share -> (
      match classify policy with
      | Some Equal_share -> Equal_share
      | _ -> unsupported "equal-share" policy)
  | `Indexed -> (
      (* "indexed" means "the policy's specialised kernel, whatever its
         class" — any classified policy qualifies except Round Robin,
         whose kernel has its own historical selector. *)
      match classify policy with
      | Some Equal_share | None -> unsupported "indexed" policy
      | Some s -> s)
  | `Live -> (
      match policy.klass with
      | Some klass -> Live (Rr_engine.Live.Classified klass)
      | None -> unsupported "live" policy)

let engine_name_of = function
  | General -> "general"
  | Equal_share -> "equal-share"
  | Index kind -> Rr_engine.Index_engine.kind_name kind ^ "-index"
  | Setf_cascade -> "setf-cascade"
  | Classed kind ->
      Rr_engine.Policy_class.engine_name (Rr_engine.Class_engine.class_of_kind kind)
  | Hybrid { theta } ->
      Rr_engine.Policy_class.engine_name (Rr_engine.Policy_class.Starvation_hybrid { theta })
  | Budget { budget } ->
      Rr_engine.Policy_class.engine_name (Rr_engine.Policy_class.Preempt_budget { budget })
  | Live spec -> "live-" ^ Rr_engine.Live.spec_name spec

let engine_name cfg policy = engine_name_of (selection_for cfg policy)

(* The engine's default livelock guard, shared with the closed engines. *)
let default_max_events = 10_000_000

let live_create cfg ?(max_events = default_max_events) spec =
  Rr_engine.Live.create ~machines:cfg.machines ~speed:cfg.speed ~k:cfg.k ~max_events spec

(* Submit a materialized instance's jobs upfront (they arrive in release
   order with dense ids, so the live engine re-derives the same ids),
   then drain.  The event sequence is identical to the closed engine's. *)
let live_run_instance cfg spec ~sink jobs =
  let live = live_create cfg spec in
  Rr_engine.Live.set_sink live sink;
  List.iter
    (fun (j : Rr_engine.Job.t) ->
      ignore (Rr_engine.Live.submit live ~arrival:j.arrival ~size:j.size : int))
    jobs;
  Rr_engine.Live.drain live;
  Rr_engine.Live.query live

(* Streaming feed: submit one job, advance to its arrival, repeat — the
   pending queue never holds more than one job, so live memory stays
   O(alive) exactly like the closed streaming engines. *)
let live_run_stream cfg spec ~max_events ~sink pull =
  let live = live_create cfg ~max_events spec in
  Rr_engine.Live.set_sink live sink;
  let rec feed () =
    match pull () with
    | None -> ()
    | Some (j : Rr_engine.Job.t) ->
        ignore (Rr_engine.Live.submit live ~arrival:j.arrival ~size:j.size : int);
        Rr_engine.Live.advance live j.arrival;
        feed ()
  in
  feed ();
  Rr_engine.Live.drain live;
  Rr_engine.Live.query live

let no_sink : Rr_engine.Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

let simulate cfg policy inst =
  let jobs = Rr_workload.Instance.jobs inst in
  let record_trace = cfg.record_trace and speed = cfg.speed and machines = cfg.machines in
  match selection_for cfg policy with
  | Equal_share -> Rr_engine.Simulator.run_equal_share ~record_trace ~speed ~machines jobs
  | Index kind -> Rr_engine.Index_engine.run ~record_trace ~speed ~machines ~kind jobs
  | Setf_cascade -> Rr_engine.Index_engine.run_setf ~record_trace ~speed ~machines jobs
  | Classed kind -> Rr_engine.Class_engine.run ~record_trace ~speed ~machines ~kind jobs
  | Hybrid { theta } -> Rr_engine.Hybrid_engine.run ~record_trace ~speed ~machines ~theta jobs
  | Budget { budget } -> Rr_engine.Budget_engine.run ~record_trace ~speed ~machines ~budget jobs
  | General -> Rr_engine.Simulator.run ~record_trace ~speed ~machines ~policy jobs
  | Live spec ->
      (* The live engine reports (arrival, flow) pairs; rebuild the
         result's completion array from them.  [record_trace] is ignored
         (the incremental core keeps no segment trace). *)
      let n = List.length jobs in
      let jobs_arr =
        match jobs with
        | [] -> [||]
        | j0 :: _ ->
            let a = Array.make n j0 in
            List.iter (fun (j : Rr_engine.Job.t) -> a.(j.id) <- j) jobs;
            a
      in
      let completions = Array.make n Float.nan in
      let sink ~id ~arrival ~flow = completions.(id) <- arrival +. flow in
      let q = live_run_instance cfg spec ~sink jobs in
      {
        Rr_engine.Simulator.jobs = jobs_arr;
        completions;
        trace = [];
        machines;
        speed;
        events = q.Rr_engine.Live.events;
      }

let simulate_stream cfg policy stream ~sink =
  (* The engine's default 10M-event livelock guard would trip on perfectly
     healthy multi-million-job streams (>= 2 events per job); the stream
     knows its size, so scale the budget with it instead of uncapping. *)
  let max_events =
    Int.max default_max_events (64 * Rr_workload.Instance.Stream.n stream)
  in
  let speed = cfg.speed and machines = cfg.machines in
  let selection = selection_for cfg policy in
  (* The equal-share path takes the unboxed raw cursor — that pairing is
     the repo's zero-alloc streaming pipeline (gated at ~0 words/job by
     bench B4); the remaining engines pull boxed jobs. *)
  match selection with
  | Equal_share ->
      Rr_engine.Simulator.run_equal_share_stream_raw ~speed ~max_events ~machines ~sink
        (Rr_workload.Instance.Stream.start_raw stream)
  | _ ->
  let pull = Rr_workload.Instance.Stream.start stream in
  match selection with
  | Equal_share -> assert false
  | Index kind -> Rr_engine.Index_engine.run_stream ~speed ~max_events ~machines ~kind ~sink pull
  | Setf_cascade -> Rr_engine.Index_engine.run_setf_stream ~speed ~max_events ~machines ~sink pull
  | Classed kind ->
      Rr_engine.Class_engine.run_stream ~speed ~max_events ~machines ~kind ~sink pull
  | Hybrid { theta } ->
      Rr_engine.Hybrid_engine.run_stream ~speed ~max_events ~machines ~theta ~sink pull
  | Budget { budget } ->
      Rr_engine.Budget_engine.run_stream ~speed ~max_events ~machines ~budget ~sink pull
  | General -> Rr_engine.Simulator.run_stream ~speed ~max_events ~machines ~policy ~sink pull
  | Live spec ->
      let q = live_run_stream cfg spec ~max_events ~sink pull in
      {
        Rr_engine.Simulator.n = q.Rr_engine.Live.completed;
        events = q.Rr_engine.Live.events;
        machines;
        speed;
        makespan = q.Rr_engine.Live.makespan;
        max_alive = q.Rr_engine.Live.max_alive;
      }

type result = {
  policy_name : string;
  instance_label : string;
  n : int;
  norm : float;
  power_sum : float;
  mean_flow : float;
  max_flow : float;
  events : int;
}

let key cfg (policy : Rr_engine.Policy.t) ~streamed ~digest =
  Cache.key ~policy:policy.name ~machines:cfg.machines ~speed:cfg.speed ~k:cfg.k
    ~engine:(engine_name cfg policy) ~streamed ~digest

let result_of_entry (policy : Rr_engine.Policy.t) ~instance_label (e : Cache.entry) =
  {
    policy_name = policy.name;
    instance_label;
    n = e.Cache.n;
    norm = e.Cache.norm;
    power_sum = e.Cache.power_sum;
    mean_flow = e.Cache.mean_flow;
    max_flow = e.Cache.max_flow;
    events = e.Cache.events;
  }

let measure cfg (policy : Rr_engine.Policy.t) inst =
  let compute_live spec =
    (* The live engine accumulates the same Kahan/Welford/max folds as it
       completes jobs, so its query already IS the measurement — no
       completion array to sweep.  Sums run in completion order rather
       than id order, the same ~1e-9 relative difference the streamed
       path exhibits (the distinct [engine] cache string keeps the
       entries from aliasing). *)
    let q = live_run_instance cfg spec ~sink:no_sink (Rr_workload.Instance.jobs inst) in
    {
      Cache.n = q.Rr_engine.Live.completed;
      norm = q.Rr_engine.Live.norm;
      power_sum = q.Rr_engine.Live.power_sum;
      mean_flow = q.Rr_engine.Live.mean_flow;
      max_flow = q.Rr_engine.Live.max_flow;
      events = q.Rr_engine.Live.events;
    }
  in
  let compute () =
    match selection_for cfg policy with
    | Live spec -> compute_live spec
    | _ ->
    (* The measurement never needs the trace; forcing it off keeps cached
       and uncached runs of the same config identical in cost and lets a
       record_trace config share cache entries with a plain one. *)
    let res = simulate { cfg with record_trace = false } policy inst in
    let jobs = res.Rr_engine.Simulator.jobs in
    let completions = res.Rr_engine.Simulator.completions in
    let n = Array.length completions in
    (* One fused sweep instead of four over a materialized flow array
       (lk, power_sum, Welford, linf).  Each flow is the exact value
       [Simulator.flows] would have produced, each accumulator's
       per-element update is exactly the one its Sink performs, and the
       accumulators are independent — so every field is bit-identical to
       the separate passes; the Lk norm itself is power_sum ** (1/k),
       exactly as Sink.lk derives it. *)
    let ps_acc = Rr_util.Kahan.create () in
    let w = Rr_util.Welford.create () in
    let mx = ref Float.neg_infinity in
    for i = 0 to n - 1 do
      let f = completions.(i) -. jobs.(i).Rr_engine.Job.arrival in
      if f < 0. then invalid_arg "Sink.power_sum: negative flow time";
      Rr_util.Kahan.add ps_acc (Rr_util.Floatx.powi f cfg.k);
      Rr_util.Welford.add w f;
      if f > !mx then mx := f
    done;
    let ps = Rr_util.Kahan.total ps_acc in
    {
      Cache.n;
      norm = (if n = 0 then 0. else ps ** (1. /. Float.of_int cfg.k));
      power_sum = ps;
      mean_flow = (if n = 0 then 0. else Rr_util.Welford.mean w);
      max_flow = (if n = 0 then 0. else !mx);
      events = res.Rr_engine.Simulator.events;
    }
  in
  let entry =
    if cfg.cache then
      Cache.find_or_compute
        (key cfg policy ~streamed:false ~digest:(Rr_workload.Instance.digest inst))
        compute
    else compute ()
  in
  result_of_entry policy ~instance_label:(inst : Rr_workload.Instance.t).label entry

let measure_stream cfg (policy : Rr_engine.Policy.t) stream =
  let compute () =
    (* One pass: the engine pushes each completion into the incremental
       folds and discards it — nothing per-job survives the run. *)
    let ps = Rr_metrics.Sink.power_sum ~k:cfg.k () in
    let w = Rr_metrics.Sink.moments () in
    let sink ~id:_ ~arrival:_ ~flow:f =
      Rr_metrics.Sink.push ps f;
      Rr_metrics.Sink.push w f
    in
    let summary = simulate_stream { cfg with record_trace = false } policy stream ~sink in
    let wv = Rr_metrics.Sink.value w in
    let power_sum = Rr_metrics.Sink.value ps in
    let n = summary.Rr_engine.Simulator.n in
    {
      Cache.n;
      norm = (if n = 0 then 0. else power_sum ** (1. /. Float.of_int cfg.k));
      power_sum;
      mean_flow = Rr_util.Welford.mean wv;
      max_flow = (if n = 0 then 0. else Rr_util.Welford.max wv);
      events = summary.Rr_engine.Simulator.events;
    }
  in
  let entry =
    if cfg.cache then
      Cache.find_or_compute
        (key cfg policy ~streamed:true ~digest:(Rr_workload.Instance.Stream.digest stream))
        compute
    else compute ()
  in
  result_of_entry policy
    ~instance_label:(Rr_workload.Instance.Stream.label stream)
    entry

(* Uncached by design: the cache stores O(1) aggregates, never flow
   vectors, so asking for the vector always re-simulates. *)
let flows cfg policy inst =
  Rr_engine.Simulator.flows (simulate { cfg with record_trace = false } policy inst)

let norm cfg policy inst = (measure cfg policy inst).norm
let power_sum cfg policy inst = (measure cfg policy inst).power_sum

(* Order-of-magnitude per-task cost model for `Auto chunking and
   executor choice, in microseconds.  The fast-path coefficients are
   calibrated from the B5 benchmark (BENCH_fastpaths.json, fast_ns /
   jobs at the quick scale): srpt/sjf/fcfs-index 0.16-0.19, hdf-index
   0.26, setf-cascade 0.53, laps-dense 0.60, mlfq-ladder 1.43,
   wrr-age-dense 4.18, hybrid-index 0.71.  Kernels B5 does not time
   (equal-share, quantum, wrr-static, budget) carry estimates
   interpolated from their event structure.  Only ratios matter —
   chunking needs to know that a 40-job probe is ~100x cheaper than a
   4000-job one and that a fast-pathed baseline is ~10x cheaper than a
   general-loop one at equal n, not the absolute times. *)
let estimated_cost_us cfg policy ~jobs =
  let n = Float.of_int jobs in
  let index_cost : Rr_engine.Index_engine.kind -> float = function
    | Rr_engine.Index_engine.Hdf _ -> 0.3
    | Rr_engine.Index_engine.Srpt | Rr_engine.Index_engine.Sjf
    | Rr_engine.Index_engine.Fcfs ->
        0.2
  in
  let classed_cost : Rr_engine.Class_engine.kind -> float = function
    | Rr_engine.Class_engine.Laps _ -> 0.6
    | Rr_engine.Class_engine.Ladder _ -> 1.5
    | Rr_engine.Class_engine.Quantum _ -> 1.2
    | Rr_engine.Class_engine.Aged _ -> 4.0
    | Rr_engine.Class_engine.Sized _ -> 1.0
  in
  let rec per_job = function
    | Equal_share -> 0.15
    | Index kind -> index_cost kind
    | Setf_cascade -> 0.55
    (* The slot/heap kernels (hybrid, budget) cost a heap operation per
       event like the indexes, plus slot scans (hybrid's three heaps
       make it the dearer of the two). *)
    | Hybrid _ -> 0.7
    | Budget _ -> 0.4
    | Classed kind -> classed_cost kind
    | Live spec -> (
        (* Same kernels plus the pending-queue and metric-fold
           overhead. *)
        0.15
        +.
        match spec with
        | Rr_engine.Live.Equal_share -> per_job Equal_share
        | Rr_engine.Live.Indexed kind -> per_job (Index kind)
        | Rr_engine.Live.Setf_cascade -> per_job Setf_cascade
        | Rr_engine.Live.Classified klass -> per_job (selection_of_class klass))
    | General -> 2.0
  in
  per_job (selection_for cfg policy) *. n

let batch ?chunk pool cfg tasks =
  Pool.map ?chunk
    ~cost:(fun (p, inst) -> estimated_cost_us cfg p ~jobs:(Rr_workload.Instance.n inst))
    pool
    (fun (policy, inst) -> measure cfg policy inst)
    tasks

let stream_cost cfg (policy, stream) =
  estimated_cost_us cfg policy ~jobs:(Rr_workload.Instance.Stream.n stream)

let batch_stream ?chunk pool cfg tasks =
  Pool.map ?chunk ~cost:(stream_cost cfg) pool
    (fun (policy, stream) -> measure_stream cfg policy stream)
    tasks

let fold_stream ?chunk pool cfg ~sink ~merge ~init tasks =
  Pool.map_reduce ?chunk ~cost:(stream_cost cfg) pool
    ~map:(fun (policy, stream) ->
      (* The sink is built on the domain that folds it, so sink state is
         never shared across domains; only the finished value crosses. *)
      let s = sink () in
      let (_ : Rr_engine.Simulator.summary) =
        simulate_stream { cfg with record_trace = false } policy stream
          ~sink:(Rr_metrics.Sink.feed s)
      in
      Rr_metrics.Sink.value s)
    ~reduce:merge ~init tasks

(* ---- Executor selection --------------------------------------------

   Three ways to run a batch, one honest heuristic.  Domains win when
   tasks are cheap enough that fork + Marshal would dominate but dear
   enough to amortise chunk handoff; processes win when each task runs
   long enough (tens of milliseconds) that private heaps beat the shared
   major heap; and nothing beats the plain sequential loop when the
   whole batch costs less than spawning anything.  All three backends
   are bit-identical on the same tasks (Pool and Procs both cut with
   [Pool.chunk_offsets] and evaluate chunks in ascending index order),
   so the choice is purely a performance question and [`Auto] can never
   change a result. *)

type backend = [ `Sequential | `Domains of int | `Procs of int ]
type executor = [ `Auto | backend ]

let backend_name : backend -> string = function
  | `Sequential -> "sequential"
  | `Domains d -> Printf.sprintf "domains:%d" d
  | `Procs p -> Printf.sprintf "procs:%d" p

(* Below ~20 ms of total estimated work, even a warm pool loses to the
   sequential loop (domain wake-up and chunk handoff are ~100 us each,
   and the estimate itself is only order-of-magnitude).  Above ~50 ms
   per task, fork + Marshal (~1-2 ms per chunk) amortises to noise and
   private heaps beat the shared-major-heap domains on allocation-heavy
   work. *)
let sequential_cutoff_us = 20_000.
let procs_per_task_us = 50_000.

let choose_backend ?cpus ~tasks ~total_cost_us () =
  let cpus =
    match cpus with Some c -> Int.max 1 c | None -> Pool.recommended_domains ()
  in
  if cpus <= 1 || tasks <= 1 || total_cost_us < sequential_cutoff_us then
    `Sequential
  else
    let width = Int.min cpus tasks in
    let per_task = total_cost_us /. Float.of_int tasks in
    if per_task >= procs_per_task_us && tasks >= cpus && Procs.available ()
    then `Procs width
    else `Domains width

(* Sequential with Pool's failure contract, so callers see one exception
   shape from every backend. *)
let sequential_map f tasks =
  List.mapi
    (fun i t ->
      match f t with
      | y -> y
      | exception e -> raise (Pool.Task_error (i, e)))
    tasks

let run_with ~backend ~cost f tasks =
  match (backend : backend) with
  | `Sequential -> sequential_map f tasks
  | `Domains d -> Pool.with_pool ~domains:d (fun pool -> Pool.map ~cost pool f tasks)
  | `Procs p -> Procs.map ~cost ~procs:p f tasks

let resolve cfg ~executor tasks ~jobs_of =
  let cost (p, x) = estimated_cost_us cfg p ~jobs:(jobs_of x) in
  let backend =
    match (executor : executor) with
    | #backend as b -> b
    | `Auto ->
        let total = List.fold_left (fun acc t -> acc +. cost t) 0. tasks in
        choose_backend ~tasks:(List.length tasks) ~total_cost_us:total ()
  in
  (backend, cost)

let batch_auto ?(executor = `Auto) cfg tasks =
  let backend, cost =
    resolve cfg ~executor tasks ~jobs_of:Rr_workload.Instance.n
  in
  (backend, run_with ~backend ~cost (fun (policy, inst) -> measure cfg policy inst) tasks)

let batch_stream_auto ?(executor = `Auto) cfg tasks =
  let backend, cost =
    resolve cfg ~executor tasks ~jobs_of:Rr_workload.Instance.Stream.n
  in
  ( backend,
    run_with ~backend ~cost
      (fun (policy, stream) -> measure_stream cfg policy stream)
      tasks )
