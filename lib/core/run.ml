type config = {
  machines : int;
  speed : float;
  k : int;
  record_trace : bool;
  fast_path : bool;
  cache : bool;
}

let default =
  { machines = 1; speed = 1.; k = 2; record_trace = false; fast_path = true; cache = true }

let config ?(machines = default.machines) ?(speed = default.speed) ?(k = default.k)
    ?(record_trace = default.record_trace) ?(fast_path = default.fast_path)
    ?(cache = default.cache) () =
  { machines; speed; k; record_trace; fast_path; cache }

(* Round robin is exactly processor sharing, so the closed-form equal-share
   engine applies whenever the policy *is* the shared Round_robin.policy
   value (Registry.make Rr returns that same value, so CLI runs dispatch
   too).  Physical equality is the point: a custom policy that happens to
   be named "rr" but allocates differently must not be fast-pathed. *)
let fast_pathable cfg policy = cfg.fast_path && policy == Rr_policies.Round_robin.policy

let simulate cfg policy inst =
  let jobs = Rr_workload.Instance.jobs inst in
  if fast_pathable cfg policy then
    Rr_engine.Simulator.run_equal_share ~record_trace:cfg.record_trace ~speed:cfg.speed
      ~machines:cfg.machines jobs
  else
    Rr_engine.Simulator.run ~record_trace:cfg.record_trace ~speed:cfg.speed
      ~machines:cfg.machines ~policy jobs

type result = {
  policy_name : string;
  instance_label : string;
  flows : float array;
  norm : float;
  power_sum : float;
  events : int;
}

let measure cfg (policy : Rr_engine.Policy.t) inst =
  let compute () =
    (* The measurement never needs the trace; forcing it off keeps cached
       and uncached runs of the same config identical in cost and lets a
       record_trace config share cache entries with a plain one. *)
    let res = simulate { cfg with record_trace = false } policy inst in
    let flows = Rr_engine.Simulator.flows res in
    {
      Cache.flows;
      norm = Rr_metrics.Norms.lk ~k:cfg.k flows;
      power_sum = Rr_metrics.Norms.power_sum ~k:cfg.k flows;
      events = res.Rr_engine.Simulator.events;
    }
  in
  let entry =
    if cfg.cache then
      Cache.find_or_compute
        {
          Cache.policy = policy.name;
          machines = cfg.machines;
          speed = cfg.speed;
          k = cfg.k;
          fast_path = fast_pathable cfg policy;
          digest = Rr_workload.Instance.digest inst;
        }
        compute
    else compute ()
  in
  {
    policy_name = policy.name;
    instance_label = (inst : Rr_workload.Instance.t).label;
    flows = entry.Cache.flows;
    norm = entry.Cache.norm;
    power_sum = entry.Cache.power_sum;
    events = entry.Cache.events;
  }

let flows cfg policy inst = (measure cfg policy inst).flows
let norm cfg policy inst = (measure cfg policy inst).norm
let power_sum cfg policy inst = (measure cfg policy inst).power_sum

let batch pool cfg tasks = Pool.map pool (fun (policy, inst) -> measure cfg policy inst) tasks
