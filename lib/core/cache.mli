(** Process-wide memo of simulation measurements.

    Sweeps and ratio experiments re-simulate the same (policy, instance,
    config) triple many times over — every probe of
    {!Sweep.min_speed_for} re-runs the baseline policy, every point of a
    speed sweep re-measures the same instance.  This cache remembers the
    outcome of {!Run.measure} / {!Run.measure_stream} keyed by the
    policy's name, the scalar config fields, and the instance's
    structural {!Rr_workload.Instance} digest, so repeated measurements
    cost a hash lookup instead of a simulation.

    Entries are O(1) scalar aggregates — no flow vector is retained, so
    the cache stays small even when the instances it remembers have
    millions of jobs (fetch a flow vector with {!Run.flows}, which is
    deliberately uncached).

    Correctness rests on two properties of the repo: simulation is
    deterministic given its inputs, and a policy's [name] determines its
    behaviour (parameterised policies such as [laps(0.25)] or
    [quantum-rr(q=2)] embed their parameters in the name).  A custom
    policy that violates the latter must be run with caching off
    ([Run.config ~cache:false]).

    All operations are domain-safe: a {!Pool} of workers may share the
    cache.  Entries are computed outside the lock (duplicate computation
    under a race is possible and harmless) and are immutable once
    stored. *)

type key = {
  policy : string;  (** [Policy.t.name]; must determine behaviour. *)
  machines : int;
  speed : float;
  k : int;
  fast_path : bool;
      (** Whether the closed-form equal-share engine produced the entry.
          Kept in the key so fast and general results never alias — they
          agree to ~1e-12 relative, not to the bit. *)
  streamed : bool;
      (** Whether the entry came from the streaming sink path.  Streamed
          folds accumulate in completion order, materialized ones in job-id
          order, so the two agree to ~1e-9 relative, not to the bit; the
          flag keeps them from aliasing, for the same reason as
          [fast_path]. *)
  digest : int64;  (** {!Rr_workload.Instance.digest} of the instance. *)
}

type entry = {
  n : int;  (** Jobs completed. *)
  norm : float;  (** lk-norm at the key's [k]. *)
  power_sum : float;  (** Unrooted [sum_j F_j^k]. *)
  mean_flow : float;  (** Average flow time; [0.] when [n = 0]. *)
  max_flow : float;  (** Maximum flow time; [0.] when [n = 0]. *)
  events : int;  (** Simulation events processed. *)
}

val find_or_compute : key -> (unit -> entry) -> entry
(** [find_or_compute key compute] returns the cached entry for [key], or
    runs [compute], stores the result (unless the cache is at capacity),
    and returns it. *)

val clear : unit -> unit
(** Drop every entry and zero the hit/miss counters. *)

val set_capacity : int -> unit
(** Maximum number of entries; inserts are refused (not evicted) beyond
    it.  Existing entries are kept even if above the new capacity.
    @raise Invalid_argument when negative. *)

val default_capacity : int
(** 4096 entries. *)

type stats = { hits : int; misses : int; size : int; capacity : int }

val stats : unit -> stats
(** Counters since the last {!clear}.  Exact under sequential use; under
    concurrent use a racing miss may be double-counted. *)
