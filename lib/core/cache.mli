(** Process-wide memo of simulation measurements.

    Sweeps and ratio experiments re-simulate the same (policy, instance,
    config) triple many times over — every probe of
    {!Sweep.min_speed_for} re-runs the baseline policy, every point of a
    speed sweep re-measures the same instance.  This cache remembers the
    outcome of {!Run.measure} / {!Run.measure_stream} keyed by the
    policy's name, the scalar config fields, and the instance's
    structural {!Rr_workload.Instance} digest, so repeated measurements
    cost a hash lookup instead of a simulation.

    Entries are O(1) scalar aggregates — no flow vector is retained, so
    the cache stays small even when the instances it remembers have
    millions of jobs (fetch a flow vector with {!Run.flows}, which is
    deliberately uncached).

    Correctness rests on two properties of the repo: simulation is
    deterministic given its inputs, and a policy's [name] determines its
    behaviour (parameterised policies such as [laps(0.25)] or
    [quantum-rr(q=2)] embed their parameters in the name).  A custom
    policy that violates the latter must be run with caching off
    ([Run.config ~cache:false]).

    {2 Concurrency}

    All operations are domain-safe, and the cache is built to be hammered
    by every domain of a {!Pool} at once:

    - {e lock striping}: the table is split into a power-of-two number of
      shards (at least [4 x domains] — {!Pool.create} grows the shard
      array to fit its pool), each with its own mutex; a key's shard is
      chosen by an FNV-1a hash of all key fields, so concurrent lookups
      of distinct keys almost never share a lock;
    - {e single-flight}: when several domains miss on the same cold key
      simultaneously, exactly one computes; the others block until the
      leader publishes and then return the same entry (counted as hits,
      tallied in [coalesced]).  If the leader's computation raises, the
      waiters re-raise the same exception;
    - {e bounded with eviction}: each shard keeps at most its slice of
      the total capacity, evicting by the CLOCK second-chance rule when
      full — the cache never silently stops caching. *)

type key = private {
  policy : string;  (** [Policy.t.name]; must determine behaviour. *)
  machines : int;
  speed : float;
  k : int;
  engine : string;
      (** Which engine produced the entry ([Run.engine_name]: ["general"],
          ["equal-share"], ["srpt-index"], ["sjf-index"], ["fcfs-index"],
          ["setf-cascade"], or the same names with a ["live-"] prefix for
          the incremental engine).  Kept in the key so results from
          different engines never alias — fast, live and general paths
          agree to ~1e-9 relative, not to the bit — and so a cached value
          records which engine computed it. *)
  streamed : bool;
      (** Whether the entry came from the streaming sink path.  Streamed
          folds accumulate in completion order, materialized ones in job-id
          order, so the two agree to ~1e-9 relative, not to the bit; the
          flag keeps them from aliasing, for the same reason as
          [engine]. *)
  digest : int64;  (** {!Rr_workload.Instance.digest} of the instance. *)
}
(** Keys are read-only outside this module: build them with {!key}, the
    single typed constructor, so no call site can improvise a key shape
    that collides with another engine's entries. *)

val key :
  policy:string ->
  machines:int ->
  speed:float ->
  k:int ->
  engine:string ->
  streamed:bool ->
  digest:int64 ->
  key
(** The one way to construct a {!key}.  [Run.key] derives [engine] from
    its engine-selection variant, so a live-engine measurement can never
    alias a materialized one. *)

type entry = {
  n : int;  (** Jobs completed. *)
  norm : float;  (** lk-norm at the key's [k]. *)
  power_sum : float;  (** Unrooted [sum_j F_j^k]. *)
  mean_flow : float;  (** Average flow time; [0.] when [n = 0]. *)
  max_flow : float;  (** Maximum flow time; [0.] when [n = 0]. *)
  events : int;  (** Simulation events processed. *)
}

val find_or_compute : key -> (unit -> entry) -> entry
(** [find_or_compute key compute] returns the cached entry for [key], or
    runs [compute], stores the result (evicting an old entry when the
    shard is full), and returns it.  Concurrent callers on the same cold
    key compute once (single-flight); the computation runs outside every
    lock, so unrelated keys proceed unimpeded. *)

val clear : unit -> unit
(** Drop every entry and zero every counter (shard layout unchanged). *)

val set_capacity : int -> unit
(** Total entry budget, split evenly across shards (each shard keeps at
    least one slot, so the effective total — reported by
    {!stats}[.capacity] — is rounded up to the shard count; [0] disables
    storage entirely).  Beyond its budget a shard {e evicts} by second
    chance rather than refusing inserts.  Existing entries are migrated,
    counters reset.
    @raise Invalid_argument when negative. *)

val default_capacity : int
(** 4096 entries. *)

val shard_count : unit -> int
(** Current number of shards (a power of two). *)

val set_shards : int -> unit
(** Resize the shard array to the nearest power of two [>= n], migrating
    entries and resetting counters.  Intended for startup and tests; the
    swap is not linearisable with in-flight operations (a racing insert
    may be dropped — harmless for a cache).
    @raise Invalid_argument when [< 1]. *)

val reserve_shards : domains:int -> unit
(** Grow (never shrink) the shard array to at least the nearest power of
    two [>= 4 * domains].  {!Pool.create} calls this so a pool's domains
    get contention-free striping by default. *)

type shard_stats = {
  s_hits : int;
  s_misses : int;
  s_coalesced : int;  (** Lookups that waited on another domain's compute. *)
  s_evictions : int;
  s_size : int;
  s_capacity : int;
}

type stats = {
  hits : int;  (** Includes coalesced waits (they return computed values). *)
  misses : int;  (** Exactly the number of [compute] invocations. *)
  coalesced : int;
  evictions : int;
  size : int;
  capacity : int;
  shards : shard_stats array;  (** Per-shard breakdown; totals sum to the above. *)
}

val stats : unit -> stats
(** Counters since the last {!clear} (or shard/capacity change).  Every
    lookup is counted exactly once, as a hit or a miss; [misses] equals
    the number of computations actually run, so
    [hits + misses = lookups] and duplicate computation never occurs. *)
