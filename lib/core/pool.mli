(** Work-stealing pool of OCaml 5 domains for embarrassingly parallel
    experiment sweeps.

    A pool owns [domains - 1] long-lived worker domains; the calling domain
    participates in every batch, so [create ~domains:1] spawns nothing and
    executes inline.  Tasks of a batch are indexed [0 .. n-1]; every worker
    starts on a contiguous slice of the index range and, once its slice is
    exhausted, steals single tasks from the tail of the busiest-looking
    victim.  Scheduling is therefore non-deterministic, but the {e results}
    are not:

    - [map] returns results ordered by task index, regardless of which
      domain computed what;
    - [map_reduce] folds the mapped results in task-index order, so even a
      non-associative/non-commutative [reduce] (e.g. float addition) gives
      bit-identical output for any number of domains;
    - tasks must not share mutable state — in particular each task that
      needs randomness must own its generator, seeded from the task index
      or derived by splitting a parent {!Rr_util.Prng.t} {e before}
      submission, never drawn from a generator shared across tasks.

    Under that discipline, running on [n] domains is bit-identical to
    running sequentially.

    {2 Cost-aware chunking}

    The unit of stealing is a {e chunk} of consecutive task indices;
    every [map]-family entry point takes [?chunk] to control it.  When
    tasks are short (a 100 us simulation), claiming them one CAS at a
    time costs more than the work itself — the reason naive
    parallelisation of small batches runs {e slower} than sequential
    code.  [`Auto] (the default) sizes chunks from the optional [?cost]
    estimates (nominally microseconds per task): consecutive tasks are
    grouped until a chunk carries {!auto_chunk_target_cost} (~1 ms) of
    estimated work, or until the batch splits evenly across the
    participants, whichever gives smaller chunks.  Without [?cost],
    [`Auto] falls back to a fixed size that keeps ~16 chunks per
    participant.  [`Fixed c] forces exactly [c] tasks per chunk
    ([`Fixed 1] restores task-granular stealing — right for a handful of
    long tasks such as bracket probes).

    Chunking changes only the stealing granularity: tasks inside a chunk
    run in index order with their own exception boundaries, so results,
    per-task PRNG seeding, and the {!Task_error} index are identical for
    every [?chunk] argument and every domain count.

    A pool is single-owner: concurrent or re-entrant [map] calls on the
    same pool raise [Invalid_argument]. *)

type t

exception Task_error of int * exn
(** [Task_error (index, exn)] is raised at the submitting caller when the
    task numbered [index] raised [exn] in a worker.  The first failure
    wins; remaining unstarted tasks are abandoned. *)

type chunking = [ `Auto | `Fixed of int ]
(** How a batch is cut into steal units; see {e Cost-aware chunking}
    above. *)

val auto_chunk_target_cost : float
(** Estimated cost (same units as [?cost], nominally microseconds) that
    [`Auto] packs into one chunk: 1000. *)

val default_minor_heap_words : int
(** Minor heap size given to each worker domain unless overridden:
    [2{^22}] words (32 MB).  Sized so that a typical simulation task
    (order 1-10M minor words, per the B4 allocation audit) triggers only
    a handful of minor collections — each collection is a potential
    stop-the-world rendezvous with sibling domains, and every survivor it
    promotes lands on the {e shared} major heap where allocation
    serialises. *)

val create : ?minor_heap_words:int -> domains:int -> unit -> t
(** [create ~domains] starts a pool of [domains] total participants
    ([domains - 1] spawned worker domains plus the caller), and grows the
    {!Cache} shard array to at least [4 * domains] stripes.  Each worker
    domain sizes its own minor heap to [minor_heap_words] (default
    {!default_minor_heap_words}) via [Gc.set], which in OCaml 5 applies
    per-domain; the calling domain's GC parameters are never touched —
    they belong to the surrounding program.
    @raise Invalid_argument when [domains < 1] or [minor_heap_words <
    4096]. *)

val size : t -> int
(** Total participant count, as given to {!create}. *)

val shutdown : t -> unit
(** Graceful teardown: signals every worker domain to exit and joins it.
    Idempotent.  Any later {!map} on the pool raises [Invalid_argument]. *)

val with_pool : ?minor_heap_words:int -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down on
    both normal return and exception.  [?minor_heap_words] as in
    {!create}. *)

val minor_heap_words : t -> int
(** The per-worker minor heap size this pool was created with. *)

val domains_ever_spawned : unit -> bool
(** Whether any pool in this process has ever spawned a worker domain
    ([create ~domains] with [domains > 1]; [~domains:1] spawns nothing).
    Sticky: the OCaml 5 runtime refuses [Unix.fork] once other domains
    were {e ever} created — joining them does not lift the ban — so the
    {!Procs} backend consults this to know whether forking is still
    possible.  Fork-dependent work must therefore run {e before} the
    first multi-domain pool of the process. *)

type gc_delta = {
  participant : int;  (** 0 = the submitting domain, 1.. = workers. *)
  minor_words : float;  (** Words allocated on this domain's minor heap. *)
  promoted_words : float;  (** Words this domain promoted to the shared major heap. *)
  minor_collections : int;
  major_collections : int;
}
(** One domain's GC activity over its share of a batch, measured with
    [Gc.quick_stat] (domain-local counters, no stop-the-world) around the
    participant's work loop. *)

val last_batch_gc_deltas : t -> gc_delta array
(** Per-participant GC deltas of the most recently completed batch, index
    = participant; [[||]] before the first batch.  High [promoted_words]
    or [minor_collections] per task is the signal that
    [?minor_heap_words] is too small for the workload. *)

val chunk_offsets :
  chunk:chunking -> costs:float array option -> n:int -> participants:int -> int array
(** The chunking decision itself: [offsets] such that chunk [j] covers
    task indices [[offsets.(j), offsets.(j+1))], with [offsets.(0) = 0]
    and the last entry [n].  Exposed so alternative executors (the
    process fan-out of {!Procs}) cut batches into the exact same units
    as the domain pool.
    @raise Invalid_argument on [`Fixed c] with [c < 1]. *)

val map : ?chunk:chunking -> ?cost:('a -> float) -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] computes [List.map f xs] with the pool's domains.
    Results are ordered by task index; on one domain this {e is}
    [List.map f xs] (same order of evaluation, same result).  [?chunk]
    (default [`Auto]) and [?cost] (estimated microseconds per task,
    consulted only by [`Auto]) tune the stealing granularity without
    affecting any result.
    @raise Task_error on the first task failure.
    @raise Invalid_argument on [`Fixed c] with [c < 1]. *)

val map_array : ?chunk:chunking -> ?cost:('a -> float) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val map_reduce :
  ?chunk:chunking ->
  ?cost:('a -> float) ->
  t ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  init:'c ->
  'a list ->
  'c
(** [map_reduce pool ~map ~reduce ~init xs] maps in parallel and folds the
    results left-to-right in task-index order:
    [reduce (... (reduce init y0) ...) y_{n-1}].  The fold itself runs on
    the calling domain, so [reduce] needs no thread safety and no
    associativity. *)

val env_domains : unit -> int option
(** The domain count requested by the [RR_JOBS] environment variable:
    [Some n] for a positive integer value, [None] when unset, empty, or
    unparseable.  [RR_JOBS=0] means "all recommended cores" and resolves
    through {!recommended_domains}. *)

val recommended_domains : unit -> int
(** The runtime's recommended domain count for this machine, at least 1. *)
