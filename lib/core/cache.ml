(* Lock-striped, bounded memo of simulation measurements.  See cache.mli
   for the user-facing contract.

   The table is split into a power-of-two number of shards, each guarded
   by its own mutex, so domains of a Pool hammering different keys never
   contend.  A key's shard is chosen by an FNV-1a hash over every key
   field.  Within a shard, entries live in a fixed-size CLOCK ring
   (second-chance eviction): a hit sets the slot's reference bit, an
   insert into a full ring advances the clock hand, clearing reference
   bits until it finds an unreferenced slot to evict.  Cold keys are
   deduplicated by a per-shard in-flight table (single-flight): the first
   domain to miss becomes the leader and computes outside every lock;
   racing domains find the flight record and block on its condition
   variable until the leader publishes the outcome. *)

type key = {
  policy : string;
  machines : int;
  speed : float;
  k : int;
  engine : string;
  streamed : bool;
  digest : int64;
}

(* The one blessed way to build a key (the type is private in the mli).
   Funnelling construction through here is what guarantees every field —
   in particular [engine], which separates live results from materialized
   ones — is filled in deliberately at every call site. *)
let key ~policy ~machines ~speed ~k ~engine ~streamed ~digest =
  { policy; machines; speed; k; engine; streamed; digest }

type entry = {
  n : int;
  norm : float;
  power_sum : float;
  mean_flow : float;
  max_flow : float;
  events : int;
}

type shard_stats = {
  s_hits : int;
  s_misses : int;
  s_coalesced : int;
  s_evictions : int;
  s_size : int;
  s_capacity : int;
}

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  size : int;
  capacity : int;
  shards : shard_stats array;
}

let default_capacity = 4096

(* ------------------------------------------------------------------ *)
(* FNV-1a shard selection                                              *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let hash_key k =
  let h = fnv_string fnv_offset k.policy in
  let h = fnv_int64 h (Int64.of_int k.machines) in
  let h = fnv_int64 h (Int64.bits_of_float k.speed) in
  let h = fnv_int64 h (Int64.of_int k.k) in
  let h = fnv_string h k.engine in
  let h = fnv_byte h (Bool.to_int k.streamed) in
  fnv_int64 h k.digest

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

(* The leader publishes its outcome through the flight record under
   [fm]/[fc], never under the shard lock, so waiters block on the flight
   alone and a slow computation stalls only the domains that need its
   key. *)
type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable outcome : (entry, exn) result option;
}

(* False-sharing audit (4-domain load): a [shard] record is 10 fields +
   header = 11 words = 88 bytes, already wider than one 64-byte cache
   line, and the hot mutable fields (hand/used/hits/misses) of two
   adjacent shards therefore never share a line once the records
   themselves are line-misaligned — and in practice they are not even
   adjacent: [make_shard] interleaves each record's allocation with its
   mutex, two hashtables, a slot array and a refbit buffer, so
   consecutive shards land far apart on the heap.  The mutexes are
   separate custom blocks with the same interleaving.  The one shared
   hot word in the design is the generation descriptor's [Atomic.t]
   (read-only between reshards), which mutating paths never write.  So
   no padding is needed; revisit only if shard records are ever packed
   into a flat preallocated array. *)
type shard = {
  lock : Mutex.t;
  table : (key, int) Hashtbl.t;  (* key -> slot in the CLOCK ring *)
  inflight : (key, flight) Hashtbl.t;
  mutable slots : (key * entry) option array;  (* length = shard capacity *)
  mutable refbit : Bytes.t;
  mutable hand : int;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
}

let make_shard cap =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    slots = Array.make cap None;
    refbit = Bytes.make (Int.max 1 cap) '\000';
    hand = 0;
    used = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
  }

(* All shards of a generation share one immutable descriptor; resharding
   swaps the descriptor atomically (see [reshard] below). *)
type t = { mask : int; shards : shard array }

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let shards_for_domains domains = pow2_at_least (Int.max 4 (4 * domains))

(* Per-shard slice of a total capacity: at least one slot per shard so a
   tiny capacity still caches, unless the capacity is 0 (caching off). *)
let per_shard_cap ~shards capacity =
  if capacity = 0 then 0 else Int.max 1 (capacity / shards)

let make ~shards ~capacity =
  let shards = pow2_at_least (Int.max 1 shards) in
  {
    mask = shards - 1;
    shards = Array.init shards (fun _ -> make_shard (per_shard_cap ~shards capacity));
  }

(* [requested_capacity] remembers what the user asked for so resharding
   re-derives per-shard slices from it rather than from a rounded total. *)
let requested_capacity = Atomic.make default_capacity

let state =
  Atomic.make (make ~shards:(shards_for_domains (Domain.recommended_domain_count ()))
                 ~capacity:default_capacity)

let shard_of t key = t.shards.(Int64.to_int (hash_key key) land t.mask)

let with_shard s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* ------------------------------------------------------------------ *)
(* CLOCK ring operations (shard lock held)                             *)
(* ------------------------------------------------------------------ *)

let cap s = Array.length s.slots

let find s key =
  match Hashtbl.find_opt s.table key with
  | None -> None
  | Some slot ->
      Bytes.unsafe_set s.refbit slot '\001';
      (match s.slots.(slot) with
      | Some (_, e) -> Some e
      | None -> assert false)

let insert s key entry =
  let c = cap s in
  if c > 0 && not (Hashtbl.mem s.table key) then
    if s.used < c then begin
      (* Free slots exist; the hand finds one in at most a full sweep. *)
      while s.slots.(s.hand) <> None do
        s.hand <- (s.hand + 1) mod c
      done;
      s.slots.(s.hand) <- Some (key, entry);
      Bytes.set s.refbit s.hand '\001';
      Hashtbl.replace s.table key s.hand;
      s.used <- s.used + 1;
      s.hand <- (s.hand + 1) mod c
    end
    else begin
      (* Second chance: skip (and strip) referenced slots, evict the first
         unreferenced one.  Terminates within two sweeps. *)
      while Bytes.get s.refbit s.hand = '\001' do
        Bytes.set s.refbit s.hand '\000';
        s.hand <- (s.hand + 1) mod c
      done;
      (match s.slots.(s.hand) with
      | Some (old_key, _) ->
          Hashtbl.remove s.table old_key;
          s.evictions <- s.evictions + 1
      | None -> assert false);
      s.slots.(s.hand) <- Some (key, entry);
      Bytes.set s.refbit s.hand '\001';
      Hashtbl.replace s.table key s.hand;
      s.hand <- (s.hand + 1) mod c
    end

(* ------------------------------------------------------------------ *)
(* Lookup with single-flight                                           *)
(* ------------------------------------------------------------------ *)

let find_or_compute key compute =
  let t = Atomic.get state in
  let s = shard_of t key in
  Mutex.lock s.lock;
  match find s key with
  | Some e ->
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      e
  | None -> (
      match Hashtbl.find_opt s.inflight key with
      | Some fl ->
          (* Another domain is computing this key right now: wait for its
             outcome instead of duplicating the simulation.  The wait
             counts as a hit (the value arrives computed), tallied
             separately as coalesced. *)
          s.hits <- s.hits + 1;
          s.coalesced <- s.coalesced + 1;
          Mutex.unlock s.lock;
          Mutex.lock fl.fm;
          while fl.outcome = None do
            Condition.wait fl.fc fl.fm
          done;
          let outcome = Option.get fl.outcome in
          Mutex.unlock fl.fm;
          (match outcome with Ok e -> e | Error exn -> raise exn)
      | None ->
          s.misses <- s.misses + 1;
          let fl = { fm = Mutex.create (); fc = Condition.create (); outcome = None } in
          Hashtbl.replace s.inflight key fl;
          Mutex.unlock s.lock;
          let outcome = try Ok (compute ()) with exn -> Error exn in
          Mutex.lock s.lock;
          Hashtbl.remove s.inflight key;
          (match outcome with Ok e -> insert s key e | Error _ -> ());
          Mutex.unlock s.lock;
          Mutex.lock fl.fm;
          fl.outcome <- Some outcome;
          Condition.broadcast fl.fc;
          Mutex.unlock fl.fm;
          (match outcome with Ok e -> e | Error exn -> raise exn))

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let clear () =
  let t = Atomic.get state in
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.reset s.table;
          Array.fill s.slots 0 (cap s) None;
          Bytes.fill s.refbit 0 (Bytes.length s.refbit) '\000';
          s.hand <- 0;
          s.used <- 0;
          s.hits <- 0;
          s.misses <- 0;
          s.coalesced <- 0;
          s.evictions <- 0))
    t.shards

(* Stop-the-world rebuild: hold every old shard lock (in index order, so
   two concurrent rebuilds cannot deadlock), copy the entries into a new
   descriptor, swap it in.  A domain that read the old descriptor just
   before the swap may still insert into an orphaned shard — the entry is
   lost, which for a cache is a missed optimisation, not an error.
   Counters restart from zero (entries migrate, statistics do not). *)
let reshard ~shards ~capacity =
  let old_t = Atomic.get state in
  Array.iter (fun s -> Mutex.lock s.lock) old_t.shards;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Mutex.unlock s.lock) old_t.shards)
    (fun () ->
      let fresh = make ~shards ~capacity in
      Array.iter
        (fun s ->
          Array.iter
            (function
              | Some (key, entry) ->
                  let dst = shard_of fresh key in
                  insert dst key entry
              | None -> ())
            s.slots)
        old_t.shards;
      Atomic.set state fresh)

let shard_count () = Array.length (Atomic.get state).shards

let set_shards shards =
  if shards < 1 then invalid_arg "Cache.set_shards: shards must be >= 1";
  reshard ~shards ~capacity:(Atomic.get requested_capacity)

let reserve_shards ~domains =
  let want = shards_for_domains (Int.max 1 domains) in
  if want > shard_count () then reshard ~shards:want ~capacity:(Atomic.get requested_capacity)

let set_capacity capacity =
  if capacity < 0 then invalid_arg "Cache.set_capacity: capacity must be non-negative";
  Atomic.set requested_capacity capacity;
  reshard ~shards:(shard_count ()) ~capacity

let stats () =
  let t = Atomic.get state in
  let per =
    Array.map
      (fun s ->
        with_shard s (fun () ->
            {
              s_hits = s.hits;
              s_misses = s.misses;
              s_coalesced = s.coalesced;
              s_evictions = s.evictions;
              s_size = s.used;
              s_capacity = cap s;
            }))
      t.shards
  in
  Array.fold_left
    (fun (acc : stats) s ->
      {
        acc with
        hits = acc.hits + s.s_hits;
        misses = acc.misses + s.s_misses;
        coalesced = acc.coalesced + s.s_coalesced;
        evictions = acc.evictions + s.s_evictions;
        size = acc.size + s.s_size;
        capacity = acc.capacity + s.s_capacity;
      })
    { hits = 0; misses = 0; coalesced = 0; evictions = 0; size = 0; capacity = 0; shards = per }
    per
