type key = {
  policy : string;
  machines : int;
  speed : float;
  k : int;
  fast_path : bool;
  streamed : bool;
  digest : int64;
}

type entry = {
  n : int;
  norm : float;
  power_sum : float;
  mean_flow : float;
  max_flow : float;
  events : int;
}

type stats = { hits : int; misses : int; size : int; capacity : int }

let default_capacity = 4096

type state = {
  mutable table : (key, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable capacity : int;
  lock : Mutex.t;
}

let state =
  { table = Hashtbl.create 256; hits = 0; misses = 0; capacity = default_capacity;
    lock = Mutex.create () }

let with_lock f =
  Mutex.lock state.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.lock) f

let find_or_compute key compute =
  let cached =
    with_lock (fun () ->
        match Hashtbl.find_opt state.table key with
        | Some e ->
            state.hits <- state.hits + 1;
            Some e
        | None ->
            state.misses <- state.misses + 1;
            None)
  in
  match cached with
  | Some e -> e
  | None ->
      (* Compute outside the lock: simulations are long and idempotent, so a
         rare duplicate computation under a race beats serialising every
         domain of a Pool behind one simulation. *)
      let e = compute () in
      with_lock (fun () ->
          if (not (Hashtbl.mem state.table key)) && Hashtbl.length state.table < state.capacity
          then Hashtbl.add state.table key e);
      e

let clear () =
  with_lock (fun () ->
      Hashtbl.reset state.table;
      state.hits <- 0;
      state.misses <- 0)

let set_capacity capacity =
  if capacity < 0 then invalid_arg "Cache.set_capacity: capacity must be non-negative";
  with_lock (fun () -> state.capacity <- capacity)

let stats () =
  with_lock (fun () ->
      { hits = state.hits; misses = state.misses; size = Hashtbl.length state.table;
        capacity = state.capacity })
