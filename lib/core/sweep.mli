(** Parameter sweeps and crossover search. *)

val speeds : lo:float -> hi:float -> steps:int -> float list
(** [steps] evenly spaced speeds from [lo] to [hi] inclusive.
    @raise Invalid_argument when [steps < 2] or [lo >= hi]. *)

val min_speed_for :
  ?pool:Pool.t ->
  f:(float -> float) ->
  threshold:float ->
  lo:float ->
  hi:float ->
  iters:int ->
  unit ->
  (float, [ `Above_hi | `Bad_bracket of string ]) result
(** Bracket search for the smallest speed [s] in [\[lo, hi\]] with
    [f s <= threshold], assuming [f] is non-increasing in speed (more speed
    never hurts RR's ratio on a fixed instance).

    Each of the [iters] rounds evaluates [p] interior points splitting the
    bracket into [p + 1] equal parts and keeps the leftmost satisfying
    sub-bracket, shrinking it by a factor of [p + 1]; without a [pool] (or
    on a one-domain pool) [p = 1] and this is classical bisection.  With a
    [pool] the [p = Pool.size pool] probes of a round are evaluated in
    parallel — same wall-clock per round, [log (p+1) / log 2] times the
    precision.  The probe grid depends only on the bracket and [p], so the
    result is deterministic for a fixed domain count.

    Errors distinguish misuse from absence of a crossover:
    - [Error (`Bad_bracket msg)] when [lo >= hi], a bound is non-finite,
      or [iters < 1] — the search never ran;
    - [Error `Above_hi] when even [f hi > threshold]: no crossover at or
      below [hi].

    On [Ok s], [s] is the upper end of the final bracket, so
    [f s <= threshold] and the answer is bracketed to
    [(hi - lo) / (p + 1) ^ iters].

    [f] is never called twice on the same speed within one search: probes
    are memoised for the duration of the call, so with [p = 1] a search
    costs at most [iters + 1] evaluations.  Searches whose [f] measures
    via {!Run.measure} additionally share the cross-call result {!Cache}:
    the baseline run of {!Ratio.vs_baseline}, identical across probes, is
    simulated once, and when the probes of a round race on it
    concurrently the cache's single-flight has one of them compute while
    the rest join in flight — sharded striping means they never queue
    behind one global lock.  Probes run as [`Fixed 1] chunks (each probe
    is one steal unit). *)
