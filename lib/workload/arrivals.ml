type t =
  | Poisson of { rate : float }
  | Periodic of { interval : float }
  | Batched of { batch : int; interval : float }
  | Bursty of { rate_low : float; rate_high : float; mean_dwell : float }
  | Diurnal of { base_rate : float; amplitude : float; period : float }

let validate = function
  | Poisson { rate } when rate > 0. -> Ok ()
  | Poisson _ -> Error "Poisson: rate must be positive"
  | Periodic { interval } when interval > 0. -> Ok ()
  | Periodic _ -> Error "Periodic: interval must be positive"
  | Batched { batch; interval } when batch > 0 && interval > 0. -> Ok ()
  | Batched _ -> Error "Batched: need batch > 0 and interval > 0"
  | Bursty { rate_low; rate_high; mean_dwell }
    when 0. < rate_low && rate_low <= rate_high && mean_dwell > 0. ->
      Ok ()
  | Bursty _ -> Error "Bursty: need 0 < rate_low <= rate_high and mean_dwell > 0"
  | Diurnal { base_rate; amplitude; period }
    when base_rate > 0. && 0. <= amplitude && amplitude < 1. && period > 0. ->
      Ok ()
  | Diurnal _ -> Error "Diurnal: need base_rate > 0, 0 <= amplitude < 1, period > 0"

let check p = match validate p with Ok () -> () | Error msg -> invalid_arg ("Arrivals: " ^ msg)

(* One release time per call, O(1) state between calls — the streaming
   workload pipeline ([Instance.Stream]) draws arrivals through this, so a
   10M-job process never holds more than the generator's own state.
   {!generate} is the array adapter over the same closures, calling them
   in ascending index order, so materialized and streamed instances built
   from the same generator state are identical job for job. *)
let sampler rng p =
  check p;
  match p with
  | Poisson { rate } ->
      let t = ref 0. in
      fun () ->
        t := !t +. Rr_util.Prng.exponential rng ~rate;
        !t
  | Periodic { interval } ->
      let i = ref 0 in
      fun () ->
        let v = Float.of_int !i *. interval in
        incr i;
        v
  | Batched { batch; interval } ->
      let i = ref 0 in
      fun () ->
        let v = Float.of_int (!i / batch) *. interval in
        incr i;
        v
  | Bursty { rate_low; rate_high; mean_dwell } ->
      let t = ref 0. in
      let high = ref false in
      (* Remaining dwell time in the current modulating state. *)
      let dwell = ref (Rr_util.Prng.exponential rng ~rate:(1. /. mean_dwell)) in
      fun () ->
        let rec step () =
          let rate = if !high then rate_high else rate_low in
          let gap = Rr_util.Prng.exponential rng ~rate in
          if gap <= !dwell then begin
            dwell := !dwell -. gap;
            t := !t +. gap
          end
          else begin
            (* State flips before the candidate arrival: discard it (the
               exponential is memoryless) and continue in the new state. *)
            t := !t +. !dwell;
            high := not !high;
            dwell := Rr_util.Prng.exponential rng ~rate:(1. /. mean_dwell);
            step ()
          end
        in
        step ();
        !t
  | Diurnal { base_rate; amplitude; period } ->
      (* Thinning: candidates at the peak rate, accepted with probability
         intensity(t) / peak. *)
      let peak = base_rate *. (1. +. amplitude) in
      let intensity t =
        base_rate *. (1. +. (amplitude *. sin (2. *. Float.pi *. t /. period)))
      in
      let t = ref 0. in
      fun () ->
        let rec draw () =
          t := !t +. Rr_util.Prng.exponential rng ~rate:peak;
          if Rr_util.Prng.float rng <= intensity !t /. peak then !t else draw ()
        in
        draw ()

let generate rng p ~n =
  if n < 0 then invalid_arg "Arrivals.generate: n must be non-negative";
  let next = sampler rng p in
  let times = Array.make n 0. in
  for i = 0 to n - 1 do
    times.(i) <- next ()
  done;
  times

let mean_rate = function
  | Poisson { rate } -> rate
  | Periodic { interval } -> 1. /. interval
  | Batched { batch; interval } -> Float.of_int batch /. interval
  | Bursty { rate_low; rate_high; mean_dwell = _ } -> (rate_low +. rate_high) /. 2.
  | Diurnal { base_rate; _ } -> base_rate

let name = function
  | Poisson { rate } -> Printf.sprintf "poisson(%g)" rate
  | Periodic { interval } -> Printf.sprintf "periodic(%g)" interval
  | Batched { batch; interval } -> Printf.sprintf "batched(%d,%g)" batch interval
  | Bursty { rate_low; rate_high; mean_dwell } ->
      Printf.sprintf "bursty(%g,%g,%g)" rate_low rate_high mean_dwell
  | Diurnal { base_rate; amplitude; period } ->
      Printf.sprintf "diurnal(%g,%g,%g)" base_rate amplitude period
