(** Arrival processes: sequences of release times for online instances. *)

type t =
  | Poisson of { rate : float }  (** Memoryless arrivals at the given rate. *)
  | Periodic of { interval : float }  (** Deterministic, evenly spaced. *)
  | Batched of { batch : int; interval : float }
      (** [batch] simultaneous arrivals every [interval]. *)
  | Bursty of { rate_low : float; rate_high : float; mean_dwell : float }
      (** Two-state Markov-modulated Poisson process: arrival rate
          alternates between [rate_low] and [rate_high], dwelling in each
          state for an exponential time of mean [mean_dwell]. *)
  | Diurnal of { base_rate : float; amplitude : float; period : float }
      (** Non-homogeneous Poisson process with the sinusoidal intensity
          [base_rate * (1 + amplitude * sin(2 pi t / period))] — the
          day/night load pattern of server workloads; sampled by
          thinning.  Requires [0 <= amplitude < 1]. *)

val validate : t -> (unit, string) result

val sampler : Rr_util.Prng.t -> t -> unit -> float
(** [sampler rng p] is an incremental generator: each call returns the
    next release time of the process, in non-decreasing order, with O(1)
    state — the pull half of the streaming workload pipeline.
    @raise Invalid_argument on invalid parameters. *)

val generate : Rr_util.Prng.t -> t -> n:int -> float array
(** [generate rng p ~n] returns [n] non-decreasing release times starting
    at 0 — {!sampler} called [n] times in index order.
    @raise Invalid_argument on invalid parameters or [n < 0]. *)

val mean_rate : t -> float
(** Long-run arrival rate (jobs per unit time). *)

val name : t -> string
