type t = { jobs : Rr_engine.Job.t list; label : string; digest_memo : int64 option ref }

let of_jobs ?(label = "custom") pairs =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pairs
  in
  let jobs =
    List.mapi (fun id (arrival, size) -> Rr_engine.Job.make ~id ~arrival ~size) sorted
  in
  { jobs; label; digest_memo = ref None }

let generate ~rng ~arrivals ~sizes ~n () =
  let times = Arrivals.generate rng arrivals ~n in
  let pairs =
    Array.to_list (Array.map (fun t -> (t, Distribution.sample rng sizes)) times)
  in
  of_jobs
    ~label:(Printf.sprintf "%s/%s/n=%d" (Arrivals.name arrivals) (Distribution.name sizes) n)
    pairs

let load_rate ~sizes ~load ~machines =
  if load <= 0. then invalid_arg "Instance.generate_load: load must be positive";
  let mu = Distribution.mean sizes in
  if not (Float.is_finite mu && mu > 0.) then
    invalid_arg "Instance.generate_load: size distribution must have a finite positive mean";
  load *. Float.of_int machines /. mu

let load_label ~sizes ~load ~machines ~n =
  Printf.sprintf "%s/rho=%.2f/m=%d/n=%d" (Distribution.name sizes) load machines n

let generate_load ~rng ~sizes ~load ~machines ~n () =
  let rate = load_rate ~sizes ~load ~machines in
  let inst = generate ~rng ~arrivals:(Arrivals.Poisson { rate }) ~sizes ~n () in
  (* The digest ignores the label, so the memo survives the relabel. *)
  { inst with label = load_label ~sizes ~load ~machines ~n }

let n t = List.length t.jobs

let total_work t = Rr_util.Kahan.sum_list (List.map (fun (j : Rr_engine.Job.t) -> j.size) t.jobs)

let span t =
  match t.jobs with
  | [] | [ _ ] -> 0.
  | first :: rest ->
      let last = List.fold_left (fun _ j -> j) first rest in
      last.Rr_engine.Job.arrival -. first.Rr_engine.Job.arrival

let offered_load ~machines t =
  let s = span t in
  let w = total_work t in
  if s <= 0. then if w > 0. then Float.infinity else 0.
  else w /. (Float.of_int machines *. s)

let jobs t = t.jobs

(* FNV-1a over the job count and the bit patterns of every (arrival, size)
   pair.  The label is deliberately excluded: it is presentation-only, and
   two instances with identical jobs are interchangeable for simulation —
   exactly the equivalence the result cache wants.  [Stream.digest] folds
   the same mix over generated jobs without materializing them, so a
   stream and its materialization always share a digest. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let digest t =
  match !(t.digest_memo) with
  | Some d -> d
  | None ->
      let h = ref fnv_basis in
      let mix bits = h := Int64.mul (Int64.logxor !h bits) fnv_prime in
      mix (Int64.of_int (List.length t.jobs));
      List.iter
        (fun (j : Rr_engine.Job.t) ->
          mix (Int64.bits_of_float j.arrival);
          mix (Int64.bits_of_float j.size))
        t.jobs;
      t.digest_memo := Some !h;
      !h

let relabel label t = { t with label }

let pp ppf t =
  Format.fprintf ppf "instance %s: %d jobs, work %.3f, span %.3f" t.label (n t) (total_work t)
    (span t)

module Stream = struct
  type instance = t

  type source =
    | Generated of { arrivals : Arrivals.t; sizes : Distribution.t; seed : int }
    | Materialized of Rr_engine.Job.t list

  type t = { source : source; n : int; label : string; digest_memo : int64 option ref }

  let generate ~seed ~arrivals ~sizes ~n () =
    if n < 0 then invalid_arg "Instance.Stream.generate: n must be non-negative";
    (match Arrivals.validate arrivals with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Instance.Stream.generate: " ^ msg));
    {
      source = Generated { arrivals; sizes; seed };
      n;
      label =
        Printf.sprintf "%s/%s/n=%d" (Arrivals.name arrivals) (Distribution.name sizes) n;
      digest_memo = ref None;
    }

  let generate_load ~seed ~sizes ~load ~machines ~n () =
    let rate = load_rate ~sizes ~load ~machines in
    let s = generate ~seed ~arrivals:(Arrivals.Poisson { rate }) ~sizes ~n () in
    { s with label = load_label ~sizes ~load ~machines ~n }

  let of_instance inst =
    {
      source = Materialized inst.jobs;
      n = List.length inst.jobs;
      label = inst.label;
      digest_memo = inst.digest_memo (* shared: same jobs, same digest *);
    }

  let n s = s.n
  let label s = s.label
  let relabel label s = { s with label }

  (* Unboxed cursor for the zero-alloc streaming path.  Specializing the
     Poisson-arrival case matters: the arrival accumulator lives in the
     cursor itself (a flat float record the simulator owns, zeroed at
     [Source.of_raw] time), and the size distribution is dispatched by a
     per-call match whose arms bottom out in [@inline]d PRNG draws — so
     the generated fill closure allocates nothing per job.  Draw order
     (arrival, then size) is identical to {!start}, so raw and boxed
     cursors over one stream yield bit-identical jobs. *)
  let start_raw s =
    match s.source with
    | Materialized jobs ->
        let rest = ref jobs in
        fun (cur : Rr_engine.Simulator.Source.cursor) ->
          (match !rest with
          | [] -> -1
          | j :: tl ->
              rest := tl;
              cur.arrival <- j.Rr_engine.Job.arrival;
              cur.size <- j.Rr_engine.Job.size;
              j.Rr_engine.Job.id)
    | Generated { arrivals; sizes; seed } ->
        (* The specialized path bypasses [Distribution.sample]'s per-call
           check, so validate once up front. *)
        (match Distribution.validate sizes with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Instance.Stream.start_raw: Distribution: " ^ msg));
        let rng = Rr_util.Prng.create ~seed in
        let id = ref 0 in
        let n = s.n in
        (match arrivals with
        | Arrivals.Poisson { rate } -> (
            (* One fill closure per size constructor: dispatching the size
               draw inside a single closure would funnel six float arms
               through one match join, and the join point boxes the float
               before the [cur.size <-] store.  Specializing keeps each
               closure's size expression a single unboxed arm. *)
            match sizes with
            | Distribution.Deterministic p ->
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <- p;
                    let i = !id in
                    incr id;
                    i
                  end
            | Distribution.Uniform { lo; hi } ->
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <- Rr_util.Prng.float_range rng ~lo ~hi;
                    let i = !id in
                    incr id;
                    i
                  end
            | Distribution.Exponential { mean } ->
                let size_rate = 1. /. mean in
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <- Rr_util.Prng.exponential rng ~rate:size_rate;
                    let i = !id in
                    incr id;
                    i
                  end
            | Distribution.Pareto { alpha; x_min } ->
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <- Rr_util.Prng.pareto rng ~alpha ~x_min;
                    let i = !id in
                    incr id;
                    i
                  end
            | Distribution.Bounded_pareto { alpha; x_min; x_max } ->
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <- Rr_util.Prng.bounded_pareto rng ~alpha ~x_min ~x_max;
                    let i = !id in
                    incr id;
                    i
                  end
            | Distribution.Bimodal { small; large; prob_large } ->
                fun (cur : Rr_engine.Simulator.Source.cursor) ->
                  if !id >= n then -1
                  else begin
                    cur.arrival <- cur.arrival +. Rr_util.Prng.exponential rng ~rate;
                    cur.size <-
                      (if Rr_util.Prng.float rng < prob_large then large else small);
                    let i = !id in
                    incr id;
                    i
                  end)
        | _ ->
            let next_arrival = Arrivals.sampler rng arrivals in
            fun (cur : Rr_engine.Simulator.Source.cursor) ->
              if !id >= n then -1
              else begin
                cur.arrival <- next_arrival ();
                cur.size <- Distribution.sample rng sizes;
                let i = !id in
                incr id;
                i
              end)

  let start s =
    match s.source with
    | Materialized jobs ->
        let rest = ref jobs in
        fun () ->
          (match !rest with
          | [] -> None
          | j :: tl ->
              rest := tl;
              Some j)
    | Generated { arrivals; sizes; seed } ->
        (* A fresh cursor per [start]: replayable from the seed alone, so
           digesting, simulating, and re-simulating (possibly on another
           domain) all see the identical job sequence. *)
        let rng = Rr_util.Prng.create ~seed in
        let next_arrival = Arrivals.sampler rng arrivals in
        let id = ref 0 in
        fun () ->
          if !id >= s.n then None
          else begin
            let arrival = next_arrival () in
            let size = Distribution.sample rng sizes in
            let j = Rr_engine.Job.make ~id:!id ~arrival ~size in
            incr id;
            Some j
          end

  let digest s =
    match !(s.digest_memo) with
    | Some d -> d
    | None ->
        let h = ref fnv_basis in
        let mix bits = h := Int64.mul (Int64.logxor !h bits) fnv_prime in
        mix (Int64.of_int s.n);
        let pull = start s in
        let rec loop () =
          match pull () with
          | None -> ()
          | Some (j : Rr_engine.Job.t) ->
              mix (Int64.bits_of_float j.arrival);
              mix (Int64.bits_of_float j.size);
              loop ()
        in
        loop ();
        s.digest_memo := Some !h;
        !h

  let materialize s =
    let pull = start s in
    let rec collect acc =
      match pull () with None -> List.rev acc | Some j -> collect (j :: acc)
    in
    (* Jobs come out sorted with dense ids already, so no re-sort; the memo
       ref is shared because stream and materialization digest equal. *)
    ({ jobs = collect []; label = s.label; digest_memo = s.digest_memo } : instance)
end
