type t = { jobs : Rr_engine.Job.t list; label : string }

let of_jobs ?(label = "custom") pairs =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pairs
  in
  let jobs =
    List.mapi (fun id (arrival, size) -> Rr_engine.Job.make ~id ~arrival ~size) sorted
  in
  { jobs; label }

let generate ~rng ~arrivals ~sizes ~n () =
  let times = Arrivals.generate rng arrivals ~n in
  let pairs =
    Array.to_list (Array.map (fun t -> (t, Distribution.sample rng sizes)) times)
  in
  of_jobs
    ~label:(Printf.sprintf "%s/%s/n=%d" (Arrivals.name arrivals) (Distribution.name sizes) n)
    pairs

let generate_load ~rng ~sizes ~load ~machines ~n () =
  if load <= 0. then invalid_arg "Instance.generate_load: load must be positive";
  let mu = Distribution.mean sizes in
  if not (Float.is_finite mu && mu > 0.) then
    invalid_arg "Instance.generate_load: size distribution must have a finite positive mean";
  let rate = load *. Float.of_int machines /. mu in
  let inst = generate ~rng ~arrivals:(Arrivals.Poisson { rate }) ~sizes ~n () in
  { inst with label = Printf.sprintf "%s/rho=%.2f/m=%d/n=%d" (Distribution.name sizes) load machines n }

let n t = List.length t.jobs

let total_work t = Rr_util.Kahan.sum_list (List.map (fun (j : Rr_engine.Job.t) -> j.size) t.jobs)

let span t =
  match t.jobs with
  | [] | [ _ ] -> 0.
  | first :: rest ->
      let last = List.fold_left (fun _ j -> j) first rest in
      last.Rr_engine.Job.arrival -. first.Rr_engine.Job.arrival

let offered_load ~machines t =
  let s = span t in
  let w = total_work t in
  if s <= 0. then if w > 0. then Float.infinity else 0.
  else w /. (Float.of_int machines *. s)

let jobs t = t.jobs

(* FNV-1a over the job count and the bit patterns of every (arrival, size)
   pair.  The label is deliberately excluded: it is presentation-only, and
   two instances with identical jobs are interchangeable for simulation —
   exactly the equivalence the result cache wants. *)
let digest t =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix bits = h := Int64.mul (Int64.logxor !h bits) prime in
  mix (Int64.of_int (List.length t.jobs));
  List.iter
    (fun (j : Rr_engine.Job.t) ->
      mix (Int64.bits_of_float j.arrival);
      mix (Int64.bits_of_float j.size))
    t.jobs;
  !h

let relabel label t = { t with label }

let pp ppf t =
  Format.fprintf ppf "instance %s: %d jobs, work %.3f, span %.3f" t.label (n t) (total_work t)
    (span t)
