(** Problem instances: finite sets of jobs with validation and generators.

    An instance is the input of the online problem of Section 2: each job
    has a release time and a size; the online scheduler sees a job only
    from its release time.  Instances always carry dense job identifiers
    [0 .. n-1] ordered by [(arrival, id)]. *)

type t = private { jobs : Rr_engine.Job.t list; label : string }

val of_jobs : ?label:string -> (float * float) list -> t
(** [of_jobs pairs] builds an instance from [(arrival, size)] pairs,
    assigning ids in non-decreasing arrival order.
    @raise Invalid_argument when any arrival is negative or non-finite, or
    any size is non-positive or non-finite. *)

val generate :
  rng:Rr_util.Prng.t ->
  arrivals:Arrivals.t ->
  sizes:Distribution.t ->
  n:int ->
  unit ->
  t
(** Sample [n] release times from [arrivals] and sizes i.i.d. from
    [sizes]. *)

val generate_load :
  rng:Rr_util.Prng.t ->
  sizes:Distribution.t ->
  load:float ->
  machines:int ->
  n:int ->
  unit ->
  t
(** Poisson instance tuned so that the offered load
    [lambda * E(size) / machines] equals [load]; the standard way the
    evaluation parameterises stochastic workloads.
    @raise Invalid_argument when [load <= 0.] or the size distribution has
    a non-finite mean. *)

val n : t -> int

val total_work : t -> float
(** Sum of all job sizes. *)

val span : t -> float
(** Latest arrival minus earliest arrival; 0. for fewer than two jobs. *)

val offered_load : machines:int -> t -> float
(** Empirical load: [total_work / (machines * span)]; [infinity] when the
    span is 0 but work is positive. *)

val jobs : t -> Rr_engine.Job.t list

val digest : t -> int64
(** Cheap structural digest (FNV-1a over the job count and every
    (arrival, size) bit pattern, in id order).  Instances with identical
    jobs share a digest regardless of label; the memoizing result cache
    ({!Rr_core} [Cache]) uses it as its instance key.  O(n) per call. *)

val relabel : string -> t -> t

val pp : Format.formatter -> t -> unit
