(** Problem instances: finite sets of jobs with validation and generators.

    An instance is the input of the online problem of Section 2: each job
    has a release time and a size; the online scheduler sees a job only
    from its release time.  Instances always carry dense job identifiers
    [0 .. n-1] ordered by [(arrival, id)]. *)

type t = private {
  jobs : Rr_engine.Job.t list;
  label : string;
  digest_memo : int64 option ref;  (** Lazily filled by {!digest}. *)
}

val of_jobs : ?label:string -> (float * float) list -> t
(** [of_jobs pairs] builds an instance from [(arrival, size)] pairs,
    assigning ids in non-decreasing arrival order.
    @raise Invalid_argument when any arrival is negative or non-finite, or
    any size is non-positive or non-finite. *)

val generate :
  rng:Rr_util.Prng.t ->
  arrivals:Arrivals.t ->
  sizes:Distribution.t ->
  n:int ->
  unit ->
  t
(** Sample [n] release times from [arrivals] and sizes i.i.d. from
    [sizes]. *)

val generate_load :
  rng:Rr_util.Prng.t ->
  sizes:Distribution.t ->
  load:float ->
  machines:int ->
  n:int ->
  unit ->
  t
(** Poisson instance tuned so that the offered load
    [lambda * E(size) / machines] equals [load]; the standard way the
    evaluation parameterises stochastic workloads.
    @raise Invalid_argument when [load <= 0.] or the size distribution has
    a non-finite mean. *)

val n : t -> int

val total_work : t -> float
(** Sum of all job sizes. *)

val span : t -> float
(** Latest arrival minus earliest arrival; 0. for fewer than two jobs. *)

val offered_load : machines:int -> t -> float
(** Empirical load: [total_work / (machines * span)]; [infinity] when the
    span is 0 but work is positive. *)

val jobs : t -> Rr_engine.Job.t list

val digest : t -> int64
(** Cheap structural digest (FNV-1a over the job count and every
    (arrival, size) bit pattern, in id order).  Instances with identical
    jobs share a digest regardless of label; the memoizing result cache
    ({!Rr_core} [Cache]) uses it as its instance key.  O(n) on first
    call, O(1) after (memoized; {!relabel} preserves the memo, since the
    label does not participate in the digest). *)

val relabel : string -> t -> t

val pp : Format.formatter -> t -> unit

(** Lazy instances: pull-based job generators that never materialize a
    job list.  A stream is replayable — it stores a seed, not an RNG, and
    every {!Stream.start} returns a fresh cursor over the identical job
    sequence — so the same stream value can be digested, simulated, and
    handed to several {!Rr_util.Pool} domains concurrently.  A 10M-job
    Poisson workload costs O(1) memory to describe and O(alive jobs) to
    simulate through the sink path of {!Rr_engine.Simulator}. *)
module Stream : sig
  type instance := t

  type t

  val generate :
    seed:int -> arrivals:Arrivals.t -> sizes:Distribution.t -> n:int -> unit -> t
  (** Lazy counterpart of {!Instance.generate}: [n] jobs with release
      times from [arrivals] and i.i.d. sizes from [sizes], drawn from a
      PRNG seeded with [seed] (arrival and size draws interleaved per
      job).  @raise Invalid_argument on [n < 0] or invalid [arrivals]. *)

  val generate_load :
    seed:int -> sizes:Distribution.t -> load:float -> machines:int -> n:int -> unit -> t
  (** Lazy counterpart of {!Instance.generate_load}: Poisson arrivals
      tuned so the offered load equals [load]. *)

  val of_instance : instance -> t
  (** Stream view over an already-materialized instance (shares its jobs
      and digest memo). *)

  val n : t -> int

  val label : t -> string

  val relabel : string -> t -> t

  val start : t -> unit -> Rr_engine.Job.t option
  (** [start s] returns a fresh cursor: successive calls yield the jobs
      in [(arrival, id)] order with dense ids [0 .. n-1], then [None].
      Cursors are independent; each replays the full sequence. *)

  val start_raw : t -> Rr_engine.Simulator.Source.cursor -> int
  (** Unboxed counterpart of {!start}, in the shape
      {!Rr_engine.Simulator.Source.of_raw} consumes: the returned fill
      function writes each job's arrival and size into the cursor and
      returns its id ([-1] once exhausted).  Yields the bit-identical
      job sequence to {!start} (same seed, same draw order) while
      allocating nothing per job for Poisson-arrival generated streams —
      the fill may use the cursor's own fields as accumulator state, so
      it must always be driven through one fresh zero-initialized cursor,
      exactly as [of_raw] does. *)

  val digest : t -> int64
  (** Same FNV-1a digest as {!Instance.digest} of {!materialize}, folded
      over one streaming pass (memoized).  Streamed and materialized
      copies of the same workload therefore share a digest. *)

  val materialize : t -> instance
  (** Pull every job into an ordinary {!Instance.t} (O(n) memory). *)
end
