(* Dense class kernels: specialised engines for the rate-vector policy
   classes whose decisions depend on the whole alive set — LAPS's
   latest-arrival share, MLFQ's attained-service ladder, the weighted
   proportional shares (age- and size-weighted), and discrete quantum
   round-robin.  See class_engine.mli.

   Unlike the priority-index kernels (index_engine.ml), these classes
   hand fractional rates to many jobs at once, so each event still costs
   O(alive); the win over the general loop is structural.  The engine
   keeps its jobs in exactly the order its class needs — admission order
   doubles as (arrival asc, id asc) for LAPS and, because age-derived
   weights are monotone in arrival, as (weight desc, id asc) for WRR-age
   — so it never sorts, never rebuilds policy views, and never runs the
   policy closure.  The numeric kernels (capped proportional shares, the
   MLFQ ladder) are the shared ones in {!Policy_class}, and the fold
   orders, guards, and float expressions mirror the reference policies
   operation for operation, so on the same event sequence the two sides
   produce the same floats; the differential suite in test_simcore pins
   agreement to <= 1e-9 relative flow time. *)

module Vec = Rr_util.Vec
module Source = Simulator.Source

type kind =
  | Laps of { beta : float }
  | Ladder of { base_quantum : float; factor : float; levels : int }
  | Aged of { k : int; refresh : float; offset : float }
  | Sized of { gamma : float }
  | Quantum of { quantum : float }

let kind_of_class = function
  | Policy_class.Latest_fraction { beta } -> Some (Laps { beta })
  | Policy_class.Level_ladder { base_quantum; factor; levels } ->
      Some (Ladder { base_quantum; factor; levels })
  | Policy_class.Aged_share { k; refresh; offset } -> Some (Aged { k; refresh; offset })
  | Policy_class.Sized_share { gamma } -> Some (Sized { gamma })
  | Policy_class.Quantum_cycle { quantum } -> Some (Quantum { quantum })
  | Policy_class.Equal_share | Policy_class.Static_key _ | Policy_class.Attained_cascade
  | Policy_class.Starvation_hybrid _ | Policy_class.Preempt_budget _ ->
      None

let class_of_kind = function
  | Laps { beta } -> Policy_class.Latest_fraction { beta }
  | Ladder { base_quantum; factor; levels } ->
      Policy_class.Level_ladder { base_quantum; factor; levels }
  | Aged { k; refresh; offset } -> Policy_class.Aged_share { k; refresh; offset }
  | Sized { gamma } -> Policy_class.Sized_share { gamma }
  | Quantum { quantum } -> Policy_class.Quantum_cycle { quantum }

(* One record per alive job, owned by the engine for the job's whole
   lifetime.  [rate] caches the last decision so partial advances (the
   live engine splits intervals at [step] targets) reuse it without a
   recompute — exactly the general loop's allocate-once-per-event
   discipline, which is what keeps WRR-age's drifting weights
   split-safe. *)
type djob = {
  id : int;
  arrival : float;
  size : float;
  mutable remaining : float;
  mutable attained : float;
  mutable rate : float;
  mutable level : int;  (* Ladder only: MLFQ level as of the last refresh *)
}

type state = {
  kind : kind;
  machines : int;
  speed : float;
  jobs : djob Vec.t;  (* dense cores; class-specific order, see [admit] *)
  slots : djob option array;  (* Quantum: seated jobs, one per machine *)
  deadlines : float array;  (* Quantum: per-slot quantum deadline *)
  ready : djob Queue.t;  (* Quantum: FIFO ready queue *)
  level_counts : int array;  (* Ladder scratch: alive jobs per level *)
  level_share : float array;  (* Ladder scratch: rate per level *)
  mutable weights : float array;  (* Aged / Sized scratch, capacity >= alive *)
  mutable suffix : float array;  (* capped_rates_into scratch, capacity >= alive + 1 *)
  mutable rates : float array;  (* capped_rates_into output, capacity >= alive *)
  mutable horizon : float;  (* decision horizon; +inf when none *)
  mutable alive : int;
}

let create ~machines ~speed kind =
  if machines < 1 then invalid_arg "Class_engine.create: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Class_engine.create: speed must be finite and positive";
  (match Policy_class.validate (class_of_kind kind) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Class_engine.create: " ^ msg));
  {
    kind;
    machines;
    speed;
    jobs = Vec.create ();
    slots = (match kind with Quantum _ -> Array.make machines None | _ -> [||]);
    deadlines = (match kind with Quantum _ -> Array.make machines Float.infinity | _ -> [||]);
    ready = Queue.create ();
    level_counts = (match kind with Ladder { levels; _ } -> Array.make levels 0 | _ -> [||]);
    level_share = (match kind with Ladder { levels; _ } -> Array.make levels 0. | _ -> [||]);
    weights = [||];
    suffix = [||];
    rates = [||];
    horizon = Float.infinity;
    alive = 0;
  }

(* Grow-only scratch for the weight-proportional kinds: the buffers track
   the alive high-water mark, so in steady state a refresh allocates
   nothing — the pre-arena version made three exact-size arrays per
   event. *)
let ensure_scratch st n =
  if Array.length st.weights < n then begin
    let cap = Int.max 16 (Int.max n (2 * Array.length st.weights)) in
    st.weights <- Array.make cap 0.;
    st.rates <- Array.make cap 0.;
    st.suffix <- Array.make (cap + 1) 0.
  end

let alive st = st.alive

(* Same float as Simulator.completion_threshold, inlined into the hot
   loop. *)
let threshold size = 1e-9 *. (1. +. size)

let mk_job (j : Job.t) =
  { id = j.id; arrival = j.arrival; size = j.size; remaining = j.size; attained = 0.; rate = 0.; level = 0 }

(* Jobs must be admitted in (arrival asc, id asc) order — the order
   every source produces.  LAPS keeps that order directly (the policy
   serves the latest arrivals, i.e. a suffix of this vector); WRR-age
   keeps it because age is decreasing in admission order and the
   age-derived weight is monotone non-decreasing in age, so admission
   order IS (weight desc, id asc) at every instant; WRR-static inserts
   by its static weight; MLFQ's vector is unordered (rates depend only
   on levels). *)
let admit st (j : Job.t) =
  let dj = mk_job j in
  (match st.kind with
  | Laps _ | Ladder _ | Aged _ -> Vec.push st.jobs dj
  | Sized { gamma } ->
      (* Keep (weight desc, id asc).  The newcomer has the largest id, so
         it goes after every incumbent of weight >= its own: shift the
         strictly-lighter suffix right by one. *)
      let w = j.size ** gamma in
      Vec.push st.jobs dj;
      let i = ref (Vec.length st.jobs - 1) in
      while !i > 0 && (Vec.get st.jobs (!i - 1)).size ** gamma < w do
        Vec.set st.jobs !i (Vec.get st.jobs (!i - 1));
        decr i
      done;
      Vec.set st.jobs !i dj
  | Quantum _ -> Queue.push dj st.ready);
  st.alive <- st.alive + 1

(* Mirror of one [allocate] call: recompute every cached rate and the
   decision horizon.  Run exactly once per event, after completions and
   admissions have settled — the same place the general loop invokes the
   policy. *)
let refresh st ~now =
  match st.kind with
  | Laps { beta } ->
      let n = Vec.length st.jobs in
      if n > 0 then begin
        let share_count = Int.max 1 (int_of_float (Float.ceil (beta *. Float.of_int n))) in
        let share = Float.min 1. (Float.of_int st.machines /. Float.of_int share_count) in
        let first = n - share_count in
        for i = 0 to n - 1 do
          (Vec.get st.jobs i).rate <- (if i >= first then share else 0.)
        done
      end;
      st.horizon <- Float.infinity
  | Ladder { base_quantum; factor; levels } ->
      let n = Vec.length st.jobs in
      Array.fill st.level_counts 0 levels 0;
      for i = 0 to n - 1 do
        let dj = Vec.get st.jobs i in
        dj.level <- Policy_class.ladder_level ~base_quantum ~factor ~levels dj.attained;
        st.level_counts.(dj.level) <- st.level_counts.(dj.level) + 1
      done;
      (* Serve levels lowest-first; same block arithmetic (and the same
         1e-12 exhaustion guard) as the mirror policy's sorted sweep. *)
      let left = ref (Float.of_int st.machines) in
      for lvl = 0 to levels - 1 do
        if st.level_counts.(lvl) > 0 && !left > 1e-12 then begin
          let count = Float.of_int st.level_counts.(lvl) in
          let share = Float.min 1. (!left /. count) in
          st.level_share.(lvl) <- share;
          left := !left -. (share *. count)
        end
        else st.level_share.(lvl) <- 0.
      done;
      st.horizon <- Float.infinity;
      for i = 0 to n - 1 do
        let dj = Vec.get st.jobs i in
        dj.rate <- st.level_share.(dj.level);
        if dj.rate > 0. && dj.level < levels - 1 then begin
          let next = Policy_class.ladder_threshold ~base_quantum ~factor dj.level in
          let gap = next -. dj.attained in
          if gap > 1e-12 then begin
            let t = now +. (gap /. (dj.rate *. st.speed)) in
            if t < st.horizon then st.horizon <- t
          end
        end
      done
  | Aged { k; refresh; offset } ->
      let n = Vec.length st.jobs in
      ensure_scratch st n;
      for i = 0 to n - 1 do
        st.weights.(i) <-
          Rr_util.Floatx.powi ((now -. (Vec.get st.jobs i).arrival) +. offset) (k - 1)
      done;
      Policy_class.capped_rates_into ~machines:st.machines ~n ~weights:st.weights
        ~suffix:st.suffix ~rates:st.rates;
      let youngest = ref Float.infinity in
      for i = 0 to n - 1 do
        let dj = Vec.get st.jobs i in
        dj.rate <- st.rates.(i);
        youngest := Float.min !youngest (now -. dj.arrival)
      done;
      st.horizon <-
        (if k = 1 || n = 0 then Float.infinity
         else now +. Float.max 1e-6 (refresh *. (!youngest +. offset)))
  | Sized { gamma } ->
      let n = Vec.length st.jobs in
      ensure_scratch st n;
      for i = 0 to n - 1 do
        st.weights.(i) <- (Vec.get st.jobs i).size ** gamma
      done;
      Policy_class.capped_rates_into ~machines:st.machines ~n ~weights:st.weights
        ~suffix:st.suffix ~rates:st.rates;
      for i = 0 to n - 1 do
        (Vec.get st.jobs i).rate <- st.rates.(i)
      done;
      st.horizon <- Float.infinity
  | Quantum { quantum } ->
      (* Expired quanta first (incumbent to the back of the queue), then
         refill idle machines — the mirror policy's transition order. *)
      for s = 0 to st.machines - 1 do
        match st.slots.(s) with
        | Some dj when now >= st.deadlines.(s) -. 1e-12 ->
            dj.rate <- 0.;
            Queue.push dj st.ready;
            st.slots.(s) <- None
        | _ -> ()
      done;
      for s = 0 to st.machines - 1 do
        if st.slots.(s) = None then
          match Queue.take_opt st.ready with
          | Some dj ->
              dj.rate <- 1.;
              st.slots.(s) <- Some dj;
              st.deadlines.(s) <- now +. quantum
          | None -> ()
      done;
      st.horizon <- Float.infinity;
      for s = 0 to st.machines - 1 do
        match st.slots.(s) with
        | Some _ when st.deadlines.(s) < st.horizon -> st.horizon <- st.deadlines.(s)
        | _ -> ()
      done

(* Earliest internal event under the cached decision: analytic
   completion or decision horizon, whichever first.  The caller folds in
   the next arrival; the min over all three is the same float whatever
   the fold order, so the general loop's completion -> arrival ->
   horizon sequencing needs no replication. *)
let next_internal st ~now =
  let t = ref st.horizon in
  (match st.kind with
  | Quantum _ ->
      for s = 0 to st.machines - 1 do
        match st.slots.(s) with
        | Some dj ->
            let v = dj.rate *. st.speed in
            if v > 0. then begin
              let c = now +. (dj.remaining /. v) in
              if c < !t then t := c
            end
        | None -> ()
      done
  | _ ->
      let n = Vec.length st.jobs in
      for i = 0 to n - 1 do
        let dj = Vec.get st.jobs i in
        let v = dj.rate *. st.speed in
        if v > 0. then begin
          let c = now +. (dj.remaining /. v) in
          if c < !t then t := c
        end
      done);
  !t

(* Advance every served job by the cached rates; a zero rate is a
   bit-exact no-op in the general loop, so skipping those jobs changes
   nothing. *)
let advance st ~dt =
  match st.kind with
  | Quantum _ ->
      for s = 0 to st.machines - 1 do
        match st.slots.(s) with
        | Some dj ->
            let delta = dj.rate *. st.speed *. dt in
            dj.remaining <- dj.remaining -. delta;
            dj.attained <- dj.attained +. delta
        | None -> ()
      done
  | _ ->
      let n = Vec.length st.jobs in
      for i = 0 to n - 1 do
        let dj = Vec.get st.jobs i in
        if dj.rate > 0. then begin
          let delta = dj.rate *. st.speed *. dt in
          dj.remaining <- dj.remaining -. delta;
          dj.attained <- dj.attained +. delta
        end
      done

(* Retire completed jobs.  The dense cores check the whole vector (the
   general loop does too, and it costs nothing extra at O(alive) per
   event); the quantum core checks its slots — queued jobs have rate 0
   and cannot cross the threshold. *)
let settle st ~now ~complete =
  match st.kind with
  | Quantum _ ->
      for s = 0 to st.machines - 1 do
        match st.slots.(s) with
        | Some dj when dj.remaining <= threshold dj.size ->
            complete dj.id dj.arrival now;
            st.slots.(s) <- None;
            st.alive <- st.alive - 1
        | _ -> ()
      done
  | Ladder _ ->
      (* Unordered vector: swap-remove, iterating downwards. *)
      for i = Vec.length st.jobs - 1 downto 0 do
        let dj = Vec.get st.jobs i in
        if dj.remaining <= threshold dj.size then begin
          complete dj.id dj.arrival now;
          Vec.swap_remove st.jobs i;
          st.alive <- st.alive - 1
        end
      done
  | Laps _ | Aged _ | Sized _ ->
      (* Ordered vectors: shift the suffix left to preserve the class
         order.  Indices below [i] are untouched, so the downward sweep
         stays valid. *)
      for i = Vec.length st.jobs - 1 downto 0 do
        let dj = Vec.get st.jobs i in
        if dj.remaining <= threshold dj.size then begin
          complete dj.id dj.arrival now;
          let len = Vec.length st.jobs in
          for p = i to len - 2 do
            Vec.set st.jobs p (Vec.get st.jobs (p + 1))
          done;
          Vec.swap_remove st.jobs (len - 1);
          st.alive <- st.alive - 1
        end
      done

let iter_alive st f =
  match st.kind with
  | Quantum _ ->
      Array.iter (function Some dj -> f dj | None -> ()) st.slots;
      Queue.iter f st.ready
  | _ -> Vec.iter f st.jobs

(* ------------------------------------------------------------------ *)
(* Closed event loop                                                   *)
(* ------------------------------------------------------------------ *)

let dense_core ~record_trace ~speed ~max_events ~machines ~kind ~(source : Source.t)
    ~(complete : int -> float -> float -> unit) =
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let st = create ~machines ~speed kind in
  let next_arr = ref (Source.next_arrival source) in
  let max_alive = ref 0 in
  let admit_upto now =
    while !next_arr <= now do
      (match Source.next source with Some j -> admit st j | None -> ());
      next_arr := Source.next_arrival source
    done;
    if st.alive > !max_alive then max_alive := st.alive
  in
  let completed = ref 0 in
  let makespan = ref 0. in
  let events = ref 0 in
  let complete' id arrival t =
    complete id arrival t;
    incr completed;
    makespan := t
  in
  let trace_arena : Trace.segment Vec.t = Arena.segments_of scratch in
  let push_trace ~t0 ~t1 =
    let entries = Array.make st.alive { Trace.job = -1; arrival = 0.; rate = 0. } in
    let next = ref 0 in
    iter_alive st (fun dj ->
        entries.(!next) <- { Trace.job = dj.id; arrival = dj.arrival; rate = dj.rate };
        incr next);
    Vec.push trace_arena { Trace.t0; t1; alive = entries }
  in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  admit_upto !now;
  while st.alive > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
    if st.alive = 0 then begin
      (* Idle period: jump straight to the next arrival. *)
      now := !next_arr;
      admit_upto !now
    end
    else begin
      refresh st ~now:!now;
      let t_next = ref (next_internal st ~now:!now) in
      if !next_arr < !t_next then t_next := !next_arr;
      if not (Float.is_finite !t_next) then
        raise
          (Simulator.Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then push_trace ~t0:!now ~t1:!t_next;
      advance st ~dt;
      now := !t_next;
      settle st ~now:!now ~complete:complete';
      admit_upto !now
    end
  done;
  ( {
      Simulator.n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    Vec.to_list trace_arena )

let no_sink : Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines ~kind jobs =
  let n = Simulator.validate_jobs jobs in
  let jobs_arr = Simulator.jobs_by_id jobs n in
  let order = Simulator.release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete id arrival now =
    completions.(id) <- now;
    sink ~id ~arrival ~flow:(now -. arrival)
  in
  let summary, trace =
    dense_core ~record_trace ~speed ~max_events ~machines ~kind
      ~source:(Source.of_array order) ~complete
  in
  {
    Simulator.jobs = jobs_arr;
    completions;
    trace;
    machines;
    speed;
    events = summary.Simulator.events;
  }

let run_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~kind ~sink pull =
  let complete id arrival now = sink ~id ~arrival ~flow:(now -. arrival) in
  let summary, _trace =
    dense_core ~record_trace:false ~speed ~max_events ~machines ~kind
      ~source:(Source.of_fn pull) ~complete
  in
  summary
