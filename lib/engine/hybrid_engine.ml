(* Starvation-hybrid kernel: SRPT for "fresh" jobs, absolute FCFS
   priority for "starved" ones.  See hybrid_engine.mli.

   A job's starvation instant [starve = arrival + theta * size]
   ({!Policy_class.starve_time}) is fixed at admission, so the priority
   order is piecewise-static: between promotion instants the served set
   is the top-m under a two-tier static order (starved jobs by (arrival,
   id), then fresh jobs by (remaining, id), with remaining frozen while
   waiting).  The kernel therefore runs like a priority-index engine —
   <= m running slots plus binary heaps for the waiting jobs — with one
   extra event source: a promotion heap keyed by starvation instants.
   Promotions of *waiting* fresh jobs can preempt; promotions of
   *running* fresh jobs only improve their rank, but the mirror policy
   still re-evaluates at every starvation instant (its horizon is the
   minimum over all fresh jobs), so the kernel keeps those no-op events
   too and the two event sequences — hence the floats — coincide
   exactly.

   Waiting heaps hold job ids only; the per-id record carries the
   authoritative fields.  Entries go stale when a job is seated,
   promoted, or completed; stale tops are lazily popped (a job re-enters
   a heap with a key no larger than its old entries, so the live entry
   always surfaces first). *)

module Heap = Rr_util.Heap
module Vec = Rr_util.Vec
module Source = Simulator.Source

(* [where] tags *)
let w_running = 0

let w_starved = 1

let w_fresh = 2

type hjob = {
  hid : int;
  arrival : float;
  size : float;
  starve : float;
  mutable remaining : float;
  mutable where : int;
}

type state = {
  theta : float;
  machines : int;
  speed : float;
  info : (int, hjob) Hashtbl.t;  (* every alive job *)
  slots : hjob option array;  (* running set, <= machines entries *)
  starved : Heap.Scalar.t;  (* waiting starved: key = arrival, val = id *)
  fresh : Heap.Scalar.t;  (* waiting fresh: key = remaining at push, val = id *)
  promo : Heap.Scalar.t;  (* pending promotions: key = starve, val = id *)
  mutable horizon : float;
}

(* The three priority heaps may be caller-supplied (the closed core
   borrows them from the per-domain arena so back-to-back runs reuse
   their capacity); {!create} allocates fresh ones for long-lived states
   like {!Live}, which outlive any arena borrow. *)
let create_in ~starved ~fresh ~promo ~machines ~speed ~theta =
  if machines < 1 then invalid_arg "Hybrid_engine.create: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Hybrid_engine.create: speed must be finite and positive";
  (match Policy_class.validate (Policy_class.Starvation_hybrid { theta }) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hybrid_engine.create: " ^ msg));
  {
    theta;
    machines;
    speed;
    info = Hashtbl.create 64;
    slots = Array.make machines None;
    starved;
    fresh;
    promo;
    horizon = Float.infinity;
  }

let create ~machines ~speed ~theta =
  create_in
    ~starved:(Heap.Scalar.create ())
    ~fresh:(Heap.Scalar.create ())
    ~promo:(Heap.Scalar.create ())
    ~machines ~speed ~theta

let alive st = Hashtbl.length st.info

let threshold size = 1e-9 *. (1. +. size)

let admit st (j : Job.t) =
  let starve = Policy_class.starve_time ~theta:st.theta ~arrival:j.arrival ~size:j.size in
  let h =
    { hid = j.id; arrival = j.arrival; size = j.size; starve; remaining = j.size; where = w_fresh }
  in
  Hashtbl.replace st.info j.id h;
  Heap.Scalar.add st.fresh ~key:h.remaining j.id;
  Heap.Scalar.add st.promo ~key:starve j.id

(* Strict two-tier order at time [now]: starved (arrival, id) before
   fresh (remaining, id) — the mirror policy's comparator. *)
let beats ~now (a : hjob) (b : hjob) =
  let sa = now >= a.starve and sb = now >= b.starve in
  match (sa, sb) with
  | true, false -> true
  | false, true -> false
  | true, true -> a.arrival < b.arrival || (a.arrival = b.arrival && a.hid < b.hid)
  | false, false -> a.remaining < b.remaining || (a.remaining = b.remaining && a.hid < b.hid)

let drain_stale st heap which =
  let continue = ref true in
  while !continue && Heap.Scalar.length heap > 0 do
    match Hashtbl.find_opt st.info (Heap.Scalar.min_val_exn heap) with
    | Some h when h.where = which -> continue := false
    | _ -> ignore (Heap.Scalar.pop_exn heap)
  done

(* Best waiting job, starved tier first; [None] when all wait heaps are
   (effectively) empty. *)
let best_waiting st =
  drain_stale st st.starved w_starved;
  if Heap.Scalar.length st.starved > 0 then
    Hashtbl.find_opt st.info (Heap.Scalar.min_val_exn st.starved)
  else begin
    drain_stale st st.fresh w_fresh;
    if Heap.Scalar.length st.fresh > 0 then
      Hashtbl.find_opt st.info (Heap.Scalar.min_val_exn st.fresh)
    else None
  end

let seat st s (h : hjob) =
  (* Pop the live heap entry (it is the top of its heap by
     construction: [best_waiting] drained the stale prefix). *)
  (match h.where with
  | w when w = w_starved -> ignore (Heap.Scalar.pop_exn st.starved)
  | _ -> ignore (Heap.Scalar.pop_exn st.fresh));
  h.where <- w_running;
  st.slots.(s) <- Some h

let unseat st s ~now =
  match st.slots.(s) with
  | None -> ()
  | Some h ->
      if now >= h.starve then begin
        h.where <- w_starved;
        Heap.Scalar.add st.starved ~key:h.arrival h.hid
      end
      else begin
        h.where <- w_fresh;
        Heap.Scalar.add st.fresh ~key:h.remaining h.hid
      end;
      st.slots.(s) <- None

(* Mirror of one [allocate] call: process due promotions, then restore
   the running set to the top-m of the current order, then recompute the
   horizon (minimum starvation instant over still-fresh jobs). *)
let refresh st ~now =
  while Heap.Scalar.length st.promo > 0 && Heap.Scalar.min_key_exn st.promo <= now do
    let id = Heap.Scalar.pop_exn st.promo in
    match Hashtbl.find_opt st.info id with
    | Some h when h.where = w_fresh ->
        (* A waiting job crossed its threshold: move it to the starved
           tier (its old fresh-heap entry goes stale). *)
        h.where <- w_starved;
        Heap.Scalar.add st.starved ~key:h.arrival h.hid
    | _ -> ()  (* running (rank only improves in place) or completed *)
  done;
  (* Fill free slots best-first. *)
  for s = 0 to st.machines - 1 do
    if st.slots.(s) = None then
      match best_waiting st with Some h -> seat st s h | None -> ()
  done;
  (* Preempt while some waiting job outranks the weakest incumbent. *)
  let continue = ref true in
  while !continue do
    match best_waiting st with
    | None -> continue := false
    | Some w -> (
        let weakest = ref (-1) in
        for s = 0 to st.machines - 1 do
          match st.slots.(s) with
          | Some h -> (
              match !weakest with
              | -1 -> weakest := s
              | ws -> (
                  match st.slots.(ws) with
                  | Some hw -> if beats ~now hw h then weakest := s
                  | None -> weakest := s))
          | None -> ()
        done;
        match !weakest with
        | -1 -> continue := false
        | ws -> (
            match st.slots.(ws) with
            | Some hw when beats ~now w hw ->
                unseat st ws ~now;
                seat st ws w
            | _ -> continue := false))
  done;
  (* Undrained promotion keys are strictly in the future and belong to
     still-fresh jobs — except entries of jobs that completed fresh,
     which the mirror policy no longer sees: lazily drop those. *)
  while
    Heap.Scalar.length st.promo > 0
    && not (Hashtbl.mem st.info (Heap.Scalar.min_val_exn st.promo))
  do
    ignore (Heap.Scalar.pop_exn st.promo)
  done;
  st.horizon <-
    (if Heap.Scalar.length st.promo > 0 then Heap.Scalar.min_key_exn st.promo
     else Float.infinity)

let next_internal st ~now =
  let t = ref st.horizon in
  for s = 0 to st.machines - 1 do
    match st.slots.(s) with
    | Some h ->
        let c = now +. (h.remaining /. st.speed) in
        if c < !t then t := c
    | None -> ()
  done;
  !t

let advance st ~dt =
  let adv = st.speed *. dt in
  for s = 0 to st.machines - 1 do
    match st.slots.(s) with
    | Some h -> h.remaining <- h.remaining -. adv
    | None -> ()
  done

let settle st ~now ~complete =
  for s = 0 to st.machines - 1 do
    match st.slots.(s) with
    | Some h when h.remaining <= threshold h.size ->
        complete h.hid h.arrival now;
        Hashtbl.remove st.info h.hid;
        st.slots.(s) <- None
    | _ -> ()
  done

let iter_alive st f = Hashtbl.iter (fun _ h -> f h) st.info

(* ------------------------------------------------------------------ *)
(* Closed event loop                                                   *)
(* ------------------------------------------------------------------ *)

let hybrid_core ~record_trace ~speed ~max_events ~machines ~theta ~(source : Source.t)
    ~(complete : int -> float -> float -> unit) =
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let st =
    create_in
      ~starved:(Arena.scalar_of scratch)
      ~fresh:(Arena.scalar_of scratch)
      ~promo:(Arena.scalar_of scratch)
      ~machines ~speed ~theta
  in
  let next_arr = ref (Source.next_arrival source) in
  let max_alive = ref 0 in
  let admit_upto now =
    while !next_arr <= now do
      (match Source.next source with Some j -> admit st j | None -> ());
      next_arr := Source.next_arrival source
    done;
    if alive st > !max_alive then max_alive := alive st
  in
  let completed = ref 0 in
  let makespan = ref 0. in
  let events = ref 0 in
  let complete' id arrival t =
    complete id arrival t;
    incr completed;
    makespan := t
  in
  let trace_arena : Trace.segment Vec.t = Arena.segments_of scratch in
  let push_trace ~t0 ~t1 =
    let entries = Array.make (alive st) { Trace.job = -1; arrival = 0.; rate = 0. } in
    let next = ref 0 in
    iter_alive st (fun h ->
        let rate = if h.where = w_running then 1. else 0. in
        entries.(!next) <- { Trace.job = h.hid; arrival = h.arrival; rate };
        incr next);
    Vec.push trace_arena { Trace.t0; t1; alive = entries }
  in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  admit_upto !now;
  while alive st > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
    if alive st = 0 then begin
      now := !next_arr;
      admit_upto !now
    end
    else begin
      refresh st ~now:!now;
      let t_next = ref (next_internal st ~now:!now) in
      if !next_arr < !t_next then t_next := !next_arr;
      if not (Float.is_finite !t_next) then
        raise
          (Simulator.Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then push_trace ~t0:!now ~t1:!t_next;
      advance st ~dt;
      now := !t_next;
      settle st ~now:!now ~complete:complete';
      admit_upto !now
    end
  done;
  ( {
      Simulator.n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    Vec.to_list trace_arena )

let no_sink : Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines ~theta jobs =
  let n = Simulator.validate_jobs jobs in
  let jobs_arr = Simulator.jobs_by_id jobs n in
  let order = Simulator.release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete id arrival now =
    completions.(id) <- now;
    sink ~id ~arrival ~flow:(now -. arrival)
  in
  let summary, trace =
    hybrid_core ~record_trace ~speed ~max_events ~machines ~theta
      ~source:(Source.of_array order) ~complete
  in
  {
    Simulator.jobs = jobs_arr;
    completions;
    trace;
    machines;
    speed;
    events = summary.Simulator.events;
  }

let run_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~theta ~sink pull =
  let complete id arrival now = sink ~id ~arrival ~flow:(now -. arrival) in
  let summary, _trace =
    hybrid_core ~record_trace:false ~speed ~max_events ~machines ~theta
      ~source:(Source.of_fn pull) ~complete
  in
  summary
