(* Preemption-budget SRPT kernel ({!Policy_class.Preempt_budget}).  See
   budget_engine.mli.

   SRPT, except each job may be evicted from a machine at most [budget]
   times; an incumbent whose eviction count has reached the budget is
   immune and runs to completion.  The rule is history-dependent, so the
   kernel replays exactly the transitions the mirror policy makes, in
   the same order at every event:

     1. completed jobs leave their machines ([settle]),
     2. free machines are refilled from the *waiting* set, best
        (remaining, id) first — before any same-instant arrival is
        considered (completion beats arrival),
     3. fresh arrivals, in (arrival, id) order, take a free machine if
        any, else challenge the weakest evictable incumbent (max
        (remaining, id) among those under budget) and evict it — bumping
        its count — iff they beat it under (remaining, id).

   Waiting jobs never run, so their remaining work is frozen and the
   waiting heap needs no staleness handling: a job's entry is popped
   when it is seated and re-pushed (with its current remaining) when it
   is evicted.  Each event costs O(m + log alive). *)

module Heap = Rr_util.Heap
module Vec = Rr_util.Vec
module Source = Simulator.Source

type slot = {
  mutable id : int;
  mutable arrival : float;
  mutable size : float;
  mutable remaining : float;
}

type state = {
  budget : int;
  machines : int;
  speed : float;
  slots : slot array;  (* running jobs, packed in [0, n_run) *)
  mutable n_run : int;
  waiting : Heap.Scalar3.t;  (* key = remaining, aux = arrival, size, remaining *)
  fresh : Job.t Queue.t;  (* arrivals not yet processed by [refresh] *)
  evictions : (int, int) Hashtbl.t;
  mutable alive : int;
}

(* The waiting heap may be caller-supplied ({!budget_core} borrows it
   from the per-domain arena); {!create} allocates a fresh one for
   long-lived states like {!Live}. *)
let create_in ~waiting ~machines ~speed ~budget =
  if machines < 1 then invalid_arg "Budget_engine.create: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Budget_engine.create: speed must be finite and positive";
  (match Policy_class.validate (Policy_class.Preempt_budget { budget }) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Budget_engine.create: " ^ msg));
  {
    budget;
    machines;
    speed;
    slots = Array.init machines (fun _ -> { id = -1; arrival = 0.; size = 0.; remaining = 0. });
    n_run = 0;
    waiting;
    fresh = Queue.create ();
    evictions = Hashtbl.create 64;
    alive = 0;
  }

let create ~machines ~speed ~budget =
  create_in ~waiting:(Heap.Scalar3.create ()) ~machines ~speed ~budget

let alive st = st.alive

let threshold size = 1e-9 *. (1. +. size)

let admit st (j : Job.t) =
  Queue.push j st.fresh;
  st.alive <- st.alive + 1

let count st id = match Hashtbl.find_opt st.evictions id with Some c -> c | None -> 0

let push_waiting st ~id ~arrival ~size ~remaining =
  Heap.Scalar3.add st.waiting ~key:remaining ~aux1:arrival ~aux2:size ~aux3:remaining id

let pop_into_free_slot st =
  let arrival = Heap.Scalar3.min_aux1_exn st.waiting in
  let size = Heap.Scalar3.min_aux2_exn st.waiting in
  let remaining = Heap.Scalar3.min_aux3_exn st.waiting in
  let id = Heap.Scalar3.pop_exn st.waiting in
  let s = st.slots.(st.n_run) in
  s.id <- id;
  s.arrival <- arrival;
  s.size <- size;
  s.remaining <- remaining;
  st.n_run <- st.n_run + 1

(* Mirror of one [allocate] call: refill from the waiting set, then
   process buffered arrivals in admission order. *)
let refresh st ~now:_ =
  while st.n_run < st.machines && Heap.Scalar3.length st.waiting > 0 do
    pop_into_free_slot st
  done;
  while not (Queue.is_empty st.fresh) do
    let j = Queue.pop st.fresh in
    if st.n_run < st.machines then begin
      let s = st.slots.(st.n_run) in
      s.id <- j.Job.id;
      s.arrival <- j.arrival;
      s.size <- j.size;
      s.remaining <- j.size;
      st.n_run <- st.n_run + 1
    end
    else begin
      (* Weakest evictable incumbent under (remaining, id). *)
      let weak = ref (-1) in
      for i = 0 to st.n_run - 1 do
        let s = st.slots.(i) in
        if count st s.id < st.budget then
          match !weak with
          | -1 -> weak := i
          | w ->
              let sw = st.slots.(w) in
              if s.remaining > sw.remaining || (s.remaining = sw.remaining && s.id > sw.id)
              then weak := i
      done;
      match !weak with
      | -1 -> push_waiting st ~id:j.Job.id ~arrival:j.arrival ~size:j.size ~remaining:j.size
      | w ->
          let sw = st.slots.(w) in
          if j.Job.size < sw.remaining || (j.Job.size = sw.remaining && j.Job.id < sw.id)
          then begin
            push_waiting st ~id:sw.id ~arrival:sw.arrival ~size:sw.size ~remaining:sw.remaining;
            Hashtbl.replace st.evictions sw.id (count st sw.id + 1);
            sw.id <- j.Job.id;
            sw.arrival <- j.arrival;
            sw.size <- j.size;
            sw.remaining <- j.size
          end
          else push_waiting st ~id:j.Job.id ~arrival:j.arrival ~size:j.size ~remaining:j.size
    end
  done

(* The policy never emits a horizon: internal events are completions of
   the running set (rate 1 each). *)
let next_internal st ~now =
  let t = ref Float.infinity in
  for i = 0 to st.n_run - 1 do
    let c = now +. (st.slots.(i).remaining /. st.speed) in
    if c < !t then t := c
  done;
  !t

let advance st ~dt =
  let adv = st.speed *. dt in
  for i = 0 to st.n_run - 1 do
    let s = st.slots.(i) in
    s.remaining <- s.remaining -. adv
  done

let settle st ~now ~complete =
  for i = st.n_run - 1 downto 0 do
    let s = st.slots.(i) in
    if s.remaining <= threshold s.size then begin
      complete s.id s.arrival now;
      Hashtbl.remove st.evictions s.id;
      st.alive <- st.alive - 1;
      (* Pack the running prefix: swap the retiring slot with the last
         one.  Indices below [i] are untouched, so the downward sweep
         stays valid. *)
      let last = st.n_run - 1 in
      if i <> last then begin
        let l = st.slots.(last) in
        st.slots.(last) <- s;
        st.slots.(i) <- l
      end;
      st.n_run <- last
    end
  done

(* ------------------------------------------------------------------ *)
(* Closed event loop                                                   *)
(* ------------------------------------------------------------------ *)

let budget_core ~record_trace ~speed ~max_events ~machines ~budget ~(source : Source.t)
    ~(complete : int -> float -> float -> unit) =
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let st = create_in ~waiting:(Arena.scalar3_of scratch) ~machines ~speed ~budget in
  let next_arr = ref (Source.next_arrival source) in
  let max_alive = ref 0 in
  let admit_upto now =
    while !next_arr <= now do
      (match Source.next source with Some j -> admit st j | None -> ());
      next_arr := Source.next_arrival source
    done;
    if st.alive > !max_alive then max_alive := st.alive
  in
  let completed = ref 0 in
  let makespan = ref 0. in
  let events = ref 0 in
  let complete' id arrival t =
    complete id arrival t;
    incr completed;
    makespan := t
  in
  let trace_arena : Trace.segment Vec.t = Arena.segments_of scratch in
  let push_trace ~t0 ~t1 =
    let entries = Array.make st.alive { Trace.job = -1; arrival = 0.; rate = 0. } in
    let next = ref 0 in
    for i = 0 to st.n_run - 1 do
      let s = st.slots.(i) in
      entries.(!next) <- { Trace.job = s.id; arrival = s.arrival; rate = 1. };
      incr next
    done;
    Heap.Scalar3.iter
      (fun _key id arrival _size _remaining ->
        entries.(!next) <- { Trace.job = id; arrival; rate = 0. };
        incr next)
      st.waiting;
    Queue.iter
      (fun (j : Job.t) ->
        entries.(!next) <- { Trace.job = j.id; arrival = j.arrival; rate = 0. };
        incr next)
      st.fresh;
    Vec.push trace_arena { Trace.t0; t1; alive = entries }
  in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  admit_upto !now;
  while st.alive > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
    if st.alive = 0 then begin
      now := !next_arr;
      admit_upto !now
    end
    else begin
      refresh st ~now:!now;
      let t_next = ref (next_internal st ~now:!now) in
      if !next_arr < !t_next then t_next := !next_arr;
      if not (Float.is_finite !t_next) then
        raise
          (Simulator.Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then push_trace ~t0:!now ~t1:!t_next;
      advance st ~dt;
      now := !t_next;
      settle st ~now:!now ~complete:complete';
      admit_upto !now
    end
  done;
  ( {
      Simulator.n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    Vec.to_list trace_arena )

let no_sink : Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines ~budget jobs =
  let n = Simulator.validate_jobs jobs in
  let jobs_arr = Simulator.jobs_by_id jobs n in
  let order = Simulator.release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete id arrival now =
    completions.(id) <- now;
    sink ~id ~arrival ~flow:(now -. arrival)
  in
  let summary, trace =
    budget_core ~record_trace ~speed ~max_events ~machines ~budget
      ~source:(Source.of_array order) ~complete
  in
  {
    Simulator.jobs = jobs_arr;
    completions;
    trace;
    machines;
    speed;
    events = summary.Simulator.events;
  }

let run_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~budget ~sink pull =
  let complete id arrival now = sink ~id ~arrival ~flow:(now -. arrival) in
  let summary, _trace =
    budget_core ~record_trace:false ~speed ~max_events ~machines ~budget
      ~source:(Source.of_fn pull) ~complete
  in
  summary
