(** Exact event-driven simulation of rate-based schedules.

    The simulator advances continuous time from event to event: job
    arrivals, job completions, and policy-requested horizons.  Because all
    supported policies keep their allocation constant between events, the
    evolution of every job's remaining work is linear within a segment and
    the clock can be advanced analytically — completion times are exact up
    to floating-point rounding, with no time-step discretisation error.

    Two engines share the event semantics:

    - {!run} is the general engine: it invokes the policy at every event.
      Its loop is allocation-free in steady state — per-job views, the view
      array handed to the policy, and the trace arena are persistent
      buffers reused across events.
    - {!run_equal_share} is a closed-form engine for equal-share
      (processor-sharing) allocations, the paper's Round Robin: jobs
      complete in order of remaining work, tracked by a binary heap of
      virtual-service deadlines, with no policy invocation at all.  It
      agrees with [run ~policy:Round_robin.policy] up to floating-point
      rounding (within the completion-threshold semantics both engines
      share).

    Speed augmentation: a policy rate [m_j(t) in \[0,1\]] results in
    processing at rate [speed * m_j(t)], matching the [s]-speed analysis of
    the paper (RR is given [eta = 2k(1 + 10 eps)] speed in Theorem 1). *)

exception Invalid_allocation of string
(** Raised when a policy emits rates outside [\[0, 1\]], rates summing to
    more than the machine count, a horizon not in the future, or an
    allocation under which alive jobs can never make progress again — all
    genuine policy bugs. *)

exception Event_limit_exceeded of { limit : int; now : float }
(** Raised when a simulation exhausts its [max_events] budget at simulated
    time [now].  Distinct from {!Invalid_allocation}: the schedule was
    legal, the budget was just too small for the instance (or a policy
    emits pathologically short horizons). *)

type result = {
  jobs : Job.t array;  (** All jobs, indexed by job id. *)
  completions : float array;  (** Completion time [C_j], indexed by job id. *)
  trace : Trace.t;  (** Piecewise-constant trace; [\[\]] unless recorded. *)
  machines : int;
  speed : float;
  events : int;  (** Number of simulation events processed. *)
}

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  policy:Policy.t ->
  Job.t list ->
  result
(** [run ~machines ~policy jobs] simulates [policy] on [jobs] until every
    job completes.

    @param record_trace keep the full segment trace (default [false]; the
      dual-fitting verifier and fairness time series need it).
    @param speed resource augmentation factor, default [1.].
    @param max_events safety bound on the number of events (default
      [10_000_000]); exceeding it raises {!Event_limit_exceeded}.
    @raise Invalid_argument when job ids are not exactly [0 .. n-1], when
      [machines < 1], or when [speed] is not finite and positive. *)

val run_equal_share :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  Job.t list ->
  result
(** [run_equal_share ~machines jobs] simulates the equal-share allocation
    [min(1, machines/alive)] — Round Robin's fluid schedule — computing the
    full cascade of completions analytically in O((n + events) log alive).
    Flow times agree with [run ~policy:Rr_policies.Round_robin.policy] up
    to floating-point rounding; traces carry the same segments (entry order
    within a segment may differ).  Parameters and errors as in {!run}. *)

val flows : result -> float array
(** Flow times [F_j = C_j - r_j], indexed by job id. *)

val total_flow : result -> float
(** Compensated sum of all flow times (the l1 objective, unrooted). *)
