(** Exact event-driven simulation of rate-based schedules.

    The simulator advances continuous time from event to event: job
    arrivals, job completions, and policy-requested horizons.  Because all
    supported policies keep their allocation constant between events, the
    evolution of every job's remaining work is linear within a segment and
    the clock can be advanced analytically — completion times are exact up
    to floating-point rounding, with no time-step discretisation error.

    Two engines share the event semantics:

    - {!run} is the general engine: it invokes the policy at every event.
      Its loop is allocation-free in steady state — per-job views, the view
      array handed to the policy, and the trace arena are persistent
      buffers reused across events.
    - {!run_equal_share} is a closed-form engine for equal-share
      (processor-sharing) allocations, the paper's Round Robin: jobs
      complete in order of remaining work, tracked by a binary heap of
      virtual-service deadlines, with no policy invocation at all.  It
      agrees with [run ~policy:Round_robin.policy] up to floating-point
      rounding (within the completion-threshold semantics both engines
      share).

    Both engines consume arrivals through the peekable {!Source} interface
    and report completions through a {!sink}, so the same event loops
    drive two shapes of entry point:

    - the {e materialized} entry points ({!run}, {!run_equal_share}) take a
      job list, return the full {!result} with per-job completion times,
      and additionally feed an optional [?sink];
    - the {e streaming} entry points ({!run_stream},
      {!run_equal_share_stream}) take a pull function, feed every
      completion to a mandatory [~sink], and return only a {!summary} —
      live memory is O(alive jobs), independent of how many jobs the
      source produces, so million- to ten-million-job instances run in a
      constant-size heap.

    Speed augmentation: a policy rate [m_j(t) in \[0,1\]] results in
    processing at rate [speed * m_j(t)], matching the [s]-speed analysis of
    the paper (RR is given [eta = 2k(1 + 10 eps)] speed in Theorem 1). *)

exception Invalid_allocation of string
(** Raised when a policy emits rates outside [\[0, 1\]], rates summing to
    more than the machine count, a horizon not in the future, or an
    allocation under which alive jobs can never make progress again — all
    genuine policy bugs. *)

exception Event_limit_exceeded of { limit : int; now : float }
(** Raised when a simulation exhausts its [max_events] budget at simulated
    time [now].  Distinct from {!Invalid_allocation}: the schedule was
    legal, the budget was just too small for the instance (or a policy
    emits pathologically short horizons). *)

type sink = id:int -> arrival:float -> flow:float -> unit
(** A completion consumer: called once per job, at the simulated moment the
    job completes (so in non-decreasing completion-time order), with the
    job's id, release time, and flow time.  The flow vector of the
    materialized API is just one possible sink; the incremental folds of
    [Rr_metrics.Sink] are others. *)

(** Peekable arrival streams — the one interface both engines pull jobs
    through.  {!Source.of_array} adapts the sorted-array path of the
    materialized entry points; lazy generators ([Rr_workload]
    [Instance.Stream]) provide the same pull function without ever
    materializing a job list.  Jobs must be produced in non-decreasing
    arrival order (checked; [Invalid_argument] otherwise) with distinct
    ids (trusted). *)
module Source : sig
  type t

  type cursor = { mutable arrival : float; mutable size : float }
  (** Unboxed one-job handoff slot for {!of_raw} producers.  All-float,
      so its representation is flat and writing the fields never
      allocates. *)

  val of_fn : (unit -> Job.t option) -> t
  (** Wrap a pull function; [None] means the stream is exhausted (and is
      then never pulled again). *)

  val of_raw : (cursor -> int) -> t
  (** Wrap an unboxed pull function: [fill cur] writes the next job's
      arrival and size into [cur] and returns its id, or returns [-1]
      (leaving [cur] alone) when the stream is exhausted — after which it
      is never called again.  The producer never builds a [Job.t], so a
      streaming run over a raw source allocates nothing per job.  The
      same validity and monotonicity checks as {!of_fn} apply. *)

  val of_array : Job.t array -> t
  (** Stream an array in index order (the caller sorts by release). *)

  val peek : t -> Job.t option
  (** Next job without consuming it. *)

  val next : t -> Job.t option
  (** Consume and return the next job. *)

  val next_arrival : t -> float
  (** Arrival time of {!peek}'s job; [infinity] when exhausted. *)

  val has_more : t -> bool
end

type result = {
  jobs : Job.t array;  (** All jobs, indexed by job id. *)
  completions : float array;  (** Completion time [C_j], indexed by job id. *)
  trace : Trace.t;  (** Piecewise-constant trace; [\[\]] unless recorded. *)
  machines : int;
  speed : float;
  events : int;  (** Number of simulation events processed. *)
}

type summary = {
  n : int;  (** Jobs completed. *)
  events : int;  (** Simulation events processed. *)
  machines : int;
  speed : float;
  makespan : float;  (** Last completion time; [0.] when no job completed. *)
  max_alive : int;  (** Peak number of simultaneously alive jobs. *)
}
(** What a streaming run returns: everything per-job went through the sink,
    so only O(1) aggregates remain.  [max_alive] documents the live-memory
    high-water mark — streaming runs allocate O(max_alive), not O(n). *)

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:sink ->
  machines:int ->
  policy:Policy.t ->
  Job.t list ->
  result
(** [run ~machines ~policy jobs] simulates [policy] on [jobs] until every
    job completes.

    @param record_trace keep the full segment trace (default [false]; the
      dual-fitting verifier and fairness time series need it).
    @param speed resource augmentation factor, default [1.].
    @param max_events safety bound on the number of events (default
      [10_000_000]); exceeding it raises {!Event_limit_exceeded}.
    @param sink additionally receives every completion as it happens
      (default: none).
    @raise Invalid_argument when job ids are not exactly [0 .. n-1], when
      [machines < 1], or when [speed] is not finite and positive. *)

val run_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  policy:Policy.t ->
  sink:sink ->
  (unit -> Job.t option) ->
  summary
(** [run_stream ~machines ~policy ~sink pull] simulates [policy] on the
    jobs produced by [pull], feeding each completion to [sink]; live
    memory is O(alive), independent of the total job count.  [pull] must
    produce jobs in non-decreasing arrival order with distinct ids.
    Parameters and errors as in {!run} (no trace in streaming mode). *)

val run_equal_share :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:sink ->
  machines:int ->
  Job.t list ->
  result
(** [run_equal_share ~machines jobs] simulates the equal-share allocation
    [min(1, machines/alive)] — Round Robin's fluid schedule — computing the
    full cascade of completions analytically in O((n + events) log alive).
    Flow times agree with [run ~policy:Rr_policies.Round_robin.policy] up
    to floating-point rounding; traces carry the same segments (entry order
    within a segment may differ).  Parameters and errors as in {!run}. *)

val run_equal_share_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  sink:sink ->
  (unit -> Job.t option) ->
  summary
(** Streaming counterpart of {!run_equal_share}: the deadline heap (with
    each job's arrival and size as satellites) is the {e entire} live
    state, so a 10M-job instance runs in O(max alive) heap.  [pull] as in
    {!run_stream}. *)

val run_equal_share_stream_raw :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  sink:sink ->
  (Source.cursor -> int) ->
  summary
(** Like {!run_equal_share_stream} but over an unboxed {!Source.of_raw}
    producer: the source hands over (id, arrival, size) through a flat
    cursor instead of a [Job.t option], which removes the last per-job
    allocation from the equal-share streaming path.  Combined with the
    per-domain scratch {!Arena} this entry point runs at ~0 words
    allocated per job in steady state (the B4 benchmark gate). *)

val flows : result -> float array
(** Flow times [F_j = C_j - r_j], indexed by job id. *)

val total_flow : result -> float
(** Compensated sum of all flow times (the l1 objective, unrooted). *)

(** {2 Plumbing shared with sibling engines}

    The priority-index engines of {!Index_engine} reuse the exact same
    input validation, ordering, and completion semantics as the two
    engines here, so a differential test that agrees is comparing event
    loops, never bookkeeping. *)

val completion_threshold : float -> float
(** [completion_threshold size = 1e-9 *. (1. +. size)] — a job counts as
    complete when its residual work is at most this; the threshold
    absorbs the rounding of the analytic advance and is shared by every
    engine so they agree on what "finished" means. *)

val validate_jobs : Job.t list -> int
(** Check ids are exactly [0 .. n-1] without duplicates; return [n].
    @raise Invalid_argument otherwise. *)

val jobs_by_id : Job.t list -> int -> Job.t array
(** Jobs indexed by id (the [jobs] field of {!result}). *)

val release_order : Job.t list -> int -> Job.t array
(** Jobs sorted by [(arrival, id)], skipping the sort when the list is
    already ordered (instances hand jobs over sorted).  The result is
    memoized for the most recent list (by physical equality) and may be
    shared between calls — treat it as read-only. *)
