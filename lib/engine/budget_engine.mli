(** Preemption-budget SRPT kernel ({!Policy_class.Preempt_budget}):
    SRPT, except each job may be evicted from a machine at most [budget]
    times; an incumbent at its budget is immune and runs to completion.
    [budget = 0] is non-preemptive SRPT; a large budget is plain SRPT.

    The rule is history-dependent, so the kernel replays the mirror
    policy's transition order exactly (completions free machines, the
    waiting set refills them before same-instant arrivals are
    considered, arrivals challenge the weakest evictable incumbent).
    Each event costs O(m + log alive). *)

(** {2 Incremental primitives} (driven by the {!Live} engine; the state
    contains no closures, so snapshots can [Marshal] it) *)

type state

val create : machines:int -> speed:float -> budget:int -> state
(** @raise Invalid_argument on non-positive machines or speed, or a
    negative budget. *)

val alive : state -> int

val admit : state -> Job.t -> unit
(** Buffer a released job (in non-decreasing arrival order, distinct
    ids); the next {!refresh} processes it after refilling from the
    waiting set. *)

val refresh : state -> now:float -> unit
(** Mirror of one [allocate] call.  Run exactly once per event, after
    {!settle} and admissions. *)

val next_internal : state -> now:float -> float
val advance : state -> dt:float -> unit
val settle : state -> now:float -> complete:(int -> float -> float -> unit) -> unit

(** {2 Closed runs} *)

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  machines:int ->
  budget:int ->
  Job.t list ->
  Simulator.result
(** Same contract as {!Simulator.run}. *)

val run_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  budget:int ->
  sink:Simulator.sink ->
  (unit -> Job.t option) ->
  Simulator.summary
