exception Invalid_allocation of string

exception Event_limit_exceeded of { limit : int; now : float }

let () =
  Printexc.register_printer (function
    | Event_limit_exceeded { limit; now } ->
        Some
          (Printf.sprintf
             "Rr_engine.Simulator.Event_limit_exceeded (budget %d exhausted at t = %g)" limit now)
    | _ -> None)

type live = {
  job : Job.t;
  mutable remaining : float;
  mutable attained : float;
  view : Policy.view;  (* persistent; mutable fields refreshed in place *)
}

type result = {
  jobs : Job.t array;
  completions : float array;
  trace : Trace.t;
  machines : int;
  speed : float;
  events : int;
}

let validate_jobs jobs =
  let n = List.length jobs in
  let seen = Array.make n false in
  List.iter
    (fun (j : Job.t) ->
      if j.id >= n || seen.(j.id) then
        invalid_arg "Simulator.run: job ids must be exactly 0 .. n-1, without duplicates";
      seen.(j.id) <- true)
    jobs;
  n

(* A job counts as complete when its residual work is negligible relative to
   its size; the threshold absorbs the rounding of the analytic advance. *)
let completion_threshold size = 1e-9 *. (1. +. size)

let done_threshold (l : live) = completion_threshold l.job.size

let jobs_by_id jobs n =
  let slots = Array.make n None in
  List.iter (fun (j : Job.t) -> slots.(j.id) <- Some j) jobs;
  Array.map (function Some j -> j | None -> assert false) slots

(* Instances hand their jobs over already ordered by (arrival, id); detect
   that in one linear pass and skip the O(n log n) sort — for short
   simulations the sort is a large slice of the whole run. *)
let release_order jobs n =
  let order = Array.of_list jobs in
  let sorted = ref true in
  for i = 0 to n - 2 do
    if Job.compare_release order.(i) order.(i + 1) > 0 then sorted := false
  done;
  if not !sorted then Array.sort Job.compare_release order;
  order

let validate_decision ~machines ~now ~n_alive (d : Policy.decision) =
  if Array.length d.rates <> n_alive then
    raise (Invalid_allocation "rate vector length differs from the number of alive jobs");
  let sum = ref 0. in
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) then raise (Invalid_allocation "non-finite rate");
      if r < -1e-9 || r > 1. +. 1e-9 then
        raise (Invalid_allocation (Printf.sprintf "rate %g outside [0, 1]" r));
      d.rates.(i) <- Rr_util.Floatx.clamp ~lo:0. ~hi:1. r;
      sum := !sum +. d.rates.(i))
    d.rates;
  if !sum > Float.of_int machines +. 1e-6 then
    raise
      (Invalid_allocation
         (Printf.sprintf "rates sum to %g > %d machines" !sum machines));
  match d.horizon with
  | Some h when not (h > now) ->
      raise (Invalid_allocation (Printf.sprintf "horizon %g not after now = %g" h now))
  | _ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ~machines
    ~(policy : Policy.t) jobs =
  if machines < 1 then invalid_arg "Simulator.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Simulator.run: speed must be finite and positive";
  let n = validate_jobs jobs in
  let jobs_arr = jobs_by_id jobs n in
  let order = release_order jobs n in
  let completions = Array.make n Float.nan in
  let pending = ref 0 in
  let clairvoyant = policy.clairvoyant in
  (* Alive jobs in a swap-remove vector; policy views follow this order.
     Each live job owns one view record for its whole lifetime: only the
     mutable fields change between events, so the steady-state loop
     allocates no views.  (For clairvoyant policies the [remaining] option
     cell is still reboxed per job per event — two words, against the
     seven-word view record plus two option cells it replaces.) *)
  let alive : live Rr_util.Vec.t = Rr_util.Vec.create () in
  let push_alive (j : Job.t) =
    let view =
      {
        Policy.id = j.id;
        arrival = j.arrival;
        attained = 0.;
        size = (if clairvoyant then Some j.size else None);
        remaining = (if clairvoyant then Some j.size else None);
      }
    in
    Rr_util.Vec.push alive { job = j; remaining = j.size; attained = 0.; view }
  in
  let admit_upto now =
    while !pending < n && order.(!pending).arrival <= now do
      push_alive order.(!pending);
      incr pending
    done
  in
  (* Scratch array handed to the policy.  It must have length exactly
     [n_alive] (policies measure it), so it is reallocated only when the
     alive count changes; otherwise the persistent view records are
     re-pointed into it — a copy, not an allocation. *)
  let views_scratch = ref [||] in
  let sync_views n_alive =
    if Array.length !views_scratch <> n_alive then
      views_scratch := Array.init n_alive (fun i -> (Rr_util.Vec.get alive i).view)
    else begin
      let vs = !views_scratch in
      for i = 0 to n_alive - 1 do
        vs.(i) <- (Rr_util.Vec.get alive i).view
      done
    end;
    !views_scratch
  in
  (* Trace arena: segments accumulate in a growable buffer and are flushed
     to the list representation once, instead of cons-and-reverse. *)
  let trace_arena : Trace.segment Rr_util.Vec.t = Rr_util.Vec.create () in
  let events = ref 0 in
  let now = ref (if n > 0 then order.(0).arrival else 0.) in
  admit_upto !now;
  while Rr_util.Vec.length alive > 0 || !pending < n do
    incr events;
    if !events > max_events then
      raise (Event_limit_exceeded { limit = max_events; now = !now });
    if Rr_util.Vec.length alive = 0 then begin
      (* Idle period: jump straight to the next arrival. *)
      now := order.(!pending).arrival;
      admit_upto !now
    end
    else begin
      let n_alive = Rr_util.Vec.length alive in
      for i = 0 to n_alive - 1 do
        let l = Rr_util.Vec.get alive i in
        let v = l.view in
        v.attained <- l.attained;
        if clairvoyant then v.remaining <- Some l.remaining
      done;
      let views = sync_views n_alive in
      let decision = policy.allocate ~now:!now ~machines ~speed views in
      validate_decision ~machines ~now:!now ~n_alive decision;
      let rates = decision.rates in
      let next_arrival = if !pending < n then Some order.(!pending).arrival else None in
      (* Earliest analytic completion under the current constant rates,
         folded inline.  Rates are fresh every event, so any heap over
         completion times would be rebuilt from scratch per event and lose
         to this single O(alive) pass; the heap-ordered cascade lives in
         {!run_equal_share}, where rates are a function of the count alone. *)
      let t_next = ref Float.infinity in
      for i = 0 to n_alive - 1 do
        let v = rates.(i) *. speed in
        if v > 0. then begin
          let c = !now +. ((Rr_util.Vec.get alive i).remaining /. v) in
          if c < !t_next then t_next := c
        end
      done;
      (match next_arrival with Some a when a < !t_next -> t_next := a | _ -> ());
      (match decision.horizon with Some h when h < !t_next -> t_next := h | _ -> ());
      if not (Float.is_finite !t_next) then
        raise
          (Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then begin
        let entries =
          Array.init n_alive (fun i ->
              let l = Rr_util.Vec.get alive i in
              { Trace.job = l.job.id; arrival = l.job.arrival; rate = rates.(i) })
        in
        Rr_util.Vec.push trace_arena { Trace.t0 = !now; t1 = !t_next; alive = entries }
      end;
      for i = 0 to n_alive - 1 do
        let l = Rr_util.Vec.get alive i in
        let delta = rates.(i) *. speed *. dt in
        l.remaining <- l.remaining -. delta;
        l.attained <- l.attained +. delta
      done;
      now := !t_next;
      (* Retire finished jobs; iterate downwards because of swap-remove. *)
      for i = n_alive - 1 downto 0 do
        let l = Rr_util.Vec.get alive i in
        if l.remaining <= done_threshold l then begin
          completions.(l.job.id) <- !now;
          Rr_util.Vec.swap_remove alive i
        end
      done;
      admit_upto !now
    end
  done;
  {
    jobs = jobs_arr;
    completions;
    trace = Rr_util.Vec.to_list trace_arena;
    machines;
    speed;
    events = !events;
  }

(* ------------------------------------------------------------------ *)
(* Closed-form equal-share (processor-sharing) engine                  *)
(* ------------------------------------------------------------------ *)

(* Under an equal-share policy every alive job is served at the same
   instantaneous rate [min(1, m/n) * speed], a function of the alive count
   alone.  Let V(t) be the cumulative service each alive job has received
   ("virtual service"): a job admitted when the clock read [V_a] completes
   exactly when V reaches its deadline [V_a + size].  Jobs therefore
   complete in deadline order, so a single binary heap of deadlines
   ({!Rr_util.Heap.Scalar}, keyed on the deadline with the job id as
   payload) replaces the per-event policy invocation and O(alive) scans of
   the general engine: each arrival or completion costs O(log alive), the
   whole run O((n + events) log alive), with no allocation per event. *)

let run_equal_share ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000)
    ~machines jobs =
  if machines < 1 then invalid_arg "Simulator.run_equal_share: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Simulator.run_equal_share: speed must be finite and positive";
  let n = validate_jobs jobs in
  let jobs_arr = jobs_by_id jobs n in
  let order = release_order jobs n in
  let completions = Array.make n Float.nan in
  let pending = ref 0 in
  let heap = Rr_util.Heap.Scalar.create () in
  let vsrv = ref 0. in
  (* Roster of alive jobs, maintained only for trace recording; [pos]
     tracks each job's slot so completions remove in O(1). *)
  let roster : Job.t Rr_util.Vec.t = Rr_util.Vec.create () in
  let pos = if record_trace then Array.make (Int.max n 1) (-1) else [||] in
  let admit (j : Job.t) =
    Rr_util.Heap.Scalar.add heap ~key:(!vsrv +. j.size) j.id;
    if record_trace then begin
      pos.(j.id) <- Rr_util.Vec.length roster;
      Rr_util.Vec.push roster j
    end
  in
  let drop id =
    if record_trace then begin
      let i = pos.(id) in
      let last = Rr_util.Vec.length roster - 1 in
      let moved = Rr_util.Vec.get roster last in
      Rr_util.Vec.swap_remove roster i;
      if i < last then pos.(moved.id) <- i;
      pos.(id) <- -1
    end
  in
  let admit_upto now =
    while !pending < n && order.(!pending).arrival <= now do
      admit order.(!pending);
      incr pending
    done
  in
  let trace_arena : Trace.segment Rr_util.Vec.t = Rr_util.Vec.create () in
  let events = ref 0 in
  let now = ref (if n > 0 then order.(0).arrival else 0.) in
  admit_upto !now;
  while Rr_util.Heap.Scalar.length heap > 0 || !pending < n do
    incr events;
    if !events > max_events then
      raise (Event_limit_exceeded { limit = max_events; now = !now });
    if Rr_util.Heap.Scalar.is_empty heap then begin
      now := order.(!pending).arrival;
      admit_upto !now
    end
    else begin
      let n_alive = Rr_util.Heap.Scalar.length heap in
      let share = Float.min 1. (Float.of_int machines /. Float.of_int n_alive) in
      let rate = share *. speed in
      let t_complete =
        !now +. ((Rr_util.Heap.Scalar.min_key_exn heap -. !vsrv) /. rate)
      in
      (* Completion wins a tie with an arrival, exactly like the general
         engine's [a < t_next] guard. *)
      let next_arrival = if !pending < n then order.(!pending).arrival else Float.infinity in
      let is_completion = not (next_arrival < t_complete) in
      let t_next = if is_completion then t_complete else next_arrival in
      let dt = t_next -. !now in
      assert (dt > 0.);
      if record_trace then begin
        let entries =
          Array.init (Rr_util.Vec.length roster) (fun i ->
              let j = Rr_util.Vec.get roster i in
              { Trace.job = j.id; arrival = j.arrival; rate = share })
        in
        Rr_util.Vec.push trace_arena { Trace.t0 = !now; t1 = t_next; alive = entries }
      end;
      vsrv := !vsrv +. (rate *. dt);
      now := t_next;
      if is_completion then begin
        (* The head's deadline defined this event time; retire it even if
           rounding left [vsrv] an ulp short of the deadline. *)
        let id = Rr_util.Heap.Scalar.pop_exn heap in
        completions.(id) <- !now;
        drop id
      end;
      (* Cascade every job whose residual virtual service is within the
         completion threshold of this instant (simultaneous completions,
         and arrivals landing exactly on a completion). *)
      while
        (not (Rr_util.Heap.Scalar.is_empty heap))
        &&
        let id = Rr_util.Heap.Scalar.min_val_exn heap in
        Rr_util.Heap.Scalar.min_key_exn heap -. !vsrv
        <= completion_threshold jobs_arr.(id).size
      do
        let id = Rr_util.Heap.Scalar.pop_exn heap in
        completions.(id) <- !now;
        drop id
      done;
      admit_upto !now
    end
  done;
  {
    jobs = jobs_arr;
    completions;
    trace = Rr_util.Vec.to_list trace_arena;
    machines;
    speed;
    events = !events;
  }

let flows r = Array.mapi (fun i c -> c -. r.jobs.(i).Job.arrival) r.completions

let total_flow r = Rr_util.Kahan.sum (flows r)
