exception Invalid_allocation of string

exception Event_limit_exceeded of { limit : int; now : float }

let () =
  Printexc.register_printer (function
    | Event_limit_exceeded { limit; now } ->
        Some
          (Printf.sprintf
             "Rr_engine.Simulator.Event_limit_exceeded (budget %d exhausted at t = %g)" limit now)
    | _ -> None)

type sink = id:int -> arrival:float -> flow:float -> unit

(* ------------------------------------------------------------------ *)
(* Arrival sources                                                     *)
(* ------------------------------------------------------------------ *)

(* Both engines consume arrivals through this one-job-lookahead interface:
   the sorted-array path of {!run}/{!run_equal_share} and the lazy
   generators of {!Rr_workload} [Instance.Stream] implement the same pull
   function, so "how many jobs exist" is independent of the event loop.
   Validity and monotonicity are enforced at the boundary — a source that
   emits a job released before its predecessor is a bug in the producer,
   caught here rather than as silent time travel inside the loop.

   The lookahead is stored {e unboxed}: the head job lives as an int id
   plus a flat all-float cursor record, not as a [Job.t option].  Raw
   producers ({!of_raw}) write the cursor fields directly and never
   construct a [Job.t] at all, which is what lets the equal-share
   streaming path run at ~0 words per job; the boxed [peek]/[next] view
   is memoized on top for the engines that want whole jobs. *)
module Source = struct
  type cursor = { mutable arrival : float; mutable size : float }
  (* All-float record: flat representation, so field writes never box. *)

  type t = {
    refill : t -> int;
        (* Write the next job into [cur] and return its id, or -1 when
           exhausted (then never called again).  May stash a [Job.t] in
           [head_job] when it has one anyway. *)
    cur : cursor;
    mutable head_id : int;  (* -1 = no job buffered *)
    mutable head_job : Job.t option;  (* boxed memo of the buffered job *)
    mutable last_arrival : float;
    mutable drained : bool;
  }

  let make refill =
    {
      refill;
      cur = { arrival = 0.; size = 0. };
      head_id = -1;
      head_job = None;
      last_arrival = Float.neg_infinity;
      drained = false;
    }

  let of_raw fill = make (fun t -> fill t.cur)

  let of_fn pull =
    make (fun t ->
        match pull () with
        | None -> -1
        | Some j ->
            t.cur.arrival <- j.Job.arrival;
            t.cur.size <- j.Job.size;
            t.head_job <- Some j;
            j.Job.id)

  let of_array jobs =
    let i = ref 0 in
    make (fun t ->
        if !i >= Array.length jobs then -1
        else begin
          let j = jobs.(!i) in
          incr i;
          t.cur.arrival <- j.Job.arrival;
          t.cur.size <- j.Job.size;
          t.head_job <- Some j;
          j.Job.id
        end)

  (* Cold-ish: once per job, never per event.  Validation mirrors
     [Job.make] so raw producers get the same guarantees as boxed ones. *)
  let refill_head t =
    let id = t.refill t in
    if id < 0 then begin
      t.drained <- true;
      t.head_job <- None
    end
    else begin
      if not (Float.is_finite t.cur.arrival && t.cur.arrival >= 0.) then
        invalid_arg
          (Printf.sprintf "Simulator.Source: job #%d has invalid arrival %g" id t.cur.arrival);
      if not (Float.is_finite t.cur.size && t.cur.size > 0.) then
        invalid_arg
          (Printf.sprintf "Simulator.Source: job #%d has invalid size %g" id t.cur.size);
      if t.cur.arrival < t.last_arrival then
        invalid_arg
          (Printf.sprintf
             "Simulator.Source: arrivals must be non-decreasing (job #%d at %g after %g)" id
             t.cur.arrival t.last_arrival);
      t.last_arrival <- t.cur.arrival;
      t.head_id <- id
    end

  let[@inline] fill t = if t.head_id < 0 && not t.drained then refill_head t

  let[@inline] has_more t =
    fill t;
    t.head_id >= 0

  let[@inline] next_arrival t =
    fill t;
    if t.head_id >= 0 then t.cur.arrival else Float.infinity

  (* Raw view of the buffered job; valid only after [has_more] returned
     [true] (or [fill]).  These are plain field reads once inlined. *)
  let[@inline] head_id t = t.head_id
  let[@inline] head_arrival t = t.cur.arrival
  let[@inline] head_size t = t.cur.size

  let[@inline] advance t =
    t.head_id <- -1;
    t.head_job <- None

  (* Boxed view: memoized, so producers that hand over whole jobs
     ([of_fn]/[of_array]) never re-box and raw producers box at most once
     per job — and only if somebody peeks. *)
  let peek t =
    fill t;
    if t.head_id < 0 then None
    else
      match t.head_job with
      | Some _ as h -> h
      | None ->
          let h = Some (Job.make ~id:t.head_id ~arrival:t.cur.arrival ~size:t.cur.size) in
          t.head_job <- h;
          h

  let next t =
    match peek t with
    | None -> None
    | Some _ as h ->
        advance t;
        h
end

type live = {
  job : Job.t;
  mutable remaining : float;
  mutable attained : float;
  view : Policy.view;  (* persistent; mutable fields refreshed in place *)
}

type result = {
  jobs : Job.t array;
  completions : float array;
  trace : Trace.t;
  machines : int;
  speed : float;
  events : int;
}

type summary = {
  n : int;
  events : int;
  machines : int;
  speed : float;
  makespan : float;
  max_alive : int;
}

let validate_jobs jobs =
  let n = List.length jobs in
  let seen = Array.make n false in
  List.iter
    (fun (j : Job.t) ->
      if j.id >= n || seen.(j.id) then
        invalid_arg "Simulator.run: job ids must be exactly 0 .. n-1, without duplicates";
      seen.(j.id) <- true)
    jobs;
  n

(* A job counts as complete when its residual work is negligible relative to
   its size; the threshold absorbs the rounding of the analytic advance. *)
let[@inline] completion_threshold size = 1e-9 *. (1. +. size)

let done_threshold (l : live) = completion_threshold l.job.size

let jobs_by_id jobs n =
  let slots = Array.make n None in
  List.iter (fun (j : Job.t) -> slots.(j.id) <- Some j) jobs;
  Array.map (function Some j -> j | None -> assert false) slots

(* Instances hand their jobs over already ordered by (arrival, id); detect
   that in one linear pass and skip the O(n log n) sort — for short
   simulations the sort is a large slice of the whole run.

   The result is memoized for the most recent job list (compared by
   physical equality — [Instance.jobs] returns the same list each call),
   so back-to-back runs over one instance, the common shape of every
   ratio experiment, pay the list walk once.  Jobs are immutable and all
   engines only read the array, which is what makes sharing it sound; the
   memo holds an immutable pair so concurrent domains at worst recompute. *)
let release_memo : (Job.t list * Job.t array) ref = ref ([], [||])

let release_order jobs n =
  let js, ord = !release_memo in
  if js == jobs && Array.length ord = n then ord
  else begin
    let order = Array.of_list jobs in
    let sorted = ref true in
    for i = 0 to n - 2 do
      if Job.compare_release order.(i) order.(i + 1) > 0 then sorted := false
    done;
    if not !sorted then Array.sort Job.compare_release order;
    release_memo := (jobs, order);
    order
  end

let validate_decision ~machines ~now ~n_alive (d : Policy.decision) =
  if Array.length d.rates <> n_alive then
    raise (Invalid_allocation "rate vector length differs from the number of alive jobs");
  let sum = ref 0. in
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) then raise (Invalid_allocation "non-finite rate");
      if r < -1e-9 || r > 1. +. 1e-9 then
        raise (Invalid_allocation (Printf.sprintf "rate %g outside [0, 1]" r));
      d.rates.(i) <- Rr_util.Floatx.clamp ~lo:0. ~hi:1. r;
      sum := !sum +. d.rates.(i))
    d.rates;
  if !sum > Float.of_int machines +. 1e-6 then
    raise
      (Invalid_allocation
         (Printf.sprintf "rates sum to %g > %d machines" !sum machines));
  match d.horizon with
  | Some h when not (h > now) ->
      raise (Invalid_allocation (Printf.sprintf "horizon %g not after now = %g" h now))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* General engine: one policy invocation per event                     *)
(* ------------------------------------------------------------------ *)

(* The core loop is shared by the materialized and the streaming entry
   points: it never sees the job count, only the source's one-job
   lookahead, and reports each completion through [complete].  Live state
   is O(alive): the swap-remove vector of live jobs, the views scratch
   array, and (only when requested) the trace arena. *)
let general_core ~record_trace ~speed ~max_events ~machines ~(policy : Policy.t)
    ~(source : Source.t) ~(complete : Job.t -> float -> unit) =
  if machines < 1 then invalid_arg "Simulator.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Simulator.run: speed must be finite and positive";
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let clairvoyant = policy.clairvoyant in
  (* Alive jobs in a swap-remove vector; policy views follow this order.
     Each live job owns one view record for its whole lifetime: only the
     mutable fields change between events, so the steady-state loop
     allocates no views.  (For clairvoyant policies the [remaining] option
     cell is still reboxed per job per event — two words, against the
     seven-word view record plus two option cells it replaces.) *)
  let alive : live Rr_util.Vec.t = Rr_util.Vec.create () in
  let completed = ref 0 in
  let max_alive = ref 0 in
  let makespan = ref 0. in
  let push_alive (j : Job.t) =
    let view =
      {
        Policy.id = j.id;
        arrival = j.arrival;
        attained = 0.;
        size = (if clairvoyant then Some j.size else None);
        remaining = (if clairvoyant then Some j.size else None);
      }
    in
    Rr_util.Vec.push alive { job = j; remaining = j.size; attained = 0.; view };
    if Rr_util.Vec.length alive > !max_alive then max_alive := Rr_util.Vec.length alive
  in
  let admit_upto now =
    let continue = ref true in
    while !continue do
      match Source.peek source with
      | Some j when j.Job.arrival <= now ->
          ignore (Source.next source);
          push_alive j
      | _ -> continue := false
    done
  in
  (* Scratch array handed to the policy.  It must have length exactly
     [n_alive] (policies measure it), so it is reallocated only when the
     alive count changes; otherwise the persistent view records are
     re-pointed into it — a copy, not an allocation. *)
  let views_scratch = ref [||] in
  let sync_views n_alive =
    if Array.length !views_scratch <> n_alive then
      views_scratch := Array.init n_alive (fun i -> (Rr_util.Vec.get alive i).view)
    else begin
      let vs = !views_scratch in
      for i = 0 to n_alive - 1 do
        vs.(i) <- (Rr_util.Vec.get alive i).view
      done
    end;
    !views_scratch
  in
  (* Trace arena: segments accumulate in a growable buffer (borrowed from
     the per-domain arena when available) and are flushed to the list
     representation once, instead of cons-and-reverse. *)
  let trace_arena : Trace.segment Rr_util.Vec.t = Arena.segments_of scratch in
  let events = ref 0 in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  admit_upto !now;
  while Rr_util.Vec.length alive > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Event_limit_exceeded { limit = max_events; now = !now });
    if Rr_util.Vec.length alive = 0 then begin
      (* Idle period: jump straight to the next arrival. *)
      now := Source.next_arrival source;
      admit_upto !now
    end
    else begin
      let n_alive = Rr_util.Vec.length alive in
      for i = 0 to n_alive - 1 do
        let l = Rr_util.Vec.get alive i in
        let v = l.view in
        v.attained <- l.attained;
        if clairvoyant then v.remaining <- Some l.remaining
      done;
      let views = sync_views n_alive in
      let decision = policy.allocate ~now:!now ~machines ~speed views in
      validate_decision ~machines ~now:!now ~n_alive decision;
      let rates = decision.rates in
      let next_arrival = Source.next_arrival source in
      (* Earliest analytic completion under the current constant rates,
         folded inline.  Rates are fresh every event, so any heap over
         completion times would be rebuilt from scratch per event and lose
         to this single O(alive) pass; the heap-ordered cascade lives in
         {!run_equal_share}, where rates are a function of the count alone. *)
      let t_next = ref Float.infinity in
      for i = 0 to n_alive - 1 do
        let v = rates.(i) *. speed in
        if v > 0. then begin
          let c = !now +. ((Rr_util.Vec.get alive i).remaining /. v) in
          if c < !t_next then t_next := c
        end
      done;
      if next_arrival < !t_next then t_next := next_arrival;
      (match decision.horizon with Some h when h < !t_next -> t_next := h | _ -> ());
      if not (Float.is_finite !t_next) then
        raise
          (Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then begin
        let entries =
          Array.init n_alive (fun i ->
              let l = Rr_util.Vec.get alive i in
              { Trace.job = l.job.id; arrival = l.job.arrival; rate = rates.(i) })
        in
        Rr_util.Vec.push trace_arena { Trace.t0 = !now; t1 = !t_next; alive = entries }
      end;
      for i = 0 to n_alive - 1 do
        let l = Rr_util.Vec.get alive i in
        let delta = rates.(i) *. speed *. dt in
        l.remaining <- l.remaining -. delta;
        l.attained <- l.attained +. delta
      done;
      now := !t_next;
      (* Retire finished jobs; iterate downwards because of swap-remove. *)
      for i = n_alive - 1 downto 0 do
        let l = Rr_util.Vec.get alive i in
        if l.remaining <= done_threshold l then begin
          complete l.job !now;
          incr completed;
          makespan := !now;
          Rr_util.Vec.swap_remove alive i
        end
      done;
      admit_upto !now
    end
  done;
  let trace = Rr_util.Vec.to_list trace_arena in
  ( {
      n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    trace )

let no_sink : sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines ~(policy : Policy.t) jobs =
  let n = validate_jobs jobs in
  let jobs_arr = jobs_by_id jobs n in
  let order = release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete (j : Job.t) now =
    completions.(j.id) <- now;
    sink ~id:j.id ~arrival:j.arrival ~flow:(now -. j.arrival)
  in
  let summary, trace =
    general_core ~record_trace ~speed ~max_events ~machines ~policy
      ~source:(Source.of_array order) ~complete
  in
  { jobs = jobs_arr; completions; trace; machines; speed; events = summary.events }

let run_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~(policy : Policy.t) ~sink
    pull =
  let complete (j : Job.t) now = sink ~id:j.id ~arrival:j.arrival ~flow:(now -. j.arrival) in
  let summary, _trace =
    general_core ~record_trace:false ~speed ~max_events ~machines ~policy
      ~source:(Source.of_fn pull) ~complete
  in
  summary

(* ------------------------------------------------------------------ *)
(* Closed-form equal-share (RR) engine                                 *)
(* ------------------------------------------------------------------ *)

(* Under an equal-share policy every alive job is served at the same
   instantaneous rate [min(1, m/n) * speed], a function of the alive count
   alone.  Let V(t) be the cumulative service each alive job has received
   ("virtual service"): a job admitted when the clock read [V_a] completes
   exactly when V reaches its deadline [V_a + size].  Jobs therefore
   complete in deadline order, so a single binary heap of deadlines
   ({!Rr_util.Heap.Scalar2}, keyed on the deadline with the job id as
   payload and the arrival and size as satellites) replaces the per-event
   policy invocation and O(alive) scans of the general engine: each arrival
   or completion costs O(log alive), the whole run O((n + events) log
   alive), with no allocation per event and no O(n) side table — the heap
   IS the whole live state, so the same core drives both the materialized
   and the streaming entry point. *)

(* All-float, hence flat, so the per-event clock/virtual-service updates
   are plain unboxed stores.  [float ref] cells here would box a fresh
   float on every assignment — a few words per event that the B4
   words-per-job gate would see. *)
type es_state = { mutable vsrv : float; mutable now : float; mutable makespan : float }

let equal_share_core ~record_trace ~speed ~max_events ~machines ~(source : Source.t)
    ~(completions : float array) ~(sink : sink) =
  if machines < 1 then invalid_arg "Simulator.run_equal_share: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Simulator.run_equal_share: speed must be finite and positive";
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let heap = Arena.scalar2_of scratch in
  let st = { vsrv = 0.; now = 0.; makespan = 0. } in
  let completed = ref 0 in
  let max_alive = ref 0 in
  (* Roster of alive jobs, maintained only for trace recording; [pos]
     tracks each job's slot so completions remove in O(1).  The pos table
     grows with the largest id seen, which the streaming entry point never
     exercises (it passes record_trace:false). *)
  let roster : Job.t Rr_util.Vec.t = Arena.jobs_of scratch in
  let pos = ref [||] in
  let ensure_pos id =
    let cap = Array.length !pos in
    if id >= cap then begin
      let ncap = Int.max 8 (Int.max (2 * cap) (id + 1)) in
      let np = Array.make ncap (-1) in
      Array.blit !pos 0 np 0 cap;
      pos := np
    end
  in
  let drop id =
    if record_trace then begin
      let i = !pos.(id) in
      let last = Rr_util.Vec.length roster - 1 in
      let moved = Rr_util.Vec.get roster last in
      Rr_util.Vec.swap_remove roster i;
      if i < last then !pos.(moved.id) <- i;
      !pos.(id) <- -1
    end
  in
  (* Admission reads the source through the raw unboxed view: id plus two
     cursor floats, no [Job.t], no option.  The boxed job is materialized
     (memoized [peek]) only on the trace-recording path. *)
  let admit_upto now =
    while Source.has_more source && Source.head_arrival source <= now do
      let id = Source.head_id source in
      let size = Source.head_size source in
      Rr_util.Heap.Scalar2.add heap ~key:(st.vsrv +. size)
        ~aux1:(Source.head_arrival source) ~aux2:size id;
      if Rr_util.Heap.Scalar2.length heap > !max_alive then
        max_alive := Rr_util.Heap.Scalar2.length heap;
      if record_trace then begin
        let j = match Source.peek source with Some j -> j | None -> assert false in
        ensure_pos id;
        !pos.(id) <- Rr_util.Vec.length roster;
        Rr_util.Vec.push roster j
      end;
      Source.advance source
    done
  in
  let trace_arena : Trace.segment Rr_util.Vec.t = Arena.segments_of scratch in
  (* Hoisted out of the event loop: a [let retire () = ...] in the loop
     body would allocate its closure once per event.  The sink is called
     directly (no intermediate completion callback), so a completion costs
     exactly one unknown call — two boxed floats — on the streaming path;
     the materialized entry point passes a completions array and the exact
     completion instant is recorded unboxed before the sink sees the
     derived flow. *)
  let retire () =
    let id = Rr_util.Heap.Scalar2.min_val_exn heap in
    let arrival = Rr_util.Heap.Scalar2.min_aux1_exn heap in
    ignore (Rr_util.Heap.Scalar2.pop_exn heap : int);
    if Array.length completions > 0 then completions.(id) <- st.now;
    sink ~id ~arrival ~flow:(st.now -. arrival);
    incr completed;
    st.makespan <- st.now;
    drop id
  in
  let events = ref 0 in
  st.now <- (if Source.has_more source then Source.head_arrival source else 0.);
  admit_upto st.now;
  while Rr_util.Heap.Scalar2.length heap > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Event_limit_exceeded { limit = max_events; now = st.now });
    if Rr_util.Heap.Scalar2.is_empty heap then begin
      st.now <- Source.next_arrival source;
      admit_upto st.now
    end
    else begin
      let n_alive = Rr_util.Heap.Scalar2.length heap in
      let share =
        let s = Float.of_int machines /. Float.of_int n_alive in
        if s > 1. then 1. else s
      in
      let rate = share *. speed in
      let t_complete =
        st.now +. ((Rr_util.Heap.Scalar2.min_key_exn heap -. st.vsrv) /. rate)
      in
      (* Completion wins a tie with an arrival, exactly like the general
         engine's [a < t_next] guard. *)
      let next_arrival = Source.next_arrival source in
      let is_completion = not (next_arrival < t_complete) in
      let t_next = if is_completion then t_complete else next_arrival in
      let dt = t_next -. st.now in
      assert (dt > 0.);
      if record_trace then begin
        let entries =
          Array.init (Rr_util.Vec.length roster) (fun i ->
              let j = Rr_util.Vec.get roster i in
              { Trace.job = j.id; arrival = j.arrival; rate = share })
        in
        Rr_util.Vec.push trace_arena { Trace.t0 = st.now; t1 = t_next; alive = entries }
      end;
      st.vsrv <- st.vsrv +. (rate *. dt);
      st.now <- t_next;
      if is_completion then
        (* The head's deadline defined this event time; retire it even if
           rounding left [vsrv] an ulp short of the deadline. *)
        retire ();
      (* Cascade every job whose residual virtual service is within the
         completion threshold of this instant (simultaneous completions,
         and arrivals landing exactly on a completion). *)
      while
        (not (Rr_util.Heap.Scalar2.is_empty heap))
        && Rr_util.Heap.Scalar2.min_key_exn heap -. st.vsrv
           <= completion_threshold (Rr_util.Heap.Scalar2.min_aux2_exn heap)
      do
        retire ()
      done;
      admit_upto st.now
    end
  done;
  let trace = Rr_util.Vec.to_list trace_arena in
  ( {
      n = !completed;
      events = !events;
      machines;
      speed;
      makespan = st.makespan;
      max_alive = !max_alive;
    },
    trace )

let run_equal_share ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000)
    ?(sink = no_sink) ~machines jobs =
  let n = validate_jobs jobs in
  let jobs_arr = jobs_by_id jobs n in
  let order = release_order jobs n in
  let completions = Array.make n Float.nan in
  let summary, trace =
    equal_share_core ~record_trace ~speed ~max_events ~machines
      ~source:(Source.of_array order) ~completions ~sink
  in
  { jobs = jobs_arr; completions; trace; machines; speed; events = summary.events }

let run_equal_share_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~sink pull =
  let summary, _trace =
    equal_share_core ~record_trace:false ~speed ~max_events ~machines
      ~source:(Source.of_fn pull) ~completions:[||] ~sink
  in
  summary

let run_equal_share_stream_raw ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~sink fill =
  let summary, _trace =
    equal_share_core ~record_trace:false ~speed ~max_events ~machines
      ~source:(Source.of_raw fill) ~completions:[||] ~sink
  in
  summary

let flows r = Array.mapi (fun i c -> c -. r.jobs.(i).Job.arrival) r.completions

let total_flow r = Rr_util.Kahan.sum (flows r)
