(* Per-domain scratch arenas: reusable typed buffers the engines borrow
   for one run and hand back, so back-to-back simulations on one domain
   (the shape of every sweep, batch chunk, and benchmark loop) stop
   re-allocating their heap storage, trace vectors, and scratch tables
   from cold.  See arena.mli for the contract.

   One arena lives in domain-local storage per domain.  [borrow] hands
   out exclusive access guarded by a busy flag: a re-entrant simulation
   (a sink that itself simulates, on the same domain) finds the arena
   taken and gets [None], making every accessor fall back to a fresh
   allocation — correctness never depends on the arena, only steady-state
   allocation rate does.

   Components are reused cursor-style: each accessor returns the next
   pooled component of its kind (growing the pool on first use) and
   [release] just resets the cursors, so the components — and crucially
   their grown capacities — survive to the next run.  All heavy storage
   is unboxed ([float array]/[int array] inside the scalar heaps, flat
   float arrays, [Bytes]); the per-kind pools themselves are a handful of
   words. *)

module Heap = Rr_util.Heap
module Vec = Rr_util.Vec

type t = {
  mutable busy : bool;
  mutable s1 : Heap.Scalar.t array;
  mutable s1_used : int;
  mutable s2 : Heap.Scalar2.t array;
  mutable s2_used : int;
  mutable s3 : Heap.Scalar3.t array;
  mutable s3_used : int;
  mutable segs : Trace.segment Vec.t array;
  mutable segs_used : int;
  mutable jobs : Job.t Vec.t array;
  mutable jobs_used : int;
  mutable fbufs : float array array;
  mutable fbufs_used : int;
  mutable ibufs : int array array;
  mutable ibufs_used : int;
}

let make () =
  {
    busy = false;
    s1 = [||];
    s1_used = 0;
    s2 = [||];
    s2_used = 0;
    s3 = [||];
    s3_used = 0;
    segs = [||];
    segs_used = 0;
    jobs = [||];
    jobs_used = 0;
    fbufs = [||];
    fbufs_used = 0;
    ibufs = [||];
    ibufs_used = 0;
  }

let key = Domain.DLS.new_key make

let borrow () =
  let a = Domain.DLS.get key in
  if a.busy then None
  else begin
    a.busy <- true;
    Some a
  end

let release = function
  | None -> ()
  | Some a ->
      a.s1_used <- 0;
      a.s2_used <- 0;
      a.s3_used <- 0;
      a.segs_used <- 0;
      a.jobs_used <- 0;
      a.fbufs_used <- 0;
      a.ibufs_used <- 0;
      a.busy <- false

(* Cursor-style checkout of pooled components: the nth request of a kind
   within one borrow always returns the same nth component, so capacities
   converge to the per-run high-water mark after the first run. *)

let scalar () = Heap.Scalar.create ()

let scalar_of = function
  | None -> Heap.Scalar.create ()
  | Some a ->
      if a.s1_used = Array.length a.s1 then a.s1 <- Array.append a.s1 [| scalar () |];
      let h = a.s1.(a.s1_used) in
      a.s1_used <- a.s1_used + 1;
      Heap.Scalar.clear h;
      h

let scalar2_of = function
  | None -> Heap.Scalar2.create ()
  | Some a ->
      if a.s2_used = Array.length a.s2 then
        a.s2 <- Array.append a.s2 [| Heap.Scalar2.create () |];
      let h = a.s2.(a.s2_used) in
      a.s2_used <- a.s2_used + 1;
      Heap.Scalar2.clear h;
      h

let scalar3_of = function
  | None -> Heap.Scalar3.create ()
  | Some a ->
      if a.s3_used = Array.length a.s3 then
        a.s3 <- Array.append a.s3 [| Heap.Scalar3.create () |];
      let h = a.s3.(a.s3_used) in
      a.s3_used <- a.s3_used + 1;
      Heap.Scalar3.clear h;
      h

let segments_of = function
  | None -> Vec.create ()
  | Some a ->
      if a.segs_used = Array.length a.segs then a.segs <- Array.append a.segs [| Vec.create () |];
      let v = a.segs.(a.segs_used) in
      a.segs_used <- a.segs_used + 1;
      Vec.clear v;
      v

let jobs_of = function
  | None -> Vec.create ()
  | Some a ->
      if a.jobs_used = Array.length a.jobs then a.jobs <- Array.append a.jobs [| Vec.create () |];
      let v = a.jobs.(a.jobs_used) in
      a.jobs_used <- a.jobs_used + 1;
      Vec.clear v;
      v

let rec pow2_at_least p n = if p >= n then p else pow2_at_least (2 * p) n

let float_buf_of a n =
  let n = Int.max 1 n in
  match a with
  | None -> Array.make n 0.
  | Some a ->
      if a.fbufs_used = Array.length a.fbufs then
        a.fbufs <- Array.append a.fbufs [| Array.make (pow2_at_least 64 n) 0. |];
      let b = a.fbufs.(a.fbufs_used) in
      let b =
        if Array.length b < n then begin
          let nb = Array.make (pow2_at_least (2 * Array.length b) n) 0. in
          a.fbufs.(a.fbufs_used) <- nb;
          nb
        end
        else b
      in
      a.fbufs_used <- a.fbufs_used + 1;
      b

let int_buf_of a n =
  let n = Int.max 1 n in
  match a with
  | None -> Array.make n 0
  | Some a ->
      if a.ibufs_used = Array.length a.ibufs then
        a.ibufs <- Array.append a.ibufs [| Array.make (pow2_at_least 64 n) 0 |];
      let b = a.ibufs.(a.ibufs_used) in
      let b =
        if Array.length b < n then begin
          let nb = Array.make (pow2_at_least (2 * Array.length b) n) 0 in
          a.ibufs.(a.ibufs_used) <- nb;
          nb
        end
        else b
      in
      a.ibufs_used <- a.ibufs_used + 1;
      b
