type view = {
  id : int;
  arrival : float;
  mutable attained : float;
  size : float option;
  mutable remaining : float option;
}

type decision = { rates : float array; horizon : float option }

type t = {
  name : string;
  clairvoyant : bool;
  klass : Policy_class.t option;
  allocate : now:float -> machines:int -> speed:float -> view array -> decision;
}

let make ~name ~clairvoyant ?klass allocate =
  (match klass with
  | None -> ()
  | Some k -> (
      (match Policy_class.validate k with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "Policy.make: %s: %s" name e));
      if Policy_class.clairvoyant k && not clairvoyant then
        invalid_arg
          (Printf.sprintf
             "Policy.make: %s declares a clairvoyant class but is not clairvoyant" name)));
  { name; clairvoyant; klass; allocate }

let age ~now v = now -. v.arrival

let size_exn v =
  match v.size with
  | Some p -> p
  | None -> invalid_arg "Policy.size_exn: size hidden from a non-clairvoyant policy"

let remaining_exn v =
  match v.remaining with
  | Some p -> p
  | None -> invalid_arg "Policy.remaining_exn: remaining hidden from a non-clairvoyant policy"
