(** Dense class kernels: specialised engines for the rate-vector policy
    classes — LAPS ({!Policy_class.Latest_fraction}), MLFQ
    ({!Policy_class.Level_ladder}), the weighted proportional shares
    ({!Policy_class.Aged_share}, {!Policy_class.Sized_share}), and
    discrete quantum round-robin ({!Policy_class.Quantum_cycle}).

    These classes give fractional rates to many jobs at once, so events
    still cost O(alive); the engines win by maintaining jobs in the
    order their class needs (no per-event sort, no view rebuild, no
    policy closure) and by calling the same shared numeric kernels as
    the mirror policies ({!Policy_class.capped_rates},
    {!Policy_class.ladder_level}, ...), so the two sides compute
    bit-identical floats on the same event sequence.  The differential
    suite pins agreement with the general loop to <= 1e-9 relative flow
    time. *)

type kind =
  | Laps of { beta : float }
  | Ladder of { base_quantum : float; factor : float; levels : int }
  | Aged of { k : int; refresh : float; offset : float }
  | Sized of { gamma : float }
  | Quantum of { quantum : float }

val kind_of_class : Policy_class.t -> kind option
(** The dense kernel serving a policy class, if any; [None] for the
    classes served by other engines (equal-share, the priority indexes,
    the SETF cascade, the hybrid and budget kernels). *)

val class_of_kind : kind -> Policy_class.t
(** Right inverse of {!kind_of_class}. *)

(** {2 Incremental primitives}

    The building blocks the {!Live} engine drives directly: one
    {!refresh} per event (never per split — cached rates are what keep
    WRR-age's drifting weights split-safe), {!advance} for any prefix of
    the interval, {!settle} + admissions after each event.  The closed
    {!run} / {!run_stream} below drive the same primitives.  The state
    contains no closures, so live snapshots can [Marshal] it. *)

type state

val create : machines:int -> speed:float -> kind -> state
(** @raise Invalid_argument on non-positive machines or speed, or
    out-of-range class parameters (see {!Policy_class.validate}). *)

val alive : state -> int

val admit : state -> Job.t -> unit
(** Admit a released job.  Jobs must be admitted in (arrival asc,
    id asc) order — the order every {!Simulator.Source} produces. *)

val refresh : state -> now:float -> unit
(** Recompute every cached rate and the decision horizon: the mirror of
    one [allocate] call.  Run exactly once per event, after {!settle}
    and admissions. *)

val next_internal : state -> now:float -> float
(** Earliest internal event under the cached decision (analytic
    completion or horizon); [infinity] when neither is pending.  The
    caller folds in the next arrival. *)

val advance : state -> dt:float -> unit
(** Advance served jobs by the cached rates for [dt > 0]. *)

val settle : state -> now:float -> complete:(int -> float -> float -> unit) -> unit
(** Retire completed jobs, reporting each as
    [complete id arrival now]. *)

(** {2 Closed runs} *)

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  machines:int ->
  kind:kind ->
  Job.t list ->
  Simulator.result
(** Closed-form run over a finite job list; same contract as
    {!Simulator.run} (validation, completion threshold,
    completion-beats-arrival tie rule, event accounting).
    @raise Simulator.Event_limit_exceeded like the general loop. *)

val run_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  kind:kind ->
  sink:Simulator.sink ->
  (unit -> Job.t option) ->
  Simulator.summary
(** Streaming run: jobs are pulled on demand in non-decreasing arrival
    order with distinct ids, flows go to the sink, and only O(alive)
    state plus O(1) aggregates stay resident. *)
