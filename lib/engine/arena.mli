(** Per-domain scratch arenas for the simulation engines.

    Every closed engine needs the same transient storage per run: a
    scalar heap or three, a trace arena, a roster vector, flat scratch
    arrays.  Allocating them from cold on every run is invisible for one
    simulation but dominates the minor-GC pressure of a sweep that runs
    thousands — and on a multi-domain {!Rr_core} [Pool] that pressure
    lands on the shared major heap, where it serialises domains.  An
    arena keeps one reusable set of those components per domain
    (domain-local storage), handed out for the duration of one run and
    reset — not freed — afterwards, so steady-state runs borrow storage
    whose capacity already matches their high-water mark and allocate
    (almost) nothing.

    Usage shape, inside an engine core:
    {[
      let scratch = Arena.borrow () in
      Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
      let heap = Arena.scalar2_of scratch in
      ...
    ]}

    [borrow] is exclusive per domain: a re-entrant simulation (a sink
    that itself simulates on the same domain) gets [None], and every
    [*_of] accessor treats [None] as "allocate fresh" — the arena is an
    allocation-rate optimisation, never a correctness dependency.

    Borrowed components must not escape the borrow: anything obtained
    from [*_of] is reset and reused by later borrowers after [release].
    Engines therefore copy out whatever survives the run (e.g.
    {!Rr_util.Vec.to_list} on the trace arena) before releasing. *)

type t

val borrow : unit -> t option
(** Exclusive use of the calling domain's arena; [None] when it is
    already lent out (re-entrant simulation). *)

val release : t option -> unit
(** Return the arena (reset all checkout cursors).  [release None] is a
    no-op, so call sites can thread the [borrow] result through
    unconditionally. *)

val scalar_of : t option -> Rr_util.Heap.Scalar.t
(** A cleared scalar heap, pooled when the arena is available and fresh
    otherwise; capacity persists across runs.  Successive calls within
    one borrow return distinct heaps. *)

val scalar2_of : t option -> Rr_util.Heap.Scalar2.t

val scalar3_of : t option -> Rr_util.Heap.Scalar3.t

val segments_of : t option -> Trace.segment Rr_util.Vec.t
(** A cleared trace arena. *)

val jobs_of : t option -> Job.t Rr_util.Vec.t
(** A cleared job roster vector. *)

val float_buf_of : t option -> int -> float array
(** [float_buf_of a n]: a flat float array of length >= [n] (contents
    unspecified — callers initialise what they read). *)

val int_buf_of : t option -> int -> int array
(** [int_buf_of a n]: an int array of length >= [n], contents
    unspecified. *)
