(** Closed-form engines for the comparator policies the paper measures RR
    against (Section 1.3): SRPT, SJF, FCFS, and SETF.

    The general engine of {!Simulator} invokes its policy at every event
    and pays an O(alive log alive) re-sort each time.  For the
    fixed-priority comparators the served set is simply the m alive jobs
    smallest under a static-while-waiting key — remaining work (SRPT),
    size (SJF) or arrival (FCFS) — so this kernel keeps the <= m running
    jobs in a flat slot array and the rest in a binary heap ordered by
    (key, id): one event costs O(m + log alive) and no policy code runs
    at all.  SETF gets the cascade treatment instead: alive jobs
    partition into equal-attained groups kept as a level-sorted linked
    list whose advancing prefix (<= m+1 groups under water-filling) is
    the only part any event touches — the least-attained-service sibling
    of {!Simulator.run_equal_share}'s virtual-time cascade.

    Agreement: each engine replays the general loop's event semantics —
    the shared {!Simulator.completion_threshold}, completion-beats-arrival
    tie rule, and (key, id) priority order — and the fixed-priority
    engines use operation-for-operation identical arithmetic at rate 1,
    so flow times agree with [Simulator.run ~policy:...] to <= 1e-9
    relative (differential-tested across m in {1, 2, 8}); SETF's lazily
    materialized levels accumulate rounding in a different association
    order, within the same bound.

    Like the engines in {!Simulator}, each engine has a materialized
    entry point (job list in, {!Simulator.result} out, optional [?sink])
    and a streaming one (pull function in, mandatory [~sink], O(alive)
    live memory, {!Simulator.summary} out). *)

type kind = Srpt | Sjf | Fcfs | Hdf of { alpha : float }
(** The static-while-waiting keys the kernel can rank by; one-to-one
    with {!Policy_class.key} (see {!key_spec} / {!kind_of_key}).  [Hdf]
    is highest density first with weight size^alpha: key
    [-(size^alpha / size)], so the densest job is the smallest key. *)

val kind_name : kind -> string
(** ["srpt"], ["sjf"], ["fcfs"], ["hdf"] — the {!Rr_policies} registry
    base names. *)

val key_spec : kind -> Policy_class.key
val kind_of_key : Policy_class.key -> kind
(** The bijection with the classification layer's {!Policy_class.key}:
    [Run] classifies a policy by its declared class and maps
    [Static_key k] to [kind_of_key k]. *)

val job_key : kind -> arrival:float -> size:float -> remaining:float -> float
(** The priority key of a job, evaluated through
    {!Policy_class.static_key} — the one expression the mirror policies
    also use, so both paths rank by bit-identical floats. *)

val key_of_view : kind -> Policy.view -> float
(** The priority key this kind schedules by — exactly the key the
    corresponding general-loop policy passes to its top-m sort, so the
    fast and general paths are provably ranking by the same number.
    SRPT, SJF and HDF keys require a clairvoyant view
    (@raise Invalid_argument otherwise, via {!Policy.remaining_exn} /
    {!Policy.size_exn}). *)

val same_attained : float -> float -> bool
(** SETF's sharing tolerance: attained-service levels within
    [1e-9 * (1 + max)] relative distance count as one equal-share group.
    The same predicate (re-exported as [Rr_policies.Setf.same_group])
    drives the general policy's grouping, so both paths agree on when a
    catch-up merges groups. *)

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  machines:int ->
  kind:kind ->
  Job.t list ->
  Simulator.result
(** [run ~machines ~kind jobs] simulates the [kind] policy on [jobs] with
    the priority-index kernel.  Parameters, trace availability and errors
    as in {!Simulator.run}. *)

val run_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  kind:kind ->
  sink:Simulator.sink ->
  (unit -> Job.t option) ->
  Simulator.summary
(** Streaming counterpart of {!run}: the slot array plus the waiting heap
    (with each job's arrival and resume state as satellites) is the
    entire live state.  [pull] as in {!Simulator.run_stream}. *)

val run_setf :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  machines:int ->
  Job.t list ->
  Simulator.result
(** [run_setf ~machines jobs] simulates Shortest Elapsed Time First with
    the group cascade.  Parameters and errors as in {!Simulator.run}. *)

val run_setf_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  sink:Simulator.sink ->
  (unit -> Job.t option) ->
  Simulator.summary
(** Streaming counterpart of {!run_setf}: live memory is the group list
    and member heaps, O(alive jobs). *)
