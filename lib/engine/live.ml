(* Incremental, submit-while-running scheduling core.  See live.mli for
   the user-facing contract.

   Each closed-form engine in this library is a loop over a finished
   arrival source; this module re-expresses the same three kernels —
   the equal-share virtual-service deadline heap (simulator.ml), the
   priority-index slot/heap kernel (index_engine.ml) and the SETF group
   cascade (index_engine.ml) — as resumable state advanced on demand, so
   jobs can be submitted while the simulation is already under way.

   The arithmetic deliberately mirrors the closed cores operation for
   operation: the same completion candidates ([now +. remaining /. rate]),
   the same shared completion threshold, the same
   completion-beats-arrival tie rule ([next_arrival < t_complete] picks
   the arrival), and the same admission, retirement and merge orders.  On
   a submit-everything-upfront feed the event sequence is identical; the
   only divergence is that [advance] may split an inter-event interval at
   an arbitrary horizon, accumulating the advance in pieces — a rounding
   difference bounded well inside the 1e-9 relative tolerance the
   differential suite (test_live.ml) pins.

   Everything in [state] is plain mutable data — heaps of float arrays,
   a Queue of scalars, records, an option-linked group list — with no
   closures, so a whole engine snapshots with [Marshal] (which handles
   the SETF prev/next cycles via its sharing machinery).  The completion
   sink is the one closure a live engine carries; it lives outside
   [state] and is re-attached on restore. *)

module Heap = Rr_util.Heap

type spec =
  | Equal_share
  | Indexed of Index_engine.kind
  | Setf_cascade
  | Classified of Policy_class.t

let spec_name = function
  | Equal_share -> "equal-share"
  | Indexed kind -> Index_engine.kind_name kind ^ "-index"
  | Setf_cascade -> "setf-cascade"
  | Classified klass -> Policy_class.engine_name klass

(* Surface names accept every classified policy at its registry-default
   parameters; the typed [Classified] constructor covers arbitrary
   parameters (rr_cli serve goes through the registry and passes the
   policy's own class). *)
let spec_of_string s =
  match String.lowercase_ascii s with
  | "rr" | "round-robin" | "equal-share" -> Some Equal_share
  | "srpt" | "srpt-index" -> Some (Indexed Index_engine.Srpt)
  | "sjf" | "sjf-index" -> Some (Indexed Index_engine.Sjf)
  | "fcfs" | "fcfs-index" -> Some (Indexed Index_engine.Fcfs)
  | "setf" | "setf-cascade" -> Some Setf_cascade
  | "hdf" | "hdf-index" ->
      Some (Classified (Policy_class.Static_key (Policy_class.Key_density { alpha = 2. })))
  | "laps" | "laps-dense" -> Some (Classified (Policy_class.Latest_fraction { beta = 0.5 }))
  | "mlfq" | "mlfq-ladder" ->
      Some
        (Classified (Policy_class.Level_ladder { base_quantum = 0.5; factor = 2.; levels = 24 }))
  | "quantum-rr" | "quantum-cycle" ->
      Some (Classified (Policy_class.Quantum_cycle { quantum = 1. }))
  | "wrr-age" | "wrr-age-dense" ->
      Some (Classified (Policy_class.Aged_share { k = 2; refresh = 0.25; offset = 0.1 }))
  | "wrr-static" | "wrr-static-dense" ->
      Some (Classified (Policy_class.Sized_share { gamma = 1. }))
  | "hybrid" | "hybrid-index" ->
      Some (Classified (Policy_class.Starvation_hybrid { theta = 3. }))
  | "srpt-mig" | "srpt-mig-index" ->
      Some (Classified (Policy_class.Preempt_budget { budget = 1 }))
  | _ -> None

let spec_names =
  [
    "rr";
    "srpt";
    "sjf";
    "fcfs";
    "setf";
    "hdf";
    "laps";
    "mlfq";
    "quantum-rr";
    "wrr-age";
    "wrr-static";
    "hybrid";
    "srpt-mig";
  ]

(* ------------------------------------------------------------------ *)
(* Per-spec core state                                                 *)
(* ------------------------------------------------------------------ *)

(* Equal share: the deadline heap IS the live state (key = admission
   virtual time + size, aux1 = arrival, aux2 = size), plus the virtual
   service clock. *)
type eq_state = { eq_heap : Heap.Scalar2.t; mutable vsrv : float }

(* Priority index: <= m running slots scanned in O(m), everything else in
   the waiting heap with the same uniform satellite layout as
   index_engine.ml (key = Index_engine.job_key, aux1 = arrival,
   aux2 = size, aux3 = remaining). *)
type slot = {
  mutable s_id : int;
  mutable s_arrival : float;
  mutable s_size : float;
  mutable s_remaining : float;
}

type idx_state = {
  kind : Index_engine.kind;
  waiting : Heap.Scalar3.t;
  running : slot array;
  mutable n_run : int;
}

(* SETF: groups of equal attained service in a doubly-linked list sorted
   by level ascending, lazy levels [(level, t_upd, grate)], per-group
   member heaps keyed by size. *)
type group = {
  mutable level : float;
  mutable t_upd : float;
  mutable grate : float;
  members : Heap.Scalar2.t;
  mutable prev : group option;
  mutable next : group option;
}

type setf_state = { mutable first : group option; mutable setf_alive : int }

(* The classified cores reuse the closed engines' incremental state
   directly (class_engine.ml, hybrid_engine.ml, budget_engine.ml): one
   [refresh] per event — never per horizon split, so cached rates carry
   partial advances exactly like the general loop's
   allocate-once-per-event discipline, which is what keeps WRR-age's
   drifting weights split-safe. *)
type core =
  | Eq of eq_state
  | Idx of idx_state
  | Setf of setf_state
  | Cls of Class_engine.state
  | Hyb of Hybrid_engine.state
  | Bud of Budget_engine.state

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  spec : spec;
  machines : int;
  speed : float;
  k : int;
  max_events : int;
  core : core;
  (* Classified cores only: true when the cached decision must be
     recomputed before the next event scan (after every processed event,
     admission or idle jump; never after a pure horizon split). *)
  mutable rates_dirty : bool;
  (* Submitted jobs not yet admitted, in submission = (arrival, id)
     order; arrivals are validated non-decreasing at [submit]. *)
  pending : (int * float * float) Queue.t;
  mutable now : float;
  mutable last_arrival : float;
  mutable submitted : int;
  mutable completed : int;
  mutable events : int;
  mutable makespan : float;
  mutable max_alive : int;
  (* O(1)-memory live metrics: the same accumulators Run.measure fuses —
     Kahan power sum for the Lk norm, Welford moments, running max — plus
     three P-squared sketches for the percentiles. *)
  ps : Rr_util.Kahan.t;
  moments : Rr_util.Welford.t;
  mutable max_flow : float;
  p50 : Rr_util.P2.t;
  p90 : Rr_util.P2.t;
  p99 : Rr_util.P2.t;
}

type t = { st : state; mutable sink : Simulator.sink }

type stats = {
  submitted : int;
  completed : int;
  alive : int;  (** Admitted and unfinished at [now] (excludes [pending]). *)
  pending : int;  (** Submitted with an arrival still in the future. *)
  now : float;
  events : int;
  makespan : float;
  max_alive : int;
  mean_flow : float;
  max_flow : float;
  power_sum : float;
  norm : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let no_sink : Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

(* A live engine is long-lived by design — it owns its heaps outright
   rather than borrowing from the per-domain {!Arena}, whose components
   must not outlive a single borrow.  The allocation happens once per
   [create], not per run, so there is nothing for the arena to save
   here. *)
let create ?(machines = 1) ?(speed = 1.) ?(k = 2) ?(max_events = max_int) ?(sink = no_sink)
    spec =
  if machines < 1 then invalid_arg "Live.create: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Live.create: speed must be finite and positive";
  if k < 1 then invalid_arg "Live.create: k must be >= 1";
  if max_events < 1 then invalid_arg "Live.create: max_events must be >= 1";
  let idx_core kind =
    Idx
      {
        kind;
        waiting = Heap.Scalar3.create ();
        running =
          Array.init machines (fun _ ->
              { s_id = -1; s_arrival = 0.; s_size = 0.; s_remaining = 0. });
        n_run = 0;
      }
  in
  let core =
    match spec with
    | Equal_share | Classified Policy_class.Equal_share ->
        Eq { eq_heap = Heap.Scalar2.create (); vsrv = 0. }
    | Indexed kind -> idx_core kind
    | Classified (Policy_class.Static_key key) -> idx_core (Index_engine.kind_of_key key)
    | Setf_cascade | Classified Policy_class.Attained_cascade ->
        Setf { first = None; setf_alive = 0 }
    | Classified (Policy_class.Starvation_hybrid { theta }) ->
        Hyb (Hybrid_engine.create ~machines ~speed ~theta)
    | Classified (Policy_class.Preempt_budget { budget }) ->
        Bud (Budget_engine.create ~machines ~speed ~budget)
    | Classified klass -> (
        match Class_engine.kind_of_class klass with
        | Some kind -> Cls (Class_engine.create ~machines ~speed kind)
        | None ->
            (* Unreachable: every class is covered above. *)
            invalid_arg "Live.create: unclassifiable spec")
  in
  let st =
    {
      spec;
      machines;
      speed;
      k;
      max_events;
      core;
      rates_dirty = true;
      pending = Queue.create ();
      now = 0.;
      last_arrival = 0.;
      submitted = 0;
      completed = 0;
      events = 0;
      makespan = 0.;
      max_alive = 0;
      ps = Rr_util.Kahan.create ();
      moments = Rr_util.Welford.create ();
      max_flow = 0.;
      p50 = Rr_util.P2.create ~p:0.5 ();
      p90 = Rr_util.P2.create ~p:0.9 ();
      p99 = Rr_util.P2.create ~p:0.99 ();
    }
  in
  { st; sink }

let set_sink t sink = t.sink <- sink

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)
(* ------------------------------------------------------------------ *)

let submit t ~arrival ~size =
  let st = t.st in
  if not (Rr_util.Floatx.is_finite_nonneg arrival) then
    invalid_arg "Live.submit: arrival must be a finite non-negative float";
  if not (Float.is_finite size && size > 0.) then
    invalid_arg "Live.submit: size must be finite and positive";
  if arrival < st.last_arrival then
    invalid_arg
      (Printf.sprintf
         "Live.submit: arrivals must be non-decreasing (%g after %g)" arrival
         st.last_arrival);
  if arrival < st.now then
    invalid_arg
      (Printf.sprintf "Live.submit: arrival %g is in the simulated past (now = %g)" arrival
         st.now);
  let id = st.submitted in
  st.submitted <- id + 1;
  st.last_arrival <- arrival;
  Queue.add (id, arrival, size) st.pending;
  id

(* Bulk submission: exactly the pending-queue pushes [submit] would
   perform for the same jobs in the same order (bit-identical engine
   state, differentially pinned by test_serve), with the validation pass
   hoisted out in front.  The whole slice is checked before anything
   mutates, so a rejected batch leaves the engine untouched — the
   serving layer answers ERR off that atomicity without corrupting the
   session ([rr_cli serve]'s BATCH frame lands here). *)
let submit_batch t ~arrivals ~sizes ?(off = 0) ?len () =
  let st = t.st in
  let len = match len with Some l -> l | None -> Array.length arrivals - off in
  if
    off < 0 || len < 0
    || off + len > Array.length arrivals
    || off + len > Array.length sizes
  then invalid_arg "Live.submit_batch: off/len out of bounds";
  let last = ref st.last_arrival in
  for i = off to off + len - 1 do
    let arrival = Array.unsafe_get arrivals i and size = Array.unsafe_get sizes i in
    if not (Rr_util.Floatx.is_finite_nonneg arrival) then
      invalid_arg "Live.submit: arrival must be a finite non-negative float";
    if not (Float.is_finite size && size > 0.) then
      invalid_arg "Live.submit: size must be finite and positive";
    if arrival < !last then
      invalid_arg
        (Printf.sprintf "Live.submit: arrivals must be non-decreasing (%g after %g)" arrival
           !last);
    if arrival < st.now then
      invalid_arg
        (Printf.sprintf "Live.submit: arrival %g is in the simulated past (now = %g)" arrival
           st.now);
    last := arrival
  done;
  let first = st.submitted in
  for i = 0 to len - 1 do
    Queue.add (first + i, Array.unsafe_get arrivals (off + i), Array.unsafe_get sizes (off + i))
      st.pending
  done;
  st.submitted <- first + len;
  if len > 0 then st.last_arrival <- arrivals.(off + len - 1);
  first

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Same float as Simulator.completion_threshold, inlined like the closed
   cores do. *)
let threshold size = 1e-9 *. (1. +. size)

let alive_core (st : state) =
  match st.core with
  | Eq e -> Heap.Scalar2.length e.eq_heap
  | Idx i -> i.n_run + Heap.Scalar3.length i.waiting
  | Setf s -> s.setf_alive
  | Cls c -> Class_engine.alive c
  | Hyb h -> Hybrid_engine.alive h
  | Bud b -> Budget_engine.alive b

let note_alive (st : state) =
  let a = alive_core st in
  if a > st.max_alive then st.max_alive <- a

let complete (t : t) ~id ~arrival =
  let st = t.st in
  let flow = st.now -. arrival in
  st.completed <- st.completed + 1;
  st.makespan <- st.now;
  Rr_util.Kahan.add st.ps (Rr_util.Floatx.powi flow st.k);
  Rr_util.Welford.add st.moments flow;
  if flow > st.max_flow then st.max_flow <- flow;
  Rr_util.P2.add st.p50 flow;
  Rr_util.P2.add st.p90 flow;
  Rr_util.P2.add st.p99 flow;
  t.sink ~id ~arrival ~flow

let next_pending (st : state) =
  match Queue.peek_opt st.pending with Some (_, a, _) -> a | None -> Float.infinity

let bump_events (st : state) =
  st.events <- st.events + 1;
  if st.events > st.max_events then
    raise (Simulator.Event_limit_exceeded { limit = st.max_events; now = st.now })

(* ------------------------------------------------------------------ *)
(* Admission (mirrors each closed core's admit)                        *)
(* ------------------------------------------------------------------ *)

let eq_admit (st : state) (e : eq_state) ~id ~arrival ~size =
  Heap.Scalar2.add e.eq_heap ~key:(e.vsrv +. size) ~aux1:arrival ~aux2:size id;
  note_alive st

let slot_key kind (s : slot) =
  match (kind : Index_engine.kind) with
  | Srpt -> s.s_remaining
  | Sjf -> s.s_size
  | Fcfs -> s.s_arrival
  | Hdf { alpha } -> -.((s.s_size ** alpha) /. s.s_size)

let idx_push_waiting (i : idx_state) ~id ~arrival ~size ~remaining =
  Heap.Scalar3.add i.waiting
    ~key:(Index_engine.job_key i.kind ~arrival ~size ~remaining)
    ~aux1:arrival ~aux2:size ~aux3:remaining id

let idx_pop_into_free_slot (i : idx_state) =
  let a1 = Heap.Scalar3.min_aux1_exn i.waiting in
  let a2 = Heap.Scalar3.min_aux2_exn i.waiting in
  let a3 = Heap.Scalar3.min_aux3_exn i.waiting in
  let id = Heap.Scalar3.pop_exn i.waiting in
  let s = i.running.(i.n_run) in
  s.s_id <- id;
  s.s_arrival <- a1;
  s.s_size <- a2;
  s.s_remaining <- a3;
  i.n_run <- i.n_run + 1

let idx_admit (st : state) (i : idx_state) ~id ~arrival ~size =
  let machines = st.machines in
  if i.n_run < machines then begin
    let s = i.running.(i.n_run) in
    s.s_id <- id;
    s.s_arrival <- arrival;
    s.s_size <- size;
    s.s_remaining <- size;
    i.n_run <- i.n_run + 1
  end
  else begin
    (* Preempt the weakest running job iff the newcomer beats it under
       (key, id) — same tournament as index_core.admit. *)
    let w = ref 0 in
    for x = 1 to machines - 1 do
      let a = i.running.(x) and b = i.running.(!w) in
      let ka = slot_key i.kind a and kb = slot_key i.kind b in
      if ka > kb || (ka = kb && a.s_id > b.s_id) then w := x
    done;
    let s = i.running.(!w) in
    let kj = Index_engine.job_key i.kind ~arrival ~size ~remaining:size in
    let ks = slot_key i.kind s in
    if kj < ks || (kj = ks && id < s.s_id) then begin
      idx_push_waiting i ~id:s.s_id ~arrival:s.s_arrival ~size:s.s_size
        ~remaining:s.s_remaining;
      s.s_id <- id;
      s.s_arrival <- arrival;
      s.s_size <- size;
      s.s_remaining <- size
    end
    else idx_push_waiting i ~id ~arrival ~size ~remaining:size
  end;
  note_alive st

let level_at (g : group) ~speed now = g.level +. (g.grate *. speed *. (now -. g.t_upd))

let setf_unlink (s : setf_state) (g : group) =
  (match g.prev with None -> s.first <- g.next | Some p -> p.next <- g.next);
  match g.next with None -> () | Some nx -> nx.prev <- g.prev

let setf_admit (st : state) (s : setf_state) ~id ~arrival ~size =
  let speed = st.speed and now = st.now in
  let joined =
    match s.first with
    | Some g when Index_engine.same_attained 0. (level_at g ~speed now) ->
        Heap.Scalar2.add g.members ~key:size ~aux1:arrival ~aux2:0. id;
        true
    | _ -> false
  in
  if not joined then begin
    let members = Heap.Scalar2.create () in
    Heap.Scalar2.add members ~key:size ~aux1:arrival ~aux2:0. id;
    let g = { level = 0.; t_upd = now; grate = 0.; members; prev = None; next = s.first } in
    (match s.first with None -> () | Some old -> old.prev <- Some g);
    s.first <- Some g
  end;
  s.setf_alive <- s.setf_alive + 1;
  note_alive st

let admit (st : state) ~id ~arrival ~size =
  st.rates_dirty <- true;
  match st.core with
  | Eq e -> eq_admit st e ~id ~arrival ~size
  | Idx i -> idx_admit st i ~id ~arrival ~size
  | Setf s -> setf_admit st s ~id ~arrival ~size
  | Cls c ->
      Class_engine.admit c (Job.make ~id ~arrival ~size);
      note_alive st
  | Hyb h ->
      Hybrid_engine.admit h (Job.make ~id ~arrival ~size);
      note_alive st
  | Bud b ->
      Budget_engine.admit b (Job.make ~id ~arrival ~size);
      note_alive st

let admit_upto (st : state) now =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt st.pending with
    | Some (id, arrival, size) when arrival <= now ->
        ignore (Queue.pop st.pending);
        admit st ~id ~arrival ~size
    | _ -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* SETF water-filling and event scan (mirrors setf_core)               *)
(* ------------------------------------------------------------------ *)

let setf_refill (st : state) (s : setf_state) =
  let speed = st.speed and now = st.now in
  let rec go g left =
    match g with
    | None -> ()
    | Some g ->
        g.level <- level_at g ~speed now;
        g.t_upd <- now;
        if left > 0. then begin
          let cnt = Float.of_int (Heap.Scalar2.length g.members) in
          let r = Float.min 1. (left /. cnt) in
          g.grate <- r;
          go g.next (if r < 1. then 0. else left -. cnt)
        end
        else if g.grate > 0. then begin
          g.grate <- 0.;
          go g.next 0.
        end
  in
  go s.first (Float.of_int st.machines)

(* Earliest within-group completion or adjacent catch-up in the advancing
   prefix; [infinity] when nothing advances (empty system). *)
let setf_internal_event (st : state) (s : setf_state) =
  let speed = st.speed and now = st.now in
  let t_next = ref Float.infinity in
  let rec scan = function
    | None -> ()
    | Some (g : group) ->
        if g.grate > 0. then begin
          let c = now +. ((Heap.Scalar2.min_key_exn g.members -. g.level) /. (g.grate *. speed)) in
          if c < !t_next then t_next := c;
          (match g.next with
          | Some h ->
              let closing = (g.grate -. h.grate) *. speed in
              let gap = level_at h ~speed now -. g.level in
              if closing > 0. && gap > 0. then begin
                let t = now +. (gap /. closing) in
                if t < !t_next then t_next := t
              end
          | None -> ());
          scan g.next
        end
  in
  scan s.first;
  !t_next

(* ------------------------------------------------------------------ *)
(* The incremental event loop                                          *)
(* ------------------------------------------------------------------ *)

(* Advance the state across one inter-event interval or up to [target],
   whichever comes first.  Returns [true] when a full event was processed
   (so the loop should continue) and [false] when the horizon was reached.
   Mirrors one iteration of the matching closed core's while loop. *)
let step (t : t) ~target =
  let st = t.st in
  if alive_core st = 0 then begin
    match Queue.peek_opt st.pending with
    | Some (_, a, _) when a <= target ->
        (* Idle period: jump straight to the next arrival. *)
        bump_events st;
        st.now <- a;
        admit_upto st st.now;
        true
    | _ ->
        (* Idle through the whole horizon.  An infinite horizon (drain)
           leaves [now] at the makespan instead of consuming it. *)
        if Float.is_finite target && target > st.now then st.now <- target;
        false
  end
  else
    match st.core with
    | Eq e ->
        let n_alive = Heap.Scalar2.length e.eq_heap in
        let share = Float.min 1. (Float.of_int st.machines /. Float.of_int n_alive) in
        let rate = share *. st.speed in
        let t_complete = st.now +. ((Heap.Scalar2.min_key_exn e.eq_heap -. e.vsrv) /. rate) in
        let next_arrival = next_pending st in
        let is_completion = not (next_arrival < t_complete) in
        let t_next = if is_completion then t_complete else next_arrival in
        if t_next > target then begin
          (* Horizon splits the interval: advance the virtual clock to
             [target] and stop; no event fires. *)
          e.vsrv <- e.vsrv +. (rate *. (target -. st.now));
          st.now <- target;
          false
        end
        else begin
          bump_events st;
          e.vsrv <- e.vsrv +. (rate *. (t_next -. st.now));
          st.now <- t_next;
          let retire () =
            let id = Heap.Scalar2.min_val_exn e.eq_heap in
            let arrival = Heap.Scalar2.min_aux1_exn e.eq_heap in
            ignore (Heap.Scalar2.pop_exn e.eq_heap : int);
            complete t ~id ~arrival
          in
          if is_completion then retire ();
          while
            (not (Heap.Scalar2.is_empty e.eq_heap))
            && Heap.Scalar2.min_key_exn e.eq_heap -. e.vsrv
               <= threshold (Heap.Scalar2.min_aux2_exn e.eq_heap)
          do
            retire ()
          done;
          admit_upto st st.now;
          true
        end
    | Idx i ->
        let t_complete = ref Float.infinity in
        for x = 0 to i.n_run - 1 do
          let c = st.now +. (i.running.(x).s_remaining /. st.speed) in
          if c < !t_complete then t_complete := c
        done;
        let next_arrival = next_pending st in
        let t_next = if next_arrival < !t_complete then next_arrival else !t_complete in
        if t_next > target then begin
          let dt = target -. st.now in
          for x = 0 to i.n_run - 1 do
            let s = i.running.(x) in
            s.s_remaining <- s.s_remaining -. (st.speed *. dt)
          done;
          st.now <- target;
          false
        end
        else begin
          bump_events st;
          let dt = t_next -. st.now in
          for x = 0 to i.n_run - 1 do
            let s = i.running.(x) in
            s.s_remaining <- s.s_remaining -. (st.speed *. dt)
          done;
          st.now <- t_next;
          for x = i.n_run - 1 downto 0 do
            let s = i.running.(x) in
            if s.s_remaining <= threshold s.s_size then begin
              complete t ~id:s.s_id ~arrival:s.s_arrival;
              i.n_run <- i.n_run - 1;
              if x < i.n_run then begin
                i.running.(x) <- i.running.(i.n_run);
                i.running.(i.n_run) <- s
              end
            end
          done;
          while i.n_run < st.machines && not (Heap.Scalar3.is_empty i.waiting) do
            idx_pop_into_free_slot i
          done;
          admit_upto st st.now;
          true
        end
    | Setf s ->
        (* Rates reflect the structure left by the previous event. *)
        setf_refill st s;
        let t_internal = setf_internal_event st s in
        let next_arrival = next_pending st in
        let t_next = if next_arrival < t_internal then next_arrival else t_internal in
        if t_next > target then begin
          (* Levels are lazy [(level, t_upd, grate)]; no event fires in
             (now, target], so moving the clock is the whole advance. *)
          st.now <- target;
          false
        end
        else begin
          bump_events st;
          let dt = t_next -. st.now in
          let rec advance = function
            | None -> ()
            | Some (g : group) ->
                if g.grate > 0. then begin
                  g.level <- g.level +. (g.grate *. st.speed *. dt);
                  g.t_upd <- t_next;
                  advance g.next
                end
          in
          advance s.first;
          st.now <- t_next;
          let rec retire = function
            | None -> ()
            | Some (g : group) ->
                if g.grate > 0. then begin
                  let nxt = g.next in
                  while
                    (not (Heap.Scalar2.is_empty g.members))
                    && Heap.Scalar2.min_key_exn g.members -. g.level
                       <= threshold (Heap.Scalar2.min_key_exn g.members)
                  do
                    let arrival = Heap.Scalar2.min_aux1_exn g.members in
                    let id = Heap.Scalar2.pop_exn g.members in
                    complete t ~id ~arrival;
                    s.setf_alive <- s.setf_alive - 1
                  done;
                  if Heap.Scalar2.is_empty g.members then setf_unlink s g;
                  retire nxt
                end
          in
          retire s.first;
          let rec merge_pass = function
            | None -> ()
            | Some (g : group) ->
                if g.grate > 0. then
                  match g.next with
                  | Some h
                    when Index_engine.same_attained g.level (level_at h ~speed:st.speed st.now)
                    ->
                      let lvl = level_at h ~speed:st.speed st.now in
                      let src, keep =
                        if Heap.Scalar2.length g.members <= Heap.Scalar2.length h.members
                        then (g, h)
                        else (h, g)
                      in
                      Heap.Scalar2.iter
                        (fun size id arrival _ ->
                          Heap.Scalar2.add keep.members ~key:size ~aux1:arrival ~aux2:0. id)
                        src.members;
                      Heap.Scalar2.clear src.members;
                      keep.level <- lvl;
                      keep.t_upd <- st.now;
                      keep.grate <- Float.max g.grate h.grate;
                      setf_unlink s src;
                      merge_pass (Some keep)
                  | _ -> merge_pass g.next
          in
          merge_pass s.first;
          admit_upto st st.now;
          true
        end
    | Cls _ | Hyb _ | Bud _ ->
        (* One shared skeleton: refresh the cached decision only when the
           state changed since the last event (admission, settle, idle
           jump) — a pure horizon split keeps the rates, exactly like the
           general loop's allocate-once-per-event discipline. *)
        let refresh () =
          match st.core with
          | Cls c -> Class_engine.refresh c ~now:st.now
          | Hyb h -> Hybrid_engine.refresh h ~now:st.now
          | Bud b -> Budget_engine.refresh b ~now:st.now
          | _ -> assert false
        in
        let next_internal () =
          match st.core with
          | Cls c -> Class_engine.next_internal c ~now:st.now
          | Hyb h -> Hybrid_engine.next_internal h ~now:st.now
          | Bud b -> Budget_engine.next_internal b ~now:st.now
          | _ -> assert false
        in
        let advance_by dt =
          match st.core with
          | Cls c -> Class_engine.advance c ~dt
          | Hyb h -> Hybrid_engine.advance h ~dt
          | Bud b -> Budget_engine.advance b ~dt
          | _ -> assert false
        in
        let settle () =
          let complete' id arrival _now = complete t ~id ~arrival in
          match st.core with
          | Cls c -> Class_engine.settle c ~now:st.now ~complete:complete'
          | Hyb h -> Hybrid_engine.settle h ~now:st.now ~complete:complete'
          | Bud b -> Budget_engine.settle b ~now:st.now ~complete:complete'
          | _ -> assert false
        in
        if st.rates_dirty then begin
          refresh ();
          st.rates_dirty <- false
        end;
        let t_internal = next_internal () in
        let next_arrival = next_pending st in
        let t_next = if next_arrival < t_internal then next_arrival else t_internal in
        if t_next > target then begin
          let dt = target -. st.now in
          if dt > 0. then advance_by dt;
          st.now <- target;
          false
        end
        else begin
          bump_events st;
          let dt = t_next -. st.now in
          if dt > 0. then advance_by dt;
          st.now <- t_next;
          settle ();
          admit_upto st st.now;
          st.rates_dirty <- true;
          true
        end

let advance_until t ~target =
  while step t ~target do
    ()
  done

let advance t target =
  if Float.is_nan target then invalid_arg "Live.advance: time must not be NaN";
  if Float.is_finite target && target > t.st.now then advance_until t ~target
(* A target at or before [now] is a no-op — time never rewinds.  An
   infinite target is treated as drain. *)
  else if target = Float.infinity then advance_until t ~target:Float.infinity

let drain t = advance_until t ~target:Float.infinity

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let query (t : t) =
  let st = t.st in
  let n = st.completed in
  let power_sum = Rr_util.Kahan.total st.ps in
  {
    submitted = st.submitted;
    completed = n;
    alive = alive_core st;
    pending = Queue.length st.pending;
    now = st.now;
    events = st.events;
    makespan = st.makespan;
    max_alive = st.max_alive;
    mean_flow = Rr_util.Welford.mean st.moments;
    max_flow = st.max_flow;
    power_sum;
    norm = (if n = 0 then 0. else power_sum ** (1. /. Float.of_int st.k));
    p50 = Rr_util.P2.value st.p50;
    p90 = Rr_util.P2.value st.p90;
    p99 = Rr_util.P2.value st.p99;
  }

let now t = t.st.now
let spec t = t.st.spec
let machines t = t.st.machines
let speed t = t.st.speed
let k t = t.st.k

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* [state] is closure-free, so Marshal round-trips it; the default flags
   keep sharing on, which is what resolves the SETF group list's
   prev/next cycles.  A short magic header versions the format so a junk
   file fails loudly instead of segfaulting the unmarshaller. *)

let snapshot_magic = "rr-live-snapshot-v2\n"

let to_bytes t =
  Bytes.cat (Bytes.of_string snapshot_magic) (Marshal.to_bytes t.st [])

let of_bytes ?(sink = no_sink) b =
  let m = String.length snapshot_magic in
  if
    Bytes.length b < m
    || not (String.equal (Bytes.sub_string b 0 m) snapshot_magic)
  then failwith "Live.of_bytes: not a live-engine snapshot";
  let st : state = Marshal.from_bytes b m in
  { st; sink }

let save t path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc (to_bytes t))

let load ?(sink = no_sink) path =
  In_channel.with_open_bin path (fun ic ->
      match In_channel.input_all ic with
      | s -> of_bytes ~sink (Bytes.of_string s))
