(* Priority-index scheduling kernel: closed-form engines for the
   fixed-priority comparator policies (SRPT / SJF / FCFS) and a
   virtual-time cascade for SETF.  See index_engine.mli for the
   user-facing contract.

   The fixed-priority engines exploit that between events the served set
   is exactly the m alive jobs smallest under a per-job key that never
   crosses another job's key while both wait: remaining work only
   decreases for *served* jobs (SRPT), and size / arrival never change at
   all (SJF / FCFS).  So instead of re-sorting the alive set per event
   (the general loop's O(alive log alive) policy invocation), the engine
   keeps the <= m running jobs in a flat slot array scanned in O(m) and
   everything else in a binary heap ordered by (key, id) — each event
   costs O(m + log alive).

   Arithmetic is kept operation-for-operation identical to the general
   loop under rate 1 (completion candidate [now +. remaining /. speed],
   advance [remaining -. (speed *. dt)] since [1. *. x = x] exactly, the
   shared completion threshold, and the same completion-beats-arrival
   tie rule), so on the same event sequence the engines produce the same
   floats; the differential suite in test_simcore pins agreement to
   <= 1e-9 relative flow time. *)

module Heap = Rr_util.Heap
module Vec = Rr_util.Vec
module Source = Simulator.Source

type kind = Srpt | Sjf | Fcfs | Hdf of { alpha : float }

let kind_name = function Srpt -> "srpt" | Sjf -> "sjf" | Fcfs -> "fcfs" | Hdf _ -> "hdf"

let key_spec = function
  | Srpt -> Policy_class.Key_remaining
  | Sjf -> Policy_class.Key_size
  | Fcfs -> Policy_class.Key_arrival
  | Hdf { alpha } -> Policy_class.Key_density { alpha }

let kind_of_key = function
  | Policy_class.Key_remaining -> Srpt
  | Policy_class.Key_size -> Sjf
  | Policy_class.Key_arrival -> Fcfs
  | Policy_class.Key_density { alpha } -> Hdf { alpha }

(* One expression per kind, shared with the mirror policies through
   {!Policy_class.static_key} so both sides order jobs bit-identically. *)
let job_key kind ~arrival ~size ~remaining =
  Policy_class.static_key (key_spec kind) ~arrival ~size ~remaining

let key_of_view kind (v : Policy.view) =
  match kind with
  | Srpt -> Policy.remaining_exn v
  | Sjf -> Policy.size_exn v
  | Fcfs -> v.Policy.arrival
  | Hdf { alpha } ->
      let size = Policy.size_exn v in
      -.((size ** alpha) /. size)

(* Shared with Rr_policies.Setf.same_group: attained-service levels within
   this (relative) tolerance count as one sharing group. *)
let same_attained a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.max a b)

let no_sink : Simulator.sink = fun ~id:_ ~arrival:_ ~flow:_ -> ()

(* ------------------------------------------------------------------ *)
(* Fixed-priority core (SRPT / SJF / FCFS)                             *)
(* ------------------------------------------------------------------ *)

(* One running job; the <= m slots are scanned linearly, so no heap
   discipline is needed where preemption decisions are made. *)
type slot = {
  mutable id : int;
  mutable arrival : float;
  mutable size : float;
  mutable remaining : float;
}

(* Waiting-heap field layout, uniform across kinds (Scalar3): the
   priority key plus the full resume state

     key = job_key kind, aux1 = arrival, aux2 = size, aux3 = remaining

   so adding a kind is a new [job_key] arm, not a new layout.  A waiting
   job is never served, so its key is frozen while in the heap — the
   heap order stays valid without any decrease-key, even for SRPT whose
   key is genuinely "remaining". *)

let index_core ~record_trace ~speed ~max_events ~machines ~kind ~(source : Source.t)
    ~(complete : int -> float -> float -> unit) =
  if machines < 1 then invalid_arg "Index_engine.run: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Index_engine.run: speed must be finite and positive";
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  let waiting = Arena.scalar3_of scratch in
  let push_waiting ~id ~arrival ~size ~remaining =
    Heap.Scalar3.add waiting
      ~key:(job_key kind ~arrival ~size ~remaining)
      ~aux1:arrival ~aux2:size ~aux3:remaining id
  in
  (* Same float as Simulator.completion_threshold, inlined into the hot
     loop (the cross-module call is measurable at ~100 ns/event). *)
  let threshold size = 1e-9 *. (1. +. size) in
  (* The next pending arrival, buffered as a plain float so the per-event
     tie check costs a load instead of a call; +inf once drained. *)
  let next_arr = ref (Source.next_arrival source) in
  let running = Array.init machines (fun _ -> { id = -1; arrival = 0.; size = 0.; remaining = 0. }) in
  let n_run = ref 0 in
  (* Same expression as [job_key], on slot fields (running jobs' keys
     are live: SRPT's decreases as remaining does). *)
  let slot_key (s : slot) =
    match kind with
    | Srpt -> s.remaining
    | Sjf -> s.size
    | Fcfs -> s.arrival
    | Hdf { alpha } -> -.((s.size ** alpha) /. s.size)
  in
  let pop_into_free_slot () =
    let a1 = Heap.Scalar3.min_aux1_exn waiting in
    let a2 = Heap.Scalar3.min_aux2_exn waiting in
    let a3 = Heap.Scalar3.min_aux3_exn waiting in
    let id = Heap.Scalar3.pop_exn waiting in
    let s = running.(!n_run) in
    s.id <- id;
    s.arrival <- a1;
    s.size <- a2;
    s.remaining <- a3;
    incr n_run
  in
  let completed = ref 0 in
  let max_alive = ref 0 in
  let makespan = ref 0. in
  let events = ref 0 in
  let trace_arena : Trace.segment Vec.t = Arena.segments_of scratch in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  if machines = 1 then begin
    (* Single-machine specialization — the configuration every ratio run
       hits for its baselines.  The running set is one slot that never
       moves (retiring at m = 1 cannot swap), so the generic loop's
       per-event array scans collapse to direct field accesses; the event
       semantics and arithmetic are identical to the generic path below. *)
    let s = running.(0) in
    let busy = ref false in
    let note_alive () =
      let alive = (if !busy then 1 else 0) + Heap.Scalar3.length waiting in
      if alive > !max_alive then max_alive := alive
    in
    let fill (j : Job.t) =
      s.id <- j.id;
      s.arrival <- j.arrival;
      s.size <- j.size;
      s.remaining <- j.size
    in
    let admit (j : Job.t) =
      if not !busy then begin
        fill j;
        busy := true
      end
      else begin
        let kj = job_key kind ~arrival:j.arrival ~size:j.size ~remaining:j.size in
        let ks = slot_key s in
        if kj < ks || (kj = ks && j.id < s.id) then begin
          push_waiting ~id:s.id ~arrival:s.arrival ~size:s.size ~remaining:s.remaining;
          fill j
        end
        else push_waiting ~id:j.id ~arrival:j.arrival ~size:j.size ~remaining:j.size
      end;
      note_alive ()
    in
    let admit_upto now =
      while !next_arr <= now do
        (match Source.next source with Some j -> admit j | None -> ());
        next_arr := Source.next_arrival source
      done
    in
    let push_trace ~t0 ~t1 =
      let n_alive = (if !busy then 1 else 0) + Heap.Scalar3.length waiting in
      let entries = Array.make n_alive { Trace.job = -1; arrival = 0.; rate = 0. } in
      let next = ref 0 in
      if !busy then begin
        entries.(0) <- { Trace.job = s.id; arrival = s.arrival; rate = 1. };
        next := 1
      end;
      Heap.Scalar3.iter
        (fun _key id arrival _size _remaining ->
          entries.(!next) <- { Trace.job = id; arrival; rate = 0. };
          incr next)
        waiting;
      Vec.push trace_arena { Trace.t0; t1; alive = entries }
    in
    admit_upto !now;
    while !busy || Source.has_more source do
      incr events;
      if !events > max_events then
        raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
      if not !busy then begin
        now := !next_arr;
        admit_upto !now
      end
      else begin
        let c = !now +. (s.remaining /. speed) in
        let t_next = if !next_arr < c then !next_arr else c in
        let dt = t_next -. !now in
        if record_trace then push_trace ~t0:!now ~t1:t_next;
        s.remaining <- s.remaining -. (speed *. dt);
        now := t_next;
        if s.remaining <= threshold s.size then begin
          complete s.id s.arrival !now;
          incr completed;
          makespan := !now;
          if Heap.Scalar3.is_empty waiting then busy := false
          else begin
            let a1 = Heap.Scalar3.min_aux1_exn waiting in
            let a2 = Heap.Scalar3.min_aux2_exn waiting in
            let a3 = Heap.Scalar3.min_aux3_exn waiting in
            let id = Heap.Scalar3.pop_exn waiting in
            s.id <- id;
            s.arrival <- a1;
            s.size <- a2;
            s.remaining <- a3
          end
        end;
        admit_upto !now
      end
    done
  end
  else begin
  let note_alive () =
    let alive = !n_run + Heap.Scalar3.length waiting in
    if alive > !max_alive then max_alive := alive
  in
  (* Admission: a free machine always goes to the newcomer (the waiting
     heap is empty whenever a machine is idle — promotion below refills
     eagerly).  Otherwise the newcomer preempts the weakest running job
     iff it beats it under (key, id) — one comparison against an O(m)
     scan, which reproduces the general loop's full re-sort because at
     most one job changes per arrival (the tournament property). *)
  let admit (j : Job.t) =
    if !n_run < machines then begin
      let s = running.(!n_run) in
      s.id <- j.id;
      s.arrival <- j.arrival;
      s.size <- j.size;
      s.remaining <- j.size;
      incr n_run
    end
    else begin
      let w = ref 0 in
      for i = 1 to machines - 1 do
        let a = running.(i) and b = running.(!w) in
        let ka = slot_key a and kb = slot_key b in
        if ka > kb || (ka = kb && a.id > b.id) then w := i
      done;
      let s = running.(!w) in
      let kj = job_key kind ~arrival:j.arrival ~size:j.size ~remaining:j.size in
      let ks = slot_key s in
      if kj < ks || (kj = ks && j.id < s.id) then begin
        push_waiting ~id:s.id ~arrival:s.arrival ~size:s.size ~remaining:s.remaining;
        s.id <- j.id;
        s.arrival <- j.arrival;
        s.size <- j.size;
        s.remaining <- j.size
      end
      else push_waiting ~id:j.id ~arrival:j.arrival ~size:j.size ~remaining:j.size
    end;
    note_alive ()
  in
  let admit_upto now =
    while !next_arr <= now do
      (match Source.next source with Some j -> admit j | None -> ());
      next_arr := Source.next_arrival source
    done
  in
  let push_trace ~t0 ~t1 =
    let n_alive = !n_run + Heap.Scalar3.length waiting in
    let entries = Array.make n_alive { Trace.job = -1; arrival = 0.; rate = 0. } in
    for i = 0 to !n_run - 1 do
      let s = running.(i) in
      entries.(i) <- { Trace.job = s.id; arrival = s.arrival; rate = 1. }
    done;
    let next = ref !n_run in
    Heap.Scalar3.iter
      (fun _key id arrival _size _remaining ->
        entries.(!next) <- { Trace.job = id; arrival; rate = 0. };
        incr next)
      waiting;
    Vec.push trace_arena { Trace.t0; t1; alive = entries }
  in
  admit_upto !now;
  while !n_run > 0 || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
    if !n_run = 0 then begin
      now := !next_arr;
      admit_upto !now
    end
    else begin
      (* Earliest completion among the running slots; same arithmetic as
         the general loop's [now + remaining / (rate * speed)] at rate 1. *)
      let t_next = ref Float.infinity in
      for i = 0 to !n_run - 1 do
        let c = !now +. (running.(i).remaining /. speed) in
        if c < !t_next then t_next := c
      done;
      if !next_arr < !t_next then t_next := !next_arr;
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then push_trace ~t0:!now ~t1:!t_next;
      for i = 0 to !n_run - 1 do
        let s = running.(i) in
        s.remaining <- s.remaining -. (speed *. dt)
      done;
      now := !t_next;
      (* Retire finished slots (swap-remove, iterating downwards). *)
      for i = !n_run - 1 downto 0 do
        let s = running.(i) in
        if s.remaining <= threshold s.size then begin
          complete s.id s.arrival !now;
          incr completed;
          makespan := !now;
          decr n_run;
          if i < !n_run then begin
            running.(i) <- running.(!n_run);
            running.(!n_run) <- s
          end
        end
      done;
      (* Freed machines pull the best waiting jobs before new arrivals
         are admitted — at time [t] the running set must be the top-m of
         the jobs released strictly before any job arriving at [t]
         (completion beats arrival, as in the general loop). *)
      while !n_run < machines && not (Heap.Scalar3.is_empty waiting) do
        pop_into_free_slot ()
      done;
      admit_upto !now
    end
  done
  end;
  let trace = Vec.to_list trace_arena in
  ( {
      Simulator.n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    trace )

let run ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines ~kind jobs =
  let n = Simulator.validate_jobs jobs in
  let jobs_arr = Simulator.jobs_by_id jobs n in
  let order = Simulator.release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete id arrival now =
    completions.(id) <- now;
    sink ~id ~arrival ~flow:(now -. arrival)
  in
  let summary, trace =
    index_core ~record_trace ~speed ~max_events ~machines ~kind
      ~source:(Source.of_array order) ~complete
  in
  {
    Simulator.jobs = jobs_arr;
    completions;
    trace;
    machines;
    speed;
    events = summary.Simulator.events;
  }

let run_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~kind ~sink pull =
  let complete id arrival now = sink ~id ~arrival ~flow:(now -. arrival) in
  let summary, _trace =
    index_core ~record_trace:false ~speed ~max_events ~machines ~kind
      ~source:(Source.of_fn pull) ~complete
  in
  summary

(* ------------------------------------------------------------------ *)
(* SETF cascade                                                        *)
(* ------------------------------------------------------------------ *)

(* Alive jobs partition into groups of equal attained service, kept as a
   doubly-linked list sorted by level (ascending — least attained first).
   Water-filling gives rate 1 to a prefix of groups, a fractional rate to
   at most one marginal group, and rate 0 to the rest, so the advancing
   region is always a prefix of <= m+1 nodes: recomputing rates, finding
   the earliest completion, and finding the earliest catch-up are all
   O(m) walks from the front, never O(groups).  A group's level is stored
   lazily as [(level, t_upd, grate)] and materialized when the prefix
   advances; frozen groups carry exact levels by construction.  Catch-ups
   merge the faster group into its neighbour small-into-large, so each
   job changes heaps O(log n) times over a run.

   The per-group member heap is keyed by size (ties by id): equal
   attained service means the least size is also the least remaining, so
   within-group completions cascade in heap order exactly like the
   equal-share engine's deadline cascade. *)

type group = {
  mutable level : float;  (* attained service per member at [t_upd] *)
  mutable t_upd : float;
  mutable grate : float;  (* policy rate in [0, 1]; advance = grate * speed *)
  members : Heap.Scalar2.t;  (* key = size, val = id, aux1 = arrival *)
  mutable prev : group option;
  mutable next : group option;
}

let setf_core ~record_trace ~speed ~max_events ~machines ~(source : Source.t)
    ~(complete : int -> float -> float -> unit) =
  if machines < 1 then invalid_arg "Index_engine.run_setf: machines must be >= 1";
  if not (Float.is_finite speed && speed > 0.) then
    invalid_arg "Index_engine.run_setf: speed must be finite and positive";
  let scratch = Arena.borrow () in
  Fun.protect ~finally:(fun () -> Arena.release scratch) @@ fun () ->
  (* Group member heaps cycle through a free list: a merged-away or
     emptied group donates its (cleared) heap to the next group opened,
     so in steady state opening a group costs a list cons, not a heap.
     The first few heaps come from the arena and keep their capacity
     across runs. *)
  let heap_pool : Heap.Scalar2.t list ref = ref [] in
  let take_members () =
    match !heap_pool with
    | h :: tl ->
        heap_pool := tl;
        h
    | [] -> Arena.scalar2_of scratch
  in
  let recycle_members (h : Heap.Scalar2.t) =
    Heap.Scalar2.clear h;
    heap_pool := h :: !heap_pool
  in
  let first : group option ref = ref None in
  let alive = ref 0 in
  let completed = ref 0 in
  let max_alive = ref 0 in
  let makespan = ref 0. in
  let level_at (g : group) now = g.level +. (g.grate *. speed *. (now -. g.t_upd)) in
  let unlink (g : group) =
    (match g.prev with None -> first := g.next | Some p -> p.next <- g.next);
    match g.next with None -> () | Some nx -> nx.prev <- g.prev
  in
  (* Water-filling from the front, identical arithmetic to the general
     SETF policy: rate min(1, left/count) per group, front first.  [left]
     stays an exact small integer while groups saturate, so the marginal
     group's fractional rate is the same float the policy computes; after
     the marginal group the remaining capacity is exactly zero (the
     policy's own subtraction may leave an ulp of dust there, feeding
     rates ~1e-18 to frozen groups — a difference absorbed by the 1e-9
     differential tolerance).  Rates are non-increasing along the list,
     so once a previously-frozen group is reached with nothing left, the
     walk can stop. *)
  let refill now =
    let rec go g left =
      match g with
      | None -> ()
      | Some g ->
          g.level <- level_at g now;
          g.t_upd <- now;
          if left > 0. then begin
            let cnt = Float.of_int (Heap.Scalar2.length g.members) in
            let r = Float.min 1. (left /. cnt) in
            g.grate <- r;
            go g.next (if r < 1. then 0. else left -. cnt)
          end
          else if g.grate > 0. then begin
            g.grate <- 0.;
            go g.next 0.
          end
    in
    go !first (Float.of_int machines)
  in
  (* A newcomer has attained 0: it joins the front group when that group's
     level is still within the sharing tolerance of 0 (the same
     [same_group] predicate the policy applies), otherwise it opens a new
     front group at level 0.  Its rate is set by the next [refill]. *)
  let admit (j : Job.t) now =
    let joined =
      match !first with
      | Some g when same_attained 0. (level_at g now) ->
          Heap.Scalar2.add g.members ~key:j.size ~aux1:j.arrival ~aux2:0. j.id;
          true
      | _ -> false
    in
    if not joined then begin
      let members = take_members () in
      Heap.Scalar2.add members ~key:j.size ~aux1:j.arrival ~aux2:0. j.id;
      let g = { level = 0.; t_upd = now; grate = 0.; members; prev = None; next = !first } in
      (match !first with None -> () | Some old -> old.prev <- Some g);
      first := Some g
    end;
    incr alive;
    if !alive > !max_alive then max_alive := !alive
  in
  let admit_upto now =
    let continue = ref true in
    while !continue do
      match Source.peek source with
      | Some j when j.Job.arrival <= now ->
          ignore (Source.next source);
          admit j now
      | _ -> continue := false
    done
  in
  let trace_arena : Trace.segment Vec.t = Arena.segments_of scratch in
  let push_trace ~t0 ~t1 =
    let entries = Array.make !alive { Trace.job = -1; arrival = 0.; rate = 0. } in
    let next = ref 0 in
    let rec go = function
      | None -> ()
      | Some (g : group) ->
          Heap.Scalar2.iter
            (fun _size id arrival _aux2 ->
              entries.(!next) <- { Trace.job = id; arrival; rate = g.grate };
              incr next)
            g.members;
          go g.next
    in
    go !first;
    Vec.push trace_arena { Trace.t0; t1; alive = entries }
  in
  let events = ref 0 in
  let now = ref (match Source.peek source with Some j -> j.Job.arrival | None -> 0.) in
  admit_upto !now;
  while Option.is_some !first || Source.has_more source do
    incr events;
    if !events > max_events then
      raise (Simulator.Event_limit_exceeded { limit = max_events; now = !now });
    if Option.is_none !first then begin
      now := Source.next_arrival source;
      admit_upto !now
    end
    else begin
      (* Rates reflect the structure left by the previous event. *)
      refill !now;
      (* Next event: earliest within-group completion, earliest adjacent
         catch-up (both only in the advancing prefix), or next arrival —
         completion/catch-up beats an arrival tie, as everywhere. *)
      let t_next = ref Float.infinity in
      let rec scan = function
        | None -> ()
        | Some (g : group) ->
            if g.grate > 0. then begin
              let c =
                !now +. ((Heap.Scalar2.min_key_exn g.members -. g.level) /. (g.grate *. speed))
              in
              if c < !t_next then t_next := c;
              (match g.next with
              | Some h ->
                  let closing = (g.grate -. h.grate) *. speed in
                  let gap = level_at h !now -. g.level in
                  if closing > 0. && gap > 0. then begin
                    let t = !now +. (gap /. closing) in
                    if t < !t_next then t_next := t
                  end
              | None -> ());
              scan g.next
            end
      in
      scan !first;
      let next_arrival = Source.next_arrival source in
      if next_arrival < !t_next then t_next := next_arrival;
      if not (Float.is_finite !t_next) then
        raise
          (Simulator.Invalid_allocation
             "alive jobs receive no service and no arrival or horizon is pending");
      let dt = !t_next -. !now in
      assert (dt > 0.);
      if record_trace then push_trace ~t0:!now ~t1:!t_next;
      (* Advance the prefix (materializing levels at t_next), then retire
         every member whose residual [size - level] crossed the shared
         completion threshold — the cascade pops in (size, id) order. *)
      let rec advance = function
        | None -> ()
        | Some (g : group) ->
            if g.grate > 0. then begin
              g.level <- g.level +. (g.grate *. speed *. dt);
              g.t_upd <- !t_next;
              advance g.next
            end
      in
      advance !first;
      now := !t_next;
      let rec retire = function
        | None -> ()
        | Some (g : group) ->
            if g.grate > 0. then begin
              let nxt = g.next in
              while
                (not (Heap.Scalar2.is_empty g.members))
                && Heap.Scalar2.min_key_exn g.members -. g.level
                   <= Simulator.completion_threshold (Heap.Scalar2.min_key_exn g.members)
              do
                let arrival = Heap.Scalar2.min_aux1_exn g.members in
                let id = Heap.Scalar2.pop_exn g.members in
                complete id arrival !now;
                incr completed;
                decr alive;
                makespan := !now
              done;
              if Heap.Scalar2.is_empty g.members then begin
                unlink g;
                recycle_members g.members
              end;
              retire nxt
            end
      in
      retire !first;
      (* Catch-ups: an advancing group whose level reached its neighbour's
         (within the sharing tolerance) merges into it, small heap into
         large; the merged node keeps the neighbour region's level.  Only
         adjacent pairs in the advancing prefix can meet. *)
      let rec merge_pass = function
        | None -> ()
        | Some (g : group) ->
            if g.grate > 0. then
              match g.next with
              | Some h when same_attained g.level (level_at h !now) ->
                  let lvl = level_at h !now in
                  let src, keep =
                    if Heap.Scalar2.length g.members <= Heap.Scalar2.length h.members then
                      (g, h)
                    else (h, g)
                  in
                  Heap.Scalar2.iter
                    (fun size id arrival _ ->
                      Heap.Scalar2.add keep.members ~key:size ~aux1:arrival ~aux2:0. id)
                    src.members;
                  recycle_members src.members;
                  keep.level <- lvl;
                  keep.t_upd <- !now;
                  keep.grate <- Float.max g.grate h.grate;
                  unlink src;
                  merge_pass (Some keep)
              | _ -> merge_pass g.next
      in
      merge_pass !first;
      admit_upto !now
    end
  done;
  let trace = Vec.to_list trace_arena in
  ( {
      Simulator.n = !completed;
      events = !events;
      machines;
      speed;
      makespan = !makespan;
      max_alive = !max_alive;
    },
    trace )

let run_setf ?(record_trace = false) ?(speed = 1.) ?(max_events = 10_000_000) ?(sink = no_sink)
    ~machines jobs =
  let n = Simulator.validate_jobs jobs in
  let jobs_arr = Simulator.jobs_by_id jobs n in
  let order = Simulator.release_order jobs n in
  let completions = Array.make n Float.nan in
  let complete id arrival now =
    completions.(id) <- now;
    sink ~id ~arrival ~flow:(now -. arrival)
  in
  let summary, trace =
    setf_core ~record_trace ~speed ~max_events ~machines ~source:(Source.of_array order)
      ~complete
  in
  {
    Simulator.jobs = jobs_arr;
    completions;
    trace;
    machines;
    speed;
    events = summary.Simulator.events;
  }

let run_setf_stream ?(speed = 1.) ?(max_events = 10_000_000) ~machines ~sink pull =
  let complete id arrival now = sink ~id ~arrival ~flow:(now -. arrival) in
  let summary, _trace =
    setf_core ~record_trace:false ~speed ~max_events ~machines ~source:(Source.of_fn pull)
      ~complete
  in
  summary
