(* First-class priority descriptors: the declaration a policy makes so
   the engine layer can run it on a specialised kernel instead of the
   general O(alive log alive) event loop.  See policy_class.mli.

   Everything here is plain data — floats, ints, closed variants, no
   closures — because a descriptor is embedded in {!Live} engine state,
   which snapshots with [Marshal]. *)

type key =
  | Key_remaining
  | Key_size
  | Key_arrival
  | Key_density of { alpha : float }

type t =
  | Equal_share
  | Static_key of key
  | Attained_cascade
  | Level_ladder of { base_quantum : float; factor : float; levels : int }
  | Quantum_cycle of { quantum : float }
  | Latest_fraction of { beta : float }
  | Aged_share of { k : int; refresh : float; offset : float }
  | Sized_share of { gamma : float }
  | Starvation_hybrid of { theta : float }
  | Preempt_budget of { budget : int }

let key_name = function
  | Key_remaining -> "srpt"
  | Key_size -> "sjf"
  | Key_arrival -> "fcfs"
  | Key_density _ -> "hdf"

(* The audit string each engine selection prints and cache entries key
   on; one name per kernel, stable across parameter values (parameters
   are part of the policy name, which is also in the cache key). *)
let engine_name = function
  | Equal_share -> "equal-share"
  | Static_key k -> key_name k ^ "-index"
  | Attained_cascade -> "setf-cascade"
  | Level_ladder _ -> "mlfq-ladder"
  | Quantum_cycle _ -> "quantum-cycle"
  | Latest_fraction _ -> "laps-dense"
  | Aged_share _ -> "wrr-age-dense"
  | Sized_share _ -> "wrr-static-dense"
  | Starvation_hybrid _ -> "hybrid-index"
  | Preempt_budget _ -> "srpt-mig-index"

let clairvoyant = function
  | Static_key (Key_remaining | Key_size | Key_density _)
  | Sized_share _ | Starvation_hybrid _ | Preempt_budget _ ->
      true
  | Equal_share | Static_key Key_arrival | Attained_cascade | Level_ladder _
  | Quantum_cycle _ | Latest_fraction _ | Aged_share _ ->
      false

(* The static priority key of a job under a [Static_key] class.  Shared
   between the mirror policies (via {!static_key_of_view}) and the index
   kernel so both compute the identical float. *)
let static_key k ~arrival ~size ~remaining =
  match k with
  | Key_remaining -> remaining
  | Key_size -> size
  | Key_arrival -> arrival
  | Key_density { alpha } -> -.((size ** alpha) /. size)

(* The instant a job crosses the starvation threshold: its flow/size
   ratio reaches theta.  One expression, shared by the hybrid mirror
   policy (starved iff [now >= starve_time]) and the hybrid kernel
   (promotion events fire at exactly this float), so the two sides agree
   bit for bit on who is starved when. *)
let starve_time ~theta ~arrival ~size = arrival +. (theta *. size)

(* ------------------------------------------------------------------ *)
(* Shared reference computations                                       *)
(* ------------------------------------------------------------------ *)

(* These are the numeric kernels the mirror policies AND the class
   engines both call, so the two sides compute bit-identical floats; the
   differential suites then only absorb rounding from interval-splitting
   and accumulation order, never from reimplemented formulas. *)

(* Capped proportional allocation over weights already sorted by
   (weight desc, id asc): the [c] heaviest jobs are capped at rate 1,
   the rest share the remaining machines proportionally; [c] is the
   smallest count for which no uncapped job exceeds rate 1. *)
(* In-place variant for engines that recompute rates every event: the
   caller owns [weights] (first [n] entries live), a [suffix] scratch of
   length >= n + 1, and the [rates] output of length >= n.  Arithmetic,
   accumulation order, and tie handling are exactly those of
   {!capped_rates}, which delegates here, so the two can never drift. *)
let capped_rates_into ~machines ~n ~weights ~suffix ~rates =
  let m = Float.of_int machines in
  if n <= machines then Array.fill rates 0 n 1.
  else begin
    suffix.(n) <- 0.;
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) +. weights.(i)
    done;
    let rec find_cap c =
      if c >= machines then machines
      else
        let theta = (m -. Float.of_int c) /. suffix.(c) in
        if weights.(c) *. theta > 1. then find_cap (c + 1) else c
    in
    let c = find_cap 0 in
    let theta = if c = machines then 0. else (m -. Float.of_int c) /. suffix.(c) in
    for i = 0 to n - 1 do
      rates.(i) <- (if i < c then 1. else Float.min 1. (weights.(i) *. theta))
    done
  end

let capped_rates ~machines sorted_weights =
  let n = Array.length sorted_weights in
  let rates = Array.make n 0. in
  let suffix = Array.make (n + 1) 0. in
  capped_rates_into ~machines ~n ~weights:sorted_weights ~suffix ~rates;
  rates

let proportional_rates ~machines ~ids weights =
  let n = Array.length weights in
  if Array.length ids <> n then
    invalid_arg "Policy_class.proportional_rates: ids and weights must have equal length";
  if n <= machines then Array.make n 1.
  else begin
    (* Weight ties break by increasing job id so the suffix sums above
       accumulate in one deterministic order — a dense engine that keeps
       its jobs pre-sorted replays the same order via {!capped_rates}. *)
    let idx = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        match Float.compare weights.(b) weights.(a) with
        | 0 -> Int.compare ids.(a) ids.(b)
        | c -> c)
      idx;
    let sorted = Array.map (fun i -> weights.(i)) idx in
    let sorted_rates = capped_rates ~machines sorted in
    let rates = Array.make n 0. in
    Array.iteri (fun rank i -> rates.(i) <- sorted_rates.(rank)) idx;
    rates
  end

(* MLFQ's cumulative demotion ladder: T_0 = q, T_1 = q + q f, ...; a job
   sits in the first level whose threshold its attained service has not
   reached, and stays in the last level forever once past all
   thresholds.

   The comparison carries the same relative tolerance as the simulator's
   completion threshold.  Promotion events drive [attained] to land on a
   threshold exactly, so an exact [<] would classify the landing by its
   last rounding error — engines that accumulate service in different
   interval splits (the live engine advances to caller horizons) could
   then disagree on the level and diverge macroscopically.  Within the
   band every engine agrees the job has promoted. *)
let ladder_level ~base_quantum ~factor ~levels attained =
  let rec go level threshold quantum =
    if level >= levels - 1 || attained < threshold -. (1e-9 *. (1. +. threshold)) then level
    else go (level + 1) (threshold +. (quantum *. factor)) (quantum *. factor)
  in
  go 0 base_quantum base_quantum

let ladder_threshold ~base_quantum ~factor level =
  (* Sum of the first (level+1) quanta. *)
  let rec go l acc quantum =
    if l > level then acc else go (l + 1) (acc +. quantum) (quantum *. factor)
  in
  go 0 0. base_quantum

let validate = function
  | Equal_share | Attained_cascade -> Ok ()
  | Static_key (Key_remaining | Key_size | Key_arrival) -> Ok ()
  | Static_key (Key_density { alpha }) ->
      if Float.is_finite alpha then Ok () else Error "hdf alpha must be finite"
  | Level_ladder { base_quantum; factor; levels } ->
      if base_quantum <= 0. then Error "mlfq base quantum must be positive"
      else if factor < 1. then Error "mlfq factor must be >= 1"
      else if levels < 1 then Error "mlfq levels must be >= 1"
      else Ok ()
  | Quantum_cycle { quantum } ->
      if quantum > 0. then Ok () else Error "quantum must be positive"
  | Latest_fraction { beta } ->
      if beta > 0. && beta <= 1. then Ok () else Error "laps beta must be in (0, 1]"
  | Aged_share { k; refresh; offset } ->
      if k < 1 then Error "wrr-age k must be >= 1"
      else if refresh <= 0. then Error "wrr-age refresh must be positive"
      else if offset <= 0. then Error "wrr-age offset must be positive"
      else Ok ()
  | Sized_share { gamma } ->
      if Float.is_finite gamma then Ok () else Error "wrr-static gamma must be finite"
  | Starvation_hybrid { theta } ->
      if Float.is_finite theta && theta > 0. then Ok ()
      else Error "hybrid theta must be finite and positive"
  | Preempt_budget { budget } ->
      if budget >= 0 then Ok () else Error "srpt-mig budget must be >= 0"

let describe = function
  | Equal_share -> "equal share (processor sharing)"
  | Static_key Key_remaining -> "static key: remaining work (frozen while waiting)"
  | Static_key Key_size -> "static key: size"
  | Static_key Key_arrival -> "static key: arrival"
  | Static_key (Key_density { alpha }) ->
      Printf.sprintf "static key: negated density size^%g/size" alpha
  | Attained_cascade -> "least-attained-service cascade"
  | Level_ladder { base_quantum; factor; levels } ->
      Printf.sprintf "attained-service quantum ladder (q=%g, f=%g, %d levels)" base_quantum
        factor levels
  | Quantum_cycle { quantum } -> Printf.sprintf "round-robin quantum cycle (q=%g)" quantum
  | Latest_fraction { beta } ->
      Printf.sprintf "equal share over the latest ceil(%g n) arrivals" beta
  | Aged_share { k; _ } -> Printf.sprintf "age^%d-weighted proportional share" (k - 1)
  | Sized_share { gamma } -> Printf.sprintf "size^%g-weighted proportional share" gamma
  | Starvation_hybrid { theta } ->
      Printf.sprintf "SRPT, FCFS once flow/size >= %g" theta
  | Preempt_budget { budget } ->
      Printf.sprintf "SRPT, non-preemptible after %d preemptions" budget
