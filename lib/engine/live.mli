(** Incremental, submit-while-running scheduling core.

    Every other engine in this library consumes a complete arrival
    sequence fixed before the run starts.  A live engine instead exposes
    the paper's actual online process: jobs are {!submit}ted while the
    simulation is under way, {!advance} moves the clock up to a horizon
    (processing exactly the completions, SETF catch-ups and admissions
    falling inside it, and splitting the final inter-event interval at
    the horizon), and {!query} reads O(1)-memory live metrics at any
    instant — the Lk power sum and norm, Welford mean, running max, and
    P-squared percentile sketches ({!Rr_util.P2}) over completed flow
    times.

    The three kernels are the closed-form fast engines re-expressed as
    resumable state: the equal-share virtual-service deadline heap
    ({!Simulator.run_equal_share}) for Round Robin, the priority-index
    slot/heap kernel ({!Index_engine.run}) for SRPT / SJF / FCFS, and the
    SETF group cascade ({!Index_engine.run_setf}).  Each event costs
    O(m + log alive); live memory is O(alive + pending), independent of
    how many jobs have passed through.  On a submit-everything-upfront
    feed the event sequence matches the closed engines exactly; horizons
    that split inter-event intervals accumulate the analytic advance in
    pieces, a rounding difference bounded well inside the 1e-9 relative
    flow-time tolerance pinned by the differential suite (test_live.ml).

    Engine state is closure-free, so a whole engine — mid-run, with jobs
    alive and pending — serializes with {!to_bytes}/{!save} and resumes
    with {!of_bytes}/{!load}; [rr_cli serve] builds its SNAPSHOT/RESTORE
    protocol commands on these. *)

type spec =
  | Equal_share
  | Indexed of Index_engine.kind
  | Setf_cascade
  | Classified of Policy_class.t
(** Which kernel drives the engine.  [Classified] accepts {e any} policy
    class ({!Policy_class.t}) and routes it to the matching incremental
    core — the equal-share deadline heap, the priority index, the SETF
    cascade, the dense class kernels ({!Class_engine}), the starvation
    hybrid ({!Hybrid_engine}) or the preemption-budget kernel
    ({!Budget_engine}).  [Equal_share] / [Indexed] / [Setf_cascade] are
    the pre-classification spellings of the same three cores, kept for
    back-compatibility.  (Unclassified policies need the per-event
    policy loop and have no incremental form — see [Run.engine] for how
    the two surfaces meet.) *)

val spec_name : spec -> string
(** Audit name, matching [Run.engine_name]: ["equal-share"],
    ["srpt-index"], ["setf-cascade"], ["mlfq-ladder"], ["hybrid-index"],
    ... ({!Policy_class.engine_name}). *)

val spec_of_string : string -> spec option
(** Accepts every registry policy name — ["rr"], ["srpt"], ["sjf"],
    ["fcfs"], ["setf"], ["hdf"], ["laps"], ["mlfq"], ["quantum-rr"],
    ["wrr-age"], ["wrr-static"], ["hybrid"], ["srpt-mig"] — at its
    registry-default parameters (plus the {!spec_name} spellings);
    case-insensitive.  [None] for anything else.  Use the typed
    [Classified] constructor for non-default parameters. *)

val spec_names : string list
(** The canonical accepted names, for CLI help text. *)

type t
(** A live engine.  Not domain-safe: drive each engine from one domain. *)

type stats = {
  submitted : int;  (** Jobs submitted so far. *)
  completed : int;  (** Jobs completed so far. *)
  alive : int;  (** Admitted and unfinished at [now] (excludes [pending]). *)
  pending : int;  (** Submitted with an arrival still in the future. *)
  now : float;  (** Current simulation clock. *)
  events : int;  (** Events processed so far. *)
  makespan : float;  (** Time of the latest completion; [0.] before any. *)
  max_alive : int;  (** Peak number of admitted unfinished jobs. *)
  mean_flow : float;  (** Mean completed flow time; [0.] before any. *)
  max_flow : float;  (** Max completed flow time; [0.] before any. *)
  power_sum : float;  (** Kahan-compensated [sum F_j^k] over completions. *)
  norm : float;  (** [power_sum ** (1/k)]; [0.] before any completion. *)
  p50 : float;  (** P-squared median estimate ({!Rr_util.P2}). *)
  p90 : float;  (** P-squared 0.9-quantile estimate. *)
  p99 : float;  (** P-squared 0.99-quantile estimate. *)
}

val create :
  ?machines:int ->
  ?speed:float ->
  ?k:int ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  spec ->
  t
(** [create spec] builds an idle engine at time [0.] with no jobs.
    [machines] (default 1) and [speed] (default 1.) as in
    {!Simulator.run}; [k] (default 2) selects the Lk power sum the live
    metrics accumulate; [max_events] (default unbounded) bounds total
    events as in the closed engines, for livelock parity
    (@raise Simulator.Event_limit_exceeded from {!advance}/{!drain} when
    exceeded).  [sink] is called once per completion with the job's id,
    arrival and flow time, on top of the built-in metric folds.
    @raise Invalid_argument on non-positive [machines]/[speed]/[k]. *)

val set_sink : t -> Simulator.sink -> unit
(** Replace the completion sink (snapshots never capture it). *)

val submit : t -> arrival:float -> size:float -> int
(** Submit one job; returns its dense id (0, 1, 2, ... in submission
    order).  Arrivals must be non-decreasing across submissions and must
    not lie in the simulated past ([arrival >= now]); the job waits in
    the pending queue until {!advance} reaches its arrival.
    @raise Invalid_argument on a non-finite or decreasing arrival, an
    arrival before [now], or a non-positive size. *)

val submit_batch :
  t -> arrivals:float array -> sizes:float array -> ?off:int -> ?len:int -> unit -> int
(** [submit_batch t ~arrivals ~sizes ()] submits the [len] jobs (default:
    all of [arrivals] from [off], default 0) in order, exactly as [len]
    calls to {!submit} would — bit-identical engine state and metrics —
    with the validation hoisted into one pass over the slice.  Returns
    the first id; the batch receives ids [first .. first + len - 1]
    ([len = 0] returns the next id with no effect).  Atomic: the whole
    slice is validated {e before} anything is queued, so a rejected batch
    leaves the engine untouched — which is what lets the serving layer
    ([rr_cli serve]'s BATCH frame) answer ERR and carry on.
    @raise Invalid_argument on a bad slice or any job {!submit} would
    reject, with nothing submitted. *)

val advance : t -> float -> unit
(** [advance t horizon] processes every event at or before [horizon] and
    moves the clock exactly there (partially serving jobs mid-interval,
    the same analytic advance the closed cores apply between events).  A
    horizon at or before [now] is a no-op; [infinity] behaves like
    {!drain}.  @raise Invalid_argument on NaN. *)

val drain : t -> unit
(** Run until no job is alive or pending.  The clock ends at the last
    completion (not at infinity), so more jobs can be submitted and the
    engine advanced again afterwards. *)

val query : t -> stats
(** Read the live metrics; O(1), callable at any instant. *)

val now : t -> float
val spec : t -> spec
val machines : t -> int
val speed : t -> float
val k : t -> int

(** {2 Snapshot / restore}

    The serialized form includes the clock, every alive and pending job,
    and all metric accumulators — everything except the sink closure —
    so a restored engine continues exactly where the snapshot was taken.
    Snapshots are Marshal-based: same-build process pairs only (the
    [rr_cli serve] daemon's SNAPSHOT/RESTORE use case), not an archival
    format. *)

val to_bytes : t -> bytes

val of_bytes : ?sink:Simulator.sink -> bytes -> t
(** @raise Failure when the bytes are not a live-engine snapshot. *)

val save : t -> string -> unit
(** Write {!to_bytes} to a file. *)

val load : ?sink:Simulator.sink -> string -> t
(** Read an engine back from {!save}.
    @raise Failure when the file is not a live-engine snapshot;
    @raise Sys_error on unreadable paths. *)
