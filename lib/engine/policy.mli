(** The scheduling-policy interface.

    Following Section 2 of the paper, a feasible schedule on [m] identical
    machines is characterised by rates [{m_j(t)}] over the alive jobs with
    [sum_j m_j(t) <= m] and [m_j(t) in \[0, 1\]].  A policy is a function
    from the current system state to such a rate vector, optionally together
    with a {e horizon}: an absolute time before which the allocation must be
    recomputed even if no arrival or completion occurs (used by policies
    whose internal priorities drift continuously, such as SETF group
    catch-up or age-weighted Round Robin).

    Resource augmentation: rates are expressed {e before} the speed-up; the
    simulator multiplies them by its [speed] parameter, so an [s]-speed
    policy processes job [j] at rate [s * m_j(t)], exactly as in the
    resource-augmentation model of Kalyanasundaram and Pruhs the paper
    adopts.

    Non-clairvoyance: the [size] and [remaining] fields of a job view are
    [None] unless the policy declares itself [clairvoyant].  Round Robin
    never looks at them, reproducing the paper's remark that RR "does not
    need to know job's size until its completion". *)

type view = {
  id : int;  (** Job identifier. *)
  arrival : float;  (** Release time [r_j]. *)
  mutable attained : float;  (** Work received so far (at unit speed scale). *)
  size : float option;  (** [p_j]; [None] for non-clairvoyant policies. *)
  mutable remaining : float option;  (** [p_j] minus attained; [None] likewise. *)
}
(** The mutable fields belong to the simulator: it keeps one view per
    alive job and updates it in place between events instead of
    reallocating the whole view array (the zero-allocation event loop).
    Policies must treat views as read-only, and must not retain a view
    (or the array) beyond the [allocate] call that received it. *)

type decision = {
  rates : float array;
      (** [rates.(i)] is the machine share of [views.(i)], in [\[0, 1\]];
          the shares must sum to at most the number of machines. *)
  horizon : float option;
      (** If [Some t], the allocation is only valid up to absolute time [t];
          the simulator re-invokes the policy no later than [t]. *)
}

type t = {
  name : string;
  clairvoyant : bool;
  klass : Policy_class.t option;
      (** The policy's declared {!Policy_class.t}, if any.  A classified
          policy asserts that its [allocate] is extensionally the class's
          reference behaviour; the engine layer then dispatches it to the
          class's specialised kernel ({!Run.selection_for}).  [None]
          means "only the general event loop applies" — a structurally
          identical copy of a classified policy without the declaration
          stays on the general loop by design. *)
  allocate : now:float -> machines:int -> speed:float -> view array -> decision;
}

val make :
  name:string ->
  clairvoyant:bool ->
  ?klass:Policy_class.t ->
  (now:float -> machines:int -> speed:float -> view array -> decision) ->
  t
(** Smart constructor: validates the declared class's parameters and
    checks that a clairvoyant class is only declared by a clairvoyant
    policy.  Building the record literally is equally fine when no class
    is declared. *)

val age : now:float -> view -> float
(** [age ~now v = now - v.arrival]: the current age of an alive job. *)

val size_exn : view -> float
(** Size of a job as seen by a clairvoyant policy.
    @raise Invalid_argument when the view was built for a non-clairvoyant
    policy. *)

val remaining_exn : view -> float
(** Remaining work as seen by a clairvoyant policy.
    @raise Invalid_argument when hidden. *)
