(** First-class priority descriptors: the classification layer between
    policies and engines.

    A policy that declares its class (via {!Policy.t}'s [klass] field)
    gets a specialised engine by construction — the engine layer
    dispatches on the descriptor, not on the policy's identity, so a new
    policy never needs a hand-written kernel, only a declaration:

    - {!Equal_share}: every alive job at the same rate — the closed-form
      virtual-service deadline cascade (round-robin).
    - {!Static_key}: the served set is the m alive jobs smallest under a
      per-job key that never crosses another job's key while both wait
      (SRPT's remaining, SJF's size, FCFS's arrival, HDF's negated
      density) — the slot/heap priority-index kernel.
    - {!Attained_cascade}: least attained service first (SETF) — the
      equal-attained group cascade.
    - {!Level_ladder}: MLFQ's cumulative quantum ladder over attained
      service — levels served lowest first, equal share within a level.
    - {!Quantum_cycle}: discrete round-robin with a per-slot quantum and
      a FIFO ready queue.
    - {!Latest_fraction}: LAPS — equal share over the latest
      ceil(beta n) arrivals.
    - {!Aged_share}: WRR-age — proportional share under age^(k-1)
      weights, refreshed on a drift horizon.
    - {!Sized_share}: WRR-static — proportional share under static
      size^gamma weights.
    - {!Starvation_hybrid}: Kuo's starvation mitigation — SRPT until a
      job's flow/size ratio crosses theta, FCFS priority for the
      starved.
    - {!Preempt_budget}: migration-limited SRPT — a job preempted
      [budget] times becomes non-preemptible once it next runs.

    Descriptors are plain data (no closures): they are embedded in
    {!Live} engine state, which snapshots with [Marshal]. *)

type key =
  | Key_remaining  (** SRPT: remaining work, frozen while waiting. *)
  | Key_size  (** SJF. *)
  | Key_arrival  (** FCFS. *)
  | Key_density of { alpha : float }
      (** HDF with weight size^alpha: key = -(size^alpha / size). *)

type t =
  | Equal_share
  | Static_key of key
  | Attained_cascade
  | Level_ladder of { base_quantum : float; factor : float; levels : int }
  | Quantum_cycle of { quantum : float }
  | Latest_fraction of { beta : float }
  | Aged_share of { k : int; refresh : float; offset : float }
  | Sized_share of { gamma : float }
  | Starvation_hybrid of { theta : float }
  | Preempt_budget of { budget : int }

val engine_name : t -> string
(** The audit string of the kernel that runs this class ("srpt-index",
    "mlfq-ladder", "laps-dense", ...); {!Run.engine_name} and the cache
    key derive from it, so results produced by different kernels never
    alias. *)

val clairvoyant : t -> bool
(** Whether the class's kernel reads job sizes (a classified policy's
    [clairvoyant] flag must agree with its class). *)

val static_key : key -> arrival:float -> size:float -> remaining:float -> float
(** The priority key of a job under a {!Static_key} class — the one
    expression both the mirror policy and the index kernel evaluate, so
    they order jobs identically down to the last bit. *)

val starve_time : theta:float -> arrival:float -> size:float -> float
(** [arrival + theta * size]: the instant a job's flow/size ratio
    reaches theta.  Shared by the hybrid mirror policy and the hybrid
    kernel's promotion events. *)

(** {2 Shared reference computations}

    The numeric kernels both the mirror policies and the class engines
    call, so the two sides compute bit-identical floats. *)

val capped_rates : machines:int -> float array -> float array
(** [capped_rates ~machines sorted_weights] solves the capped
    proportional allocation — rates [min(1, theta * w_i)] with the
    largest [theta] such that the sum is at most [machines] — over
    weights {e already sorted} by (weight desc, id asc).  A dense engine
    that maintains its jobs in that order calls this directly and skips
    the sort. *)

val capped_rates_into :
  machines:int ->
  n:int ->
  weights:float array ->
  suffix:float array ->
  rates:float array ->
  unit
(** Allocation-free {!capped_rates} over caller-owned buffers: the first
    [n] entries of [weights] are the sorted weights, [suffix] (length
    >= [n + 1]) is scratch, and the rates land in [rates.(0 .. n-1)].
    Same arithmetic and accumulation order as {!capped_rates} (which
    delegates here), so results are bit-identical; the engines that
    recompute rates every event reuse grow-only buffers through this
    entry point instead of allocating three arrays per event. *)

val proportional_rates : machines:int -> ids:int array -> float array -> float array
(** The unsorted entry point: sorts by (weight desc, id asc) — [ids.(i)]
    is the job id of entry [i] — then applies {!capped_rates} and
    scatters the rates back.  The id tie-break fixes one deterministic
    summation order.
    @raise Invalid_argument when [ids] and [weights] differ in length. *)

val ladder_level : base_quantum:float -> factor:float -> levels:int -> float -> int
(** The MLFQ level a job with the given attained service occupies:
    demotion thresholds are the cumulative sums of geometrically growing
    quanta, and the last level is absorbing.  Attained service within a
    [1e-9 * (1 + threshold)] band below a threshold counts as past it —
    promotion events land on thresholds exactly, and the tolerance keeps
    the classification stable under the differing rounding of engines
    that split service intervals (see {!section-classes}). *)

val ladder_threshold : base_quantum:float -> factor:float -> int -> float
(** The cumulative demotion threshold of a level: the attained service
    at which a job leaves it (sum of the first level+1 quanta). *)

val validate : t -> (unit, string) result
(** Parameter sanity ([Error] carries a human-readable diagnostic). *)

val describe : t -> string
(** One-line human description, used by the README coverage table. *)
