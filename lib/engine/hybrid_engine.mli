(** Starvation-hybrid kernel ({!Policy_class.Starvation_hybrid}): SRPT
    for fresh jobs, absolute FCFS priority for jobs whose flow/size
    ratio has crossed theta.

    Starvation instants ([arrival + theta * size],
    {!Policy_class.starve_time}) are fixed at admission, so between
    promotions the priority order is static and the kernel runs like a
    priority index: <= m running slots, heaps for the waiting tiers, and
    a promotion heap that supplies the same re-evaluation instants the
    mirror policy's horizon does — the event sequences, and hence the
    floats, coincide exactly.  Each event costs O(m + log alive). *)

(** {2 Incremental primitives} (driven by the {!Live} engine; the state
    contains no closures, so snapshots can [Marshal] it) *)

type state

val create : machines:int -> speed:float -> theta:float -> state
(** @raise Invalid_argument on non-positive machines or speed, or a
    non-finite / non-positive theta. *)

val alive : state -> int

val admit : state -> Job.t -> unit
(** Admit a released job (in non-decreasing arrival order, distinct
    ids).  Every newcomer starts fresh: theta and size are positive, so
    its starvation instant is strictly after its arrival. *)

val refresh : state -> now:float -> unit
(** Mirror of one [allocate] call: apply due promotions, restore the
    running set to the top-m of the two-tier order, recompute the
    horizon.  Run exactly once per event, after {!settle} and
    admissions. *)

val next_internal : state -> now:float -> float
val advance : state -> dt:float -> unit
val settle : state -> now:float -> complete:(int -> float -> float -> unit) -> unit

(** {2 Closed runs} *)

val run :
  ?record_trace:bool ->
  ?speed:float ->
  ?max_events:int ->
  ?sink:Simulator.sink ->
  machines:int ->
  theta:float ->
  Job.t list ->
  Simulator.result
(** Same contract as {!Simulator.run}. *)

val run_stream :
  ?speed:float ->
  ?max_events:int ->
  machines:int ->
  theta:float ->
  sink:Simulator.sink ->
  (unit -> Job.t option) ->
  Simulator.summary
