(** Minimum-cost maximum-flow on networks with real capacities and
    non-negative real costs.

    This is the exact solver behind the paper's LP relaxation
    ({!Rr_lp.Lp_bound}): after time discretisation, LP_primal is a
    transportation problem, which is solved here by successive shortest
    augmenting paths with Johnson potentials (Dijkstra on reduced costs).
    With non-negative costs the algorithm returns an exact optimum for the
    amount of flow it pushes; capacities within a relative [1e-9] of zero
    are treated as saturated to keep the augmentation count finite in
    floating point.

    {2 Warm starts}

    {!solve} leaves the network in its residual state {e and keeps the
    Johnson potentials}, so the network is a reusable basis rather than a
    spent artifact: after a perturbation — more flow requested via
    [?max_flow], or new edges added with {!add_edge} (the way
    {!Rr_lp.Lp_bound} widens per-job slot windows) — {!resolve} repairs the
    potentials with one Bellman-Ford fixpoint over the residual edges and
    continues augmenting from the previous optimum instead of recomputing
    every shortest path from scratch.  The continuation is exact: as long
    as the perturbation does not make the existing flow suboptimal at its
    own value (no negative residual cycle — {!resolve} detects and refuses
    that case), the warm result equals a cold solve of the perturbed
    network, differential-tested to <= 1e-9 in the suite. *)

type t

val create : n_nodes:int -> t
(** Network with nodes [0 .. n_nodes-1] and no edges.
    @raise Invalid_argument when [n_nodes < 1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> cost:float -> int
(** Add a directed edge and its implicit residual reverse edge; returns an
    edge handle usable with {!flow_on}.  Edges may also be added {e after}
    a solve: they join the residual network and take part in the next
    {!resolve}.
    @raise Invalid_argument on out-of-range endpoints, negative or
    non-finite capacity, or negative or non-finite cost. *)

type outcome = {
  flow : float;  (** Total flow pushed from source to sink. *)
  cost : float;  (** Total cost of that flow (compensated summation). *)
}

val solve : ?max_flow:float -> t -> source:int -> sink:int -> outcome
(** [solve t ~source ~sink] computes a minimum-cost flow of value
    [min(max_flow, max-flow value)] (default: the maximum flow).  The
    network is consumed: capacities are mutated to the residual state and
    the Johnson potentials are retained for {!resolve}.
    @raise Invalid_argument when [source = sink], either is out of range,
    or the network was {e already} solved — a second cold [solve] would
    silently price the residual state as if it were fresh, so it refuses;
    continue a consumed network with {!resolve} instead. *)

val resolve : ?max_flow:float -> t -> source:int -> sink:int -> outcome
(** Warm-started continuation after a perturbation: repairs the stored
    potentials (one Bellman-Ford fixpoint over the residual edges), then
    keeps augmenting — up to [max_flow] {e additional} units — from the
    previous basis.  The returned outcome is {e cumulative} over every
    solve/resolve on this network, so it is directly comparable to a cold
    {!solve} of the perturbed network.
    @raise Invalid_argument when the network has not been solved yet, when
    [source = sink], or when either node is out of range.
    @raise Failure when the perturbation created a negative residual
    cycle (the existing flow is no longer optimal at its own value, so a
    warm continuation would be wrong; re-solve from a fresh network). *)

val solved : t -> bool
(** Whether {!solve} has consumed this network (i.e. whether the next
    entry point is {!resolve}). *)

val flow_on : t -> int -> float
(** Flow routed over the edge with the given handle after {!solve}. *)

val no_negative_cycle : t -> bool
(** Optimality self-certificate: after {!solve} (or {!resolve}), the
    current flow is a minimum-cost flow of its value iff the residual
    network contains no negative-cost cycle.  Runs Bellman-Ford over the
    residual edges; the test suite asserts this on every solved network,
    turning the solver into a self-checking oracle. *)
