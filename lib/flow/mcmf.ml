type t = {
  n : int;
  (* Edge-array representation: edge 2i is a forward edge, 2i+1 its
     residual twin.  [head.(e)] is the target of edge [e]; adjacency is the
     classic intrusive list [first.(node)] / [next_edge.(e)] so the hot
     Dijkstra loop chases int arrays, not boxed cons cells. *)
  mutable head : int array;
  mutable cap : float array;
  mutable cost : float array;
  mutable next_edge : int array;
  first : int array;
  mutable n_edges : int;
  (* Warm-start state: Johnson potentials survive the solve so a
     perturbed network can continue augmenting from the previous basis
     instead of re-deriving shortest-path distances from scratch. *)
  mutable pot : float array;
  mutable solved : bool;
  mutable acc_flow : float;
  acc_cost : Rr_util.Kahan.t;
}

type outcome = { flow : float; cost : float }

let create ~n_nodes =
  if n_nodes < 1 then invalid_arg "Mcmf.create: need at least one node";
  {
    n = n_nodes;
    head = Array.make 16 0;
    cap = Array.make 16 0.;
    cost = Array.make 16 0.;
    next_edge = Array.make 16 (-1);
    first = Array.make n_nodes (-1);
    n_edges = 0;
    pot = [||];
    solved = false;
    acc_flow = 0.;
    acc_cost = Rr_util.Kahan.create ();
  }

let ensure_capacity t =
  let cap = Array.length t.head in
  if t.n_edges + 2 > cap then begin
    let ncap = 2 * cap in
    let grow a fill =
      let na = Array.make ncap fill in
      Array.blit a 0 na 0 t.n_edges;
      na
    in
    t.head <- grow t.head 0;
    t.cap <- grow t.cap 0.;
    t.cost <- grow t.cost 0.;
    t.next_edge <- grow t.next_edge (-1)
  end

let add_edge t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: endpoint out of range";
  if not (Float.is_finite capacity && capacity >= 0.) then
    invalid_arg "Mcmf.add_edge: capacity must be finite and non-negative";
  if not (Float.is_finite cost && cost >= 0.) then
    invalid_arg "Mcmf.add_edge: cost must be finite and non-negative";
  ensure_capacity t;
  let e = t.n_edges in
  t.head.(e) <- dst;
  t.cap.(e) <- capacity;
  t.cost.(e) <- cost;
  t.head.(e + 1) <- src;
  t.cap.(e + 1) <- 0.;
  t.cost.(e + 1) <- -.cost;
  t.next_edge.(e) <- t.first.(src);
  t.first.(src) <- e;
  t.next_edge.(e + 1) <- t.first.(dst);
  t.first.(dst) <- e + 1;
  t.n_edges <- t.n_edges + 2;
  e

(* An edge counts as residual only when its capacity clears the rounding
   noise of its own edge pair: [cap.(e) +. cap.(e lxor 1)] is the pair's
   original capacity (augmentation moves capacity between twins), so the
   saturation threshold scales per edge rather than with the network-wide
   maximum — a huge "uncapacitated" arc must not make a small but real
   residual on a unit-capacity arc look saturated. *)
let residual t e = t.cap.(e) > 1e-12 *. (1. +. t.cap.(e) +. t.cap.(e lxor 1))

let check_endpoints name t ~source ~sink =
  if source = sink then invalid_arg (name ^ ": source equals sink");
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg (name ^ ": node out of range")

(* Successive shortest augmenting paths on reduced costs, continuing from
   the potentials in [t.pot] (which must make every residual reduced cost
   non-negative up to rounding).  Pushes at most [extra_max] additional
   flow; accumulates into [t.acc_flow] / [t.acc_cost].

   The Dijkstra stops as soon as the sink settles; potentials then
   advance by [min dist.(v) dist.(sink)] with unreached nodes counting as
   infinitely far, which preserves the reduced-cost invariant on every
   residual edge (see the comment at the update below), so the next
   augmentation — or a warm {!resolve} — starts from a valid dual. *)
let augment t ~source ~sink ~extra_max =
  let pot = t.pot in
  let head = t.head and cap = t.cap and cost = t.cost in
  let next_edge = t.next_edge and first = t.first in
  let dist = Array.make t.n Float.infinity in
  let prev_edge = Array.make t.n (-1) in
  let settled = Array.make t.n false in
  (* Inline binary min-heap over (distance, node) as two parallel arrays:
     no tuple boxing, no comparator closure, reused across augmentations. *)
  let hkey = ref (Array.make 1024 0.) in
  let hnode = ref (Array.make 1024 0) in
  let hn = ref 0 in
  let heap_push d v =
    if !hn = Array.length !hkey then begin
      let nk = Array.make (2 * !hn) 0. and nv = Array.make (2 * !hn) 0 in
      Array.blit !hkey 0 nk 0 !hn;
      Array.blit !hnode 0 nv 0 !hn;
      hkey := nk;
      hnode := nv
    end;
    let k = !hkey and nd = !hnode in
    let i = ref !hn in
    incr hn;
    (* Sift up. *)
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if k.(p) > d then begin
        k.(!i) <- k.(p);
        nd.(!i) <- nd.(p);
        i := p
      end
      else continue := false
    done;
    k.(!i) <- d;
    nd.(!i) <- v
  in
  let heap_pop () =
    let k = !hkey and nd = !hnode in
    let top = nd.(0) and topd = k.(0) in
    decr hn;
    if !hn > 0 then begin
      let d = k.(!hn) and v = nd.(!hn) in
      (* Sift down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= !hn then continue := false
        else begin
          let c = if l + 1 < !hn && k.(l + 1) < k.(l) then l + 1 else l in
          if k.(c) < d then begin
            k.(!i) <- k.(c);
            nd.(!i) <- nd.(c);
            i := c
          end
          else continue := false
        end
      done;
      k.(!i) <- d;
      nd.(!i) <- v
    end;
    (topd, top)
  in
  let pushed = ref 0. in
  let continue = ref true in
  while !continue && !pushed < extra_max do
    Array.fill dist 0 t.n Float.infinity;
    Array.fill prev_edge 0 t.n (-1);
    Array.fill settled 0 t.n false;
    hn := 0;
    dist.(source) <- 0.;
    heap_push 0. source;
    (* Dijkstra on reduced costs; stop once the sink settles. *)
    let found = ref false in
    while (not !found) && !hn > 0 do
      let d, u = heap_pop () in
      if not settled.(u) && d <= dist.(u) then begin
        settled.(u) <- true;
        if u = sink then found := true
        else begin
          let pu = pot.(u) in
          let e = ref first.(u) in
          while !e >= 0 do
            let edge = !e in
            let c = cap.(edge) in
            if c > 1e-12 *. (1. +. c +. cap.(edge lxor 1)) then begin
              let v = head.(edge) in
              if not settled.(v) then begin
                (* Reduced cost is non-negative by the potential invariant;
                   clamp tiny negative rounding noise. *)
                let rc = cost.(edge) +. pu -. pot.(v) in
                let nd = if rc > 0. then d +. rc else d in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  prev_edge.(v) <- edge;
                  heap_push nd v
                end
              end
            end;
            e := next_edge.(edge)
          done
        end
      end
    done;
    if not !found then continue := false
    else begin
      let dsink = dist.(sink) in
      (* Advance every node's potential by min(dist, dist_sink) — nodes
         the stopped Dijkstra never reached count as infinitely far and
         advance by dist_sink.  This is what keeps the reduced-cost
         invariant global: a settled node's residual out-edges all point
         at reached nodes (settling relaxed them), and every other pair
         moves by at least as much at the tail as at the head. *)
      for v = 0 to t.n - 1 do
        let dv = dist.(v) in
        pot.(v) <- pot.(v) +. (if dv < dsink then dv else dsink)
      done;
      (* Bottleneck along the augmenting path. *)
      let bottleneck = ref (extra_max -. !pushed) in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        if cap.(e) < !bottleneck then bottleneck := cap.(e);
        v := head.(e lxor 1)
      done;
      let b = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        cap.(e) <- cap.(e) -. b;
        cap.(e lxor 1) <- cap.(e lxor 1) +. b;
        Rr_util.Kahan.add t.acc_cost (b *. cost.(e));
        v := head.(e lxor 1)
      done;
      pushed := !pushed +. b
    end
  done;
  t.acc_flow <- t.acc_flow +. !pushed

let solve ?(max_flow = Float.infinity) t ~source ~sink =
  if t.solved then
    invalid_arg
      "Mcmf.solve: network already consumed (capacities hold the residual state of a \
       previous solve); build a fresh network, or use Mcmf.resolve to continue this one \
       after a perturbation";
  check_endpoints "Mcmf.solve" t ~source ~sink;
  t.pot <- Array.make t.n 0.;
  augment t ~source ~sink ~extra_max:max_flow;
  t.solved <- true;
  { flow = t.acc_flow; cost = Rr_util.Kahan.total t.acc_cost }

(* After a perturbation (edges added since the last solve) the stored
   potentials may leave some residual reduced costs negative.  One
   Bellman-Ford fixpoint over the residual edges restores the invariant;
   failing to converge within [n] rounds means the perturbation created a
   negative residual cycle, i.e. the existing flow is no longer optimal at
   its own value and warm continuation would be wrong. *)
let repair_potentials t =
  let scale =
    Array.fold_left (fun a p -> if Float.is_finite p then Float.max a (Float.abs p) else a)
      1. t.pot
  in
  let cost_eps = 1e-10 *. scale in
  let pot = t.pot in
  let relax_once () =
    let changed = ref false in
    for e = 0 to t.n_edges - 1 do
      if residual t e then begin
        let u = t.head.(e lxor 1) and v = t.head.(e) in
        if pot.(u) +. t.cost.(e) < pot.(v) -. cost_eps then begin
          pot.(v) <- pot.(u) +. t.cost.(e);
          changed := true
        end
      end
    done;
    !changed
  in
  let rec loop i =
    if relax_once () then
      if i = 0 then
        failwith
          "Mcmf.resolve: perturbation created a negative residual cycle; the previous \
           flow is no longer optimal, re-solve from a fresh network"
      else loop (i - 1)
  in
  loop (t.n + 1)

let resolve ?(max_flow = Float.infinity) t ~source ~sink =
  if not t.solved then
    invalid_arg "Mcmf.resolve: network not solved yet; call Mcmf.solve first";
  check_endpoints "Mcmf.resolve" t ~source ~sink;
  repair_potentials t;
  augment t ~source ~sink ~extra_max:max_flow;
  { flow = t.acc_flow; cost = Rr_util.Kahan.total t.acc_cost }

let solved t = t.solved

let flow_on t e =
  if e < 0 || e >= t.n_edges || e land 1 = 1 then invalid_arg "Mcmf.flow_on: bad edge handle";
  (* Flow on a forward edge equals the residual capacity of its twin. *)
  t.cap.(e + 1)

let no_negative_cycle t =
  let cost_eps = 1e-7 in
  (* Bellman-Ford with all distances 0 detects any reachable negative
     cycle among residual edges. *)
  let dist = Array.make t.n 0. in
  let relax_once () =
    let changed = ref false in
    for e = 0 to t.n_edges - 1 do
      if residual t e then begin
        let u = t.head.(e lxor 1) and v = t.head.(e) in
        if dist.(u) +. t.cost.(e) < dist.(v) -. cost_eps then begin
          dist.(v) <- dist.(u) +. t.cost.(e);
          changed := true
        end
      end
    done;
    !changed
  in
  let rec loop i = if i = 0 then true else if relax_once () then loop (i - 1) else true in
  if loop t.n then not (relax_once ()) else false
