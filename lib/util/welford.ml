type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. Float.of_int t.n

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then invalid_arg "Welford.min: empty" else t.min

let max t = if t.n = 0 then invalid_arg "Welford.max: empty" else t.max

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t

(* Chan et al.'s pairwise update: exact counts, means combined by
   weighted average, m2 corrected by the between-groups term. *)
let copy t = { n = t.n; mean = t.mean; m2 = t.m2; min = t.min; max = t.max }

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let na = Float.of_int a.n and nb = Float.of_int b.n in
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. nb /. (na +. nb));
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. (na +. nb));
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end
