type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = Int.max 8 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let of_array ~cmp a =
  let t = { cmp; data = Array.copy a; size = Array.length a } in
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty heap"

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

(* ------------------------------------------------------------------ *)
(* Scalar heap: float keys, int payloads, zero allocation per op       *)
(* ------------------------------------------------------------------ *)

module Scalar = struct
  type t = {
    mutable keys : float array;  (* unboxed float array *)
    mutable vals : int array;
    mutable size : int;
  }

  let create () = { keys = [||]; vals = [||]; size = 0 }

  let[@inline] length t = t.size

  let[@inline] is_empty t = t.size = 0

  let[@inline] clear t = t.size <- 0

  let grow t =
    let cap = Array.length t.keys in
    if t.size = cap then begin
      let ncap = Int.max 8 (2 * cap) in
      let nk = Array.make ncap 0. and nv = Array.make ncap 0 in
      Array.blit t.keys 0 nk 0 t.size;
      Array.blit t.vals 0 nv 0 t.size;
      t.keys <- nk;
      t.vals <- nv
    end

  (* Ties on the key break towards the smaller payload, so pop order is
     deterministic for equal keys. *)
  let[@inline] lt t i j =
    let ki = Array.unsafe_get t.keys i and kj = Array.unsafe_get t.keys j in
    ki < kj || (ki = kj && Array.unsafe_get t.vals i < Array.unsafe_get t.vals j)

  let[@inline] swap t i j =
    let k = Array.unsafe_get t.keys i and v = Array.unsafe_get t.vals i in
    Array.unsafe_set t.keys i (Array.unsafe_get t.keys j);
    Array.unsafe_set t.vals i (Array.unsafe_get t.vals j);
    Array.unsafe_set t.keys j k;
    Array.unsafe_set t.vals j v

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && lt t l !smallest then smallest := l;
    if r < t.size && lt t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let[@inline] add t ~key v =
    grow t;
    t.keys.(t.size) <- key;
    t.vals.(t.size) <- v;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let[@inline] min_key_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar.min_key_exn: empty heap";
    t.keys.(0)

  let[@inline] min_val_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar.min_val_exn: empty heap";
    t.vals.(0)

  let[@inline] pop_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar.pop_exn: empty heap";
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    v
end

(* ------------------------------------------------------------------ *)
(* Scalar heap with two float satellites riding along each element     *)
(* ------------------------------------------------------------------ *)

module Scalar2 = struct
  type t = {
    mutable keys : float array;  (* unboxed float arrays throughout *)
    mutable vals : int array;
    mutable aux1 : float array;
    mutable aux2 : float array;
    mutable size : int;
  }

  let create () = { keys = [||]; vals = [||]; aux1 = [||]; aux2 = [||]; size = 0 }

  let[@inline] length t = t.size

  let[@inline] is_empty t = t.size = 0

  let[@inline] clear t = t.size <- 0

  let grow t =
    let cap = Array.length t.keys in
    if t.size = cap then begin
      let ncap = Int.max 8 (2 * cap) in
      let nk = Array.make ncap 0.
      and nv = Array.make ncap 0
      and n1 = Array.make ncap 0.
      and n2 = Array.make ncap 0. in
      Array.blit t.keys 0 nk 0 t.size;
      Array.blit t.vals 0 nv 0 t.size;
      Array.blit t.aux1 0 n1 0 t.size;
      Array.blit t.aux2 0 n2 0 t.size;
      t.keys <- nk;
      t.vals <- nv;
      t.aux1 <- n1;
      t.aux2 <- n2
    end

  let[@inline] lt t i j =
    let ki = Array.unsafe_get t.keys i and kj = Array.unsafe_get t.keys j in
    ki < kj || (ki = kj && Array.unsafe_get t.vals i < Array.unsafe_get t.vals j)

  let[@inline] swap t i j =
    let k = Array.unsafe_get t.keys i
    and v = Array.unsafe_get t.vals i
    and a = Array.unsafe_get t.aux1 i
    and b = Array.unsafe_get t.aux2 i in
    Array.unsafe_set t.keys i (Array.unsafe_get t.keys j);
    Array.unsafe_set t.vals i (Array.unsafe_get t.vals j);
    Array.unsafe_set t.aux1 i (Array.unsafe_get t.aux1 j);
    Array.unsafe_set t.aux2 i (Array.unsafe_get t.aux2 j);
    Array.unsafe_set t.keys j k;
    Array.unsafe_set t.vals j v;
    Array.unsafe_set t.aux1 j a;
    Array.unsafe_set t.aux2 j b

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && lt t l !smallest then smallest := l;
    if r < t.size && lt t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let[@inline] add t ~key ~aux1 ~aux2 v =
    grow t;
    t.keys.(t.size) <- key;
    t.vals.(t.size) <- v;
    t.aux1.(t.size) <- aux1;
    t.aux2.(t.size) <- aux2;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let[@inline] min_key_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar2.min_key_exn: empty heap";
    t.keys.(0)

  let[@inline] min_val_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar2.min_val_exn: empty heap";
    t.vals.(0)

  let[@inline] min_aux1_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar2.min_aux1_exn: empty heap";
    t.aux1.(0)

  let[@inline] min_aux2_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar2.min_aux2_exn: empty heap";
    t.aux2.(0)

  let[@inline] pop_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar2.pop_exn: empty heap";
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      t.aux1.(0) <- t.aux1.(t.size);
      t.aux2.(0) <- t.aux2.(t.size);
      sift_down t 0
    end;
    v

  let iter f t =
    for i = 0 to t.size - 1 do
      f t.keys.(i) t.vals.(i) t.aux1.(i) t.aux2.(i)
    done
end

(* ------------------------------------------------------------------ *)
(* Scalar heap with three float satellites riding along each element   *)
(* ------------------------------------------------------------------ *)

module Scalar3 = struct
  type t = {
    mutable keys : float array;  (* unboxed float arrays throughout *)
    mutable vals : int array;
    mutable aux1 : float array;
    mutable aux2 : float array;
    mutable aux3 : float array;
    mutable size : int;
  }

  let create () =
    { keys = [||]; vals = [||]; aux1 = [||]; aux2 = [||]; aux3 = [||]; size = 0 }

  let[@inline] length t = t.size

  let[@inline] is_empty t = t.size = 0

  let[@inline] clear t = t.size <- 0

  let grow t =
    let cap = Array.length t.keys in
    if t.size = cap then begin
      let ncap = Int.max 8 (2 * cap) in
      let nk = Array.make ncap 0.
      and nv = Array.make ncap 0
      and n1 = Array.make ncap 0.
      and n2 = Array.make ncap 0.
      and n3 = Array.make ncap 0. in
      Array.blit t.keys 0 nk 0 t.size;
      Array.blit t.vals 0 nv 0 t.size;
      Array.blit t.aux1 0 n1 0 t.size;
      Array.blit t.aux2 0 n2 0 t.size;
      Array.blit t.aux3 0 n3 0 t.size;
      t.keys <- nk;
      t.vals <- nv;
      t.aux1 <- n1;
      t.aux2 <- n2;
      t.aux3 <- n3
    end

  let[@inline] lt t i j =
    let ki = Array.unsafe_get t.keys i and kj = Array.unsafe_get t.keys j in
    ki < kj || (ki = kj && Array.unsafe_get t.vals i < Array.unsafe_get t.vals j)

  let[@inline] swap t i j =
    let k = Array.unsafe_get t.keys i
    and v = Array.unsafe_get t.vals i
    and a = Array.unsafe_get t.aux1 i
    and b = Array.unsafe_get t.aux2 i
    and c = Array.unsafe_get t.aux3 i in
    Array.unsafe_set t.keys i (Array.unsafe_get t.keys j);
    Array.unsafe_set t.vals i (Array.unsafe_get t.vals j);
    Array.unsafe_set t.aux1 i (Array.unsafe_get t.aux1 j);
    Array.unsafe_set t.aux2 i (Array.unsafe_get t.aux2 j);
    Array.unsafe_set t.aux3 i (Array.unsafe_get t.aux3 j);
    Array.unsafe_set t.keys j k;
    Array.unsafe_set t.vals j v;
    Array.unsafe_set t.aux1 j a;
    Array.unsafe_set t.aux2 j b;
    Array.unsafe_set t.aux3 j c

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && lt t l !smallest then smallest := l;
    if r < t.size && lt t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let[@inline] add t ~key ~aux1 ~aux2 ~aux3 v =
    grow t;
    t.keys.(t.size) <- key;
    t.vals.(t.size) <- v;
    t.aux1.(t.size) <- aux1;
    t.aux2.(t.size) <- aux2;
    t.aux3.(t.size) <- aux3;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let[@inline] min_key_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.min_key_exn: empty heap";
    t.keys.(0)

  let[@inline] min_val_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.min_val_exn: empty heap";
    t.vals.(0)

  let[@inline] min_aux1_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.min_aux1_exn: empty heap";
    t.aux1.(0)

  let[@inline] min_aux2_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.min_aux2_exn: empty heap";
    t.aux2.(0)

  let[@inline] min_aux3_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.min_aux3_exn: empty heap";
    t.aux3.(0)

  let[@inline] pop_exn t =
    if t.size = 0 then invalid_arg "Heap.Scalar3.pop_exn: empty heap";
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      t.aux1.(0) <- t.aux1.(t.size);
      t.aux2.(0) <- t.aux2.(t.size);
      t.aux3.(0) <- t.aux3.(t.size);
      sift_down t 0
    end;
    v

  let iter f t =
    for i = 0 to t.size - 1 do
      f t.keys.(i) t.vals.(i) t.aux1.(i) t.aux2.(i) t.aux3.(i)
    done
end
