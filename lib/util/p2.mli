(** Jain & Chlamtac's P² streaming quantile sketch (CACM 1985).

    Five markers track the minimum, the [p/2], [p] and [(1+p)/2]
    quantiles, and the maximum; marker heights move by piecewise-parabolic
    interpolation as observations stream past.  O(1) memory and O(1) per
    observation, no buffering.  Estimates converge to the true quantile
    for i.i.d. inputs; for the first five observations the estimate is the
    exact interpolated order statistic of the buffered sample.

    The state is a plain record of arrays and scalars — no closures — so
    it survives [Marshal]; {!Rr_metrics.Sink.quantile} wraps it in a
    closure-based sink, and {!Rr_engine.Live} keeps it directly in its
    snapshottable state.  The arithmetic here is the historical
    [Sink.quantile] implementation moved verbatim, so sketch estimates are
    bit-identical across the two entry points. *)

type t

val create : p:float -> unit -> t
(** @raise Invalid_argument unless [0 < p < 1]. *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int
(** Observations fed so far. *)

val value : t -> float
(** Current estimate of the [p]-quantile; [0.] before any observation. *)
