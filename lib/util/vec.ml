type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  Array.unsafe_set t.data i x

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let nd = Array.make (Int.max 8 (2 * cap)) x in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.swap_remove: index out of bounds";
  t.len <- t.len - 1;
  Array.unsafe_set t.data i (Array.unsafe_get t.data t.len)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.data i)

let to_array t = Array.sub t.data 0 t.len
