(* xoshiro256++ with the four 64-bit state words stored in one 32-byte
   [Bytes] block instead of four mutable [int64] record fields.  The
   sequence is bit-identical to the record representation — only the
   storage changed — but the difference in allocation is dramatic: a
   mutable [int64] record field boxes on every write (3 words each, so a
   [bits64] step paid ~12 words), while [%caml_bytes_get64u]/[set64u]
   read and write raw 64-bit lanes with no boxing at all.  With the hot
   ops [@inline]d below, a streaming workload draws millions of floats
   per second at zero words per draw. *)

type t = Bytes.t (* 32 bytes: s0 s1 s2 s3, native-endian 64-bit lanes *)

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* SplitMix64 step, used only to expand the seed into the Xoshiro state and
   to derive split streams. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let s = ref seed64 in
  let t = Bytes.create 32 in
  set64 t 0 (splitmix64 s);
  set64 t 8 (splitmix64 s);
  set64 t 16 (splitmix64 s);
  set64 t 24 (splitmix64 s);
  t

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t = Bytes.copy t

let[@inline] rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let[@inline] bits64 t =
  let open Int64 in
  let s0 = get64 t 0
  and s1 = get64 t 8
  and s2 = get64 t 16
  and s3 = get64 t 24 in
  let result = add (rotl (add s0 s3) 23) s0 in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  set64 t 0 s0;
  set64 t 8 s1;
  set64 t 16 s2;
  set64 t 24 s3;
  result

let split t = of_seed64 (bits64 t)

let[@inline] float t =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let[@inline] float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let mask =
    let rec widen m = if Int64.unsigned_compare m b >= 0 then m else widen Int64.(add (shift_left m 1) 1L) in
    widen 1L
  in
  let rec draw () =
    let x = Int64.logand (bits64 t) mask in
    if Int64.unsigned_compare x b < 0 then Int64.to_int x else draw ()
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let[@inline] exponential t ~rate =
  assert (rate > 0.);
  let u = 1. -. float t in
  -.log u /. rate

let[@inline] pareto t ~alpha ~x_min =
  assert (alpha > 0. && x_min > 0.);
  let u = 1. -. float t in
  x_min /. (u ** (1. /. alpha))

let[@inline] bounded_pareto t ~alpha ~x_min ~x_max =
  assert (alpha > 0. && 0. < x_min && x_min < x_max);
  let u = float t in
  let l = x_min ** alpha and h = x_max ** alpha in
  (* Inverse CDF of the bounded Pareto distribution. *)
  ((-.(u *. h) +. (u *. l) +. h) /. (h *. l)) ** (-1. /. alpha)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
