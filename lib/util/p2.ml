type t = {
  q : float array;  (* marker heights *)
  np : float array;  (* desired positions *)
  pos : float array;  (* actual positions (1-based) *)
  dnp : float array;  (* desired-position increments *)
  p : float;
  mutable count : int;
}

let create ~p () =
  if not (p > 0. && p < 1.) then invalid_arg "P2.create: p must be in (0, 1)";
  {
    q = Array.make 5 0.;
    np = Array.make 5 0.;
    pos = [| 1.; 2.; 3.; 4.; 5. |];
    dnp = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
    p;
    count = 0;
  }

let parabolic t i d =
  let q = t.q and pos = t.pos in
  q.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (pos.(i) -. pos.(i - 1)))
        )

let linear t i d =
  let q = t.q and pos = t.pos in
  let j = i + int_of_float d in
  q.(i) +. (d *. (q.(j) -. q.(i)) /. (pos.(j) -. pos.(i)))

let add t x =
  let q = t.q and np = t.np and pos = t.pos and dnp = t.dnp in
  t.count <- t.count + 1;
  if t.count <= 5 then begin
    q.(t.count - 1) <- x;
    if t.count = 5 then begin
      Array.sort Float.compare q;
      for i = 0 to 4 do
        np.(i) <- 1. +. (4. *. dnp.(i))
      done
    end
  end
  else begin
    (* Locate the cell and bump the extreme markers. *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- Float.max q.(4) x;
        3
      end
      else begin
        let k = ref 0 in
        for i = 1 to 3 do
          if x >= q.(i) then k := i
        done;
        !k
      end
    in
    for i = k + 1 to 4 do
      pos.(i) <- pos.(i) +. 1.
    done;
    for i = 0 to 4 do
      np.(i) <- np.(i) +. dnp.(i)
    done;
    (* Adjust the three interior markers towards their desired spots. *)
    for i = 1 to 3 do
      let d = np.(i) -. pos.(i) in
      if
        (d >= 1. && pos.(i + 1) -. pos.(i) > 1.)
        || (d <= -1. && pos.(i - 1) -. pos.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let h =
          if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate else linear t i d
        in
        q.(i) <- h;
        pos.(i) <- pos.(i) +. d
      end
    done
  end

let count t = t.count

let value t =
  let n = t.count in
  if n = 0 then 0.
  else if n <= 5 then begin
    (* Exact small-sample quantile, interpolated like Stats.percentile. *)
    let sorted = Array.sub t.q 0 n in
    Array.sort Float.compare sorted;
    let rank = t.p *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. Float.of_int lo in
      ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
    end
  end
  else t.q.(2)
