let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

(* Square-and-multiply tail for [powi].  The recursion is what keeps the
   general case out of inlining range, so the exported [powi] handles the
   ubiquitous small exponents (the lk-norm folds call it once per job)
   with straight-line unboxed arithmetic and only falls back here for
   k >= 4.  The small cases multiply in the same association the
   recursion would ([powi x 3 = x *. (x *. x)]), so results stay
   bit-identical. *)
let rec powi_big x k =
  if k = 0 then 1.
  else if k land 1 = 1 then x *. powi_big x (k - 1)
  else
    let h = powi_big x (k / 2) in
    h *. h

let[@inline] powi x k =
  assert (k >= 0);
  if k = 1 then x
  else if k = 2 then x *. x
  else if k = 3 then x *. (x *. x)
  else powi_big x k

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let is_finite_nonneg x = Float.is_finite x && x >= 0.

let min_arr a =
  if Array.length a = 0 then invalid_arg "Floatx.min_arr: empty array";
  Array.fold_left Float.min a.(0) a

let max_arr a =
  if Array.length a = 0 then invalid_arg "Floatx.max_arr: empty array";
  Array.fold_left Float.max a.(0) a
