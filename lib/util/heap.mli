(** Array-backed binary min-heap, parameterised by an explicit comparator.

    Used by the event loop of the simulator (pending arrivals) and by the
    Dijkstra inner loop of the min-cost-flow solver. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify an array in O(n). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val drain : 'a t -> 'a list
(** Pop everything, smallest first. *)

(** Specialised min-heap with unboxed float keys and int payloads.

    Every operation is allocation-free (outside capacity doubling) and
    compares keys with primitive float comparison instead of a closure —
    the event loop of {!Rr_engine.Simulator}'s equal-share engine pays one
    heap operation per event, so the constant factor matters.  Ties on the
    key pop in increasing payload order. *)
module Scalar : sig
  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val clear : t -> unit
  (** Forget all elements, keeping the backing capacity. *)

  val add : t -> key:float -> int -> unit
  (** O(log n) insertion. *)

  val min_key_exn : t -> float
  (** Smallest key. @raise Invalid_argument on an empty heap. *)

  val min_val_exn : t -> int
  (** Payload of the smallest key. @raise Invalid_argument on an empty
      heap. *)

  val pop_exn : t -> int
  (** Remove the smallest key and return its payload.
      @raise Invalid_argument on an empty heap. *)
end

(** {!Scalar} with two unboxed float satellite fields per element.

    The streaming equal-share engine keeps (virtual deadline, job id,
    arrival, size) per alive job in one heap, so a completion can be
    emitted — and the cascade threshold evaluated — without any O(n)
    side table of jobs.  Read the head's satellites with
    {!Scalar2.min_aux1_exn}/{!Scalar2.min_aux2_exn} before popping. *)
module Scalar2 : sig
  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val clear : t -> unit
  (** Forget all elements, keeping the backing capacity. *)

  val add : t -> key:float -> aux1:float -> aux2:float -> int -> unit
  (** O(log n) insertion of (key, payload, satellites). *)

  val min_key_exn : t -> float
  (** Smallest key. @raise Invalid_argument on an empty heap. *)

  val min_val_exn : t -> int
  (** Payload of the smallest key. @raise Invalid_argument on an empty
      heap. *)

  val min_aux1_exn : t -> float
  (** First satellite of the smallest key.
      @raise Invalid_argument on an empty heap. *)

  val min_aux2_exn : t -> float
  (** Second satellite of the smallest key.
      @raise Invalid_argument on an empty heap. *)

  val pop_exn : t -> int
  (** Remove the smallest key and return its payload (satellites are
      discarded — read them first). @raise Invalid_argument on an empty
      heap. *)

  val iter : (float -> int -> float -> float -> unit) -> t -> unit
  (** [iter f t] applies [f key value aux1 aux2] to every element in
      unspecified (heap-array) order.  The priority-index engines use it
      to enumerate waiting jobs for trace segments and to merge SETF
      groups small-into-large; do not add or pop during iteration. *)
end

(** {!Scalar2} with a third unboxed float satellite per element.

    The generalized priority-index engine keeps (priority key, job id,
    arrival, size, remaining) per waiting job in one heap: unlike the
    original three fixed kinds, a declared key (for example HDF's negated
    density) is not itself one of the three resume fields, so all of
    arrival, size and remaining must ride along. *)
module Scalar3 : sig
  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val clear : t -> unit
  (** Forget all elements, keeping the backing capacity. *)

  val add : t -> key:float -> aux1:float -> aux2:float -> aux3:float -> int -> unit
  (** O(log n) insertion of (key, payload, satellites). *)

  val min_key_exn : t -> float
  (** Smallest key. @raise Invalid_argument on an empty heap. *)

  val min_val_exn : t -> int
  (** Payload of the smallest key. @raise Invalid_argument on an empty
      heap. *)

  val min_aux1_exn : t -> float
  (** First satellite of the smallest key.
      @raise Invalid_argument on an empty heap. *)

  val min_aux2_exn : t -> float
  (** Second satellite of the smallest key.
      @raise Invalid_argument on an empty heap. *)

  val min_aux3_exn : t -> float
  (** Third satellite of the smallest key.
      @raise Invalid_argument on an empty heap. *)

  val pop_exn : t -> int
  (** Remove the smallest key and return its payload (satellites are
      discarded — read them first). @raise Invalid_argument on an empty
      heap. *)

  val iter : (float -> int -> float -> float -> float -> unit) -> t -> unit
  (** [iter f t] applies [f key value aux1 aux2 aux3] to every element in
      unspecified (heap-array) order; do not add or pop during
      iteration. *)
end
