(** Growable vector (amortised O(1) push, O(1) swap-remove).

    The simulator's hot loop keeps its alive set and its trace arena in
    these: buffers persist across events, so steady-state simulation
    allocates nothing per event beyond what policies return.  Capacity
    never shrinks; {!clear} keeps the backing store (and therefore keeps
    the dropped elements reachable until overwritten — don't park huge
    structures in a long-lived cleared vector). *)

type 'a t

val create : unit -> 'a t
(** Empty vector; the backing array is allocated lazily on first push. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is outside [0, length). *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when the index is outside [0, length). *)

val push : 'a t -> 'a -> unit
(** Append, doubling the capacity when full. *)

val swap_remove : 'a t -> int -> unit
(** Remove index [i] in O(1) by moving the last element into its slot.
    Order is not preserved.
    @raise Invalid_argument when the index is outside [0, length). *)

val clear : 'a t -> unit
(** Reset the length to 0, keeping the backing capacity. *)

val iter : ('a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in index order. *)

val to_array : 'a t -> 'a array
(** Fresh array of the live prefix, in index order. *)
