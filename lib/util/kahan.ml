type t = { mutable total : float; mutable comp : float }

let create () = { total = 0.; comp = 0. }

(* Neumaier's variant: the compensation also covers the case where the
   incoming summand dominates the running total. *)
let[@inline] add t x =
  let sum = t.total +. x in
  if Float.abs t.total >= Float.abs x then t.comp <- t.comp +. ((t.total -. sum) +. x)
  else t.comp <- t.comp +. ((x -. sum) +. t.total);
  t.total <- sum

let total t = t.total +. t.comp

let sum a =
  let t = create () in
  Array.iter (add t) a;
  total t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  total t

let sum_by f a =
  let t = create () in
  Array.iter (fun x -> add t (f x)) a;
  total t
