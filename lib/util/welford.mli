(** Numerically stable running moments (Welford's online algorithm).

    Collects count, mean, variance, min and max in one pass; used for the
    flow-time summaries of {!Rr_metrics}. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Population variance; 0. when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val of_array : float array -> t

val merge : t -> t -> t
(** Combine two accumulators as if every sample of both had been added to
    one (Chan et al.'s parallel update): counts and extrema are exact,
    mean and variance combine without loss of stability.  Neither input
    is mutated; the parallel streaming folds merge per-domain moments
    with this. *)
